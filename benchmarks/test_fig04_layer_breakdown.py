"""Benchmark: regenerate Fig. 4 (per-layer CapsNet time breakdown on the GPU)."""

from repro.experiments import fig04_layer_breakdown


def test_fig04_layer_breakdown(benchmark, save_report):
    result = benchmark(fig04_layer_breakdown.run)
    report = fig04_layer_breakdown.format_report(result)
    save_report("fig04_layer_breakdown", report)

    assert len(result.rows) == 12
    # Paper: the routing procedure accounts for ~74.62% of the inference time.
    assert 0.65 < result.average_routing_fraction < 0.90
    for row in result.rows:
        assert row.fraction_routing > 0.55
