"""Benchmark: regenerate Fig. 6 (intermediates vs. GPU on-chip storage)."""

from repro.experiments import fig06_onchip_storage


def test_fig06_onchip_storage(benchmark, save_report):
    result = benchmark(fig06_onchip_storage.run)
    report = fig06_onchip_storage.format_report(result)
    save_report("fig06_onchip_storage", report)

    assert len(result.rows) == 12
    # Fig. 6(a): the intermediates exceed every GPU's on-chip storage by 40x+
    # on the smallest device and still by a lot on the largest.
    assert result.average_ratio_by_device["K40m"] > 40
    assert result.average_ratio_by_device["V100"] > 4
    # Fig. 6(b): scaling storage from 1.73 MB to 16 MB helps by at most ~1.14x.
    assert 1.0 < result.average_performance_by_device["V100"] < 1.25
