"""Ablation: the customized memory address mapping (Sec. 5.3.1).

Quantifies how much of PIM-CapsNet's routing speedup comes from the
customized address mapping alone by comparing the full design against the
PIM-Inter design point (inter-vault distribution but default intra-vault
mapping, i.e. heavy bank conflicts).
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.workloads.benchmarks import BENCHMARKS


def _run():
    rows = []
    for name in BENCHMARKS:
        accelerator = PIMCapsNet(name)
        baseline = accelerator.simulate_routing(DesignPoint.BASELINE_GPU)
        with_mapping = accelerator.simulate_routing(DesignPoint.PIM_CAPSNET)
        without_mapping = accelerator.simulate_routing(DesignPoint.PIM_INTER)
        rows.append(
            {
                "benchmark": name,
                "speedup_with": with_mapping.speedup_over(baseline),
                "speedup_without": without_mapping.speedup_over(baseline),
                "vrs_share_without": without_mapping.time_components["vrs"]
                / without_mapping.time_seconds,
                "mapping_gain": without_mapping.time_seconds / with_mapping.time_seconds,
            }
        )
    return rows


def test_ablation_address_mapping(benchmark, save_report):
    rows = benchmark(_run)
    table = format_table(
        ["Benchmark", "speedup w/ mapping", "speedup w/o mapping", "VRS share w/o", "mapping gain"],
        [
            [r["benchmark"], r["speedup_with"], r["speedup_without"], r["vrs_share_without"], r["mapping_gain"]]
            for r in rows
        ],
        title="Ablation -- customized address mapping (PIM-CapsNet vs. PIM-Inter)",
    )
    save_report("ablation_address_mapping", table)

    assert len(rows) == 12
    # Without the mapping the design loses most of its advantage (paper:
    # PIM-Inter even drops slightly below the GPU baseline).
    assert arithmetic_mean([r["speedup_without"] for r in rows]) < 1.2
    assert arithmetic_mean([r["mapping_gain"] for r in rows]) > 1.5
    for r in rows:
        assert r["speedup_with"] > r["speedup_without"]
