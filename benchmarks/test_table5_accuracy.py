"""Benchmark: regenerate Table 5 (accuracy with the PE approximations).

Training the functional CapsNets is by far the most expensive part of the
harness, so the benchmark trains one network per dataset family (the paper's
rows that share a dataset reuse the same trained weights anyway) with a small
epoch budget.  Pass ``epochs``/``num_train`` to
:func:`repro.experiments.table05_accuracy.run` for a longer, higher-accuracy run.
"""

from repro.experiments import table05_accuracy

#: One representative benchmark per dataset family (all 12 rows map onto these).
REPRESENTATIVE_BENCHMARKS = [
    "Caps-MN1",
    "Caps-CF1",
    "Caps-EN1",
    "Caps-EN2",
    "Caps-EN3",
    "Caps-SV1",
]


def test_table5_accuracy(benchmark, save_report):
    result = benchmark.pedantic(
        table05_accuracy.run,
        kwargs={"benchmarks": REPRESENTATIVE_BENCHMARKS, "epochs": 2},
        rounds=1,
        iterations=1,
    )
    report = table05_accuracy.format_report(result)
    save_report("table5_accuracy", report)

    assert len(result.rows) == len(REPRESENTATIVE_BENCHMARKS)
    for row in result.rows:
        assert 0.0 <= row.origin_accuracy <= 1.0
        # The approximations must not change the accuracy materially
        # (paper: <= 0.35% without recovery, ~0.04% with recovery).
        assert abs(row.loss_without_recovery) < 0.10
        assert row.loss_with_recovery < 0.10
    assert abs(result.average_loss_without_recovery) < 0.05
    assert result.average_loss_with_recovery < 0.05
