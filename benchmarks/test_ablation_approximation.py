"""Ablation: the PE's operation approximation and accuracy recovery (Sec. 5.2.2).

Measures the numerical quality of the bit-level special functions the PEs
use -- the ingredient behind Table 5 -- without the cost of training:
relative errors of exp / reciprocal / inverse-sqrt over the operating ranges
the routing procedure produces, with and without Newton refinement and with
and without the calibrated recovery multiplier.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.arithmetic.approx import (
    approx_exp,
    approx_inv_sqrt,
    approx_reciprocal,
    exact_exp,
    exact_inv_sqrt,
    exact_reciprocal,
)
from repro.arithmetic.recovery import calibrate_exp_recovery


def _relative_error(approx, exact):
    exact = np.asarray(exact, dtype=np.float64)
    return np.abs(np.asarray(approx, dtype=np.float64) - exact) / np.maximum(np.abs(exact), 1e-30)


def _run():
    rng = np.random.default_rng(2020)
    logits = rng.uniform(-10, 10, size=20000).astype(np.float32)
    norms = rng.uniform(1e-3, 1e3, size=20000).astype(np.float32)
    recovery = calibrate_exp_recovery()

    rows = []
    exp_exact = exact_exp(logits)
    rows.append(
        ["exp (Eq. 14)", float(np.mean(_relative_error(approx_exp(logits), exp_exact))),
         float(np.max(_relative_error(approx_exp(logits), exp_exact)))]
    )
    recovered = recovery.apply(approx_exp(logits))
    rows.append(
        ["exp + recovery", float(np.mean(_relative_error(recovered, exp_exact))),
         float(np.max(_relative_error(recovered, exp_exact)))]
    )
    for steps in (0, 1, 2):
        err = _relative_error(approx_inv_sqrt(norms, newton_steps=steps), exact_inv_sqrt(norms))
        rows.append([f"inv_sqrt ({steps} Newton)", float(np.mean(err)), float(np.max(err))])
    for steps in (0, 1, 2):
        err = _relative_error(approx_reciprocal(norms, newton_steps=steps), exact_reciprocal(norms))
        rows.append([f"reciprocal ({steps} Newton)", float(np.mean(err)), float(np.max(err))])
    return rows


def test_ablation_approximation(benchmark, save_report):
    rows = benchmark(_run)
    table = format_table(
        ["Operation", "mean rel. error", "max rel. error"],
        rows,
        title="Ablation -- PE special-function approximation quality",
    )
    save_report("ablation_approximation", table)

    results = {row[0]: row for row in rows}
    # The exponential approximation stays within a few percent and the
    # recovery multiplier reduces (or at least does not increase) the mean error.
    assert results["exp (Eq. 14)"][1] < 0.03
    assert results["exp + recovery"][1] <= results["exp (Eq. 14)"][1] + 1e-4
    # One Newton step is what the PE flow implements: errors well below 1%.
    assert results["inv_sqrt (1 Newton)"][2] < 0.01
    assert results["reciprocal (1 Newton)"][2] < 0.01
    # Newton refinement monotonically improves the seed approximations.
    assert results["inv_sqrt (1 Newton)"][2] < results["inv_sqrt (0 Newton)"][2]
    assert results["reciprocal (2 Newton)"][2] < results["reciprocal (1 Newton)"][2]
