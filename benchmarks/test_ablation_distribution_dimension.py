"""Ablation: the execution-score based dimension selection (Sec. 5.1.2).

Compares the distributor's automatic dimension choice against naively fixing
each of the three dimensions for every benchmark: the automatic choice must
match the best fixed dimension (that is exactly what the execution score is
for), and the worst fixed dimension shows how much performance is at stake.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.parallelism import Dimension


def _run():
    rows = []
    for name in BENCHMARKS:
        baseline = PIMCapsNet(name).simulate_routing(DesignPoint.BASELINE_GPU)
        auto = PIMCapsNet(name).simulate_routing(DesignPoint.PIM_CAPSNET)
        fixed = {
            dimension: PIMCapsNet(name, force_dimension=dimension).simulate_routing(
                DesignPoint.PIM_CAPSNET
            )
            for dimension in Dimension
        }
        speedups = {d: r.speedup_over(baseline) for d, r in fixed.items()}
        rows.append(
            {
                "benchmark": name,
                "auto_dimension": auto.dimension.value,
                "auto_speedup": auto.speedup_over(baseline),
                "best_fixed": max(speedups.values()),
                "worst_fixed": min(speedups.values()),
                **{f"speedup_{d.value}": s for d, s in speedups.items()},
            }
        )
    return rows


def test_ablation_distribution_dimension(benchmark, save_report):
    rows = benchmark(_run)
    table = format_table(
        ["Benchmark", "auto dim", "auto", "B", "L", "H", "worst fixed"],
        [
            [
                r["benchmark"],
                r["auto_dimension"],
                r["auto_speedup"],
                r["speedup_B"],
                r["speedup_L"],
                r["speedup_H"],
                r["worst_fixed"],
            ]
            for r in rows
        ],
        title="Ablation -- inter-vault distribution dimension selection",
    )
    save_report("ablation_distribution_dimension", table)

    assert len(rows) == 12
    for r in rows:
        # The intelligent distributor always matches the best fixed dimension.
        assert r["auto_speedup"] >= r["best_fixed"] - 1e-9
    # Picking the wrong dimension costs real performance on average.
    average_gap = arithmetic_mean([r["best_fixed"] / r["worst_fixed"] for r in rows])
    assert average_gap > 1.5
