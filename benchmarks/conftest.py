"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; the
rendered report (the same rows/series the paper plots) is written to
``benchmarks/reports/<name>.txt`` so it survives pytest's output capturing,
and the pytest-benchmark timings measure how long the reproduction takes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory the rendered figure/table reports are written to."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def save_report(report_dir: Path) -> Callable[[str, str], Path]:
    """Write a rendered report to ``benchmarks/reports/<name>.txt``."""

    def _save(name: str, content: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(content + "\n", encoding="utf-8")
        return path

    return _save
