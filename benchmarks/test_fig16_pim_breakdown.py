"""Benchmark: regenerate Fig. 16 (intra-/inter-vault design effectiveness)."""

from repro.experiments import fig16_pim_breakdown


def test_fig16_pim_breakdown(benchmark, save_report):
    result = benchmark(fig16_pim_breakdown.run)
    report = fig16_pim_breakdown.format_report(result)
    save_report("fig16_pim_breakdown", report)

    assert len(result.rows) == 12
    # Paper: the crossbar contributes ~45% of PIM-Intra's time and vault
    # request stalls ~58% of PIM-Inter's time; PIM-CapsNet beats both
    # (1.77x / 2.28x respectively).
    assert 0.3 < result.average_intra_crossbar_share < 0.9
    assert 0.4 < result.average_inter_vrs_share < 0.85
    assert 1.3 < result.average_speedup_over_intra < 3.0
    assert 1.5 < result.average_speedup_over_inter < 3.5
