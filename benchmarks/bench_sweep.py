"""Benchmark the sweep engine and record the result as BENCH_sweep.json.

Times three configurations of one fixed reference grid (40 points x 12
benchmarks x 4 designs, end-to-end metric):

* ``cold_serial``   -- fresh cache, ``jobs=1`` (the baseline the acceptance
  criterion compares against),
* ``cold_parallel`` -- fresh cache, process pool over the available cores,
* ``warm``          -- same cache as ``cold_parallel``; must execute zero
  simulations.

The JSON report lands next to this script (``benchmarks/BENCH_sweep.json``
by default, override with argv[1]) so the perf trajectory of the sweep
engine gets recorded across PRs; CI uploads it as a workflow artifact.
``parallel_speedup`` is only meaningful on multi-core machines -- on a
single-core container the process pool cannot win and the script says so
rather than failing.

Run with::

    python benchmarks/bench_sweep.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.engine.context import default_worker_count
from repro.sweep import SweepRunner, SweepSpec

#: The fixed reference grid -- keep it stable so BENCH numbers stay comparable.
SPEC = SweepSpec.from_axes(
    {
        "hmc.pe_frequency_mhz": [
            200.0, 250.0, 312.5, 425.0, 550.0, 625.0, 800.0, 937.5, 1100.0, 1250.0,
        ],
        "hmc.pes_per_vault": [4, 8, 16, 32],
    },
    name="bench-sweep",
    designs=("pim-capsnet", "all-in-pim", "rmas-pim", "rmas-gpu"),
    kind="end-to-end",
)


def _timed(**kwargs):
    start = time.perf_counter()
    result = SweepRunner(SPEC, **kwargs).run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "BENCH_sweep.json"
    jobs = default_worker_count()
    print(f"grid: {SPEC.describe()}")
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as serial_dir, \
            tempfile.TemporaryDirectory(prefix="bench-sweep-") as parallel_dir:
        serial, serial_s = _timed(jobs=1, executor="serial", cache_dir=serial_dir)
        print(f"cold serial:   {serial_s:.3f}s  ({serial.describe_stats()})")
        parallel, parallel_s = _timed(jobs=jobs, executor="process", cache_dir=parallel_dir)
        print(f"cold parallel: {parallel_s:.3f}s  ({parallel.describe_stats()})")
        warm, warm_s = _timed(jobs=jobs, executor="process", cache_dir=parallel_dir)
        print(f"warm:          {warm_s:.3f}s  ({warm.describe_stats()})")

    if warm.simulations_executed != 0 or warm.cache.misses != 0:
        raise SystemExit("warm run was not fully cached -- the cache is broken")
    if not (serial.format_report() == parallel.format_report() == warm.format_report()):
        raise SystemExit("executors disagreed -- sweep results are not deterministic")

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = jobs
    if cores <= 1:
        print(f"parallel speedup: {speedup:.2f}x (single core -- not meaningful)")
    else:
        print(f"parallel speedup: {speedup:.2f}x over --jobs 1 on {cores} workers")

    payload = {
        "benchmark": "sweep",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "grid_points": len(serial.points),
        "cells": sum(len(point.cells) for point in serial.points),
        "simulations": serial.simulations_executed,
        "cold_serial_seconds": serial_s,
        "cold_parallel_seconds": parallel_s,
        "warm_seconds": warm_s,
        "parallel_speedup": speedup,
        "warm_speedup_over_cold_serial": serial_s / warm_s if warm_s > 0 else float("inf"),
        "warm_simulations": warm.simulations_executed,
        "warm_cache_hits": warm.cache.hits,
        "warm_cache_misses": warm.cache.misses,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
