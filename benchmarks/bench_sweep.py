"""Benchmark the sweep engine and record the result as BENCH_sweep.json.

Times five configurations:

* ``cold_serial``   -- fixed reference grid, fresh cache, scalar path,
  ``jobs=1`` (the baseline the acceptance criteria compare against),
* ``cold_parallel`` -- reference grid, fresh cache, process pool,
* ``warm``          -- same cache as ``cold_parallel``; must execute zero
  simulations.  ``warm_seconds / cells`` is the scalar warm per-cell
  overhead: pure Python bookkeeping, every result a cache hit.
* ``vectorized``    -- a 100k+-cell grid (the reference benchmarks/designs
  with a long frequency axis) through the batched numpy backend, cache off:
  every cell is *computed*, yet the per-cell overhead must be >= 10x lower
  than the scalar warm path's.
* ``queue``         -- the reference grid through the sharded work queue
  with 2 workers, then resumed; the resumed run must execute zero
  simulations (everything comes from done-files + disk cache).

``parallel_speedup`` is only meaningful on multi-core machines; the report
records ``cpu_count`` and the regression assertion is gated on it, so a
single-core container records ~1.0x as context instead of failing.

The JSON report lands next to this script (``benchmarks/BENCH_sweep.json``
by default, override with argv[1]) so the perf trajectory of the sweep
engine gets recorded across PRs; CI uploads it as a workflow artifact.

Run with::

    python benchmarks/bench_sweep.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.engine.context import default_worker_count
from repro.sweep import SweepRunner, SweepSpec, run_queued_sweep

#: The fixed reference grid -- keep it stable so BENCH numbers stay comparable.
SPEC = SweepSpec.from_axes(
    {
        "hmc.pe_frequency_mhz": [
            200.0, 250.0, 312.5, 425.0, 550.0, 625.0, 800.0, 937.5, 1100.0, 1250.0,
        ],
        "hmc.pes_per_vault": [4, 8, 16, 32],
    },
    name="bench-sweep",
    designs=("pim-capsnet", "all-in-pim", "rmas-pim", "rmas-gpu"),
    kind="end-to-end",
)

#: The vectorized-path grid: the reference benchmarks/designs with a long
#: frequency axis -- 2100 points x 12 benchmarks x 4 designs = 100800 cells.
VECTORIZED_SPEC = SweepSpec.from_axes(
    {"hmc.pe_frequency_mhz": list(range(100, 2200))},
    name="bench-sweep-vectorized",
    designs=("pim-capsnet", "all-in-pim", "rmas-pim", "rmas-gpu"),
    kind="end-to-end",
)


def _timed(spec=SPEC, **kwargs):
    start = time.perf_counter()
    result = SweepRunner(spec, **kwargs).run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def _cells(result) -> int:
    return sum(len(point.cells) for point in result.points)


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "BENCH_sweep.json"
    jobs = default_worker_count()
    cores = os.cpu_count() or 1
    print(f"grid: {SPEC.describe()}")
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as serial_dir, \
            tempfile.TemporaryDirectory(prefix="bench-sweep-") as parallel_dir, \
            tempfile.TemporaryDirectory(prefix="bench-sweep-") as queue_dir:
        # Scalar reference numbers: explicit executors keep the scalar path
        # even now that eligible auto sweeps vectorize.
        serial, serial_s = _timed(jobs=1, executor="serial", cache_dir=serial_dir)
        print(f"cold serial:   {serial_s:.3f}s  ({serial.describe_stats()})")
        parallel, parallel_s = _timed(jobs=jobs, executor="process", cache_dir=parallel_dir)
        print(f"cold parallel: {parallel_s:.3f}s  ({parallel.describe_stats()})")
        warm, warm_s = _timed(jobs=jobs, executor="process", cache_dir=parallel_dir)
        print(f"warm:          {warm_s:.3f}s  ({warm.describe_stats()})")

        # Vectorized backend on a 100k+-cell grid.  Cache off: this times the
        # *computation* of every cell (plus the sampled scalar equivalence
        # gate), not cache hits.
        vec, vec_s = _timed(
            VECTORIZED_SPEC, jobs=1, backend="vectorized", use_cache=False
        )
        vec_cells = _cells(vec)
        print(f"vectorized:    {vec_s:.3f}s  ({vec.describe_stats()})")

        # Sharded queue: cold with 2 workers, then a resume that must be free.
        queue_start = time.perf_counter()
        queue_cold = run_queued_sweep(
            SPEC, workers=2, shard_size=5, cache_dir=queue_dir
        )
        queue_cold_s = time.perf_counter() - queue_start
        queue_start = time.perf_counter()
        queue_resume = run_queued_sweep(
            SPEC, workers=2, shard_size=5, cache_dir=queue_dir, resume=True
        )
        queue_resume_s = time.perf_counter() - queue_start
        print(
            f"queue cold:    {queue_cold_s:.3f}s  ({queue_cold.describe_stats()})"
        )
        print(
            f"queue resume:  {queue_resume_s:.3f}s  ({queue_resume.describe_stats()})"
        )

    if warm.simulations_executed != 0 or warm.cache.misses != 0:
        raise SystemExit("warm run was not fully cached -- the cache is broken")
    if not (serial.format_report() == parallel.format_report() == warm.format_report()):
        raise SystemExit("executors disagreed -- sweep results are not deterministic")
    if queue_resume.simulations_executed != 0 or queue_resume.cache.misses != 0:
        raise SystemExit(
            "resumed queued sweep re-executed simulations -- resume is broken"
        )
    if queue_cold.format_report() != serial.format_report():
        raise SystemExit("queued sweep disagreed with the serial runner")
    if queue_resume.format_report() != queue_cold.format_report():
        raise SystemExit("resumed queued sweep disagreed with the cold run")

    cells = _cells(warm)
    scalar_warm_us = warm_s / cells * 1e6
    vectorized_us = vec_s / vec_cells * 1e6
    overhead_ratio = scalar_warm_us / vectorized_us if vectorized_us > 0 else float("inf")
    print(
        f"per-cell overhead: scalar warm {scalar_warm_us:.1f}us, "
        f"vectorized {vectorized_us:.1f}us on {vec_cells} cells "
        f"({overhead_ratio:.1f}x lower)"
    )
    if overhead_ratio < 10.0:
        raise SystemExit(
            f"vectorized per-cell overhead is only {overhead_ratio:.1f}x lower "
            f"than the scalar warm path (needs >= 10x)"
        )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    if cores <= 1:
        # A process pool cannot win on one core; record context, don't fail.
        print(f"parallel speedup: {speedup:.2f}x (cpu_count={cores} -- not meaningful)")
    else:
        print(f"parallel speedup: {speedup:.2f}x over --jobs 1 on {jobs} workers")
        if speedup < 0.75:
            raise SystemExit(
                f"process pool is {speedup:.2f}x on {cores} cores -- a real "
                f"parallel regression"
            )

    payload = {
        "benchmark": "sweep",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": cores,
        "jobs": jobs,
        "grid_points": len(serial.points),
        "cells": cells,
        "simulations": serial.simulations_executed,
        "cold_serial_seconds": serial_s,
        "cold_parallel_seconds": parallel_s,
        "warm_seconds": warm_s,
        "parallel_speedup": speedup,
        "parallel_speedup_meaningful": cores > 1,
        "warm_speedup_over_cold_serial": serial_s / warm_s if warm_s > 0 else float("inf"),
        "warm_simulations": warm.simulations_executed,
        "warm_cache_hits": warm.cache.hits,
        "warm_cache_misses": warm.cache.misses,
        "scalar_warm_per_point_us": scalar_warm_us,
        "vectorized_grid_points": len(vec.points),
        "vectorized_cells": vec_cells,
        "vectorized_seconds": vec_s,
        "vectorized_simulations": vec.simulations_executed,
        "per_point_overhead_us": vectorized_us,
        "vectorized_overhead_ratio": overhead_ratio,
        "queue_workers": 2,
        "queue_cold_seconds": queue_cold_s,
        "queue_resume_seconds": queue_resume_s,
        "queue_cold_simulations": queue_cold.simulations_executed,
        "queue_resume_simulations": queue_resume.simulations_executed,
        "queue_resume_cache_misses": queue_resume.cache.misses,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
