"""Benchmark: regenerate Fig. 5 (RP pipeline-stall breakdown on the GPU)."""

from repro.experiments import fig05_stall_breakdown


def test_fig05_stall_breakdown(benchmark, save_report):
    result = benchmark(fig05_stall_breakdown.run)
    report = fig05_stall_breakdown.format_report(result)
    save_report("fig05_stall_breakdown", report)

    assert len(result.rows) == 12
    # Paper: memory-access stalls ~44.64%, synchronization stalls ~34.45%.
    assert 0.35 < result.average_memory_fraction < 0.60
    assert 0.25 < result.average_sync_fraction < 0.45
    # Paper: ALU ~38.6% utilized while the LDST units are ~85.9% utilized.
    assert result.average_ldst_utilization > 0.6
    assert result.average_alu_utilization < 0.5
