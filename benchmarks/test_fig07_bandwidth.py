"""Benchmark: regenerate Fig. 7 (memory bandwidth sensitivity of the RP)."""

from repro.experiments import fig07_bandwidth


def test_fig07_bandwidth(benchmark, save_report):
    result = benchmark(fig07_bandwidth.run)
    report = fig07_bandwidth.format_report(result)
    save_report("fig07_bandwidth", report)

    assert len(result.rows) == 12
    # Paper: going from 288 GB/s GDDR5 to 897 GB/s HBM2 only buys ~1.26x.
    assert 1.1 < result.average_by_technology["HBM2"] < 1.6
    # Monotonically increasing with bandwidth.
    ordered = [result.average_by_technology[tech] for tech in result.technologies]
    assert ordered == sorted(ordered)
