"""Benchmark: regenerate Fig. 17 (end-to-end speedup and energy)."""

from repro.core.accelerator import DesignPoint
from repro.experiments import fig17_end_to_end


def test_fig17_overall(benchmark, save_report):
    result = benchmark(fig17_end_to_end.run)
    report = fig17_end_to_end.format_report(result)
    save_report("fig17_overall", report)

    assert len(result.rows) == 12
    # Paper: 2.44x average speedup (up to 2.76x), 64.91% energy saving.
    assert 1.9 < result.average_speedup < 3.0
    assert result.max_speedup < 3.3
    assert 0.45 < result.average_energy_saving < 0.80
    # All-in-PIM trades performance away (paper: 47.6% drop; our host-stage
    # model is more compute-efficient so the drop is larger -- see EXPERIMENTS.md).
    assert result.average_all_in_pim_speedup < 1.0
    # The runtime scheduler never loses to the naive priority policies.
    for row in result.rows:
        assert row.speedup[DesignPoint.PIM_CAPSNET] >= row.speedup[DesignPoint.RMAS_PIM] - 1e-9
        assert row.speedup[DesignPoint.PIM_CAPSNET] >= row.speedup[DesignPoint.RMAS_GPU] - 1e-9
