"""Benchmark: regenerate Fig. 18 (distribution dimension vs. PE frequency)."""

from repro.experiments import fig18_frequency_sweep
from repro.workloads.parallelism import Dimension


def test_fig18_frequency_sweep(benchmark, save_report):
    result = benchmark(fig18_frequency_sweep.run)
    report = fig18_frequency_sweep.format_report(result)
    save_report("fig18_frequency", report)

    assert len(result.benchmarks) == 12
    assert result.frequencies_mhz == (312.5, 625.0, 937.5)
    # Higher PE frequency never hurts the best achievable speedup.
    for name in result.benchmarks:
        best_by_freq = [
            max(result.speedup(name, frequency, dimension) for dimension in Dimension)
            for frequency in result.frequencies_mhz
        ]
        assert best_by_freq[0] <= best_by_freq[1] + 1e-9 <= best_by_freq[2] + 2e-9
    # The paper's observation: the preferred dimension is configuration
    # dependent -- across benchmarks/frequencies more than one dimension wins.
    winning_dimensions = set(result.best_dimension.values())
    assert len(winning_dimensions) >= 2
