"""Benchmark: regenerate Fig. 15 (RP speedup and energy of PIM-CapsNet)."""

from repro.experiments import fig15_rp_acceleration


def test_fig15_rp_speedup(benchmark, save_report):
    result = benchmark(fig15_rp_acceleration.run)
    report = fig15_rp_acceleration.format_report(result)
    save_report("fig15_rp_speedup", report)

    assert len(result.rows) == 12
    # Paper: 2.17x average speedup (up to 2.27x) and 92.18% energy saving.
    assert 1.7 < result.average_speedup < 2.7
    assert result.max_speedup < 3.5
    assert 0.85 < result.average_energy_saving < 0.99
