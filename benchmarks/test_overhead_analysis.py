"""Benchmark: regenerate the Sec. 6.5 overhead analysis (area / power / thermal)."""

from repro.experiments import overhead


def test_overhead_analysis(benchmark, save_report):
    result = benchmark(overhead.run)
    report = overhead.format_report(result)
    save_report("overhead_analysis", report)

    # Paper: 3.11 mm^2 (~0.32% of the logic die), 2.24 W average logic power,
    # within the 10 W thermal budget.
    assert abs(result.total_area_mm2 - 3.11) < 0.3
    assert 0.002 < result.area_fraction < 0.005
    assert 1.0 < result.average_logic_power_watts < 4.0
    assert all(report.within_budget for _, report in result.thermal_reports)
