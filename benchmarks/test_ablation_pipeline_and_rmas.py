"""Ablation: pipelining depth and the runtime memory access scheduler (Sec. 4 / 5.3.2)."""

from repro.analysis.tables import format_table
from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.core.pipeline import PipelineModel

BENCHMARK = "Caps-MN1"
DEPTHS = (1, 2, 4, 8, 16)


def _run():
    rows = []
    for depth in DEPTHS:
        accelerator = PIMCapsNet(BENCHMARK, pipeline=PipelineModel(num_batches=depth))
        baseline = accelerator.simulate_end_to_end(DesignPoint.BASELINE_GPU)
        results = {
            design: accelerator.simulate_end_to_end(design)
            for design in (DesignPoint.PIM_CAPSNET, DesignPoint.RMAS_PIM, DesignPoint.RMAS_GPU)
        }
        rows.append(
            {
                "depth": depth,
                "pim": results[DesignPoint.PIM_CAPSNET].speedup_over(baseline),
                "rmas_pim": results[DesignPoint.RMAS_PIM].speedup_over(baseline),
                "rmas_gpu": results[DesignPoint.RMAS_GPU].speedup_over(baseline),
            }
        )
    return rows


def test_ablation_pipeline_and_rmas(benchmark, save_report):
    rows = benchmark(_run)
    table = format_table(
        ["batch groups", "PIM-CapsNet", "RMAS-PIM", "RMAS-GPU"],
        [[r["depth"], r["pim"], r["rmas_pim"], r["rmas_gpu"]] for r in rows],
        title=f"Ablation -- pipeline depth and memory scheduling ({BENCHMARK})",
    )
    save_report("ablation_pipeline_rmas", table)

    # Deeper pipelines amortize the fill/drain overhead: speedup is monotone.
    speedups = [r["pim"] for r in rows]
    assert speedups == sorted(speedups)
    # With a single batch group there is nothing to overlap with.
    assert rows[0]["pim"] < rows[-1]["pim"]
    # The RMAS-balanced scheduler is never worse than the naive policies.
    for r in rows:
        assert r["pim"] >= r["rmas_pim"] - 1e-9
        assert r["pim"] >= r["rmas_gpu"] - 1e-9
