"""Benchmark the ``repro serve`` HTTP service; records BENCH_serve.json.

Measures, against one in-process server (real sockets on a loopback port):

* ``warm``      -- sequential ``POST /v1/run`` latency (p50/p99) and
  requests/sec once the session LRU and disk caches are hot; the warm phase
  must execute **zero** simulations (asserted).
* ``coalesce``  -- bursts of identical concurrent ``POST /v1/run`` requests
  against cold scenarios: each burst should execute the underlying run once
  and coalesce the rest.  The report records the executed/coalesced split;
  effectiveness is a ratio in ``[0, 1]``.
* ``healthz``   -- control-plane overhead (p50 of ``GET /healthz``).

All pass/fail checks are count-based (wall-clock assertions would flake on
shared CI runners); latency numbers are recorded for trajectory only.

Run with::

    python benchmarks/bench_serve.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro import __version__
from repro.serve import ReproServer, ServeConfig

#: Fixed reference request -- keep it stable so BENCH numbers stay comparable.
RUN_BODY = {"experiments": ["fig15", "fig16", "fig17"]}
WARM_REQUESTS = 50
HEALTHZ_REQUESTS = 100
BURSTS = 5
BURST_CONCURRENCY = 8


def _post(url: str, path: str, body: dict) -> dict:
    data = json.dumps(body).encode()
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read().decode())


def _get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=60) as response:
        return json.loads(response.read().decode())


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[int(index)]


def _burst(url: str, body: dict, concurrency: int) -> None:
    """Fire ``concurrency`` identical requests as simultaneously as possible."""
    barrier = threading.Barrier(concurrency, timeout=60)
    errors = []

    def invoke():
        try:
            barrier.wait()
            _post(url, "/v1/run", body)
        # Benchmark client: any failure is collected and reported after the
        # run instead of killing the load-generator thread.
        except Exception as error:  # repro: allow(RPR-H001)
            errors.append(error)

    threads = [threading.Thread(target=invoke) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    if errors:
        raise errors[0]


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "BENCH_serve.json"

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        server = ReproServer(
            ServeConfig(port=0, quiet=True, cache_dir=cache_dir)
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = server.url
        try:
            # ---- cold warm-up: first request pays every simulation once.
            cold_started = time.perf_counter()
            _post(url, "/v1/run", RUN_BODY)
            cold_seconds = time.perf_counter() - cold_started
            cold_simulations = _get(url, "/metrics")["simulations_executed"]

            # ---- warm phase: p50/p99 latency + requests/sec.
            latencies = []
            warm_started = time.perf_counter()
            for _ in range(WARM_REQUESTS):
                request_started = time.perf_counter()
                _post(url, "/v1/run", RUN_BODY)
                latencies.append(time.perf_counter() - request_started)
            warm_elapsed = time.perf_counter() - warm_started
            warm_simulations = (
                _get(url, "/metrics")["simulations_executed"] - cold_simulations
            )

            # ---- healthz: control-plane overhead.
            health_latencies = []
            for _ in range(HEALTHZ_REQUESTS):
                request_started = time.perf_counter()
                _get(url, "/healthz")
                health_latencies.append(time.perf_counter() - request_started)

            # ---- coalescing: identical concurrent bursts on cold scenarios.
            before = _get(url, "/metrics")["runs"]
            for burst in range(BURSTS):
                body = dict(RUN_BODY)
                # A distinct frequency per burst keeps each burst cold, so
                # the leader's run is slow enough for followers to coalesce.
                body["set"] = [f"hmc.pe_frequency_mhz={500 + burst}"]
                _burst(url, body, BURST_CONCURRENCY)
            after = _get(url, "/metrics")["runs"]
            burst_requests = BURSTS * BURST_CONCURRENCY
            burst_executed = after["executed"] - before["executed"]
            burst_coalesced = after["coalesced"] - before["coalesced"]
            metrics = _get(url, "/metrics")
        finally:
            server.shutdown()
            server.wait_stopped(timeout=60)

    # ---- count-based smoke checks (never wall-clock).
    assert warm_simulations == 0, (
        f"warm /v1/run re-simulated: {warm_simulations} simulations"
    )
    assert burst_executed + burst_coalesced == burst_requests, (burst_executed, burst_coalesced)
    assert burst_executed >= BURSTS  # at least one real run per burst
    server_overall = metrics["latency_seconds"]["overall"]

    report = {
        "benchmark": "serve",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cold_run_seconds": cold_seconds,
        "warm_requests": WARM_REQUESTS,
        "warm_p50_seconds": _percentile(latencies, 0.50),
        "warm_p99_seconds": _percentile(latencies, 0.99),
        "warm_requests_per_sec": WARM_REQUESTS / warm_elapsed,
        "warm_simulations": warm_simulations,
        "warm_speedup_over_cold": cold_seconds / _percentile(latencies, 0.50),
        "healthz_p50_seconds": _percentile(health_latencies, 0.50),
        "burst_count": BURSTS,
        "burst_concurrency": BURST_CONCURRENCY,
        "burst_requests": burst_requests,
        "burst_runs_executed": burst_executed,
        "burst_runs_coalesced": burst_coalesced,
        "coalescing_effectiveness": (
            burst_coalesced / (burst_requests - BURSTS)
            if burst_requests > BURSTS
            else 0.0
        ),
        "server_overall_p50_seconds": server_overall["p50_seconds"],
        "server_overall_p99_seconds": server_overall["p99_seconds"],
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(
        f"\nwarm p50 {report['warm_p50_seconds'] * 1e3:.2f} ms, "
        f"{report['warm_requests_per_sec']:.0f} req/s, "
        f"coalesced {burst_coalesced}/{burst_requests - BURSTS} "
        f"({report['coalescing_effectiveness']:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
