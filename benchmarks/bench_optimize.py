"""Benchmark the optimizer and record the result as BENCH_optimize.json.

Two demos over fixed reference grids (stable across PRs so the recorded
probe/grid trajectory stays comparable):

* ``frequency`` -- the Fig. 18 question: the PE frequency maximizing
  ``fig17.average_speedup`` over a 16-value axis, found by successive
  halving with a fresh cache.  The adaptive search must probe **fewer**
  points than the grid holds, and an exhaustive verification run (warm, over
  the same cache) must agree on the optimum.
* ``constrained`` -- the design-space question: the cheapest design
  (minimize ``overhead.total_area_mm2``) still within 5% of the peak
  ``fig17.average_speedup``, over a frequency x PEs-per-vault grid.

Each demo then re-runs warm on the same cache: the repeat must execute
**zero** simulations (every probe a disk-cache hit) and render a
byte-identical report -- the determinism contract of ``repro optimize``.

The JSON report lands next to this script (``benchmarks/BENCH_optimize.json``
by default, override with argv[1]); CI uploads it as a workflow artifact.

Run with::

    python benchmarks/bench_optimize.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.optimize import OptimizeDriver
from repro.sweep import SweepSpec

#: Reference grids -- keep them stable so BENCH numbers stay comparable.
FREQUENCY_SPEC = SweepSpec.from_axes(
    {
        "hmc.pe_frequency_mhz": [
            156.25, 200.0, 250.0, 312.5, 425.0, 550.0, 625.0, 800.0,
            937.5, 1100.0, 1250.0, 1500.0, 1750.0, 2000.0, 2250.0, 2500.0,
        ],
    },
    name="bench-optimize-frequency",
)

CONSTRAINED_SPEC = SweepSpec.from_axes(
    {
        "hmc.pe_frequency_mhz": [
            156.25, 312.5, 425.0, 625.0, 937.5, 1250.0, 1750.0, 2500.0,
        ],
        "hmc.pes_per_vault": [4, 8, 16, 32],
    },
    name="bench-optimize-constrained",
)

#: One workload keeps a probe cheap; the search behaviour is identical.
BENCHMARKS = ["Caps-MN1"]


def _timed(objective, spec, *, cache_dir, **kwargs):
    start = time.perf_counter()
    result = OptimizeDriver(
        objective, spec, benchmarks=BENCHMARKS, cache_dir=cache_dir, **kwargs
    ).run()
    return result, time.perf_counter() - start


def _demo(name, objective, spec, cache_dir, **kwargs):
    """Cold + warm + exhaustive-verification runs of one demo problem."""
    cold, cold_s = _timed(objective, spec, cache_dir=cache_dir, **kwargs)
    print(f"{name} cold:  {cold_s:.3f}s  ({cold.describe_stats()})")
    warm, warm_s = _timed(objective, spec, cache_dir=cache_dir, **kwargs)
    print(f"{name} warm:  {warm_s:.3f}s  ({warm.describe_stats()})")
    verify_kwargs = dict(kwargs)
    verify_kwargs["driver"] = "exhaustive"
    verify_kwargs.pop("refine", None)
    full, full_s = _timed(objective, spec, cache_dir=cache_dir, **verify_kwargs)
    print(f"{name} grid:  {full_s:.3f}s  ({full.describe_stats()})")

    grid = spec.grid_size()
    if cold.probes and len(cold.probes) >= grid:
        raise SystemExit(
            f"{name}: adaptive search probed {len(cold.probes)} of {grid} grid "
            f"points -- no better than exhaustive"
        )
    if warm.simulations_executed != 0 or warm.cache.misses != 0:
        raise SystemExit(f"{name}: warm re-run was not fully cached")
    if warm.format_report() != cold.format_report():
        raise SystemExit(f"{name}: warm re-run report differs -- not deterministic")
    if warm.to_dict() != cold.to_dict():
        raise SystemExit(f"{name}: warm re-run data differs -- not deterministic")
    best = cold.best_probe()
    best_full = full.best_probe()
    if best is None or best_full is None:
        raise SystemExit(f"{name}: no feasible probe found")
    # Compare objective *values*, not assignments: saturating curves (the
    # frequency plateau past the thermal cap) have co-optimal assignments.
    primary = cold.objective.primary.metric
    if best.values[primary] != best_full.values[primary]:
        raise SystemExit(
            f"{name}: adaptive optimum {best.values[primary]} at "
            f"{best.assignment} != exhaustive optimum "
            f"{best_full.values[primary]} at {best_full.assignment}"
        )
    return {
        "grid_points": grid,
        "driver": cold.driver,
        "probes": len(cold.probes),
        "probe_grid_ratio": len(cold.probes) / grid,
        "cold_seconds": cold_s,
        "cold_simulations": cold.simulations_executed,
        "warm_seconds": warm_s,
        "warm_simulations": warm.simulations_executed,
        "warm_cache_hits": warm.cache.hits,
        "warm_cache_misses": warm.cache.misses,
        "reports_identical": True,
        "optimum_assignment": dict(best.assignment),
        "optimum_values": dict(best.values),
        "exhaustive_agrees": True,
    }


def main() -> int:
    output = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).parent / "BENCH_optimize.json"
    )
    with tempfile.TemporaryDirectory(prefix="bench-optimize-") as freq_dir, \
            tempfile.TemporaryDirectory(prefix="bench-optimize-") as area_dir:
        print(f"frequency grid: {FREQUENCY_SPEC.describe()}")
        frequency = _demo(
            "frequency",
            "fig17.average_speedup",
            FREQUENCY_SPEC,
            freq_dir,
            driver="halving",
        )
        print(f"constrained grid: {CONSTRAINED_SPEC.describe()}")
        constrained = _demo(
            "constrained",
            {
                "name": "cheapest-fast-design",
                "objectives": ["overhead.total_area_mm2:min"],
                "constraints": ["fig17.average_speedup:within_pct_of_best=5"],
            },
            CONSTRAINED_SPEC,
            area_dir,
            driver="halving",
        )

    payload = {
        "benchmark": "optimize",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "frequency": frequency,
        "constrained": constrained,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
