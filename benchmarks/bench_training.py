"""Benchmark CapsNet training + the trained-model cache; record BENCH_training.json.

Times the Table-5 experiment (the training-dominated hot path of a full
``repro reproduce``) in two configurations against one temporary cache
directory:

* ``cold`` -- empty cache: every dataset's CapsNet trains from scratch
  through the vectorized kernels,
* ``warm`` -- same cache: every trained model (and its per-context
  accuracies) is served from disk; the run must execute **zero** training
  steps and render a byte-identical report.

Correctness gates are *count-based* (training steps, cache hits), never
wall-clock: the dev container is single-CPU and timings there are noise.
The JSON report lands next to this script (``benchmarks/BENCH_training.json``
by default, override with argv[1]) so the perf trajectory of the training
backbone is recorded across PRs; CI uploads it as a workflow artifact.

Run with::

    python benchmarks/bench_training.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.capsnet import training
from repro.engine.context import SimulationContext
from repro.engine.diskcache import TrainedModelCache
from repro.experiments import table05_accuracy


def _timed_run(cache_dir):
    context = SimulationContext(max_workers=1, model_cache=TrainedModelCache(cache_dir))
    training.reset_train_step_count()
    start = time.perf_counter()
    result = table05_accuracy.run(context=context)
    elapsed = time.perf_counter() - start
    return result, elapsed, training.train_steps_executed(), context.trained_models.stats


def main() -> int:
    output = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "BENCH_training.json"
    )
    with tempfile.TemporaryDirectory(prefix="bench-training-") as cache_dir:
        cold, cold_s, cold_steps, cold_stats = _timed_run(cache_dir)
        print(f"cold: {cold_s:.2f}s  ({cold_steps} training steps, "
              f"{cold_stats.misses} cache misses)")
        warm, warm_s, warm_steps, warm_stats = _timed_run(cache_dir)
        print(f"warm: {warm_s:.3f}s  ({warm_steps} training steps, "
              f"{warm_stats.hits} cache hits)")

    if warm_steps != 0:
        raise SystemExit("warm run executed training steps -- the model cache is broken")
    if warm_stats.misses != 0:
        raise SystemExit("warm run missed the model cache -- keying is unstable")
    if table05_accuracy.format_report(warm) != table05_accuracy.format_report(cold):
        raise SystemExit("warm report differs from cold -- accuracies did not round-trip")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"warm speedup: {speedup:.1f}x over cold")

    payload = {
        "benchmark": "training",
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup_over_cold": speedup,
        "cold_training_steps": cold_steps,
        "warm_training_steps": warm_steps,
        "cold_cache_misses": cold_stats.misses,
        "warm_cache_hits": warm_stats.hits,
        "warm_cache_misses": warm_stats.misses,
        "datasets_trained": cold_stats.misses,
        "rows": len(cold.rows),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
