"""Two-axis design-space sweep with the generic sweep engine (repro.sweep).

Where ``examples/design_space_exploration.py`` walks the design space by
hand-deriving scenario variants, this example declares the same exploration
as data: a :class:`repro.sweep.SweepSpec` over **PE frequency x PEs per
vault**, executed by :class:`repro.sweep.SweepRunner` with

* process-parallel point execution (``jobs`` > 1 uses a
  ``ProcessPoolExecutor``; the analytic models are GIL-bound, so processes
  are the only way to use more than one core), and
* a persistent on-disk result cache -- run the example twice and the second
  run executes **zero** simulations (watch the stats line).

The same spec can be saved as JSON and replayed from the command line::

    repro sweep --spec freq_x_pe.json --jobs 4
    repro sweep --axis hmc.pe_frequency=312.5,625,1250 --axis hmc.pes_per_vault=8,16

Run with::

    python examples/frequency_pe_sweep.py [cache-dir]
"""

from __future__ import annotations

import sys
import tempfile

from repro.api import Scenario, Session
from repro.sweep import SweepSpec

#: The neighbourhood of the paper's 16 PE / 312.5 MHz design point.
SPEC = SweepSpec.from_axes(
    {
        "hmc.pe_frequency_mhz": [312.5, 625.0, 1250.0],
        "hmc.pes_per_vault": [8, 16, 32],
    },
    name="freq-x-pe",
    benchmarks=("Caps-MN1", "Caps-CF1", "Caps-SV1"),
)


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-sweep-")
    session = Session(Scenario.default())
    print(f"spec: {SPEC.describe()}")
    print(f"cache: {cache_dir}\n")

    result = session.sweep(SPEC, jobs=4, cache_dir=cache_dir)
    print(result.format_report())
    print(f"\n[stats] {result.describe_stats()}")

    # A second (warm) run is pure cache: zero simulations execute.
    warm = session.sweep(SPEC, jobs=4, cache_dir=cache_dir)
    print(f"[stats] {warm.describe_stats()}")
    assert warm.simulations_executed == 0
    assert warm.format_report() == result.format_report()

    # The grid data itself is plain JSON -- feed it to notebooks/plots.
    best_point, best_cell = max(
        ((point, cell) for point in warm.points for cell in point.cells),
        key=lambda pair: pair[1].speedup,
    )
    assignment = ", ".join(f"{key}={value}" for key, value in best_point.assignment.items())
    print(
        f"\nbest cell: {best_cell.benchmark} at {assignment} "
        f"-> {best_cell.speedup:.2f}x routing speedup"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
