"""Custom workload: run the evaluation figures on a non-Table-1 CapsNet.

Defines a capsule network the paper never evaluated -- a 43-class
traffic-sign classifier on 48x48 RGB images with EM routing -- as a
declarative :class:`repro.api.WorkloadSpec`, merges it into a scenario's
workload catalog next to the twelve Table-1 benchmarks, and

* runs Fig. 15 (routing-procedure speedup/energy) and Fig. 17 (end-to-end
  speedup/energy) over the custom network,
* compares it head-to-head against the paper's ``Caps-MN1`` benchmark.

Everything flows through the same cached :class:`repro.api.Session` engine
as the paper benchmarks -- no experiment code changes, just a new spec.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import Scenario, Session, WorkloadSpec

CUSTOM = WorkloadSpec(
    name="Caps-TS43",
    dataset={"name": "TRAFFIC-SIGNS", "image_shape": (3, 48, 48), "num_classes": 43},
    batch_size=64,
    num_low_capsules=2048,
    num_high_capsules=43,
    routing_iterations=4,
    routing="em",
)

REFERENCE = "Caps-MN1"


def main() -> None:
    scenario = Scenario.default().with_workloads([CUSTOM])
    session = Session(scenario)
    print(f"== custom workload: {CUSTOM.describe()} ==")
    print(f"== catalog: {len(scenario.catalog)} networks (Table 1 + Caps-TS43) ==\n")

    # ---- Figs. 15 and 17 on the custom network -------------------------------
    result = session.run(["fig15", "fig17"], benchmarks=[CUSTOM.name])
    print(result.report())

    # ---- head-to-head vs. the paper's Caps-MN1 -------------------------------
    from repro.experiments import fig15_rp_acceleration, fig17_end_to_end

    rp = fig15_rp_acceleration.run(
        benchmarks=[REFERENCE, CUSTOM.name], context=session.context
    )
    e2e = fig17_end_to_end.run(
        benchmarks=[REFERENCE, CUSTOM.name], context=session.context
    )
    headline = rp.designs[-1]
    rows = []
    for rp_row, e2e_row in zip(rp.rows, e2e.rows):
        rows.append(
            [
                rp_row.benchmark,
                rp_row.speedup[headline],
                1.0 - rp_row.normalized_energy[headline],
                e2e_row.speedup[headline],
                1.0 - e2e_row.normalized_energy[headline],
            ]
        )
    print()
    print(
        format_table(
            ["Network", "RP speedup", "RP energy saved", "E2E speedup", "E2E energy saved"],
            rows,
            title=f"{CUSTOM.name} vs. {REFERENCE} (PIM-CapsNet over the GPU baseline)",
        )
    )
    ts43, mn1 = rows[1], rows[0]
    ratio = ts43[1] / mn1[1]
    print(
        f"\n{CUSTOM.name} gains {ts43[1]:.2f}x on the routing procedure vs. "
        f"{mn1[1]:.2f}x for {REFERENCE} ({ratio:.2f}x relative): the larger "
        f"L*H*iterations product gives the in-memory design more parallelism "
        f"to harvest, exactly the scalability trend of Sec. 6.2."
    )


if __name__ == "__main__":
    main()
