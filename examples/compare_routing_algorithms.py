"""Compare dynamic routing and EM routing (the two algorithms the paper names).

The PIM-CapsNet optimizations are claimed to be "generally applicable to
different routing algorithms" because the algorithms share the same execution
pattern: an all-to-all vote tensor, per-capsule aggregations and iterative
coefficient updates.  This example quantifies that claim on both levels the
library models:

* the **workload level** -- operand footprints, FLOPs and traffic of one
  routing pass for each algorithm on the Table-1 benchmarks, and
* the **functional level** -- a tiny CapsNet evaluated with both routing
  implementations (and with the PE's approximate arithmetic).

Run with::

    python examples/compare_routing_algorithms.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.arithmetic.context import MathContext
from repro.capsnet.layers import CapsuleLayer
from repro.capsnet.routing import DynamicRouting, EMRouting
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.em_model import EMRoutingWorkload
from repro.workloads.rp_model import RoutingWorkload


def workload_comparison() -> None:
    rows = []
    for name in ("Caps-MN1", "Caps-CF3", "Caps-EN3", "Caps-SV3"):
        dynamic = RoutingWorkload(BENCHMARKS[name])
        em = EMRoutingWorkload(BENCHMARKS[name])
        rows.append(
            [
                name,
                dynamic.footprint().intermediate_bytes / 1e6,
                em.footprint().intermediate_bytes / 1e6,
                dynamic.total_flops() / 1e9,
                em.total_flops() / 1e9,
                dynamic.total_traffic_bytes() / 1e9,
                em.total_traffic_bytes() / 1e9,
            ]
        )
    print(
        format_table(
            [
                "Benchmark",
                "dyn. intermediates (MB)",
                "EM intermediates (MB)",
                "dyn. GFLOPs",
                "EM GFLOPs",
                "dyn. traffic (GB)",
                "EM traffic (GB)",
            ],
            rows,
            title="Workload level: both algorithms are dominated by the vote tensor",
        )
    )


def functional_comparison() -> None:
    rng = np.random.default_rng(0)
    low_capsules = rng.normal(scale=0.3, size=(4, 24, 8)).astype(np.float32)
    rows = []
    for label, routing in (
        ("dynamic routing (exact)", DynamicRouting(iterations=3)),
        ("dynamic routing (PE approx)", DynamicRouting(iterations=3, context=MathContext.approximate())),
        ("EM routing (exact)", EMRouting(iterations=3)),
        ("EM routing (PE approx)", EMRouting(iterations=3, context=MathContext.approximate())),
    ):
        layer = CapsuleLayer(num_low=24, num_high=5, low_dim=8, high_dim=16, routing=routing, rng=np.random.default_rng(1))
        high = layer.forward(low_capsules)
        lengths = np.linalg.norm(high, axis=-1)
        rows.append([label, float(lengths.mean()), float(lengths.max()), int(np.argmax(lengths[0]))])
    print(
        format_table(
            ["Routing", "mean capsule length", "max capsule length", "argmax (sample 0)"],
            rows,
            title="Functional level: the same capsule layer under both algorithms",
        )
    )


def main() -> None:
    workload_comparison()
    print()
    functional_comparison()
    print(
        "\nBoth algorithms produce the same dominant operand (the vote tensor), "
        "iterate with per-capsule aggregations, and tolerate the PE approximations -- "
        "which is why the PIM-CapsNet design is not specific to dynamic routing."
    )


if __name__ == "__main__":
    main()
