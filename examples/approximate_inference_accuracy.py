"""Functional CapsNet inference with the PIM-CapsNet PE approximations.

The paper's intro motivates CapsNets with accuracy-critical workloads
(medical imaging, autonomous driving), so any hardware approximation must
preserve the classification results.  This example trains a small CapsNet on
a synthetic image-classification task and then evaluates the *same weights*
under three arithmetic implementations:

* exact FP32 (the GPU baseline),
* the PE's bit-level approximations (exp / division / inverse sqrt),
* the approximations plus the offline-calibrated accuracy recovery,

reproducing the Table-5 comparison on a single dataset, end to end.

Run with::

    python examples/approximate_inference_accuracy.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.arithmetic.context import MathContext
from repro.capsnet.datasets import dataset_for_benchmark
from repro.capsnet.model import CapsNet, CapsNetConfig
from repro.capsnet.training import Trainer


def main() -> None:
    print("== Training a small CapsNet on the synthetic MNIST substitute ==\n")
    dataset = dataset_for_benchmark("MNIST", num_train=320, num_test=160, seed=3)
    config = CapsNetConfig(
        input_shape=dataset.spec.image_shape,
        num_classes=dataset.num_classes,
        conv_channels=24,
        conv_kernel=9,
        primary_channels=2,
        primary_dim=8,
        primary_kernel=9,
        primary_stride=2,
        class_caps_dim=16,
        routing_iterations=3,
        use_decoder=False,
    )
    model = CapsNet(config, context=MathContext.exact(), seed=3)
    trainer = Trainer(model, learning_rate=0.002, optimizer="adam", reconstruction_weight=0.0)
    result = trainer.fit(dataset, epochs=5, batch_size=16, verbose=True)
    print(f"\ntrain accuracy: {result.train_accuracy:.3f}  test accuracy: {result.test_accuracy:.3f}\n")

    print("== Evaluating the trained weights under the PE arithmetic ==\n")
    test_images, test_labels = dataset.test_set()
    state = model.state_dict()
    contexts = {
        "exact FP32 (origin)": MathContext.exact(),
        "PE approximations (w/o recovery)": MathContext.approximate(),
        "PE approximations (w/ recovery)": MathContext.approximate_with_recovery(),
    }
    rows = []
    exact_predictions = None
    for label, context in contexts.items():
        clone = CapsNet(config, context=context, seed=0)
        clone.load_state_dict(state)
        accuracy = clone.accuracy(test_images, test_labels)
        predictions = clone.predict(test_images)
        if exact_predictions is None:
            exact_predictions = predictions
            agreement = 1.0
        else:
            agreement = float(np.mean(predictions == exact_predictions))
        rows.append([label, accuracy, agreement])
    print(
        format_table(
            ["Arithmetic", "test accuracy", "prediction agreement vs exact"],
            rows,
            title="Table 5 style comparison (single dataset)",
        )
    )


if __name__ == "__main__":
    main()
