"""Characterize why CapsNet inference is slow on GPUs (Sec. 3 of the paper).

The paper motivates PIM-CapsNet with a characterization of the 12 Table-1
CapsNets on a P100-class GPU: the dynamic routing procedure dominates the
inference time (~75%), its stalls are dominated by off-chip memory accesses
and barrier synchronizations, and neither bigger caches nor faster memory
fixes it.  This example regenerates that characterization (Figs. 4-7).

Run with::

    python examples/characterize_gpu_bottleneck.py
"""

from __future__ import annotations

from repro.experiments import (
    fig04_layer_breakdown,
    fig05_stall_breakdown,
    fig06_onchip_storage,
    fig07_bandwidth,
)


def main() -> None:
    print("== Step 1: where does the time go? (Fig. 4) ==\n")
    layer_result = fig04_layer_breakdown.run()
    print(fig04_layer_breakdown.format_report(layer_result))

    print("\n== Step 2: why is the routing procedure slow? (Fig. 5) ==\n")
    stall_result = fig05_stall_breakdown.run()
    print(fig05_stall_breakdown.format_report(stall_result))

    print("\n== Step 3: would a bigger cache help? (Fig. 6) ==\n")
    storage_result = fig06_onchip_storage.run()
    print(fig06_onchip_storage.format_report(storage_result))

    print("\n== Step 4: would faster memory help? (Fig. 7) ==\n")
    bandwidth_result = fig07_bandwidth.run()
    print(fig07_bandwidth.format_report(bandwidth_result))

    print(
        "\nConclusion: the routing procedure is bound by non-shareable "
        "intermediates and aggregation synchronization; neither larger on-chip "
        "storage nor higher bandwidth removes the bottleneck, which motivates "
        "the in-memory design of PIM-CapsNet."
    )


if __name__ == "__main__":
    main()
