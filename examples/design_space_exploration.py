"""Design-space exploration of the in-memory accelerator via repro.api.

The paper fixes the PIM configuration to 16 PEs per vault at 312.5 MHz; this
example explores the neighbourhood of that design point for a chosen
benchmark by deriving :class:`repro.api.Scenario` variants with dotted-path
overrides -- no hand-built models:

* how the routing speedup scales with PE frequency (and when the chosen
  distribution dimension flips, cf. Fig. 18),
* how many PEs per vault are worth integrating,
* whether each configuration still fits the HMC's thermal budget
  (Sec. 6.5),
* a scenario comparison of the headline Fig. 15 metrics between the paper
  default and the most aggressive variant (``repro compare`` in library form).

Run with::

    python examples/design_space_exploration.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro import DesignPoint
from repro.analysis.tables import format_table
from repro.api import Scenario, Session, compare_scenarios
from repro.hmc.thermal import ThermalModel
from repro.workloads.benchmarks import benchmark_names

BASE = Scenario.default()


def _variant(**overrides) -> Scenario:
    return BASE.with_overrides({key.replace("__", "."): value for key, value in overrides.items()})


def sweep_frequency(benchmark: str, frequencies=(312.5, 625.0, 937.5, 1250.0)) -> None:
    rows = []
    for frequency in frequencies:
        scenario = _variant(hmc__pe_frequency_mhz=frequency)
        session = Session(scenario)
        baseline = session.routing(benchmark, DesignPoint.BASELINE_GPU)
        pim = session.routing(benchmark, DesignPoint.PIM_CAPSNET)
        thermal = ThermalModel(config=scenario.hmc).check(frequency)
        rows.append(
            [
                frequency,
                pim.dimension.value if pim.dimension else "-",
                pim.time_seconds * 1e3,
                pim.speedup_over(baseline),
                thermal.logic_power_watts,
                "yes" if thermal.within_budget else "NO",
            ]
        )
    print(
        format_table(
            ["PE freq (MHz)", "dimension", "RP time (ms)", "speedup", "logic power (W)", "thermal ok"],
            rows,
            title="PE frequency sweep (cf. Fig. 18)",
        )
    )


def sweep_pe_count(benchmark: str, pe_counts=(4, 8, 16, 32)) -> None:
    rows = []
    for pes in pe_counts:
        scenario = _variant(hmc__pes_per_vault=pes)
        session = Session(scenario)
        baseline = session.routing(benchmark, DesignPoint.BASELINE_GPU)
        pim = session.routing(benchmark, DesignPoint.PIM_CAPSNET)
        thermal = ThermalModel(config=scenario.hmc).check()
        rows.append(
            [
                pes,
                pim.time_seconds * 1e3,
                pim.speedup_over(baseline),
                thermal.logic_power_watts,
                "yes" if thermal.within_budget else "NO",
            ]
        )
    print(
        format_table(
            ["PEs / vault", "RP time (ms)", "speedup", "logic power (W)", "thermal ok"],
            rows,
            title="PEs-per-vault sweep (ablation of the intra-vault design)",
        )
    )


def sweep_pipeline_depth(benchmark: str, depths=(1, 2, 4, 8, 16, 32)) -> None:
    rows = []
    for depth in depths:
        session = Session(_variant(pipeline_batches=depth))
        baseline = session.end_to_end(benchmark, DesignPoint.BASELINE_GPU)
        pim = session.end_to_end(benchmark, DesignPoint.PIM_CAPSNET)
        rows.append([depth, pim.speedup_over(baseline), pim.energy_saving_over(baseline)])
    print(
        format_table(
            ["batch groups", "overall speedup", "energy saving"],
            rows,
            title="Pipeline depth sweep (host/HMC overlap, Sec. 4)",
        )
    )


def compare_headline(benchmark: str) -> None:
    fast = BASE.with_set(["hmc.pe_frequency_mhz=937.5", "hmc.pes_per_vault=32"])
    comparison = compare_scenarios(
        [BASE, fast], only=["fig15", "fig17"], benchmarks=[benchmark]
    )
    print(comparison.format_report())


def main(benchmark: str = "Caps-MN1") -> None:
    print(f"== Design-space exploration for {benchmark} ==\n")
    sweep_frequency(benchmark)
    print()
    sweep_pe_count(benchmark)
    print()
    sweep_pipeline_depth(benchmark)
    print()
    compare_headline(benchmark)


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "Caps-MN1"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose one of {benchmark_names()}")
    main(name)
