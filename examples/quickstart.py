"""Quickstart: evaluate PIM-CapsNet on one Table-1 benchmark via repro.api.

Builds a :class:`repro.api.Session` for the paper-default hardware
:class:`repro.api.Scenario`, shows how the inter-vault distributor picks a
parallelization dimension, and reports the routing-procedure and end-to-end
speedups / energy savings over the GPU baseline -- the numbers behind
Figs. 15 and 17 of the paper.  Every simulation goes through the session's
cached context, so re-running a comparison is free.

Run with::

    python examples/quickstart.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro import DesignPoint
from repro.analysis.tables import format_table
from repro.api import Scenario, Session
from repro.workloads.benchmarks import benchmark_names
from repro.workloads.parallelism import Dimension


def main(benchmark: str = "Caps-MN1") -> None:
    scenario = Scenario.default()
    session = Session(scenario)
    accelerator = session.model(benchmark)
    print(f"== PIM-CapsNet quickstart: {accelerator.benchmark.describe()} ==")
    print(f"== scenario: {scenario.describe()} ==\n")

    # ---- how the inter-vault distributor decides -----------------------------
    distributor = accelerator.distributor
    rows = []
    for dimension in Dimension:
        plan = distributor.plan_for_dimension(dimension)
        rows.append(
            [
                dimension.value,
                plan.per_vault_operations.total_operations / 1e6,
                plan.crossbar_payload_bytes / 1e6,
                plan.crossbar_packets / 1e3,
                plan.vaults_used,
                distributor.score_model.estimated_time(plan) * 1e3,
            ]
        )
    print(
        format_table(
            ["Dimension", "per-vault Mops", "inter-vault MB", "packets (k)", "vaults", "est. time (ms)"],
            rows,
            title="Inter-vault distribution candidates (execution-score inputs)",
        )
    )
    print(f"Selected dimension: {distributor.best_dimension().value}\n")

    # ---- routing procedure (Fig. 15) -----------------------------------------
    routing_designs = [
        DesignPoint.BASELINE_GPU,
        DesignPoint.GPU_ICP,
        DesignPoint.PIM_INTRA,
        DesignPoint.PIM_INTER,
        DesignPoint.PIM_CAPSNET,
    ]
    routing = {design: session.routing(benchmark, design) for design in routing_designs}
    baseline = routing[DesignPoint.BASELINE_GPU]
    rows = [
        [
            design.value,
            result.time_seconds * 1e3,
            result.speedup_over(baseline),
            result.energy_joules,
            1.0 - result.energy_saving_over(baseline),
        ]
        for design, result in routing.items()
    ]
    print(
        format_table(
            ["Design", "RP time (ms)", "speedup", "energy (J)", "energy (norm.)"],
            rows,
            title="Routing procedure (Fig. 15 / Fig. 16 design points)",
        )
    )

    # ---- end to end (Fig. 17) --------------------------------------------------
    e2e_designs = [
        DesignPoint.BASELINE_GPU,
        DesignPoint.ALL_IN_PIM,
        DesignPoint.RMAS_PIM,
        DesignPoint.RMAS_GPU,
        DesignPoint.PIM_CAPSNET,
    ]
    end_to_end = {design: session.end_to_end(benchmark, design) for design in e2e_designs}
    baseline_e2e = end_to_end[DesignPoint.BASELINE_GPU]
    rows = [
        [
            design.value,
            result.time_seconds * 1e3,
            result.speedup_over(baseline_e2e),
            result.energy_joules,
            result.energy_saving_over(baseline_e2e),
        ]
        for design, result in end_to_end.items()
    ]
    print()
    print(
        format_table(
            ["Design", "total time (ms)", "speedup", "energy (J)", "energy saving"],
            rows,
            title=f"End-to-end inference, {scenario.pipeline_batches} pipelined batch groups (Fig. 17)",
        )
    )

    # ---- the full Fig. 15 experiment, restricted to this benchmark ------------
    print()
    result = session.run(["fig15"], benchmarks=[benchmark])
    print(result.reports["fig15"])


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "Caps-MN1"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose one of {benchmark_names()}")
    main(name)
