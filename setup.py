"""Setup shim for legacy editable installs.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in minimal environments that lack the
``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
