"""Tests for the GPU device catalog."""

import pytest

from repro.gpu.devices import (
    BANDWIDTH_SWEEP,
    GPU_DEVICES,
    ONCHIP_STORAGE_SWEEP,
    MemoryTechnology,
    baseline_device,
    get_device,
)


def test_all_paper_devices_present():
    for name in ("K40m", "GTX1080Ti", "P100", "RTX2080Ti", "V100"):
        assert name in GPU_DEVICES


def test_onchip_storage_matches_fig6_caption():
    assert GPU_DEVICES["K40m"].onchip_storage_bytes == pytest.approx(1.73 * 1024 * 1024, rel=1e-6)
    assert GPU_DEVICES["P100"].onchip_storage_bytes == pytest.approx(5.31 * 1024 * 1024, rel=1e-6)
    assert GPU_DEVICES["RTX2080Ti"].onchip_storage_bytes == pytest.approx(9.75 * 1024 * 1024, rel=1e-6)
    assert GPU_DEVICES["V100"].onchip_storage_bytes == pytest.approx(16 * 1024 * 1024, rel=1e-6)


def test_bandwidths_match_fig7_caption():
    assert GPU_DEVICES["K40m"].memory_bandwidth_gbs == 288.0
    assert GPU_DEVICES["GTX1080Ti"].memory_bandwidth_gbs == 484.0
    assert GPU_DEVICES["RTX2080Ti"].memory_bandwidth_gbs == 616.0
    assert GPU_DEVICES["V100"].memory_bandwidth_gbs == 897.0


def test_baseline_is_p100_with_table4_parameters():
    device = baseline_device()
    assert device.name == "P100"
    assert device.shading_units == 3584
    assert device.core_clock_mhz == 1190.0
    assert device.memory_bandwidth_gbs == 320.0
    assert device.memory_technology is MemoryTechnology.HBM


def test_peak_flops_formula():
    device = baseline_device()
    assert device.peak_flops == pytest.approx(2 * 3584 * 1190e6)


def test_memory_bandwidth_bytes():
    assert baseline_device().memory_bandwidth_bytes == pytest.approx(320e9)


def test_with_memory_bandwidth_returns_modified_copy():
    device = baseline_device()
    modified = device.with_memory_bandwidth(500.0)
    assert modified.memory_bandwidth_gbs == 500.0
    assert device.memory_bandwidth_gbs == 320.0
    assert modified.shading_units == device.shading_units


def test_with_onchip_storage_returns_modified_copy():
    device = baseline_device()
    modified = device.with_onchip_storage(1024)
    assert modified.onchip_storage_bytes == 1024
    assert device.onchip_storage_bytes != 1024


def test_with_invalid_values_rejected():
    device = baseline_device()
    with pytest.raises(ValueError):
        device.with_memory_bandwidth(0)
    with pytest.raises(ValueError):
        device.with_onchip_storage(0)


def test_sweep_lists_are_ordered():
    storages = [GPU_DEVICES[d].onchip_storage_bytes for d in ONCHIP_STORAGE_SWEEP]
    assert storages == sorted(storages)
    bandwidths = [GPU_DEVICES[d].memory_bandwidth_gbs for d in BANDWIDTH_SWEEP]
    assert bandwidths == sorted(bandwidths)


def test_get_device_case_insensitive():
    assert get_device("v100").name == "V100"


def test_get_device_unknown_raises():
    with pytest.raises(KeyError):
        get_device("A100")
