"""Tests for the GPU inference simulator."""

import pytest

from repro.gpu.devices import baseline_device
from repro.gpu.kernels import StallClass
from repro.gpu.simulator import GPUSimulator
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.layers_model import CapsNetWorkload, LayerKind
from repro.workloads.rp_model import RoutingWorkload


@pytest.fixture
def simulator():
    return GPUSimulator()


@pytest.fixture
def mn1():
    return CapsNetWorkload(BENCHMARKS["Caps-MN1"])


def test_dense_layer_timing_positive(simulator, mn1):
    timing = simulator.simulate_dense_layer(mn1.conv_layer())
    assert timing.total > 0
    assert timing.compute > 0


def test_dense_layer_is_mostly_compute_bound(simulator, mn1):
    timing = simulator.simulate_dense_layer(mn1.conv_layer())
    assert timing.compute > timing.bandwidth


def test_routing_profile_total_positive(simulator, mn1):
    profile = simulator.simulate_routing(mn1.routing)
    assert profile.total_time > 0
    assert profile.offchip_traffic_bytes > 0


def test_routing_memory_dominates_compute(simulator, mn1):
    profile = simulator.simulate_routing(mn1.routing)
    assert profile.timing.memory > profile.timing.compute


def test_routing_stall_mix_matches_paper_shape(simulator, mn1):
    profile = simulator.simulate_routing(mn1.routing)
    memory = profile.stalls.fraction(StallClass.MEMORY_ACCESS)
    sync = profile.stalls.fraction(StallClass.SYNCHRONIZATION)
    # Paper: memory ~44.6%, synchronization ~34.5%.
    assert 0.35 <= memory <= 0.60
    assert 0.25 <= sync <= 0.45
    assert memory > sync


def test_routing_ldst_utilization_exceeds_alu(simulator, mn1):
    profile = simulator.simulate_routing(mn1.routing)
    assert profile.ldst_utilization > profile.alu_utilization
    assert profile.alu_utilization < 0.5


def test_routing_resident_bytes_bounded_by_onchip(simulator, mn1):
    profile = simulator.simulate_routing(mn1.routing)
    assert profile.resident_bytes <= baseline_device().onchip_storage_bytes


def test_simulate_full_network_has_all_stages(simulator, mn1):
    timing = simulator.simulate(mn1)
    kinds = {layer.kind for layer in timing.layers}
    assert kinds == set(LayerKind)


def test_routing_dominates_inference_time(simulator, mn1):
    # The paper's headline characterization: ~74.6% of the inference time.
    timing = simulator.simulate(mn1)
    assert 0.6 <= timing.routing_fraction <= 0.9


def test_fraction_by_kind_sums_to_one(simulator, mn1):
    fractions = simulator.simulate(mn1).fraction_by_kind()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_host_time_plus_routing_time_equals_total(simulator, mn1):
    timing = simulator.simulate(mn1)
    assert timing.host_time + timing.routing_time == pytest.approx(timing.total_time)


def test_batching_does_not_reduce_routing_share():
    # Observation 1 of the paper: larger batches do not help the RP.
    sim = GPUSimulator()
    mn1 = sim.simulate(CapsNetWorkload(BENCHMARKS["Caps-MN1"]))
    mn3 = sim.simulate(CapsNetWorkload(BENCHMARKS["Caps-MN3"]))
    assert mn3.total_time > mn1.total_time
    assert mn3.routing_fraction > 0.6


def test_routing_time_scales_with_network_size():
    # Observation 2: the RP time grows with the network scale.
    sim = GPUSimulator()
    cf1 = sim.routing_time(CapsNetWorkload(BENCHMARKS["Caps-CF1"]))
    cf3 = sim.routing_time(CapsNetWorkload(BENCHMARKS["Caps-CF3"]))
    assert cf3 > cf1


def test_higher_bandwidth_helps_only_modestly():
    # Fig. 7: 288 -> 897 GB/s gives only ~1.26x.
    routing = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    slow = GPUSimulator(baseline_device().with_memory_bandwidth(288.0)).simulate_routing(routing)
    fast = GPUSimulator(baseline_device().with_memory_bandwidth(897.0)).simulate_routing(routing)
    improvement = slow.total_time / fast.total_time
    assert 1.05 < improvement < 1.6


def test_larger_onchip_storage_helps_only_modestly():
    # Fig. 6(b): 1.73 MB -> 16 MB gives at most ~1.14x.
    routing = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    small = GPUSimulator(baseline_device().with_onchip_storage(int(1.73 * 2**20))).simulate_routing(routing)
    large = GPUSimulator(baseline_device().with_onchip_storage(16 * 2**20)).simulate_routing(routing)
    improvement = small.total_time / large.total_time
    assert 1.0 <= improvement < 1.3


def test_ideal_cache_barely_helps():
    # Fig. 15: GPU-ICP only improves the RP by ~1%.
    routing = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    baseline = GPUSimulator().simulate_routing(routing)
    icp = GPUSimulator(ideal_cache=True).simulate_routing(routing)
    assert icp.total_time <= baseline.total_time
    assert baseline.total_time / icp.total_time < 1.1


def test_benchmark_and_device_recorded(simulator, mn1):
    timing = simulator.simulate(mn1)
    assert timing.benchmark == "Caps-MN1"
    assert timing.device == "P100"
