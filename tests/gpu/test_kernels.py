"""Tests for the GPU kernel cost model and stall attribution."""

import pytest

from repro.gpu.kernels import GPUCostParameters, KernelTiming, StallBreakdown, StallClass


def test_default_parameters_valid():
    params = GPUCostParameters()
    assert 0 < params.routing_alu_efficiency <= 1
    assert params.barrier_cost_seconds > 0


def test_invalid_efficiency_rejected():
    with pytest.raises(ValueError):
        GPUCostParameters(dense_compute_efficiency=0.0)
    with pytest.raises(ValueError):
        GPUCostParameters(routing_bandwidth_utilization=1.5)


def test_negative_costs_rejected():
    with pytest.raises(ValueError):
        GPUCostParameters(barrier_cost_seconds=-1.0)


def test_kernel_timing_total_is_sum_of_components():
    timing = KernelTiming(name="k", compute=1.0, bandwidth=2.0, latency=0.5, sync=0.25, overhead=0.25)
    assert timing.total == pytest.approx(4.0)
    assert timing.memory == pytest.approx(2.5)


def test_kernel_timing_scaled():
    timing = KernelTiming(name="k", compute=1.0, bandwidth=2.0, latency=1.0, sync=1.0, overhead=1.0)
    scaled = timing.scaled(2.0)
    assert scaled.total == pytest.approx(2 * timing.total)
    assert scaled.name == "k"


def test_kernel_timing_merged():
    a = KernelTiming(name="a", compute=1.0, sync=1.0)
    b = KernelTiming(name="b", bandwidth=2.0, overhead=0.5)
    merged = a.merged_with(b, name="ab")
    assert merged.name == "ab"
    assert merged.total == pytest.approx(4.5)


def test_stall_breakdown_fractions_sum_to_one():
    params = GPUCostParameters()
    timing = KernelTiming(name="rp", compute=0.1, bandwidth=3.0, latency=1.0, sync=2.0, overhead=1.0)
    breakdown = StallBreakdown.from_timing(timing, params)
    assert sum(breakdown.fractions.values()) == pytest.approx(1.0)


def test_stall_breakdown_memory_dominates_when_memory_dominates():
    params = GPUCostParameters()
    timing = KernelTiming(name="rp", compute=0.0, bandwidth=5.0, latency=2.0, sync=1.0, overhead=0.5)
    breakdown = StallBreakdown.from_timing(timing, params)
    assert breakdown.fraction(StallClass.MEMORY_ACCESS) > breakdown.fraction(StallClass.SYNCHRONIZATION)


def test_stall_breakdown_overhead_split_follows_parameters():
    params = GPUCostParameters(
        resource_stall_fraction=0.2, fetch_stall_fraction=0.1, other_stall_fraction=0.1
    )
    timing = KernelTiming(name="rp", overhead=4.0)
    breakdown = StallBreakdown.from_timing(timing, params)
    assert breakdown.fraction(StallClass.LACK_OF_RESOURCE) == pytest.approx(0.5)
    assert breakdown.fraction(StallClass.INSTRUCTION_FETCH) == pytest.approx(0.25)


def test_stall_breakdown_zero_timing_gives_zero_fractions():
    breakdown = StallBreakdown.from_timing(KernelTiming(name="empty"), GPUCostParameters())
    assert all(value == 0.0 for value in breakdown.fractions.values())


def test_stall_breakdown_as_dict_keys():
    breakdown = StallBreakdown.from_timing(
        KernelTiming(name="rp", bandwidth=1.0), GPUCostParameters()
    )
    assert set(breakdown.as_dict()) == {cls.value for cls in StallClass}
