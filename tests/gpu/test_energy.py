"""Tests for the GPU energy model."""

import pytest

from repro.gpu.devices import GPU_DEVICES, baseline_device
from repro.gpu.energy import EnergyBreakdown, GPUEnergyModel


def test_default_model_uses_baseline_device():
    model = GPUEnergyModel()
    assert model.device.name == "P100"


def test_phase_energy_components_positive():
    model = GPUEnergyModel()
    energy = model.phase_energy(duration_s=0.01, flops=1e9, dram_bytes=1e8)
    assert energy.static > 0
    assert energy.compute > 0
    assert energy.dram > 0
    assert energy.total == pytest.approx(energy.static + energy.compute + energy.dram)


def test_phase_energy_scales_linearly_with_duration():
    model = GPUEnergyModel()
    short = model.phase_energy(0.01, 0, 0)
    long = model.phase_energy(0.02, 0, 0)
    assert long.static == pytest.approx(2 * short.static)


def test_phase_energy_scales_with_flops_and_bytes():
    model = GPUEnergyModel()
    a = model.phase_energy(0.0, 1e9, 1e9)
    b = model.phase_energy(0.0, 2e9, 3e9)
    assert b.compute == pytest.approx(2 * a.compute)
    assert b.dram == pytest.approx(3 * a.dram)


def test_phase_energy_rejects_negative_inputs():
    model = GPUEnergyModel()
    with pytest.raises(ValueError):
        model.phase_energy(-1.0, 0, 0)
    with pytest.raises(ValueError):
        model.phase_energy(0.0, -1, 0)


def test_idle_energy_uses_idle_power():
    model = GPUEnergyModel()
    energy = model.idle_energy(1.0)
    assert energy.total == pytest.approx(model.device.idle_watts)


def test_idle_cheaper_than_busy():
    model = GPUEnergyModel()
    busy = model.phase_energy(1.0, 0, 0)
    idle = model.idle_energy(1.0)
    assert idle.total < busy.total


def test_invalid_coefficients_rejected():
    with pytest.raises(ValueError):
        GPUEnergyModel(energy_per_flop=-1.0)
    with pytest.raises(ValueError):
        GPUEnergyModel(busy_power_fraction=1.5)


def test_breakdown_merge():
    a = EnergyBreakdown(static=1.0, compute=2.0, dram=3.0)
    b = EnergyBreakdown(static=0.5, compute=0.5, dram=0.5)
    merged = a.merged_with(b)
    assert merged.total == pytest.approx(7.5)
    assert merged.as_dict() == {"static": 1.5, "compute": 2.5, "dram": 3.5}


def test_bigger_gpu_draws_more_background_power():
    small = GPUEnergyModel(device=GPU_DEVICES["K40m"])
    big = GPUEnergyModel(device=GPU_DEVICES["V100"])
    assert big.phase_energy(1.0, 0, 0).static > small.phase_energy(1.0, 0, 0).static


def test_explicit_device_respected():
    model = GPUEnergyModel(device=baseline_device().with_memory_bandwidth(500))
    assert model.device.memory_bandwidth_gbs == 500
