"""Fault injection against the sharded sweep queue.

Covers the queue's degradation story: claim/heartbeat faults never hang a
worker, cross-host lease reclamation is driven by heartbeat TTLs (live
leases are never stolen), poison shards retire into an explicit
partial-results report, and torn done-files are detected and re-executed.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.faults import FaultPlan, FaultRule, injected
from repro.sweep import SweepRunner, SweepSpec, run_queued_sweep, run_worker
from repro.sweep.queue import (
    _ShardQueue,
    _atomic_write_json,
    _build_manifest,
    load_manifest,
)


@pytest.fixture
def spec():
    return SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [156.25, 312.5, 625.0, 1250.0]},
        benchmarks=("Caps-MN1",),
    )


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


def _make_workdir(tmp_path, spec, shard_size=1, heartbeat_ttl=60.0):
    runner = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "cache")
    manifest = _build_manifest(
        runner.spec,
        runner.base,
        runner.benchmarks,
        shard_size=shard_size,
        cache_dir=runner.cache_dir,
        use_cache=True,
        cache_version=runner.cache_version,
        heartbeat_ttl=heartbeat_ttl,
    )
    workdir = tmp_path / "wd"
    _atomic_write_json(workdir / "manifest.json", manifest)
    return workdir


def _queue(workdir, worker_id="tester"):
    return _ShardQueue(workdir, load_manifest(workdir), worker_id)


def _write_lease(queue, shard, *, worker, pid, host):
    queue.lease_path(shard).write_text(
        json.dumps({"worker": worker, "pid": pid, "host": host}), encoding="utf-8"
    )


# --------------------------------------------------------------- claim faults


def test_claim_fault_skips_the_shard_without_hanging(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec)
    queue = _queue(workdir)
    rule = FaultRule(point="queue.lease.claim", error="EACCES", times=None)
    with injected(_plan(rule)):
        assert not queue.try_claim(0)
        report = run_worker(workdir, "blocked")
    # Unable to claim anything, the worker returns instead of spinning.
    assert report["shards_executed"] == 0
    # With the fault cleared, the same shard claims normally.
    assert queue.try_claim(0)


def test_heartbeat_fault_is_best_effort(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec)
    queue = _queue(workdir, "mute")
    rule = FaultRule(point="queue.heartbeat.write", error="EIO", times=None)
    with injected(_plan(rule)):
        queue.beat()  # must not raise
        assert not queue.heartbeat_path("mute").exists()
        # A worker that cannot heartbeat still drains the queue.
        report = run_worker(workdir, "mute")
    assert report["shards_executed"] == 4
    assert report["shard_failures"] == 0


# ------------------------------------------------- heartbeat-TTL reclamation


def test_remote_lease_without_heartbeat_is_honored(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, heartbeat_ttl=0.5)
    queue = _queue(workdir)
    _write_lease(queue, 0, worker="ghost", pid=12345, host="elsewhere")
    assert not queue.try_claim(0)  # conservative: no proof the holder died


def test_remote_lease_with_fresh_heartbeat_is_honored(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, heartbeat_ttl=60.0)
    queue = _queue(workdir)
    _write_lease(queue, 0, worker="remote-1", pid=12345, host="elsewhere")
    _atomic_write_json(
        queue.heartbeat_path("remote-1"),
        {"worker": "remote-1", "pid": 12345, "host": "elsewhere"},
    )
    assert not queue.try_claim(0)  # live by heartbeat: never stolen


def test_remote_lease_with_expired_heartbeat_is_reclaimed(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, heartbeat_ttl=0.5)
    queue = _queue(workdir)
    _write_lease(queue, 0, worker="remote-1", pid=12345, host="elsewhere")
    heartbeat = queue.heartbeat_path("remote-1")
    _atomic_write_json(
        heartbeat, {"worker": "remote-1", "pid": 12345, "host": "elsewhere"}
    )
    stale = time.time() - 10.0
    os.utime(heartbeat, (stale, stale))
    assert queue.try_claim(0)  # provably dead by TTL: reclaimed
    lease = json.loads(queue.lease_path(0).read_text(encoding="utf-8"))
    assert lease["worker"] == "tester"


def test_local_live_pid_is_never_stolen(tmp_path, spec):
    import socket

    workdir = _make_workdir(tmp_path, spec, heartbeat_ttl=0.5)
    queue = _queue(workdir)
    # pid 1 exists on any POSIX host; the holder is alive, TTL is irrelevant.
    _write_lease(queue, 0, worker="other", pid=1, host=socket.gethostname())
    assert not queue.try_claim(0)


def test_local_dead_pid_is_reclaimed(tmp_path, spec):
    import socket

    workdir = _make_workdir(tmp_path, spec)
    queue = _queue(workdir)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    _write_lease(queue, 0, worker="dead", pid=proc.pid, host=socket.gethostname())
    assert queue.try_claim(0)


# ------------------------------------------------------------- poison shards


def test_poison_shard_yields_partial_results_then_resume_completes(
    tmp_path, spec
):
    rule = FaultRule(point="queue.shard.execute", error="EIO", times=1)
    with injected(_plan(rule)):
        partial = run_queued_sweep(
            spec,
            workers=1,
            shard_size=1,
            cache_dir=tmp_path / "cache",
            workdir=tmp_path / "wd",
            max_attempts=1,
        )
    assert len(partial.failed_shards) == 1
    assert partial.failed_shards[0]["shard"] == 0
    assert partial.failed_shards[0]["attempts"] == 1
    assert "injected at queue.shard.execute" in partial.failed_shards[0]["error"]
    assert len(partial.points) == 3  # the failed slice is absent, not faked
    report = partial.format_report()
    assert "PARTIAL RESULTS: 1 shard(s) failed permanently" in report
    assert "--resume" in report
    assert "failed_shards" in partial.to_dict()
    assert partial.describe_stats().endswith("1 failed shard(s)")

    # Fault cleared: --resume gives the shard a fresh budget and completes.
    resumed = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path / "cache",
        workdir=tmp_path / "wd",
        resume=True,
    )
    assert resumed.failed_shards == []
    assert len(resumed.points) == 4
    reference = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "ref").run()
    assert resumed.format_report() == reference.format_report()
    assert "failed_shards" not in resumed.to_dict()
    assert resumed.to_dict() == reference.to_dict()


def test_transient_shard_failure_retries_within_the_budget(tmp_path, spec):
    rule = FaultRule(point="queue.shard.execute", error="EIO", times=1)
    with injected(_plan(rule)):
        result = run_queued_sweep(
            spec,
            workers=1,
            shard_size=1,
            cache_dir=tmp_path / "cache",
            workdir=tmp_path / "wd",
            max_attempts=3,
        )
    # One execution failed, but the retry pass completed the sweep fully.
    assert result.failed_shards == []
    assert len(result.points) == 4
    reference = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "ref").run()
    assert result.format_report() == reference.format_report()


# ------------------------------------------------------------ torn done-files


def test_torn_done_file_is_detected_and_re_executed(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec)
    rule = FaultRule(
        point="queue.done.publish", action="truncate", keep_bytes=25
    )
    with injected(_plan(rule)):
        report = run_worker(workdir, "torn")
    # The worker noticed the torn publish on its completeness pass and
    # re-executed that shard; every published done-file parses.
    assert report["shards_executed"] == 5  # 4 shards + 1 redo
    queue = _queue(workdir)
    assert all(queue.settled(shard) for shard in range(4))

    merged = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path / "cache",
        workdir=workdir,
        resume=True,
    )
    reference = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "ref").run()
    assert merged.format_report() == reference.format_report()
