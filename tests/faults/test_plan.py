"""Tests for :mod:`repro.faults.plan`: rule validation and JSON round-trips."""

import pytest

from repro.faults import ACTIONS, FAULT_POINTS, FaultPlan, FaultRule


# ------------------------------------------------------------------ validation


def test_every_registered_point_builds_a_rule():
    for name in FAULT_POINTS:
        assert FaultRule(point=name).matches(name)


def test_unregistered_point_is_rejected():
    with pytest.raises(ValueError, match="matches no registered point"):
        FaultRule(point="diskcache.bogus")


def test_pattern_must_match_at_least_one_point():
    rule = FaultRule(point="diskcache.*")
    assert rule.matches("diskcache.shard.read")
    assert rule.matches("diskcache.flush.replace")
    assert not rule.matches("modelcache.read")
    with pytest.raises(ValueError, match="matches no registered point"):
        FaultRule(point="nosuch.*")


def test_unknown_action_is_rejected():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultRule(point="modelcache.read", action="explode")
    assert "error" in ACTIONS and "crash" in ACTIONS


def test_unknown_errno_symbol_is_rejected():
    with pytest.raises(ValueError, match="unknown errno symbol"):
        FaultRule(point="modelcache.read", error="ENOSUCHERR")


def test_window_fields_are_validated():
    with pytest.raises(ValueError, match="after must be >= 0"):
        FaultRule(point="modelcache.read", after=-1)
    with pytest.raises(ValueError, match="times must be >= 1"):
        FaultRule(point="modelcache.read", times=0)
    with pytest.raises(ValueError, match="seconds must be >= 0"):
        FaultRule(point="modelcache.read", action="sleep", seconds=-0.5)


def test_trigger_window_semantics():
    rule = FaultRule(point="modelcache.read", after=2, times=2)
    assert [rule.triggers(seen) for seen in range(6)] == [
        False, False, True, True, False, False,
    ]
    forever = FaultRule(point="modelcache.read", after=1, times=None)
    assert not forever.triggers(0)
    assert all(forever.triggers(seen) for seen in range(1, 10))


# ----------------------------------------------------------------- round-trips


def test_plan_round_trips_through_json():
    plan = FaultPlan(
        rules=(
            FaultRule(point="diskcache.flush.replace", error="ENOSPC"),
            FaultRule(point="queue.*", action="crash", after=3),
            FaultRule(
                point="modelcache.write", action="truncate", keep_bytes=16
            ),
            FaultRule(point="serve.handler.execute", action="sleep", seconds=0.25),
        )
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_rule_from_dict_rejects_unknown_keys_and_missing_point():
    with pytest.raises(ValueError, match="unknown fault rule key"):
        FaultRule.from_dict({"point": "modelcache.read", "bogus": 1})
    with pytest.raises(ValueError, match="missing the required 'point'"):
        FaultRule.from_dict({"action": "error"})


def test_plan_rejects_wrong_schema_and_shapes():
    with pytest.raises(ValueError, match="unsupported fault plan schema"):
        FaultPlan.from_dict({"schema": 99, "rules": []})
    with pytest.raises(ValueError, match="'rules' must be a list"):
        FaultPlan.from_dict({"rules": {}})
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.from_json("{nope")


def test_load_accepts_inline_json_and_files(tmp_path):
    inline = '{"rules": [{"point": "queue.done.publish", "action": "crash"}]}'
    plan = FaultPlan.load(inline)
    assert plan.rules[0].action == "crash"

    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    assert FaultPlan.load(str(path)) == plan

    with pytest.raises(ValueError, match="neither inline JSON nor a readable"):
        FaultPlan.load(str(tmp_path / "missing.json"))
