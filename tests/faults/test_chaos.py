"""Chaos tests: SIGKILL the sweep at every fault point, then ``--resume``.

Each case runs the real CLI in a subprocess with a ``REPRO_FAULTS`` crash
rule armed at one fault point, verifies the process dies by SIGKILL
mid-sweep, and then resumes without faults.  The resumed run must exit
cleanly with a report byte-identical to an undisturbed reference run, and
a further resume must re-execute zero simulations.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

#: Every fault point a single-worker queued scalar sweep passes through.
CRASH_POINTS = (
    "sweep.point.execute",
    "queue.shard.execute",
    "queue.done.publish",
    "diskcache.flush.replace",
)


def _sweep_cmd(workdir, cache_dir):
    return [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "--axis",
        "hmc.pe_frequency_mhz=312.5,625",
        "--benchmarks",
        "Caps-MN1",
        "--workers",
        "1",
        "--shard-size",
        "1",
        "--backend",
        "scalar",
        "--workdir",
        str(workdir),
        "--cache-dir",
        str(cache_dir),
    ]


def _run(cmd, *, faults=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    return subprocess.run(
        cmd, env=env, capture_output=True, text=True, timeout=120
    )


@pytest.fixture(scope="module")
def reference_stdout(tmp_path_factory):
    """Stdout of one undisturbed run; the yardstick for byte-identity."""
    root = tmp_path_factory.mktemp("chaos-reference")
    done = _run(_sweep_cmd(root / "wd", root / "cache"))
    assert done.returncode == 0, done.stderr
    return done.stdout


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_kill9_at_fault_point_then_resume_is_byte_identical(
    tmp_path, crash_point, reference_stdout
):
    workdir = tmp_path / "wd"
    cache_dir = tmp_path / "cache"
    plan = {"rules": [{"point": crash_point, "action": "crash"}]}

    killed = _run(_sweep_cmd(workdir, cache_dir), faults=plan)
    assert killed.returncode == -signal.SIGKILL

    # Resume with no faults armed: the sweep completes and the report is
    # byte-identical to a run that was never interrupted.
    resumed = _run(_sweep_cmd(workdir, cache_dir) + ["--resume"])
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference_stdout
    assert "failed" not in resumed.stderr

    # A further resume finds every shard settled: nothing re-executes.
    settled = _run(_sweep_cmd(workdir, cache_dir) + ["--resume"])
    assert settled.returncode == 0, settled.stderr
    assert settled.stdout == reference_stdout
    assert "0 simulations executed" in settled.stderr
