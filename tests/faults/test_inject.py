"""Tests for :mod:`repro.faults.inject`: arming, counting, firing."""

import errno
import json
import os

import pytest

from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    fired_counts,
    injected,
    point,
)
from repro.faults.inject import set_sleep


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


def test_disarmed_point_is_a_no_op():
    point("diskcache.shard.read")
    assert fired_counts() == {}


def test_unregistered_point_name_raises_even_disarmed():
    with pytest.raises(ValueError, match="unregistered fault point"):
        point("diskcache.typo")


def test_error_action_raises_the_real_oserror_subclass():
    with injected(_plan(FaultRule(point="modelcache.write", error="EACCES"))):
        with pytest.raises(PermissionError) as caught:
            point("modelcache.write")
    assert caught.value.errno == errno.EACCES
    assert "injected at modelcache.write" in str(caught.value)


def test_counter_window_fires_exactly_the_configured_calls():
    rule = FaultRule(point="queue.shard.execute", after=1, times=2)
    with injected(_plan(rule)):
        point("queue.shard.execute")  # call 0: before the window
        with pytest.raises(OSError):
            point("queue.shard.execute")  # call 1
        with pytest.raises(OSError):
            point("queue.shard.execute")  # call 2
        point("queue.shard.execute")  # call 3: window exhausted
        assert fired_counts() == {"queue.shard.execute": 2}


def test_first_matching_rule_owns_the_point():
    plan = _plan(
        FaultRule(point="diskcache.*", after=5),  # never reaches call 5
        FaultRule(point="diskcache.shard.read", after=0),  # shadowed
    )
    with injected(plan):
        for _ in range(3):
            point("diskcache.shard.read")
        assert fired_counts() == {}


def test_activation_resets_counters():
    rule = FaultRule(point="modelcache.read", after=0, times=1)
    with injected(_plan(rule)):
        with pytest.raises(OSError):
            point("modelcache.read")
        point("modelcache.read")  # window spent
    with injected(_plan(rule)):  # re-armed: counters start over
        with pytest.raises(OSError):
            point("modelcache.read")


def test_sleep_action_uses_the_injectable_hook():
    recorded = []
    set_sleep(recorded.append)
    rule = FaultRule(point="serve.handler.execute", action="sleep", seconds=2.5)
    with injected(_plan(rule)):
        point("serve.handler.execute")
    assert recorded == [2.5]


def test_truncate_action_tears_the_sites_file(tmp_path):
    path = tmp_path / "artifact.json"
    path.write_bytes(b"x" * 100)
    rule = FaultRule(point="queue.done.publish", action="truncate", keep_bytes=7)
    with injected(_plan(rule)):
        point("queue.done.publish", path=path)
    assert path.read_bytes() == b"x" * 7

    # Default tears to half; a missing file is silently ignored.
    path.write_bytes(b"y" * 10)
    with injected(_plan(FaultRule(point="queue.done.publish", action="truncate"))):
        point("queue.done.publish", path=path)
        point("queue.done.publish", path=tmp_path / "missing.bin")
    assert path.read_bytes() == b"y" * 5


def test_env_arming_and_re_arming(monkeypatch):
    plan = _plan(FaultRule(point="modelcache.read"))
    monkeypatch.setenv(FAULTS_ENV, plan.to_json())
    assert active_plan() == plan
    with pytest.raises(OSError):
        point("modelcache.read")

    # Changing the env text re-arms (fresh counters, new rules).
    other = _plan(FaultRule(point="modelcache.write"))
    monkeypatch.setenv(FAULTS_ENV, other.to_json())
    point("modelcache.read")  # no longer covered
    with pytest.raises(OSError):
        point("modelcache.write")

    monkeypatch.delenv(FAULTS_ENV)
    point("modelcache.write")
    assert active_plan() is None


def test_env_accepts_a_plan_file(monkeypatch, tmp_path):
    plan = _plan(FaultRule(point="diskcache.flush.write"))
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    monkeypatch.setenv(FAULTS_ENV, str(path))
    assert active_plan() == plan


def test_explicit_activation_wins_over_env(monkeypatch):
    env_plan = _plan(FaultRule(point="modelcache.read"))
    monkeypatch.setenv(FAULTS_ENV, env_plan.to_json())
    explicit = _plan(FaultRule(point="modelcache.write"))
    activate(explicit)
    assert active_plan() == explicit
    point("modelcache.read")  # env rule is not consulted
    deactivate()
    assert active_plan() == env_plan  # env plan resurfaces


def test_activate_export_publishes_to_the_environment(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    plan = _plan(FaultRule(point="queue.lease.claim"))
    activate(plan, export=True)
    assert json.loads(os.environ[FAULTS_ENV]) == plan.to_dict()
    # activate() set the variable directly, so remove it directly --
    # monkeypatch.delenv would record the exported JSON and restore it on
    # teardown, re-arming the plan for whatever test runs next.
    del os.environ[FAULTS_ENV]
