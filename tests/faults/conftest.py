"""Shared isolation for the fault-injection suite.

Every test runs with a clean slate: no armed plan (explicit or from
``REPRO_FAULTS``), the default sleep hook, and forgotten one-shot cache
warnings -- so the order tests run in can never leak a fault into a
neighbor.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine.diskcache import _reset_warnings
from repro.faults import FAULTS_ENV, deactivate
from repro.faults.inject import set_sleep


@pytest.fixture(autouse=True)
def fault_isolation(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    deactivate()
    _reset_warnings()
    yield
    # Direct removal, not monkeypatch: tests exporting a plan set the
    # variable outside monkeypatch's bookkeeping.
    os.environ.pop(FAULTS_ENV, None)
    deactivate()
    set_sleep(time.sleep)
    _reset_warnings()
