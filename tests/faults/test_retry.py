"""Tests for :mod:`repro.faults.retry`: deterministic backoff and fatal errnos."""

import errno

import pytest

from repro.faults import FATAL_ERRNOS, is_fatal_io, with_retries


class _Flaky:
    """Raises the scripted errors, then returns its payload."""

    def __init__(self, errors, payload="ok"):
        self.errors = list(errors)
        self.payload = payload
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.payload


def test_transient_errors_retry_with_deterministic_backoff():
    delays = []
    flaky = _Flaky([OSError(errno.EIO, "io"), OSError(errno.EIO, "io")])
    assert with_retries(flaky, sleep=delays.append) == "ok"
    assert flaky.calls == 3
    assert delays == [0.01, 0.02]


def test_attempt_budget_exhaustion_raises_the_last_error():
    delays = []
    flaky = _Flaky([OSError(errno.EIO, str(n)) for n in range(5)])
    with pytest.raises(OSError, match="2"):
        with_retries(flaky, attempts=3, sleep=delays.append)
    assert flaky.calls == 3
    assert delays == [0.01, 0.02]


@pytest.mark.parametrize("code", sorted(FATAL_ERRNOS))
def test_fatal_errnos_fail_fast(code):
    delays = []
    flaky = _Flaky([OSError(code, "fatal")])
    with pytest.raises(OSError) as caught:
        with_retries(flaky, sleep=delays.append)
    assert caught.value.errno == code
    assert flaky.calls == 1
    assert delays == []


def test_non_oserror_exceptions_are_never_retried():
    flaky = _Flaky([ValueError("logic bug")])
    with pytest.raises(ValueError):
        with_retries(flaky, sleep=lambda _: None)
    assert flaky.calls == 1


def test_attempts_must_be_positive():
    with pytest.raises(ValueError, match="attempts must be >= 1"):
        with_retries(lambda: None, attempts=0)


def test_is_fatal_io_classification():
    assert is_fatal_io(OSError(errno.ENOSPC, "full"))
    assert is_fatal_io(PermissionError(errno.EACCES, "denied"))
    assert not is_fatal_io(OSError(errno.EIO, "transient"))
    assert not is_fatal_io(ValueError("not I/O at all"))
