"""Fault injection against the persistent caches: degrade, never corrupt.

Arms every ``diskcache.*`` and ``modelcache.*`` fault point and asserts the
documented degradation story: transient errors are retried away, fatal disk
errors flip the cache to read-only with one warning and a counter, and torn
artifacts are quarantined and recomputed -- never re-read, never raised.
"""

import numpy as np
import pytest

from repro.api.scenario import Scenario
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.diskcache import SimulationCache, TrainedModelCache
from repro.faults import FaultPlan, FaultRule, fired_counts, injected
from repro.workloads.benchmarks import get_benchmark


@pytest.fixture
def scenario():
    return Scenario.default()


@pytest.fixture
def workload():
    return get_benchmark("Caps-MN1")


@pytest.fixture
def result(scenario, workload):
    context = SimulationContext(max_workers=1, scenario=scenario)
    return context.routing(workload.name, DesignPoint.PIM_CAPSNET)


def _plan(*rules):
    return FaultPlan(rules=tuple(rules))


def _filled_cache(tmp_path, scenario, workload, result):
    cache = SimulationCache(tmp_path / "cache")
    assert cache.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    return cache


# -------------------------------------------------------- simulation cache


def test_shard_read_error_is_a_plain_miss(tmp_path, scenario, workload, result):
    cache = _filled_cache(tmp_path, scenario, workload, result)
    assert cache.flush() == 1

    rule = FaultRule(point="diskcache.shard.read", error="EIO", times=None)
    with injected(_plan(rule)):
        cold = SimulationCache(tmp_path / "cache")
        assert (
            cold.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) is None
        )
    assert cold.stats.misses == 1
    assert cold.stats.corrupt_artifacts == 0  # unreadable != corrupt


def test_transient_flush_error_is_retried_away(tmp_path, scenario, workload, result):
    cache = _filled_cache(tmp_path, scenario, workload, result)
    rule = FaultRule(point="diskcache.flush.replace", error="EIO", times=2)
    with injected(_plan(rule)):
        assert cache.flush() == 1
        assert fired_counts() == {"diskcache.flush.replace": 2}
    assert cache.stats.write_errors == 0
    assert not cache.read_only
    warm = SimulationCache(tmp_path / "cache")
    assert warm.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) == result


def test_fatal_flush_error_degrades_to_read_only(
    tmp_path, scenario, workload, result, capsys
):
    cache = _filled_cache(tmp_path, scenario, workload, result)
    rule = FaultRule(point="diskcache.flush.write", error="ENOSPC", times=None)
    with injected(_plan(rule)):
        assert cache.flush() == 0
        assert cache.flush() == 0  # read-only now: flushes are no-ops
    assert cache.read_only
    assert cache.stats.write_errors == 1
    # Buffered entries still serve in-process gets.
    assert cache.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) == result
    warnings = [
        line
        for line in capsys.readouterr().err.splitlines()
        if "degraded to read-only" in line
    ]
    assert len(warnings) == 1  # one-shot, not one line per shard/flush


def test_torn_shard_is_quarantined_and_recomputed(
    tmp_path, scenario, workload, result, capsys
):
    cache = _filled_cache(tmp_path, scenario, workload, result)
    # Tear the temp file right before the atomic publish: the shard that
    # lands on disk is truncated JSON.
    rule = FaultRule(
        point="diskcache.flush.write", action="truncate", keep_bytes=20
    )
    with injected(_plan(rule)):
        assert cache.flush() == 1

    cold = SimulationCache(tmp_path / "cache")
    assert cold.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) is None
    assert cold.stats.corrupt_artifacts == 1
    corrupt = list((tmp_path / "cache" / "corrupt").iterdir())
    assert len(corrupt) == 1
    assert "corrupt cache shard" in capsys.readouterr().err

    # Recovery: recompute, re-publish, read back cleanly.
    assert cold.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    assert cold.flush() == 1
    warm = SimulationCache(tmp_path / "cache")
    assert warm.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) == result
    assert warm.stats.corrupt_artifacts == 0


# ----------------------------------------------------------- model cache


def _model_parts():
    key = {"pipeline": "table5", "seed": 1234}
    state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
    accuracies = {"origin": 0.995, "approx": 0.991}
    return key, state, accuracies


def test_model_read_error_is_a_plain_miss(tmp_path):
    key, state, accuracies = _model_parts()
    cache = TrainedModelCache(tmp_path / "cache")
    assert cache.put(key, state, accuracies)
    rule = FaultRule(point="modelcache.read", error="EIO")
    with injected(_plan(rule)):
        assert cache.get(key) is None
    assert cache.stats.misses == 1
    assert cache.stats.corrupt_artifacts == 0
    artifact = cache.get(key)  # fault window spent: clean read works
    assert artifact is not None
    assert artifact.accuracies == accuracies


def test_torn_model_artifact_is_quarantined(tmp_path, capsys):
    key, state, accuracies = _model_parts()
    cache = TrainedModelCache(tmp_path / "cache")
    # Tear the temp file before the publish: a truncated .npz lands on disk.
    rule = FaultRule(point="modelcache.write", action="truncate", keep_bytes=64)
    with injected(_plan(rule)):
        assert cache.put(key, state, accuracies)

    cold = TrainedModelCache(tmp_path / "cache")
    assert cold.get(key) is None
    assert cold.stats.corrupt_artifacts == 1
    corrupt = list((tmp_path / "cache" / "corrupt").iterdir())
    assert len(corrupt) == 1
    assert "corrupt trained-model artifact" in capsys.readouterr().err

    # The retrain-and-rewrite path recovers.
    assert cold.put(key, state, accuracies)
    warm = TrainedModelCache(tmp_path / "cache")
    assert warm.get(key).accuracies == accuracies


def test_transient_model_publish_error_is_retried(tmp_path):
    key, state, accuracies = _model_parts()
    cache = TrainedModelCache(tmp_path / "cache")
    rule = FaultRule(point="modelcache.replace", error="EIO", times=1)
    with injected(_plan(rule)):
        assert cache.put(key, state, accuracies)
    assert cache.stats.write_errors == 0
    assert cache.get(key).accuracies == accuracies


def test_fatal_model_publish_error_degrades_to_read_only(tmp_path, capsys):
    key, state, accuracies = _model_parts()
    cache = TrainedModelCache(tmp_path / "cache")
    rule = FaultRule(point="modelcache.replace", error="EACCES", times=None)
    with injected(_plan(rule)):
        assert not cache.put(key, state, accuracies)
        assert not cache.put(key, state, accuracies)  # read-only no-op
    assert cache.read_only
    assert cache.stats.write_errors == 1  # the second put never hit the disk
    warnings = [
        line
        for line in capsys.readouterr().err.splitlines()
        if "degraded to read-only" in line
    ]
    assert len(warnings) == 1
