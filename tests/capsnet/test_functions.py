"""Tests for the elementary CapsNet functions."""

import numpy as np
import pytest

from repro.capsnet import functions as F


def test_squash_norm_bounded():
    vectors = np.random.default_rng(0).normal(size=(32, 8)).astype(np.float32) * 4
    norms = np.linalg.norm(F.squash(vectors), axis=-1)
    assert np.all(norms < 1.0 + 1e-5)


def test_squash_long_vector_approaches_unit_norm():
    vector = np.full((1, 8), 100.0, dtype=np.float32)
    assert np.linalg.norm(F.squash(vector)) == pytest.approx(1.0, abs=1e-3)


def test_squash_zero_vector_stays_zero():
    vector = np.zeros((1, 8), dtype=np.float32)
    np.testing.assert_allclose(F.squash(vector), 0.0, atol=1e-6)


def test_squash_direction_preserved():
    vector = np.array([[3.0, 4.0]], dtype=np.float32)
    squashed = F.squash(vector)
    np.testing.assert_allclose(squashed[0] / np.linalg.norm(squashed), [0.6, 0.8], rtol=1e-5)


def test_softmax_normalizes():
    logits = np.random.default_rng(1).normal(size=(4, 6)).astype(np.float32)
    np.testing.assert_allclose(np.sum(F.softmax(logits), axis=-1), 1.0, atol=1e-5)


def test_softmax_invariant_to_constant_shift():
    logits = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
    np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 10.0), atol=1e-6)


def test_relu_and_grad():
    x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
    np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 3.0])
    np.testing.assert_array_equal(F.relu_grad(x), [0.0, 0.0, 1.0])


def test_sigmoid_range_and_midpoint():
    x = np.array([-50.0, 0.0, 50.0], dtype=np.float32)
    y = F.sigmoid(x)
    assert np.all((y >= 0) & (y <= 1))
    assert float(y[1]) == pytest.approx(0.5)


def test_sigmoid_grad_matches_formula():
    y = np.array([0.25, 0.5, 0.9], dtype=np.float32)
    np.testing.assert_allclose(F.sigmoid_grad(y), y * (1 - y), rtol=1e-6)


def test_capsule_lengths():
    capsules = np.array([[[3.0, 4.0], [0.0, 0.0]]], dtype=np.float32)
    lengths = F.capsule_lengths(capsules)
    assert lengths.shape == (1, 2)
    assert float(lengths[0, 0]) == pytest.approx(5.0, rel=1e-5)


def test_margin_loss_zero_for_perfect_prediction():
    lengths = np.array([[0.95, 0.05, 0.05]], dtype=np.float32)
    labels = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
    assert F.margin_loss(lengths, labels) == pytest.approx(0.0, abs=1e-6)


def test_margin_loss_positive_for_wrong_prediction():
    lengths = np.array([[0.05, 0.95, 0.05]], dtype=np.float32)
    labels = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
    assert F.margin_loss(lengths, labels) > 0.5


def test_margin_loss_grad_matches_numerical_gradient():
    rng = np.random.default_rng(5)
    lengths = rng.uniform(0.0, 1.0, size=(3, 4)).astype(np.float32)
    labels = F.one_hot(np.array([0, 2, 1]), 4)
    grad = F.margin_loss_grad(lengths, labels)
    eps = 1e-3
    numerical = np.zeros_like(lengths)
    for i in range(lengths.shape[0]):
        for j in range(lengths.shape[1]):
            plus = lengths.copy()
            minus = lengths.copy()
            plus[i, j] += eps
            minus[i, j] -= eps
            numerical[i, j] = (F.margin_loss(plus, labels) - F.margin_loss(minus, labels)) / (2 * eps)
    np.testing.assert_allclose(grad, numerical, atol=2e-3)


def test_one_hot_shape_and_values():
    onehot = F.one_hot(np.array([0, 2]), 3)
    np.testing.assert_array_equal(onehot, [[1, 0, 0], [0, 0, 1]])


def test_one_hot_rejects_out_of_range_labels():
    with pytest.raises(ValueError):
        F.one_hot(np.array([3]), 3)


def test_one_hot_rejects_multidimensional_labels():
    with pytest.raises(ValueError):
        F.one_hot(np.zeros((2, 2), dtype=np.int64), 3)


def test_reconstruction_loss_zero_for_identical():
    x = np.random.default_rng(0).random((4, 10)).astype(np.float32)
    assert F.reconstruction_loss(x, x) == pytest.approx(0.0, abs=1e-7)


def test_reconstruction_loss_shape_mismatch():
    with pytest.raises(ValueError):
        F.reconstruction_loss(np.zeros((2, 3)), np.zeros((2, 4)))
