"""Tests for the dynamic and EM routing procedures."""

import numpy as np
import pytest

from repro.arithmetic.context import MathContext
from repro.capsnet.routing import DynamicRouting, EMRouting


def make_u_hat(batch=2, num_low=12, num_high=4, high_dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(scale=0.5, size=(batch, num_low, num_high, high_dim)).astype(np.float32)


def test_dynamic_routing_output_shape():
    routing = DynamicRouting(iterations=3)
    result = routing(make_u_hat())
    assert result.high_capsules.shape == (2, 4, 8)


def test_dynamic_routing_coefficient_shape_shared():
    routing = DynamicRouting(iterations=2, share_coefficients_across_batch=True)
    result = routing(make_u_hat())
    assert result.coefficients.shape == (12, 4)


def test_dynamic_routing_coefficient_shape_per_batch():
    routing = DynamicRouting(iterations=2, share_coefficients_across_batch=False)
    result = routing(make_u_hat())
    assert result.coefficients.shape == (2, 12, 4)


def test_dynamic_routing_coefficients_normalized_over_high_capsules():
    routing = DynamicRouting(iterations=3)
    result = routing(make_u_hat())
    np.testing.assert_allclose(np.sum(result.coefficients, axis=-1), 1.0, atol=1e-5)


def test_dynamic_routing_output_norm_bounded():
    routing = DynamicRouting(iterations=3)
    result = routing(make_u_hat(seed=3))
    norms = np.linalg.norm(result.high_capsules, axis=-1)
    assert np.all(norms < 1.0 + 1e-5)


def test_dynamic_routing_iterations_respected():
    for iterations in (1, 2, 5):
        result = DynamicRouting(iterations=iterations)(make_u_hat())
        assert result.iterations == iterations


def test_dynamic_routing_rejects_non_positive_iterations():
    with pytest.raises(ValueError):
        DynamicRouting(iterations=0)


def test_dynamic_routing_rejects_bad_shape():
    with pytest.raises(ValueError):
        DynamicRouting()(np.zeros((2, 3, 4), dtype=np.float32))


def test_dynamic_routing_deterministic():
    u_hat = make_u_hat(seed=7)
    a = DynamicRouting(iterations=3)(u_hat)
    b = DynamicRouting(iterations=3)(u_hat)
    np.testing.assert_array_equal(a.high_capsules, b.high_capsules)


def test_dynamic_routing_agreement_increases_coefficient():
    # Build predictions where low capsule 0 strongly agrees with high capsule 0:
    # its coefficient toward capsule 0 should exceed the uniform prior.
    batch, num_low, num_high, dim = 1, 6, 3, 4
    u_hat = np.zeros((batch, num_low, num_high, dim), dtype=np.float32)
    u_hat[0, 0, 0] = [1.0, 0.0, 0.0, 0.0]
    u_hat[0, 1, 0] = [1.0, 0.0, 0.0, 0.0]
    rng = np.random.default_rng(0)
    u_hat[0, 2:, :, :] = rng.normal(scale=0.05, size=(num_low - 2, num_high, dim))
    result = DynamicRouting(iterations=3)(u_hat)
    assert result.coefficients[0, 0] > 1.0 / num_high


def test_dynamic_routing_more_iterations_sharpen_agreeing_coefficients():
    u_hat = np.zeros((1, 4, 2, 4), dtype=np.float32)
    u_hat[0, :, 0, :] = [0.8, 0.0, 0.0, 0.0]
    u_hat[0, :, 1, :] = [-0.2, 0.1, 0.0, 0.0]
    c1 = DynamicRouting(iterations=1)(u_hat).coefficients
    c5 = DynamicRouting(iterations=5)(u_hat).coefficients
    assert np.all(c5[:, 0] >= c1[:, 0] - 1e-6)


def test_dynamic_routing_exact_vs_approx_context_close():
    u_hat = make_u_hat(seed=11)
    exact = DynamicRouting(iterations=3, context=MathContext.exact())(u_hat)
    approx = DynamicRouting(iterations=3, context=MathContext.approximate())(u_hat)
    np.testing.assert_allclose(
        approx.high_capsules, exact.high_capsules, atol=0.05
    )


def test_dynamic_routing_logits_shape_matches_coefficients():
    result = DynamicRouting(iterations=2)(make_u_hat())
    assert result.logits is not None
    assert result.logits.shape == result.coefficients.shape


def test_em_routing_output_shape():
    result = EMRouting(iterations=3)(make_u_hat())
    assert result.high_capsules.shape == (2, 4, 8)


def test_em_routing_responsibilities_normalized():
    result = EMRouting(iterations=3)(make_u_hat(seed=5))
    np.testing.assert_allclose(np.sum(result.coefficients, axis=-1), 1.0, atol=1e-4)


def test_em_routing_rejects_bad_shape():
    with pytest.raises(ValueError):
        EMRouting()(np.zeros((3, 4), dtype=np.float32))


def test_em_routing_rejects_non_positive_iterations():
    with pytest.raises(ValueError):
        EMRouting(iterations=0)


def test_em_routing_clusters_agreeing_votes():
    # All low capsules vote identically for one vector; the EM means for each
    # high capsule should land near that vector.
    u_hat = np.tile(
        np.array([1.0, -1.0, 0.5, 0.0], dtype=np.float32), (1, 10, 2, 1)
    )
    result = EMRouting(iterations=3)(u_hat)
    # Means scaled by activations keep the direction of the common vote.
    direction = result.high_capsules[0, 0] / (np.linalg.norm(result.high_capsules[0, 0]) + 1e-9)
    expected = np.array([1.0, -1.0, 0.5, 0.0]) / np.linalg.norm([1.0, -1.0, 0.5, 0.0])
    assert float(np.dot(direction, expected)) > 0.99


def test_em_routing_deterministic():
    u_hat = make_u_hat(seed=13)
    a = EMRouting(iterations=2)(u_hat)
    b = EMRouting(iterations=2)(u_hat)
    np.testing.assert_array_equal(a.high_capsules, b.high_capsules)
