"""Tests for the CapsNet layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.capsnet.layers import (
    CapsuleLayer,
    Conv2D,
    Dense,
    Flatten,
    PrimaryCaps,
    ReLU,
    Sigmoid,
    col2im,
    conv_output_size,
    im2col,
)
from repro.capsnet.routing import DynamicRouting


def numerical_gradient(f, x, eps=1e-3):
    """Central-difference gradient of a scalar function ``f`` wrt array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


# ---------------------------------------------------------------------------
# geometry helpers
# ---------------------------------------------------------------------------


def test_conv_output_size():
    assert conv_output_size(28, 9, 1, 0) == 20
    assert conv_output_size(20, 9, 2, 0) == 6


def test_conv_output_size_invalid():
    with pytest.raises(ValueError):
        conv_output_size(4, 9, 1, 0)


def test_im2col_col2im_shapes():
    x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32)
    cols, (oh, ow) = im2col(x, (3, 3), stride=1, padding=0)
    assert (oh, ow) == (6, 6)
    assert cols.shape == (2, 36, 27)
    back = col2im(cols, x.shape, (3, 3), stride=1, padding=0)
    assert back.shape == x.shape


def test_im2col_values_match_naive_patch():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    cols, _ = im2col(x, (2, 2), stride=2, padding=0)
    # First patch is the top-left 2x2 block.
    np.testing.assert_array_equal(cols[0, 0], [0, 1, 4, 5])


# ---------------------------------------------------------------------------
# Conv2D
# ---------------------------------------------------------------------------


def test_conv2d_forward_shape():
    conv = Conv2D(3, 8, kernel_size=3, stride=1)
    out = conv.forward(np.zeros((2, 3, 10, 10), dtype=np.float32))
    assert out.shape == (2, 8, 8, 8)


def test_conv2d_matches_naive_convolution():
    rng = np.random.default_rng(1)
    conv = Conv2D(2, 3, kernel_size=3, stride=1, rng=rng)
    x = rng.random((1, 2, 5, 5)).astype(np.float32)
    out = conv.forward(x)
    weight, bias = conv.params["weight"], conv.params["bias"]
    naive = np.zeros_like(out)
    for f in range(3):
        for i in range(3):
            for j in range(3):
                patch = x[0, :, i : i + 3, j : j + 3]
                naive[0, f, i, j] = np.sum(patch * weight[f]) + bias[f]
    np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)


def test_conv2d_rejects_wrong_channels():
    conv = Conv2D(3, 4, kernel_size=3)
    with pytest.raises(ValueError):
        conv.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))


def test_conv2d_weight_gradient_matches_numerical():
    rng = np.random.default_rng(2)
    conv = Conv2D(1, 2, kernel_size=2, stride=1, rng=rng)
    x = rng.random((1, 1, 4, 4)).astype(np.float32)
    target = rng.random((1, 2, 3, 3)).astype(np.float32)

    def loss():
        out = conv.forward(x)
        return float(np.sum((out - target) ** 2))

    conv.zero_grads()
    out = conv.forward(x)
    conv.backward(2 * (out - target))
    analytic = conv.grads["weight"].copy()
    numerical = numerical_gradient(loss, conv.params["weight"])
    np.testing.assert_allclose(analytic, numerical, rtol=1e-2, atol=1e-2)


def test_conv2d_input_gradient_matches_numerical():
    rng = np.random.default_rng(3)
    conv = Conv2D(1, 1, kernel_size=2, stride=1, rng=rng)
    x = rng.random((1, 1, 3, 3)).astype(np.float32)
    target = rng.random((1, 1, 2, 2)).astype(np.float32)

    def loss():
        return float(np.sum((conv.forward(x) - target) ** 2))

    out = conv.forward(x)
    grad_input = conv.backward(2 * (out - target))
    numerical = numerical_gradient(loss, x)
    np.testing.assert_allclose(grad_input, numerical, rtol=1e-2, atol=1e-2)


def test_conv2d_backward_before_forward_raises():
    conv = Conv2D(1, 1, kernel_size=2)
    with pytest.raises(RuntimeError):
        conv.backward(np.zeros((1, 1, 2, 2), dtype=np.float32))


def test_conv2d_output_shape_helper():
    conv = Conv2D(3, 16, kernel_size=5, stride=2)
    assert conv.output_shape((13, 13)) == (16, 5, 5)


# ---------------------------------------------------------------------------
# simple layers
# ---------------------------------------------------------------------------


def test_relu_backward_masks_gradient():
    relu = ReLU()
    x = np.array([[-1.0, 2.0]], dtype=np.float32)
    relu.forward(x)
    grad = relu.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, [[0.0, 1.0]])


def test_sigmoid_backward_uses_output():
    sigmoid = Sigmoid()
    x = np.zeros((1, 3), dtype=np.float32)
    out = sigmoid.forward(x)
    grad = sigmoid.backward(np.ones_like(x))
    np.testing.assert_allclose(grad, out * (1 - out), rtol=1e-6)


def test_flatten_round_trip():
    flatten = Flatten()
    x = np.random.default_rng(0).random((2, 3, 4)).astype(np.float32)
    flat = flatten.forward(x)
    assert flat.shape == (2, 12)
    back = flatten.backward(flat)
    assert back.shape == x.shape


def test_dense_forward_matches_matmul():
    rng = np.random.default_rng(4)
    dense = Dense(5, 3, rng=rng)
    x = rng.random((2, 5)).astype(np.float32)
    expected = x @ dense.params["weight"] + dense.params["bias"]
    np.testing.assert_allclose(dense.forward(x), expected, rtol=1e-6)


def test_dense_gradients_match_numerical():
    rng = np.random.default_rng(5)
    dense = Dense(4, 3, rng=rng)
    x = rng.random((2, 4)).astype(np.float32)
    target = rng.random((2, 3)).astype(np.float32)

    def loss():
        return float(np.sum((dense.forward(x) - target) ** 2))

    dense.zero_grads()
    out = dense.forward(x)
    grad_in = dense.backward(2 * (out - target))
    np.testing.assert_allclose(
        dense.grads["weight"], numerical_gradient(loss, dense.params["weight"]), rtol=1e-2, atol=1e-2
    )
    np.testing.assert_allclose(grad_in, numerical_gradient(loss, x), rtol=1e-2, atol=1e-2)


def test_dense_rejects_wrong_input_width():
    dense = Dense(4, 2)
    with pytest.raises(ValueError):
        dense.forward(np.zeros((1, 5), dtype=np.float32))


def test_parameter_count():
    dense = Dense(4, 3)
    assert dense.parameter_count == 4 * 3 + 3


# ---------------------------------------------------------------------------
# capsule layers
# ---------------------------------------------------------------------------


def test_primary_caps_output_shape():
    primary = PrimaryCaps(4, capsule_channels=2, capsule_dim=8, kernel_size=3, stride=1)
    out = primary.forward(np.random.default_rng(0).random((2, 4, 6, 6)).astype(np.float32))
    # 4x4 spatial positions x 2 channels = 32 capsules of 8 dims.
    assert out.shape == (2, 32, 8)


def test_primary_caps_norm_bounded():
    primary = PrimaryCaps(4, capsule_channels=2, capsule_dim=8, kernel_size=3, stride=1)
    out = primary.forward(np.random.default_rng(1).random((1, 4, 6, 6)).astype(np.float32) * 4)
    assert np.all(np.linalg.norm(out, axis=-1) < 1.0 + 1e-5)


def test_primary_caps_num_capsules_helper():
    primary = PrimaryCaps(4, capsule_channels=2, capsule_dim=8, kernel_size=3, stride=1)
    assert primary.num_capsules((6, 6)) == 32


def test_primary_caps_backward_shape():
    primary = PrimaryCaps(4, capsule_channels=2, capsule_dim=4, kernel_size=3, stride=1)
    x = np.random.default_rng(2).random((2, 4, 6, 6)).astype(np.float32)
    out = primary.forward(x)
    grad = primary.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_capsule_layer_forward_shape():
    layer = CapsuleLayer(num_low=10, num_high=3, low_dim=4, high_dim=6)
    out = layer.forward(np.random.default_rng(0).random((2, 10, 4)).astype(np.float32))
    assert out.shape == (2, 3, 6)


def test_capsule_layer_rejects_bad_shape():
    layer = CapsuleLayer(num_low=10, num_high=3, low_dim=4, high_dim=6)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((2, 9, 4), dtype=np.float32))


def test_capsule_layer_stores_routing_result():
    layer = CapsuleLayer(num_low=6, num_high=2, low_dim=4, high_dim=4)
    layer.forward(np.random.default_rng(1).random((1, 6, 4)).astype(np.float32))
    assert layer.last_routing_result is not None
    assert layer.last_routing_result.coefficients.shape == (6, 2)


def test_capsule_layer_weight_gradient_direction_reduces_loss():
    # A full numerical check through routing is expensive; instead verify the
    # analytic gradient actually decreases a simple loss when followed.
    rng = np.random.default_rng(3)
    layer = CapsuleLayer(
        num_low=8, num_high=2, low_dim=4, high_dim=4, routing=DynamicRouting(iterations=2), rng=rng
    )
    x = rng.random((2, 8, 4)).astype(np.float32)
    target = rng.random((2, 2, 4)).astype(np.float32) * 0.5

    def loss_value():
        return float(np.sum((layer.forward(x) - target) ** 2))

    before = loss_value()
    out = layer.forward(x)
    layer.zero_grads()
    layer.backward(2 * (out - target))
    layer.params["weight"] -= 0.05 * layer.grads["weight"]
    after = loss_value()
    assert after < before


def test_capsule_layer_backward_returns_input_gradient_shape():
    layer = CapsuleLayer(num_low=6, num_high=2, low_dim=4, high_dim=4)
    x = np.random.default_rng(4).random((3, 6, 4)).astype(np.float32)
    out = layer.forward(x)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_capsule_layer_backward_before_forward_raises():
    layer = CapsuleLayer(num_low=6, num_high=2, low_dim=4, high_dim=4)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2, 4), dtype=np.float32))
