"""Tests for using EM routing inside the capsule layer and the CapsNet model."""

import numpy as np
import pytest

from repro.arithmetic.context import MathContext
from repro.capsnet.layers import CapsuleLayer
from repro.capsnet.routing import DynamicRouting, EMRouting


@pytest.fixture
def low_capsules():
    return np.random.default_rng(3).normal(scale=0.3, size=(2, 12, 8)).astype(np.float32)


def test_capsule_layer_accepts_em_routing(low_capsules):
    layer = CapsuleLayer(num_low=12, num_high=4, low_dim=8, high_dim=16, routing=EMRouting(iterations=2))
    out = layer.forward(low_capsules)
    assert out.shape == (2, 4, 16)
    assert np.all(np.isfinite(out))


def test_em_capsule_layer_backward_runs(low_capsules):
    layer = CapsuleLayer(num_low=12, num_high=4, low_dim=8, high_dim=16, routing=EMRouting(iterations=2))
    out = layer.forward(low_capsules)
    layer.zero_grads()
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == low_capsules.shape
    assert np.all(np.isfinite(grad))
    assert np.any(layer.grads["weight"] != 0)


def test_em_and_dynamic_layers_share_weight_shape():
    dynamic = CapsuleLayer(num_low=12, num_high=4, low_dim=8, high_dim=16, routing=DynamicRouting())
    em = CapsuleLayer(num_low=12, num_high=4, low_dim=8, high_dim=16, routing=EMRouting())
    assert dynamic.params["weight"].shape == em.params["weight"].shape


def test_em_routing_with_approximate_context(low_capsules):
    exact_layer = CapsuleLayer(
        num_low=12, num_high=4, low_dim=8, high_dim=16,
        routing=EMRouting(iterations=2, context=MathContext.exact()),
        rng=np.random.default_rng(7),
    )
    approx_layer = CapsuleLayer(
        num_low=12, num_high=4, low_dim=8, high_dim=16,
        routing=EMRouting(iterations=2, context=MathContext.approximate()),
        rng=np.random.default_rng(7),
    )
    exact_out = exact_layer.forward(low_capsules)
    approx_out = approx_layer.forward(low_capsules)
    assert np.max(np.abs(exact_out - approx_out)) < 0.1


def test_em_routing_result_exposed_through_layer(low_capsules):
    layer = CapsuleLayer(num_low=12, num_high=4, low_dim=8, high_dim=16, routing=EMRouting(iterations=2))
    layer.forward(low_capsules)
    result = layer.last_routing_result
    assert result is not None
    assert result.coefficients.shape == (2, 12, 4)
    assert result.logits is None
