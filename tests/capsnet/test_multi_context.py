"""Tests for weight-sharing context clones and the shared-trunk evaluation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.arithmetic.context import MathContext
from repro.capsnet.datasets import DatasetSpec, SyntheticImageDataset
from repro.capsnet.model import CapsNet, CapsNetConfig, evaluate_accuracies
from repro.capsnet.training import Trainer


@pytest.fixture(scope="module")
def small_config() -> CapsNetConfig:
    return CapsNetConfig.scaled(input_shape=(1, 16, 16), num_classes=3, scale=0.05)


@pytest.fixture(scope="module")
def small_dataset() -> SyntheticImageDataset:
    spec = DatasetSpec("TOY-CTX", (1, 16, 16), 3)
    return SyntheticImageDataset(spec, num_train=24, num_test=18, seed=9)


# ---------------------------------------------------------------------------
# with_context
# ---------------------------------------------------------------------------


def test_with_context_shares_parameter_arrays(small_config):
    model = CapsNet(small_config, seed=1)
    clone = model.with_context(MathContext.approximate())
    for mine, theirs in zip(model.trainable_layers, clone.trainable_layers):
        assert set(mine.params) == set(theirs.params)
        for name in mine.params:
            assert theirs.params[name] is mine.params[name]
    assert clone.primary.conv.params is clone.primary.params
    assert clone.context.use_approximations
    assert clone.config is model.config


def test_with_context_sees_later_training_updates(small_config, small_dataset):
    model = CapsNet(small_config, seed=1)
    clone = model.with_context(MathContext.exact())
    trainer = Trainer(model, learning_rate=0.01, optimizer="adam", reconstruction_weight=0.0)
    images, _, onehot = next(small_dataset.train_batches(8, rng=np.random.default_rng(0)))
    trainer.train_step(images, onehot)
    # Shared arrays: the clone computes with the *updated* weights.
    test_images, test_labels = small_dataset.test_set()
    assert clone.accuracy(test_images, test_labels) == model.accuracy(test_images, test_labels)
    assert np.array_equal(
        clone.class_caps.params["weight"], model.class_caps.params["weight"]
    )


def test_with_context_shares_decoder_weights_too():
    # Regression: the clone is built with init_weights=False, so pairing
    # layers through the params-filtered `trainable_layers` silently dropped
    # the decoder Dense layers (KeyError on the first decoder forward).
    config = CapsNetConfig.scaled(input_shape=(1, 16, 16), num_classes=3, scale=0.05)
    assert config.use_decoder
    model = CapsNet(config, seed=7)
    clone = model.with_context(MathContext.approximate())
    assert len(clone.trainable_layers) == len(model.trainable_layers)
    for mine, theirs in zip(model.trainable_layers, clone.trainable_layers):
        for name in mine.params:
            assert theirs.params[name] is mine.params[name]
    images = np.random.default_rng(1).random((3, 1, 16, 16), dtype=np.float32)
    result = clone.forward(images)  # runs the decoder
    assert result.reconstruction is not None
    assert set(clone.state_dict()) == set(model.state_dict())


def test_with_context_keeps_gradients_private(small_config):
    model = CapsNet(small_config, seed=1)
    clone = model.with_context(MathContext.exact())
    assert clone.class_caps.grads is not model.class_caps.grads


def test_init_weights_false_builds_empty_model(small_config):
    shell = CapsNet(small_config, init_weights=False)
    assert all(not layer.params for layer in shell.trainable_layers)


def test_with_context_predictions_match_fresh_model_with_loaded_state(small_config):
    """The clone computes exactly what the old reload-per-context path did."""
    model = CapsNet(small_config, seed=2)
    images = np.random.default_rng(5).random((6, 1, 16, 16), dtype=np.float32)
    for context in (MathContext.approximate(), MathContext.approximate_with_recovery()):
        clone = model.with_context(context)
        reloaded = CapsNet(small_config, context=context, seed=2)
        reloaded.load_state_dict(model.state_dict())
        assert np.array_equal(clone.predict(images), reloaded.predict(images))


# ---------------------------------------------------------------------------
# Shared-trunk multi-context evaluation
# ---------------------------------------------------------------------------


def test_split_inference_matches_full_forward(small_config):
    model = CapsNet(small_config, seed=3)
    images = np.random.default_rng(6).random((5, 1, 16, 16), dtype=np.float32)
    pre = model.primary_pre_squash(images)
    assert np.array_equal(model.predictions_from_pre_squash(pre), model.predict(images))


def test_evaluate_accuracies_matches_per_model_accuracy(small_config, small_dataset):
    model = CapsNet(small_config, seed=4)
    contexts = {
        "origin": MathContext.exact(),
        "approx": MathContext.approximate(),
        "recovered": MathContext.approximate_with_recovery(),
    }
    models = {label: model.with_context(ctx) for label, ctx in contexts.items()}
    test_images, test_labels = small_dataset.test_set()
    shared = evaluate_accuracies(models, test_images, test_labels, batch_size=8)
    for label, clone in models.items():
        assert shared[label] == clone.accuracy(test_images, test_labels, batch_size=8)


def test_fit_evaluate_false_skips_accuracies(small_config, small_dataset):
    model = CapsNet(small_config, seed=5)
    trainer = Trainer(model, learning_rate=0.01, optimizer="adam", reconstruction_weight=0.0)
    result = trainer.fit(small_dataset, epochs=1, batch_size=8, evaluate=False)
    assert math.isnan(result.train_accuracy)
    assert math.isnan(result.test_accuracy)
    assert len(result.epoch_losses) == 1


def test_trainer_counts_steps(small_config, small_dataset):
    model = CapsNet(small_config, seed=6)
    trainer = Trainer(model, learning_rate=0.01, optimizer="adam", reconstruction_weight=0.0)
    trainer.fit(small_dataset, epochs=2, batch_size=8, evaluate=False)
    assert trainer.steps_executed == 2 * 3  # 24 samples / 8 per batch, 2 epochs
