"""Bit-exactness regression tests for the vectorized CapsNet kernels.

Every optimized kernel in :mod:`repro.capsnet.kernels` must produce
*bit-identical* FP32 output to the naive formulation it replaced -- the
golden Table-5 reports depend on it.  These tests therefore assert
``np.array_equal`` (never ``allclose``) against naive reference
implementations, across a grid of geometries covering everything the
experiments instantiate (stride/padding/kernel combinations, the Table-5
class counts, ragged final batches).

The einsum operand-relayout tricks are *empirical* bit-stability findings,
not documented numpy guarantees; if a numpy upgrade ever changes an inner
loop, these tests are the tripwire.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.capsnet import kernels


# ---------------------------------------------------------------------------
# Naive reference implementations (the formulations the kernels replaced).
# ---------------------------------------------------------------------------


def naive_im2col(x, kernel, stride, padding):
    """Patch extraction with explicit Python loops."""
    batch, channels, height, width = x.shape
    kh, kw = kernel
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")
    cols = np.zeros((batch, out_h * out_w, channels * kh * kw), dtype=np.float32)
    for b in range(batch):
        patch = 0
        for i in range(out_h):
            for j in range(out_w):
                window = x[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                cols[b, patch] = window.reshape(-1)
                patch += 1
    return cols, (out_h, out_w)


def naive_col2im(cols, input_shape, kernel, stride, padding):
    """The historical double loop over kernel offsets (strided adds)."""
    batch, channels, height, width = input_shape
    kh, kw = kernel
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=np.float32
    )
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def naive_predict_vectors(u, weight):
    return np.einsum("bld,ljdh->bljh", u, weight).astype(np.float32)


def naive_weighted_sum(u_hat, c):
    if c.ndim == 2:
        weighted = u_hat * c[np.newaxis, :, :, np.newaxis]
    else:
        weighted = u_hat * c[:, :, :, np.newaxis]
    return np.sum(weighted, axis=1, dtype=np.float32)


def naive_agreement(u_hat, v):
    return np.einsum("bljh,bjh->blj", u_hat, v).astype(np.float32)


def naive_grad_u_hat(grad_s, c):
    if c.ndim == 2:
        return grad_s[:, np.newaxis, :, :] * c[np.newaxis, :, :, np.newaxis]
    return grad_s[:, np.newaxis, :, :] * c[:, :, :, np.newaxis]


def naive_weight_gradient(u, grad_u_hat):
    return np.einsum("bld,bljh->ljdh", u, np.ascontiguousarray(grad_u_hat)).astype(np.float32)


def naive_input_gradient(grad_u_hat, weight):
    return np.einsum("bljh,ljdh->bld", np.ascontiguousarray(grad_u_hat), weight).astype(
        np.float32
    )


# ---------------------------------------------------------------------------
# Geometry grids
# ---------------------------------------------------------------------------

#: Convolution geometries: everything Table 5 instantiates (9x9 kernels at
#: strides 1/2 on 28x28 / 32x32 inputs and their conv outputs) plus odd
#: stride/padding/kernel combinations for coverage.
CONV_GEOMETRIES = [
    # (batch, channels, height, width, kernel, stride, padding)
    (2, 1, 28, 28, 9, 1, 0),
    (2, 3, 32, 32, 9, 1, 0),
    (2, 24, 20, 20, 9, 2, 0),
    (2, 24, 24, 24, 9, 2, 0),
    (3, 2, 11, 13, 3, 2, 1),
    (1, 4, 7, 7, 3, 1, 1),
    (4, 1, 9, 8, 2, 3, 0),
    (2, 5, 10, 10, 5, 2, 2),
    (2, 3, 6, 6, 1, 1, 0),
]

#: Capsule contraction shapes: the Table-5 models (L in {72, 128}, J in
#: {10, 26, 47, 62}) plus small odd shapes; batch 16 (training), 64 (eval)
#: and ragged remainders.
CAPSULE_SHAPES = [
    # (batch, num_low, num_high, low_dim, high_dim)
    (16, 72, 10, 8, 16),
    (16, 128, 10, 8, 16),
    (16, 72, 26, 8, 16),
    (16, 72, 47, 8, 16),
    (16, 72, 62, 8, 16),
    (64, 72, 10, 8, 16),
    (8, 72, 62, 8, 16),
    (3, 5, 4, 8, 16),
    (2, 7, 3, 4, 6),
    (1, 1, 1, 1, 1),
]


def _capsule_operands(shape, seed):
    batch, num_low, num_high, low_dim, high_dim = shape
    rng = np.random.default_rng(seed)
    u = (rng.standard_normal((batch, num_low, low_dim)) * 0.3).astype(np.float32)
    weight = (rng.standard_normal((num_low, num_high, low_dim, high_dim)) * 0.05).astype(
        np.float32
    )
    u_hat = (rng.standard_normal((batch, num_low, num_high, high_dim)) * 0.2).astype(np.float32)
    v = (rng.standard_normal((batch, num_high, high_dim)) * 0.2).astype(np.float32)
    grad_s = (rng.standard_normal((batch, num_high, high_dim)) * 0.1).astype(np.float32)
    c_shared = rng.random((num_low, num_high), dtype=np.float32)
    c_batched = rng.random((batch, num_low, num_high), dtype=np.float32)
    return u, weight, u_hat, v, grad_s, c_shared, c_batched


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("geometry", CONV_GEOMETRIES)
def test_im2col_bit_exact_vs_naive(geometry):
    batch, channels, height, width, kernel, stride, padding = geometry
    x = np.random.default_rng(hash(geometry) % 2**32).standard_normal(
        (batch, channels, height, width)
    ).astype(np.float32)
    fast, hw_fast = kernels.im2col(x, (kernel, kernel), stride, padding)
    ref, hw_ref = naive_im2col(x, (kernel, kernel), stride, padding)
    assert hw_fast == hw_ref
    assert np.array_equal(fast, ref)


@pytest.mark.parametrize("geometry", CONV_GEOMETRIES)
def test_col2im_bit_exact_vs_naive_loop(geometry):
    batch, channels, height, width, kernel, stride, padding = geometry
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    rng = np.random.default_rng(hash(geometry) % 2**31)
    cols = (
        rng.standard_normal((batch, out_h * out_w, channels * kernel * kernel)) * 0.5
    ).astype(np.float32)
    fast = kernels.col2im(cols, (batch, channels, height, width), (kernel, kernel), stride, padding)
    ref = naive_col2im(cols, (batch, channels, height, width), (kernel, kernel), stride, padding)
    # Overlapping contributions make the accumulation *order* observable in
    # the low bits; array_equal (not allclose) is the whole point.
    assert np.array_equal(fast, ref)


def test_col2im_index_cache_is_reused_and_correct():
    shape = (2, 3, 12, 12)
    out = (12 + 2 * 1 - 3) // 2 + 1
    cols = np.random.default_rng(0).standard_normal((2, out * out, 3 * 9)).astype(np.float32)
    first = kernels.col2im(cols, shape, (3, 3), 2, 1)
    second = kernels.col2im(cols, shape, (3, 3), 2, 1)
    assert np.array_equal(first, second)
    key = (2, 3, 14, 14, out, out, 3, 3, 2)
    assert key in kernels._COL2IM_INDEX_CACHE


def test_im2col_col2im_round_trip_counts_contributions():
    # col2im(im2col(x)) multiplies each pixel by its contribution count; with
    # all-ones input that count is directly visible and integer-exact.
    x = np.ones((1, 1, 6, 6), dtype=np.float32)
    cols, _ = kernels.im2col(x, (3, 3), 1, 0)
    folded = kernels.col2im(cols, (1, 1, 6, 6), (3, 3), 1, 0)
    assert folded[0, 0, 0, 0] == 1.0  # corner: one window
    assert folded[0, 0, 3, 3] == 9.0  # interior: all nine offsets


# ---------------------------------------------------------------------------
# Capsule contractions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shape", CAPSULE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2])
def test_predict_vectors_bit_exact(shape, seed):
    u, weight, *_ = _capsule_operands(shape, seed)
    assert np.array_equal(kernels.predict_vectors(u, weight), naive_predict_vectors(u, weight))


@pytest.mark.parametrize("shape", CAPSULE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2])
def test_weighted_sum_bit_exact_shared_and_batched(shape, seed):
    _, _, u_hat, _, _, c_shared, c_batched = _capsule_operands(shape, seed)
    assert np.array_equal(kernels.weighted_sum(u_hat, c_shared), naive_weighted_sum(u_hat, c_shared))
    assert np.array_equal(
        kernels.weighted_sum(u_hat, c_batched), naive_weighted_sum(u_hat, c_batched)
    )


@pytest.mark.parametrize("shape", CAPSULE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2])
def test_agreement_bit_exact(shape, seed):
    _, _, u_hat, v, *_ = _capsule_operands(shape, seed)
    assert np.array_equal(kernels.agreement(u_hat, v), naive_agreement(u_hat, v))


@pytest.mark.parametrize("shape", CAPSULE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2])
def test_capsule_gradients_bit_exact_through_fast_layout(shape, seed):
    """The full backward kernel chain, exactly as CapsuleLayer.backward runs it.

    ``capsule_grad_u_hat`` hands a ``(l, j, b, h)``-contiguous buffer to both
    contractions; the chain's output must match the naive broadcast multiply
    + plain contiguous einsums bit for bit.
    """
    u, weight, _, _, grad_s, c_shared, c_batched = _capsule_operands(shape, seed)
    for c in (c_shared, c_batched):
        fast_buffer = kernels.capsule_grad_u_hat(grad_s, c)
        ref_buffer = naive_grad_u_hat(grad_s, c)
        assert np.array_equal(fast_buffer, ref_buffer)
        assert np.array_equal(
            kernels.capsule_weight_gradient(u, fast_buffer),
            naive_weight_gradient(u, ref_buffer),
        )
        assert np.array_equal(
            kernels.capsule_input_gradient(fast_buffer, weight),
            naive_input_gradient(ref_buffer, weight),
        )


def test_grad_u_hat_buffer_memory_layout():
    shape = (4, 6, 5, 8, 16)
    _, _, _, _, grad_s, c_shared, _ = _capsule_operands(shape, 3)
    buffer = kernels.capsule_grad_u_hat(grad_s, c_shared)
    batch, num_low, num_high, high_dim = 4, 6, 5, 16
    assert buffer.shape == (batch, num_low, num_high, high_dim)
    # Logical (b, l, j, h) view of an (l, j, b, h)-contiguous buffer.
    assert buffer.transpose(1, 2, 0, 3).flags["C_CONTIGUOUS"]


def test_routing_weight_view_is_logically_identical():
    weight = np.random.default_rng(0).standard_normal((6, 5, 8, 16)).astype(np.float32)
    view = kernels.routing_weight_view(weight)
    assert view.shape == weight.shape
    assert np.array_equal(view, weight)
    assert view.transpose(0, 2, 1, 3).flags["C_CONTIGUOUS"]


# ---------------------------------------------------------------------------
# dtype policy
# ---------------------------------------------------------------------------


def test_as_f32_does_not_copy_float32():
    x = np.ones(4, dtype=np.float32)
    assert kernels.as_f32(x) is x


def test_as_f32_converts_other_dtypes():
    x = np.ones(4, dtype=np.float64)
    y = kernels.as_f32(x)
    assert y.dtype == np.float32
    assert np.array_equal(y, x.astype(np.float32))
    assert kernels.as_f32([1.0, 2.0]).dtype == np.float32
