"""Tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.capsnet.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticImageDataset,
    dataset_for_benchmark,
)


def test_all_paper_datasets_present():
    for name in ("MNIST", "CIFAR10", "EMNIST-LETTER", "EMNIST-BALANCED", "EMNIST-BYCLASS", "SVHN"):
        assert name in DATASET_SPECS


def test_dataset_spec_class_counts_match_paper():
    assert DATASET_SPECS["MNIST"].num_classes == 10
    assert DATASET_SPECS["EMNIST-LETTER"].num_classes == 26
    assert DATASET_SPECS["EMNIST-BALANCED"].num_classes == 47
    assert DATASET_SPECS["EMNIST-BYCLASS"].num_classes == 62
    assert DATASET_SPECS["SVHN"].num_classes == 10


def test_dataset_spec_pixel_counts():
    assert DATASET_SPECS["MNIST"].pixels == 28 * 28
    assert DATASET_SPECS["CIFAR10"].pixels == 3 * 32 * 32


def test_split_shapes():
    spec = DatasetSpec("TOY", (1, 12, 12), 3)
    ds = SyntheticImageDataset(spec, num_train=30, num_test=12, seed=0)
    assert ds.train_images.shape == (30, 1, 12, 12)
    assert ds.test_images.shape == (12, 1, 12, 12)
    assert ds.train_labels.shape == (30,)


def test_pixel_range():
    ds = dataset_for_benchmark("MNIST", num_train=40, num_test=20)
    assert float(ds.train_images.min()) >= 0.0
    assert float(ds.train_images.max()) <= 1.0


def test_labels_cover_all_classes():
    ds = dataset_for_benchmark("MNIST", num_train=50, num_test=20)
    assert set(np.unique(ds.train_labels)) == set(range(10))


def test_deterministic_for_same_seed():
    a = dataset_for_benchmark("MNIST", num_train=30, num_test=10, seed=4)
    b = dataset_for_benchmark("MNIST", num_train=30, num_test=10, seed=4)
    np.testing.assert_array_equal(a.train_images, b.train_images)
    np.testing.assert_array_equal(a.test_labels, b.test_labels)


def test_different_seeds_differ():
    a = dataset_for_benchmark("MNIST", num_train=30, num_test=10, seed=1)
    b = dataset_for_benchmark("MNIST", num_train=30, num_test=10, seed=2)
    assert not np.array_equal(a.train_images, b.train_images)


def test_class_prototypes_are_distinguishable():
    spec = DatasetSpec("TOY", (1, 20, 20), 4)
    ds = SyntheticImageDataset(spec, num_train=40, num_test=16, noise_level=0.02, seed=3)
    # Same-class samples should correlate better with each other than with
    # other classes (nearest-prototype structure).
    images, labels = ds.test_set()
    flattened = images.reshape(images.shape[0], -1)
    class_means = np.stack(
        [flattened[labels == k].mean(axis=0) for k in range(spec.num_classes)]
    )
    correct = 0
    for vector, label in zip(flattened, labels):
        distances = np.linalg.norm(class_means - vector, axis=1)
        correct += int(np.argmin(distances) == label)
    assert correct / len(labels) > 0.9


def test_train_batches_cover_all_samples():
    ds = dataset_for_benchmark("MNIST", num_train=30, num_test=10)
    seen = 0
    for images, labels, onehot in ds.train_batches(8):
        seen += images.shape[0]
        assert onehot.shape == (images.shape[0], 10)
    assert seen == 30


def test_train_batches_rejects_bad_batch_size():
    ds = dataset_for_benchmark("MNIST", num_train=20, num_test=10)
    with pytest.raises(ValueError):
        next(ds.train_batches(0))


def test_requires_enough_samples_per_class():
    spec = DatasetSpec("TOY", (1, 12, 12), 10)
    with pytest.raises(ValueError):
        SyntheticImageDataset(spec, num_train=5, num_test=5)


def test_unknown_dataset_name_raises():
    with pytest.raises(KeyError):
        dataset_for_benchmark("IMAGENET")


def test_dataset_name_normalization():
    ds = dataset_for_benchmark("emnist letter", num_train=30, num_test=30)
    assert ds.spec.name == "EMNIST-LETTER"
