"""Tests for the full CapsNet model."""

import numpy as np
import pytest

from repro.arithmetic.context import MathContext
from repro.capsnet.functions import one_hot
from repro.capsnet.model import CapsNet, CapsNetConfig, DecoderConfig


def test_mnist_config_matches_paper_structure():
    config = CapsNetConfig.mnist()
    assert config.conv_channels == 256
    assert config.primary_channels == 32
    assert config.primary_dim == 8
    assert config.class_caps_dim == 16
    assert config.num_low_capsules == 1152  # 6x6x32


def test_mnist_config_geometry():
    config = CapsNetConfig.mnist()
    assert config.conv_output_hw() == (20, 20)
    assert config.primary_output_hw() == (6, 6)


def test_scaled_config_preserves_structure():
    config = CapsNetConfig.scaled(num_classes=5)
    assert config.num_classes == 5
    assert config.primary_dim == 8
    assert config.class_caps_dim == 16
    assert config.num_low_capsules > 0


def test_config_rejects_too_small_input():
    config = CapsNetConfig(input_shape=(1, 10, 10))
    with pytest.raises(ValueError):
        config.primary_output_hw()


def test_decoder_config_layer_sizes():
    decoder = DecoderConfig(hidden_sizes=(32, 64))
    assert decoder.layer_sizes(10, 100) == [(10, 32), (32, 64), (64, 100)]


def test_forward_output_shapes(tiny_capsnet, tiny_capsnet_config):
    batch = 3
    images = np.random.default_rng(0).random((batch, *tiny_capsnet_config.input_shape)).astype(np.float32)
    result = tiny_capsnet.forward(images)
    assert result.class_capsules.shape == (batch, tiny_capsnet_config.num_classes, 16)
    assert result.lengths.shape == (batch, tiny_capsnet_config.num_classes)
    assert result.predictions.shape == (batch,)
    assert result.reconstruction is not None
    assert result.reconstruction.shape == (batch, tiny_capsnet_config.num_pixels)


def test_forward_without_decoder(tiny_capsnet, tiny_capsnet_config):
    images = np.zeros((2, *tiny_capsnet_config.input_shape), dtype=np.float32)
    result = tiny_capsnet.forward(images, run_decoder=False)
    assert result.reconstruction is None


def test_predictions_within_class_range(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(1).random((4, *tiny_capsnet_config.input_shape)).astype(np.float32)
    preds = tiny_capsnet.predict(images)
    assert np.all(preds >= 0)
    assert np.all(preds < tiny_capsnet_config.num_classes)


def test_lengths_bounded_by_one(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(2).random((4, *tiny_capsnet_config.input_shape)).astype(np.float32)
    result = tiny_capsnet.forward(images, run_decoder=False)
    assert np.all(result.lengths <= 1.0 + 1e-5)


def test_reconstruction_range_is_sigmoid_bounded(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(3).random((2, *tiny_capsnet_config.input_shape)).astype(np.float32)
    result = tiny_capsnet.forward(images)
    assert np.all(result.reconstruction >= 0.0)
    assert np.all(result.reconstruction <= 1.0)


def test_decoder_uses_true_label_mask_when_given(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(4).random((2, *tiny_capsnet_config.input_shape)).astype(np.float32)
    labels = one_hot(np.array([0, 1]), tiny_capsnet_config.num_classes)
    with_labels = tiny_capsnet.forward(images, labels_onehot=labels)
    without_labels = tiny_capsnet.forward(images)
    # Reconstructions differ when the mask differs from the predicted class.
    assert with_labels.reconstruction.shape == without_labels.reconstruction.shape


def test_accuracy_perfect_on_own_predictions(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(5).random((6, *tiny_capsnet_config.input_shape)).astype(np.float32)
    preds = tiny_capsnet.predict(images)
    assert tiny_capsnet.accuracy(images, preds) == pytest.approx(1.0)


def test_parameter_count_positive_and_consistent(tiny_capsnet):
    total = tiny_capsnet.parameter_count
    assert total > 0
    assert total == sum(layer.parameter_count for layer in tiny_capsnet.trainable_layers)


def test_state_dict_round_trip(tiny_capsnet_config):
    model_a = CapsNet(tiny_capsnet_config, seed=0)
    model_b = CapsNet(tiny_capsnet_config, seed=99)
    images = np.random.default_rng(6).random((2, *tiny_capsnet_config.input_shape)).astype(np.float32)
    before = model_b.forward(images, run_decoder=False).lengths
    model_b.load_state_dict(model_a.state_dict())
    after_a = model_a.forward(images, run_decoder=False).lengths
    after_b = model_b.forward(images, run_decoder=False).lengths
    np.testing.assert_allclose(after_a, after_b, rtol=1e-6)
    assert not np.allclose(before, after_b)


def test_load_state_dict_missing_key_raises(tiny_capsnet):
    state = tiny_capsnet.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        tiny_capsnet.load_state_dict(state)


def test_load_state_dict_shape_mismatch_raises(tiny_capsnet):
    state = tiny_capsnet.state_dict()
    key = next(iter(state))
    state[key] = np.zeros((1, 1), dtype=np.float32)
    with pytest.raises(ValueError):
        tiny_capsnet.load_state_dict(state)


def test_same_seed_gives_identical_models(tiny_capsnet_config):
    images = np.random.default_rng(7).random((2, *tiny_capsnet_config.input_shape)).astype(np.float32)
    a = CapsNet(tiny_capsnet_config, seed=5).forward(images, run_decoder=False).lengths
    b = CapsNet(tiny_capsnet_config, seed=5).forward(images, run_decoder=False).lengths
    np.testing.assert_array_equal(a, b)


def test_approximate_context_model_close_to_exact(tiny_capsnet_config):
    images = np.random.default_rng(8).random((3, *tiny_capsnet_config.input_shape)).astype(np.float32)
    exact_model = CapsNet(tiny_capsnet_config, context=MathContext.exact(), seed=1)
    approx_model = CapsNet(tiny_capsnet_config, context=MathContext.approximate(), seed=1)
    approx_model.load_state_dict(exact_model.state_dict())
    exact_lengths = exact_model.forward(images, run_decoder=False).lengths
    approx_lengths = approx_model.forward(images, run_decoder=False).lengths
    np.testing.assert_allclose(approx_lengths, exact_lengths, atol=0.05)


def test_backward_from_losses_populates_gradients(tiny_capsnet, tiny_capsnet_config):
    images = np.random.default_rng(9).random((2, *tiny_capsnet_config.input_shape)).astype(np.float32)
    labels = one_hot(np.array([0, 1]), tiny_capsnet_config.num_classes)
    tiny_capsnet.zero_grads()
    result = tiny_capsnet.forward(images, labels_onehot=labels)
    tiny_capsnet.backward_from_losses(result, labels, images)
    grads = tiny_capsnet.class_caps.grads["weight"]
    assert np.any(grads != 0.0)
