"""Tests for the CapsNet trainer."""

import numpy as np
import pytest

from repro.capsnet.model import CapsNet, CapsNetConfig
from repro.capsnet.training import Trainer


def build_model(num_classes=3, seed=0, use_decoder=False):
    config = CapsNetConfig.scaled(input_shape=(1, 16, 16), num_classes=num_classes, scale=0.05)
    if not use_decoder:
        config = CapsNetConfig(
            **{**config.__dict__, "use_decoder": False}
        )
    return CapsNet(config, seed=seed)


def test_trainer_rejects_bad_learning_rate(toy_dataset):
    with pytest.raises(ValueError):
        Trainer(build_model(), learning_rate=0.0)


def test_trainer_rejects_bad_momentum():
    with pytest.raises(ValueError):
        Trainer(build_model(), momentum=1.5)


def test_trainer_rejects_unknown_optimizer():
    with pytest.raises(ValueError):
        Trainer(build_model(), optimizer="rmsprop")


def test_train_step_returns_finite_loss(toy_dataset):
    model = build_model()
    trainer = Trainer(model, reconstruction_weight=0.0)
    images, _, onehot = next(toy_dataset.train_batches(8))
    loss = trainer.train_step(images, onehot)
    assert np.isfinite(loss)
    assert loss > 0


def test_train_step_changes_parameters(toy_dataset):
    model = build_model()
    trainer = Trainer(model, reconstruction_weight=0.0)
    before = model.class_caps.params["weight"].copy()
    images, _, onehot = next(toy_dataset.train_batches(8))
    trainer.train_step(images, onehot)
    assert not np.allclose(before, model.class_caps.params["weight"])


def test_sgd_training_reduces_loss(toy_dataset):
    model = build_model(seed=1)
    trainer = Trainer(model, learning_rate=0.05, reconstruction_weight=0.0, seed=2)
    result = trainer.fit(toy_dataset, epochs=3, batch_size=8)
    assert result.epoch_losses[-1] < result.epoch_losses[0]


def test_sgd_training_learns_toy_dataset(toy_dataset):
    model = build_model(seed=1)
    trainer = Trainer(model, learning_rate=0.05, reconstruction_weight=0.0, seed=2)
    result = trainer.fit(toy_dataset, epochs=4, batch_size=8)
    assert result.test_accuracy > 0.8


def test_adam_training_learns_toy_dataset(toy_dataset):
    model = build_model(seed=3)
    trainer = Trainer(model, learning_rate=0.003, optimizer="adam", reconstruction_weight=0.0, seed=2)
    result = trainer.fit(toy_dataset, epochs=3, batch_size=8)
    assert result.test_accuracy > 0.8


def test_training_with_decoder_runs(toy_dataset):
    model = build_model(seed=4, use_decoder=True)
    trainer = Trainer(model, learning_rate=0.03, reconstruction_weight=0.001, seed=2)
    result = trainer.fit(toy_dataset, epochs=1, batch_size=8)
    assert len(result.epoch_losses) == 1
    assert np.isfinite(result.epoch_losses[0])


def test_fit_rejects_zero_epochs(toy_dataset):
    trainer = Trainer(build_model())
    with pytest.raises(ValueError):
        trainer.fit(toy_dataset, epochs=0)


def test_training_result_fields(toy_dataset):
    trainer = Trainer(build_model(seed=5), reconstruction_weight=0.0)
    result = trainer.fit(toy_dataset, epochs=2, batch_size=8)
    assert result.epochs == 2
    assert len(result.epoch_losses) == 2
    assert 0.0 <= result.train_accuracy <= 1.0
    assert 0.0 <= result.test_accuracy <= 1.0
