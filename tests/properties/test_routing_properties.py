"""Property-based tests for the routing procedure invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsnet.routing import DynamicRouting


@st.composite
def prediction_vectors(draw):
    batch = draw(st.integers(min_value=1, max_value=3))
    num_low = draw(st.integers(min_value=2, max_value=8))
    num_high = draw(st.integers(min_value=2, max_value=5))
    dim = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    scale = draw(st.floats(min_value=0.01, max_value=2.0))
    return rng.normal(scale=scale, size=(batch, num_low, num_high, dim)).astype(np.float32)


@settings(max_examples=25, deadline=None)
@given(prediction_vectors(), st.integers(min_value=1, max_value=4))
def test_routing_output_shape_and_norm(u_hat, iterations):
    result = DynamicRouting(iterations=iterations)(u_hat)
    batch, _, num_high, dim = u_hat.shape
    assert result.high_capsules.shape == (batch, num_high, dim)
    norms = np.linalg.norm(result.high_capsules, axis=-1)
    assert np.all(norms <= 1.0 + 1e-4)
    assert np.all(np.isfinite(result.high_capsules))


@settings(max_examples=25, deadline=None)
@given(prediction_vectors(), st.integers(min_value=1, max_value=4))
def test_routing_coefficients_are_distributions(u_hat, iterations):
    result = DynamicRouting(iterations=iterations)(u_hat)
    sums = np.sum(result.coefficients, axis=-1)
    np.testing.assert_allclose(sums, 1.0, atol=1e-4)
    assert np.all(result.coefficients >= 0)


@settings(max_examples=20, deadline=None)
@given(prediction_vectors())
def test_routing_is_deterministic(u_hat):
    a = DynamicRouting(iterations=2)(u_hat)
    b = DynamicRouting(iterations=2)(u_hat)
    np.testing.assert_array_equal(a.high_capsules, b.high_capsules)


@settings(max_examples=20, deadline=None)
@given(prediction_vectors(), st.integers(min_value=0, max_value=2**16))
def test_routing_invariant_to_low_capsule_permutation(u_hat, seed):
    # The weighted sum aggregates over the low-capsule axis and the routing
    # coefficients are indexed per low capsule, so permuting the low capsules
    # must leave the routed high-level capsules unchanged.
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(u_hat.shape[1])
    base = DynamicRouting(iterations=2)(u_hat)
    permuted = DynamicRouting(iterations=2)(u_hat[:, permutation, :, :])
    np.testing.assert_allclose(
        permuted.high_capsules, base.high_capsules, rtol=1e-4, atol=1e-5
    )
    np.testing.assert_allclose(
        permuted.coefficients, base.coefficients[permutation], rtol=1e-4, atol=1e-5
    )
