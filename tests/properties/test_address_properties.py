"""Property-based tests for the HMC address mappings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmc.address import CustomAddressMapping, DefaultAddressMapping
from repro.hmc.config import HMCConfig

addresses = st.integers(min_value=0, max_value=(1 << 33) - 16)
request_sizes = st.sampled_from([16, 32, 64, 128, 256])


@settings(max_examples=80, deadline=None)
@given(addresses, request_sizes)
def test_custom_mapping_fields_in_range(address, request_bytes):
    config = HMCConfig()
    mapped = CustomAddressMapping(config).map(address, request_bytes)
    assert 0 <= mapped.vault < config.num_vaults
    assert 0 <= mapped.bank < config.banks_per_vault
    assert mapped.subpage >= 0
    assert 0 <= mapped.block_offset < config.max_block_bytes // config.block_bytes


@settings(max_examples=80, deadline=None)
@given(addresses)
def test_default_mapping_fields_in_range(address):
    config = HMCConfig()
    mapped = DefaultAddressMapping(config).map(address)
    assert 0 <= mapped.vault < config.num_vaults
    assert 0 <= mapped.bank < config.banks_per_vault


@settings(max_examples=60, deadline=None)
@given(addresses, request_sizes)
def test_custom_mapping_deterministic(address, request_bytes):
    config = HMCConfig()
    mapping = CustomAddressMapping(config)
    assert mapping.map(address, request_bytes) == mapping.map(address, request_bytes)


@settings(max_examples=60, deadline=None)
@given(addresses, request_sizes)
def test_custom_mapping_blocks_of_one_request_share_vault_and_bank(address, request_bytes):
    # All blocks belonging to a single PE request (one sub-page) must live in
    # the same vault and bank so the request is served by one bank burst.
    config = HMCConfig()
    mapping = CustomAddressMapping(config)
    aligned = (address // request_bytes) * request_bytes
    mapped = [mapping.map(aligned + offset, request_bytes) for offset in range(0, request_bytes, 16)]
    assert len({m.vault for m in mapped}) == 1
    assert len({m.bank for m in mapped}) == 1


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 20))
def test_custom_mapping_consecutive_blocks_stay_in_one_vault(block_index):
    config = HMCConfig()
    mapping = CustomAddressMapping(config)
    base = block_index * config.block_bytes
    vaults = {mapping.map(base + i * config.block_bytes).vault for i in range(64)}
    assert len(vaults) == 1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=64))
def test_conflict_factors_ordering(requesters):
    config = HMCConfig()
    custom = CustomAddressMapping(config).bank_conflict_factor(requesters)
    default = DefaultAddressMapping(config).bank_conflict_factor(requesters)
    assert custom >= 1.0
    assert default >= 1.0
    if requesters > 2:
        assert custom < default
