"""Property-based tests for the inter-vault workload distributor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import WorkloadDistributor
from repro.hmc.config import HMCConfig
from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.parallelism import Dimension
from repro.workloads.rp_model import RoutingWorkload


@st.composite
def benchmark_configs(draw):
    return BenchmarkConfig(
        name="Caps-Prop",
        dataset="MNIST",
        batch_size=draw(st.integers(min_value=1, max_value=64)),
        num_low_capsules=draw(st.integers(min_value=4, max_value=512)),
        num_high_capsules=draw(st.integers(min_value=2, max_value=64)),
        routing_iterations=draw(st.integers(min_value=1, max_value=6)),
    )


@st.composite
def hmc_configs(draw):
    return HMCConfig(
        num_vaults=draw(st.sampled_from([4, 8, 16, 32])),
        banks_per_vault=draw(st.sampled_from([4, 8, 16])),
        pes_per_vault=draw(st.sampled_from([4, 8, 16])),
        pe_frequency_mhz=draw(st.sampled_from([312.5, 625.0, 937.5])),
    )


@settings(max_examples=30, deadline=None)
@given(benchmark_configs(), hmc_configs())
def test_plans_are_internally_consistent(benchmark, hmc):
    distributor = WorkloadDistributor(benchmark, hmc)
    for dimension, plan in distributor.all_plans().items():
        assert plan.dimension is dimension
        assert plan.vaults_used >= 1
        assert plan.vaults_used <= hmc.num_vaults
        assert plan.per_vault_operations.total_operations > 0
        # Distribution adds a small amount of cross-vault reduction work and
        # replicates the non-parallelizable remainder onto the critical vault,
        # so the per-vault workload may slightly exceed an exact 1/N share of
        # the total for degenerate (tiny) configurations -- but it must never
        # exceed the total by more than that overhead.
        reduction_overhead = (
            benchmark.routing_iterations
            * benchmark.num_low_capsules
            * benchmark.num_high_capsules
            * hmc.num_vaults
        )
        assert (
            plan.per_vault_operations.total_operations
            <= plan.total_operations.total_operations + reduction_overhead
        )
        assert plan.per_vault_dram_bytes > 0
        assert plan.per_vault_dram_bytes <= plan.total_dram_bytes
        assert plan.crossbar_payload_bytes >= 0
        assert plan.crossbar_packets >= 0


@settings(max_examples=30, deadline=None)
@given(benchmark_configs(), hmc_configs())
def test_best_plan_has_maximal_score(benchmark, hmc):
    distributor = WorkloadDistributor(benchmark, hmc)
    scores = distributor.scores()
    best = distributor.best_plan()
    assert scores[best.dimension] >= max(scores.values()) - 1e-12


@settings(max_examples=30, deadline=None)
@given(benchmark_configs())
def test_total_dram_bytes_exceed_intermediates(benchmark):
    distributor = WorkloadDistributor(benchmark)
    footprint = RoutingWorkload(benchmark).footprint()
    plan = distributor.plan_for_dimension(Dimension.LOW)
    assert plan.total_dram_bytes >= footprint.predictions


@settings(max_examples=30, deadline=None)
@given(benchmark_configs())
def test_workload_model_flop_counts_positive_and_monotone_in_iterations(benchmark):
    workload = RoutingWorkload(benchmark)
    assert workload.total_flops() > 0
    assert workload.total_flops() >= workload.flops_prediction()
    more_iterations = BenchmarkConfig(
        name=benchmark.name,
        dataset=benchmark.dataset,
        batch_size=benchmark.batch_size,
        num_low_capsules=benchmark.num_low_capsules,
        num_high_capsules=benchmark.num_high_capsules,
        routing_iterations=benchmark.routing_iterations + 1,
    )
    assert RoutingWorkload(more_iterations).total_flops() > workload.total_flops()
