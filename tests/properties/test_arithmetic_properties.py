"""Property-based tests for the approximate arithmetic (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.approx import (
    approx_div,
    approx_exp,
    approx_inv_sqrt,
    approx_reciprocal,
)
from repro.arithmetic.context import MathContext
from repro.arithmetic.fp32 import compose, decompose

finite_floats = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=0.001, max_value=1e4, allow_nan=False, allow_infinity=False)


@settings(max_examples=60, deadline=None)
@given(finite_floats)
def test_exp_relative_error_bounded(x):
    approx = float(approx_exp(np.float32(x)))
    exact = float(np.exp(np.float32(x)))
    assert abs(approx - exact) <= 0.05 * abs(exact) + 1e-30


@settings(max_examples=60, deadline=None)
@given(finite_floats, finite_floats)
def test_exp_monotonicity(a, b):
    lo, hi = sorted((a, b))
    assert float(approx_exp(np.float32(lo))) <= float(approx_exp(np.float32(hi))) * (1 + 1e-6)


@settings(max_examples=60, deadline=None)
@given(positive_floats)
def test_inv_sqrt_relative_error_bounded(x):
    approx = float(approx_inv_sqrt(np.float32(x)))
    exact = 1.0 / np.sqrt(np.float64(x))
    assert abs(approx - exact) <= 0.005 * exact


@settings(max_examples=60, deadline=None)
@given(positive_floats)
def test_reciprocal_times_value_close_to_one(x):
    product = float(np.float32(x) * approx_reciprocal(np.float32(x)))
    assert abs(product - 1.0) < 0.01


@settings(max_examples=60, deadline=None)
@given(finite_floats, positive_floats)
def test_division_consistent_with_reciprocal(numerator, denominator):
    direct = float(approx_div(np.float32(numerator), np.float32(denominator)))
    exact = numerator / denominator
    assert abs(direct - exact) <= 0.02 * abs(exact) + 1e-4


@settings(max_examples=80, deadline=None)
@given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False))
def test_fp32_decompose_compose_round_trip(x):
    fields = decompose(np.float32(x))
    rebuilt = compose(fields.sign, fields.exponent, fields.fraction)
    assert float(rebuilt) == float(np.float32(x)) or (np.isnan(rebuilt) and np.isnan(x))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-5.0, max_value=5.0, allow_nan=False), min_size=2, max_size=16)
)
def test_softmax_is_distribution_under_both_contexts(logits):
    arr = np.array(logits, dtype=np.float32)
    for ctx in (MathContext.exact(), MathContext.approximate()):
        out = ctx.softmax(arr, axis=-1)
        assert np.all(out >= 0)
        assert abs(float(np.sum(out)) - 1.0) < 0.05


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=2, max_size=16
    )
)
def test_squash_never_exceeds_unit_norm(vector):
    arr = np.array(vector, dtype=np.float32).reshape(1, -1)
    for ctx in (MathContext.exact(), MathContext.approximate()):
        norm = float(np.linalg.norm(ctx.squash(arr, axis=-1)))
        assert norm <= 1.0 + 5e-3
