"""Unit tests for :mod:`repro.serve.state` (sessions, metrics, drain)."""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.api.scenario import Scenario
from repro.serve.errors import Draining
from repro.serve.state import Metrics, ServeConfig, ServerState, _percentile


@pytest.fixture
def state(tmp_path):
    return ServerState(ServeConfig(port=0, cache_dir=str(tmp_path / "cache")))


# ---------------------------------------------------------------- sessions


def test_session_for_reuses_warm_sessions(state):
    scenario = Scenario.default()
    first = state.session_for(scenario)
    second = state.session_for(scenario)
    assert first is second
    assert state.session_count == 1


def test_sessions_keyed_by_content_not_name(state):
    base = Scenario.default()
    renamed = dataclasses.replace(base, name="renamed")
    assert renamed.content_hash() == base.content_hash()
    state.session_for(base)
    session = state.session_for(renamed)
    # Same content slot (no second warm context), but the session carries
    # the requested name so compare legends and reports stay truthful.
    assert state.session_count == 1
    assert session.scenario.name == "renamed"


def test_session_lru_evicts_past_capacity(tmp_path):
    state = ServerState(
        ServeConfig(port=0, max_sessions=2, cache_dir=str(tmp_path / "cache"))
    )
    base = Scenario.default()
    first = base.with_set(["hmc.pe_frequency_mhz=100"])
    second = base.with_set(["hmc.pe_frequency_mhz=200"])
    third = base.with_set(["hmc.pe_frequency_mhz=300"])
    oldest = state.session_for(first)
    state.session_for(second)
    state.session_for(third)  # evicts `first`, the least recently used
    assert state.session_count == 2
    assert state.sessions_evicted == 1
    assert state.session_for(third) is not oldest
    assert state.session_for(first) is not oldest  # rebuilt, not resurrected


def test_max_sessions_must_be_positive():
    with pytest.raises(ValueError, match="max_sessions"):
        ServeConfig(port=0, max_sessions=0)


# ------------------------------------------------------------------- drain


def test_begin_work_refused_while_draining(state):
    state.begin_work()
    state.start_draining()
    with pytest.raises(Draining):
        state.begin_work()
    assert state.active_work == 1
    state.end_work()
    assert state.drain(timeout=1.0) is True


def test_drain_waits_for_inflight_work(state):
    state.begin_work()
    released = threading.Event()
    drained = threading.Event()

    def drain():
        assert state.drain(timeout=10.0) is True
        assert released.is_set()  # drain only returned after end_work
        drained.set()

    state.start_draining()
    thread = threading.Thread(target=drain)
    thread.start()
    assert state.drain(timeout=0.05) is False  # still one active request
    released.set()
    state.end_work()
    assert drained.wait(5)
    thread.join(timeout=5)


# ----------------------------------------------------------------- metrics


def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(samples, 0.0) == 1.0
    assert _percentile(samples, 0.5) == 3.0  # round(0.5 * 3) == 2
    assert _percentile(samples, 0.99) == 4.0
    assert _percentile([7.0], 0.5) == 7.0


def test_metrics_snapshot_counts_by_endpoint_and_status():
    metrics = Metrics()
    for seconds in (0.010, 0.020, 0.030):
        metrics.begin()
        metrics.record("POST /v1/run", 200, seconds)
    metrics.begin()
    metrics.record("POST /v1/run", 400, 0.001)
    snapshot = metrics.snapshot()
    assert snapshot["requests"] == {"POST /v1/run": {"200": 3, "400": 1}}
    assert snapshot["requests_in_flight"] == 0
    latency = snapshot["latency_seconds"]["POST /v1/run"]
    assert latency["count"] == 4
    assert latency["p50_seconds"] == 0.020
    assert latency["p99_seconds"] == 0.030
    assert snapshot["latency_seconds"]["overall"]["count"] == 4


def test_state_snapshot_includes_cache_and_run_counters(state):
    snapshot = state.metrics_snapshot()
    assert snapshot["draining"] is False
    assert snapshot["runs"] == {
        "executed": 0,
        "coalesced": 0,
        "in_flight": 0,
        "waiting": 0,
    }
    assert snapshot["sessions"]["capacity"] == state.config.max_sessions
    assert snapshot["disk_cache"]["enabled"] is True
    assert snapshot["model_cache"]["enabled"] is True
    assert snapshot["simulations_executed"] == 0


def test_caches_disabled_when_use_cache_false():
    state = ServerState(ServeConfig(port=0, use_cache=False))
    assert state.disk_cache is None
    snapshot = state.metrics_snapshot()
    assert snapshot["disk_cache"] == {
        "enabled": False,
        "hits": 0,
        "misses": 0,
        "hit_rate": 0.0,
        "corrupt_artifacts": 0,
        "write_errors": 0,
        "read_only": False,
    }
    state.flush()  # no-op without a disk cache
