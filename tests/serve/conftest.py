"""Shared fixtures for the ``repro serve`` test suite.

The servers under test run in-process (a daemon thread around
:meth:`~repro.serve.app.ReproServer.serve_forever`) on an OS-assigned port,
and are driven over real sockets with :mod:`urllib.request` -- the tests
exercise the exact byte stream a curl client would see, including chunked
NDJSON sweep streams.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ReproServer, ServeConfig


class ServeClient:
    """A minimal JSON client for one bound test server."""

    def __init__(self, url: str):
        self.url = url

    def request(self, method: str, path: str, body=None, timeout: float = 120.0):
        """(status, parsed JSON body) of one request; 4xx/5xx do not raise."""
        data = None
        headers = {}
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode())
        except urllib.error.HTTPError as error:
            raw = error.read().decode()
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = raw
            return error.code, payload

    def get(self, path: str, timeout: float = 120.0):
        return self.request("GET", path, timeout=timeout)

    def post(self, path: str, body=None, timeout: float = 120.0):
        return self.request("POST", path, body=body, timeout=timeout)

    def stream(self, path: str, body, timeout: float = 300.0):
        """(status, headers, parsed NDJSON events) of one streaming POST."""
        data = json.dumps(body).encode()
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            headers = dict(response.headers)
            text = response.read().decode()
        events = [json.loads(line) for line in text.splitlines() if line.strip()]
        return status, headers, events

    def wait_metrics(self, predicate, timeout: float = 20.0) -> dict:
        """Poll ``/metrics`` until ``predicate(snapshot)`` holds (or fail)."""
        deadline = time.monotonic() + timeout
        snapshot = {}
        while time.monotonic() < deadline:
            status, snapshot = self.get("/metrics")
            assert status == 200
            if predicate(snapshot):
                return snapshot
            time.sleep(0.02)
        raise AssertionError(f"metrics never satisfied predicate: {snapshot}")


@pytest.fixture
def serve_factory():
    """Start in-process servers on free ports; guarantees shutdown."""
    running = []

    def factory(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("quiet", True)
        server = ReproServer(ServeConfig(**overrides))
        exit_code = {}

        def target():
            exit_code["value"] = server.serve_forever()

        thread = threading.Thread(target=target, name="serve-test", daemon=True)
        thread.start()
        # Attached for tests asserting the clean-exit contract.
        server.test_exit_code = exit_code
        running.append(server)
        return server

    yield factory
    for server in running:
        server.shutdown()
        assert server.wait_stopped(timeout=30)


@pytest.fixture
def server(serve_factory):
    return serve_factory()


@pytest.fixture
def client(server):
    return ServeClient(server.url)


@pytest.fixture
def make_client():
    """Build a :class:`ServeClient` for a server the test started itself."""
    return lambda server: ServeClient(server.url)


@pytest.fixture
def blocking_experiment():
    """A registered experiment that blocks until the test releases its gate.

    Lets tests hold requests in flight deterministically (coalescing, drain)
    and count underlying executions exactly.  The registration is removed --
    and any stuck run released -- on teardown so the process-global registry
    stays clean for the rest of the suite.
    """
    from repro.engine import experiment as experiment_registry

    class BlockingExperiment(experiment_registry.Experiment):
        name = "serve-test-block"
        title = "Blocks until released (serve test fixture)"
        gate = threading.Event()
        started = threading.Event()
        runs = 0
        _runs_lock = threading.Lock()

        def run(self, context, benchmarks=None):
            cls = type(self)
            with cls._runs_lock:
                cls.runs += 1
            cls.started.set()
            assert cls.gate.wait(timeout=60), "test never released the gate"
            return {"released": True}

        def format_report(self, result) -> str:
            return "serve-test-block: released"

        def to_dict(self, result) -> dict:
            return {"experiment": self.name, "title": self.title, "data": result}

    experiment_registry.register_experiment(BlockingExperiment)
    try:
        yield BlockingExperiment
    finally:
        BlockingExperiment.gate.set()
        with experiment_registry._REGISTRY_LOCK:
            experiment_registry._REGISTRY.pop(BlockingExperiment.name, None)
