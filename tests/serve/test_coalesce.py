"""Deterministic unit tests for :mod:`repro.serve.coalesce`."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.coalesce import Coalescer


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.002)


def test_single_call_executes_directly():
    coalescer = Coalescer()
    result, coalesced = coalescer.run("key", lambda: {"value": 1})
    assert result == {"value": 1}
    assert coalesced is False
    assert coalescer.executed == 1
    assert coalescer.coalesced == 0
    assert coalescer.in_flight == 0
    assert coalescer.waiting == 0


def test_identical_inflight_calls_share_one_execution():
    coalescer = Coalescer()
    gate = threading.Event()
    entered = threading.Event()
    calls = []

    def work():
        calls.append(threading.get_ident())
        entered.set()
        assert gate.wait(10)
        return {"value": 42}

    results = []
    results_lock = threading.Lock()

    def invoke():
        outcome = coalescer.run("key", work)
        with results_lock:
            results.append(outcome)

    threads = [threading.Thread(target=invoke) for _ in range(4)]
    for thread in threads:
        thread.start()
    assert entered.wait(5)
    _wait_until(lambda: coalescer.waiting == 3)
    assert coalescer.in_flight == 1
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()

    assert len(calls) == 1  # the leader ran the work exactly once
    objects = [result for result, _ in results]
    assert all(obj is objects[0] for obj in objects)  # shared, not recomputed
    assert sorted(flag for _, flag in results) == [False, True, True, True]
    assert coalescer.executed == 1
    assert coalescer.coalesced == 3
    assert coalescer.in_flight == 0
    assert coalescer.waiting == 0


def test_sequential_identical_calls_do_not_coalesce():
    # Coalescing is in-flight dedup, not a result cache: once the leader
    # finishes, the next identical call runs the work again.
    coalescer = Coalescer()
    counter = []
    for _ in range(3):
        result, coalesced = coalescer.run("key", lambda: counter.append(1) or len(counter))
        assert coalesced is False
    assert len(counter) == 3
    assert coalescer.executed == 3
    assert coalescer.coalesced == 0


def test_distinct_keys_run_independently():
    coalescer = Coalescer()
    gate = threading.Event()
    entered = threading.Barrier(2, timeout=10)

    def work(tag):
        entered.wait()
        assert gate.wait(10)
        return tag

    results = {}

    def invoke(key):
        results[key], _ = coalescer.run(key, lambda: work(key))

    threads = [threading.Thread(target=invoke, args=(key,)) for key in ("a", "b")]
    for thread in threads:
        thread.start()
    # Both leaders entered their work concurrently: no cross-key blocking.
    _wait_until(lambda: coalescer.in_flight == 2)
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
    assert results == {"a": "a", "b": "b"}
    assert coalescer.executed == 2
    assert coalescer.coalesced == 0


def test_leader_error_propagates_to_followers():
    coalescer = Coalescer()
    gate = threading.Event()
    boom = ValueError("simulation exploded")

    def work():
        assert gate.wait(10)
        raise boom

    errors = []

    def invoke():
        try:
            coalescer.run("key", work)
        except ValueError as error:
            errors.append(error)

    threads = [threading.Thread(target=invoke) for _ in range(3)]
    for thread in threads:
        thread.start()
    _wait_until(lambda: coalescer.waiting == 2)
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
    assert len(errors) == 3
    assert all(error is boom for error in errors)
    # A failed run is not counted as executed work.
    assert coalescer.executed == 0
    assert coalescer.in_flight == 0


def test_failed_key_can_run_again():
    coalescer = Coalescer()

    def fail():
        raise RuntimeError("transient")

    with pytest.raises(RuntimeError):
        coalescer.run("key", fail)
    result, coalesced = coalescer.run("key", lambda: "recovered")
    assert (result, coalesced) == ("recovered", False)
    assert coalescer.executed == 1
