"""End-to-end protocol tests for the ``repro serve`` HTTP/JSON service.

Every test drives a real in-process server over sockets (see
``tests/serve/conftest.py``), so these cover the full stack: routing, JSON
parsing, structured errors, coalescing, warm caches, NDJSON sweep streaming
and the graceful drain lifecycle.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.api.scenario import Scenario
from repro.cli import main


# ----------------------------------------------------------------- GET views


def test_healthz_reports_ok(client):
    status, payload = client.get("/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["active_work"] == 0
    assert payload["uptime_seconds"] >= 0


def test_workloads_lists_the_catalog(client):
    status, payload = client.get("/v1/workloads")
    assert status == 200
    assert payload["count"] == len(payload["workloads"])
    names = [spec["name"] for spec in payload["workloads"]]
    assert "Caps-MN1" in names
    assert "Caps-SV3" in names


def test_presets_lists_scenarios_and_sweeps(client):
    status, payload = client.get("/v1/presets")
    assert status == 200
    assert "paper-default" in payload["scenarios"]
    assert "fig18-frequency" in payload["sweeps"]


def test_metrics_shape(client):
    status, _ = client.post(
        "/v1/run", {"experiments": ["fig16"], "benchmarks": ["Caps-MN1"]}
    )
    assert status == 200
    # Counters are recorded *before* the response bytes go out, so a client
    # that has read its response sees the request on an immediate probe.
    status, payload = client.get("/metrics")
    assert status == 200
    assert payload["requests"]["POST /v1/run"]["200"] == 1
    overall = payload["latency_seconds"]["overall"]
    assert overall["count"] >= 1
    assert overall["p99_seconds"] >= overall["p50_seconds"] >= 0
    assert payload["sessions"]["capacity"] >= 1
    assert payload["disk_cache"]["enabled"] is True
    assert payload["draining"] is False


# ------------------------------------------------------------------ /v1/run


def test_run_report_is_byte_identical_to_cli_reproduce(client, capsys):
    status, payload = client.post("/v1/run", {"experiments": ["fig15", "fig16"]})
    assert status == 200
    assert payload["experiments"] == ["fig15", "fig16"]
    assert payload["scenario"]["name"] == "paper-default"
    assert payload["coalesced"] is False

    assert main(["reproduce", "--only", "fig15", "fig16"]) == 0
    cli_text = capsys.readouterr().out
    assert payload["report"] + "\n" == cli_text


def test_second_identical_run_is_warm(client):
    body = {"experiments": ["fig15"], "benchmarks": ["Caps-MN1", "Caps-CF1"]}
    status, first = client.post("/v1/run", body)
    assert status == 200
    _, metrics = client.get("/metrics")
    executed_simulations = metrics["simulations_executed"]
    assert executed_simulations > 0

    status, second = client.post("/v1/run", body)
    assert status == 200
    assert second["report"] == first["report"]
    assert second["data"] == first["data"]
    _, metrics = client.get("/metrics")
    # The warm session memoized everything: the repeat ran no simulations.
    assert metrics["simulations_executed"] == executed_simulations
    assert metrics["runs"]["executed"] == 2  # sequential, so no coalescing
    assert metrics["runs"]["coalesced"] == 0


def test_run_honors_set_overrides(client):
    body = {"experiments": ["fig16"], "set": ["hmc.pe_frequency_mhz=625"]}
    status, payload = client.post("/v1/run", body)
    assert status == 200
    expected = Scenario.default().with_set(["hmc.pe_frequency_mhz=625"])
    assert payload["scenario"]["content_hash"] == expected.content_hash()


def test_run_accepts_inline_workloads(client):
    spec = Scenario.default().catalog.get("Caps-MN1").to_dict()
    spec["name"] = "Caps-Inline"
    body = {
        "workloads": [spec],
        "benchmarks": ["Caps-Inline"],
        "experiments": ["fig15"],
    }
    status, payload = client.post("/v1/run", body)
    assert status == 200
    assert "Caps-Inline" in payload["report"]


def test_run_with_scenario_preset_name(client):
    status, payload = client.post(
        "/v1/run", {"scenario": "paper-default", "experiments": ["fig16"]}
    )
    assert status == 200
    assert payload["scenario"]["name"] == "paper-default"


# ----------------------------------------------------------- structured 4xx


def _error_code(payload) -> str:
    assert isinstance(payload, dict), f"expected a JSON error body, got {payload!r}"
    assert "Traceback" not in str(payload)  # stack traces never leak
    return payload["error"]["code"]


def test_malformed_json_is_a_structured_400(client):
    status, payload = client.post("/v1/run", b"{not json")
    assert status == 400
    assert _error_code(payload) == "invalid_json"


def test_missing_body_is_a_structured_400(client):
    status, payload = client.post("/v1/run", b"")
    assert status == 400
    assert _error_code(payload) in ("missing_body", "invalid_json")


def test_unknown_field_is_a_structured_400(client):
    status, payload = client.post("/v1/run", {"experiment": ["fig15"]})
    assert status == 400
    assert _error_code(payload) == "unknown_field"
    assert "experiment" in payload["error"]["message"]


def test_unknown_experiment_is_a_structured_400(client):
    status, payload = client.post("/v1/run", {"experiments": ["fig99"]})
    assert status == 400
    assert _error_code(payload) == "unknown_experiment"


def test_unknown_benchmark_is_a_structured_400(client):
    status, payload = client.post("/v1/run", {"benchmarks": ["Caps-Nope"]})
    assert status == 400
    assert _error_code(payload) == "unknown_benchmark"


def test_unknown_scenario_preset_is_a_structured_400(client):
    status, payload = client.post("/v1/run", {"scenario": "warp-drive"})
    assert status == 400
    assert _error_code(payload) == "unknown_scenario"


def test_invalid_override_is_a_structured_400(client):
    status, payload = client.post("/v1/run", {"set": ["hmc.warp_factor=9"]})
    assert status == 400
    assert _error_code(payload) == "invalid_override"


def test_non_object_body_is_a_structured_400(client):
    status, payload = client.post("/v1/run", b"[1, 2, 3]")
    assert status == 400
    assert _error_code(payload) == "invalid_body"


def test_unknown_path_is_404(client):
    status, payload = client.get("/v1/nope")
    assert status == 404
    assert _error_code(payload) == "not_found"


def test_wrong_method_is_405(client):
    status, payload = client.get("/v1/run")
    assert status == 405
    assert _error_code(payload) == "method_not_allowed"
    status, payload = client.post("/healthz", {})
    assert status == 405


# -------------------------------------------------------------- /v1/compare


def test_compare_base_against_override_variant(client):
    body = {
        "set": ["hmc.pe_frequency_mhz=625"],
        "experiments": ["fig16"],
        "benchmarks": ["Caps-MN1"],
    }
    status, payload = client.post("/v1/compare", body)
    assert status == 200
    assert len(payload["data"]["scenarios"]) == 2
    assert "Scenarios:" in payload["report"]
    assert payload["coalesced"] is False


def test_compare_needs_two_scenarios(client):
    status, payload = client.post("/v1/compare", {"experiments": ["fig16"]})
    assert status == 400
    assert _error_code(payload) == "invalid_scenario"


# ---------------------------------------------------------------- /v1/sweep


def test_sweep_streams_ndjson_progress(client):
    body = {
        "axes": {"hmc.pe_frequency_mhz": [312.5, 625.0]},
        "benchmarks": ["Caps-MN1"],
    }
    status, headers, events = client.stream("/v1/sweep", body)
    assert status == 200
    assert headers["Content-Type"] == "application/x-ndjson"
    assert headers.get("Transfer-Encoding") == "chunked"

    kinds = [event["event"] for event in events]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "summary"
    assert kinds.count("point_started") == 2
    assert kinds.count("point_completed") == 2
    started = events[0]
    assert started["points"] == 2
    summary = events[-1]
    assert summary["points"] == 2
    assert summary["simulations"] > 0
    for event in events:
        if event["event"] == "point_completed":
            assert isinstance(event["cache_hit"], bool)
            assert event["elapsed_seconds"] >= 0


def test_sweep_repeat_is_fully_cached(client):
    body = {
        "axes": {"hmc.pe_frequency_mhz": [200.0, 400.0]},
        "benchmarks": ["Caps-MN1"],
    }
    status, _, _ = client.stream("/v1/sweep", body)
    assert status == 200
    status, _, events = client.stream("/v1/sweep", body)
    assert status == 200
    summary = events[-1]
    assert summary["event"] == "summary"
    assert summary["simulations"] == 0
    assert summary["points_from_cache"] == summary["points"] == 2
    completed = [event for event in events if event["event"] == "point_completed"]
    assert all(event["cache_hit"] for event in completed)


def test_sweep_preset_spec_by_name(client):
    status, _, events = client.stream(
        "/v1/sweep", {"spec": "fig18-frequency", "benchmarks": ["Caps-MN1"]}
    )
    assert status == 200
    assert events[0]["event"] == "sweep_started"
    assert events[0]["sweep"] == "fig18-frequency"
    assert events[-1]["event"] == "summary"


def test_sweep_validation_errors_arrive_before_the_stream(client):
    status, payload = client.post("/v1/sweep", {"spec": "not-a-sweep"})
    assert status == 400
    assert _error_code(payload) == "unknown_sweep"
    status, payload = client.post("/v1/sweep", {})
    assert status == 400
    assert _error_code(payload) == "missing_spec"
    status, payload = client.post(
        "/v1/sweep",
        {"axes": {"hmc.pe_frequency_mhz": [312.5]}, "benchmarks": ["Caps-Nope"]},
    )
    assert status == 400
    assert _error_code(payload) == "unknown_benchmark"


# -------------------------------------------------------------- coalescing


def test_identical_concurrent_runs_execute_once(client, blocking_experiment):
    body = {"experiments": [blocking_experiment.name]}
    concurrency = 3
    results = []
    results_lock = threading.Lock()

    def invoke():
        outcome = client.post("/v1/run", body, timeout=120.0)
        with results_lock:
            results.append(outcome)

    threads = [threading.Thread(target=invoke) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    assert blocking_experiment.started.wait(30)
    # Followers pile up behind the single in-flight leader.
    client.wait_metrics(
        lambda m: m["runs"]["waiting"] == concurrency - 1
        and m["runs"]["in_flight"] == 1
    )
    blocking_experiment.gate.set()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()

    assert blocking_experiment.runs == 1  # exactly one underlying execution
    statuses = [status for status, _ in results]
    assert statuses == [200] * concurrency
    reports = {payload["report"] for _, payload in results}
    assert len(reports) == 1
    flags = sorted(payload["coalesced"] for _, payload in results)
    assert flags == [False, True, True]
    _, metrics = client.get("/metrics")
    assert metrics["runs"]["executed"] == 1
    assert metrics["runs"]["coalesced"] == concurrency - 1
    assert metrics["runs"]["in_flight"] == 0
    assert metrics["runs"]["waiting"] == 0


# ------------------------------------------------------------------- drain


def test_graceful_drain_finishes_inflight_work(
    serve_factory, make_client, blocking_experiment
):
    server = serve_factory(drain_timeout=60.0)
    client = make_client(server)
    outcome = {}

    def invoke():
        outcome["response"] = client.post(
            "/v1/run", {"experiments": [blocking_experiment.name]}, timeout=120.0
        )

    thread = threading.Thread(target=invoke)
    thread.start()
    assert blocking_experiment.started.wait(30)

    server.shutdown()
    # The drain refuses new work but reports liveness while finishing.
    status, payload = client.get("/healthz")
    assert status == 503
    assert payload["status"] == "draining"
    status, payload = client.post("/v1/run", {"experiments": ["fig16"]})
    assert status == 503
    assert payload["error"]["code"] == "draining"

    blocking_experiment.gate.set()
    thread.join(timeout=60)
    assert not thread.is_alive()
    status, payload = outcome["response"]
    assert status == 200  # the in-flight request completed despite shutdown
    assert "serve-test-block: released" in payload["report"]

    assert server.wait_stopped(timeout=30)
    assert server.test_exit_code["value"] == 0
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(client.url + "/healthz", timeout=5)


# ------------------------------------------------------------- /v1/optimize


def test_optimize_streams_probe_events(client):
    body = {
        "objective": "fig15.average_speedup",
        "axes": {"hmc.pe_frequency_mhz": [312.5, 625.0, 1250.0]},
        "benchmarks": ["Caps-MN1"],
        "driver": "exhaustive",
    }
    status, headers, events = client.stream("/v1/optimize", body)
    assert status == 200
    assert headers["Content-Type"] == "application/x-ndjson"
    assert headers.get("Transfer-Encoding") == "chunked"

    kinds = [event["event"] for event in events]
    assert kinds[0] == "optimize_started"
    assert kinds[-1] == "summary"
    assert kinds.count("probe_completed") == 3
    started = events[0]
    assert started["objectives"] == ["maximize fig15.average_speedup"]
    assert started["grid_size"] == 3
    assert started["driver"] == "exhaustive"
    probes = [event for event in events if event["event"] == "probe_completed"]
    assert [probe["index"] for probe in probes] == [0, 1, 2]
    for probe in probes:
        assert "fig15.average_speedup" in probe["values"]
    summary = events[-1]
    assert summary["probes"] == 3
    assert summary["best"]["fig15.average_speedup"]["assignment"]
    assert summary["frontier"]


def test_optimize_repeat_is_fully_cached(client):
    body = {
        "objective": "fig15.average_speedup",
        "axes": {"hmc.pe_frequency_mhz": [200.0, 400.0]},
        "benchmarks": ["Caps-MN1"],
    }
    status, _, cold = client.stream("/v1/optimize", body)
    assert status == 200
    status, _, warm = client.stream("/v1/optimize", body)
    assert status == 200
    summary = warm[-1]
    assert summary["event"] == "summary"
    assert summary["simulations"] == 0
    assert summary["probes_from_cache"] == summary["probes"]
    assert summary["best"] == cold[-1]["best"]
    probes = [event for event in warm if event["event"] == "probe_completed"]
    assert all(event["cache_hit"] for event in probes)
    # The shared server cache also feeds /v1/sweep and vice versa.
    status, _, events = client.stream(
        "/v1/sweep", {"axes": {"hmc.pe_frequency_mhz": [200.0, 400.0]},
                      "benchmarks": ["Caps-MN1"]}
    )
    assert status == 200


def test_optimize_constrained_query(client):
    body = {
        "objectives": ["overhead.total_area_mm2:min"],
        "constraints": ["fig15.average_speedup:within_pct_of_best=5"],
        "axes": {"hmc.pe_frequency_mhz": [625.0, 1250.0]},
        "benchmarks": ["Caps-MN1"],
        "driver": "exhaustive",
    }
    status, _, events = client.stream("/v1/optimize", body)
    assert status == 200
    assert events[0]["constraints"] == [
        "fig15.average_speedup within 5% of best"
    ]
    summary = events[-1]
    best = summary["best"]["overhead.total_area_mm2"]
    assert "hmc.pe_frequency_mhz" in best["assignment"]


def test_optimize_validation_errors_arrive_before_the_stream(client):
    status, payload = client.post(
        "/v1/optimize", {"axes": {"hmc.pe_frequency_mhz": [625.0]}}
    )
    assert status == 400
    assert _error_code(payload) == "missing_objective"
    status, payload = client.post(
        "/v1/optimize", {"objective": "fig15.average_speedup"}
    )
    assert status == 400
    assert _error_code(payload) == "missing_spec"
    # A metric typo only surfaces on the first probe -- still a 4xx, because
    # the first event is awaited before headers go out.
    status, payload = client.post(
        "/v1/optimize",
        {
            "objective": "fig15.no_such_metric",
            "axes": {"hmc.pe_frequency_mhz": [625.0]},
            "benchmarks": ["Caps-MN1"],
        },
    )
    assert status == 400
    assert _error_code(payload) == "invalid_objective"
    status, payload = client.post(
        "/v1/optimize",
        {
            "objective": "fig15.average_speedup",
            "axes": {"hmc.pe_frequency_mhz": [625.0]},
            "budget": 0,
        },
    )
    assert status == 400
    assert _error_code(payload) == "invalid_budget"
    status, payload = client.post(
        "/v1/optimize",
        {
            "objective": "fig15.average_speedup",
            "axes": {"hmc.pe_frequency_mhz": [625.0]},
            "driver": "annealing",
        },
    )
    assert status == 400
    assert _error_code(payload) == "invalid_optimize"


def test_optimize_is_discoverable_and_counted(client):
    status, payload = client.get("/v1/presets")
    assert status == 200
    assert "/v1/optimize" in payload["endpoints"]["POST"]
    assert "/metrics" in payload["endpoints"]["GET"]

    body = {
        "objective": "fig15.average_speedup",
        "axes": {"hmc.pe_frequency_mhz": [625.0]},
        "benchmarks": ["Caps-MN1"],
    }
    status, _, events = client.stream("/v1/optimize", body)
    assert status == 200
    assert events[-1]["event"] == "summary"
    # Single shot: streamed requests are recorded before the terminal chunk.
    status, metrics = client.get("/metrics")
    assert status == 200
    assert metrics["requests"]["POST /v1/optimize"]["200"] == 1
