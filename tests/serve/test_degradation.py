"""Backpressure and fault degradation for ``repro serve``.

Overload answers 503 with a ``Retry-After`` header, slow handlers answer
504 after the configured timeout, and injected handler faults surface as
structured 500s -- never hangs, never stack traces in the body.  All three
leave their mark in the ``/metrics`` degradation section.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultRule, deactivate, injected
from repro.faults.inject import set_sleep


@pytest.fixture(autouse=True)
def fault_isolation():
    deactivate()
    yield
    deactivate()
    set_sleep(time.sleep)


def _post_raw(url, path, body, timeout=120.0):
    """(status, JSON body, headers) -- unlike ServeClient, keeps headers."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode()), dict(error.headers)


def test_metrics_expose_degradation_counters(client):
    status, payload = client.get("/metrics")
    assert status == 200
    assert payload["degradation"] == {
        "requests_rejected_overload": 0,
        "requests_timed_out": 0,
    }


def test_overload_answers_503_with_retry_after(
    serve_factory, make_client, blocking_experiment
):
    server = serve_factory(max_inflight=1, retry_after=7.0)
    client = make_client(server)
    outcome = {}

    def occupy():
        outcome["held"] = client.post(
            "/v1/run", {"experiments": [blocking_experiment.name]}
        )

    holder = threading.Thread(target=occupy, daemon=True)
    holder.start()
    assert blocking_experiment.started.wait(timeout=30)

    # A *different* request body, so coalescing cannot absorb it: it must
    # be turned away at the in-flight limit.
    status, payload, headers = _post_raw(
        server.url, "/v1/run", {"experiments": ["fig16"]}
    )
    assert status == 503
    assert payload["error"]["code"] == "overloaded"
    assert headers["Retry-After"] == "7"

    blocking_experiment.gate.set()
    holder.join(timeout=60)
    assert outcome["held"][0] == 200  # the in-flight request was unharmed

    snapshot = client.wait_metrics(
        lambda m: m["degradation"]["requests_rejected_overload"] >= 1
    )
    assert snapshot["degradation"]["requests_rejected_overload"] == 1


def test_slow_handler_answers_504_within_the_timeout(serve_factory, make_client):
    server = serve_factory(request_timeout=0.1)
    client = make_client(server)
    rule = FaultRule(point="serve.handler.execute", action="sleep", seconds=1.0)
    with injected(FaultPlan(rules=(rule,))):
        status, payload = client.post("/v1/run", {"experiments": ["fig16"]})
    assert status == 504
    assert payload["error"]["code"] == "request_timeout"
    assert "Traceback" not in json.dumps(payload)
    client.wait_metrics(lambda m: m["degradation"]["requests_timed_out"] >= 1)


def test_injected_handler_fault_is_a_structured_500(serve_factory, make_client):
    server = serve_factory()
    client = make_client(server)
    rule = FaultRule(point="serve.handler.execute", error="EIO", times=1)
    with injected(FaultPlan(rules=(rule,))):
        status, payload = client.post("/v1/run", {"experiments": ["fig16"]})
        assert status == 500
        assert payload["error"]["code"] == "internal"
        assert "Traceback" not in json.dumps(payload)

        # The failure was not cached and the server is still healthy: the
        # identical retry executes fresh and succeeds.
        status, payload = client.post("/v1/run", {"experiments": ["fig16"]})
    assert status == 200
    assert payload["experiments"] == ["fig16"]
