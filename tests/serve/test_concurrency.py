"""Concurrency hardening for the layers the serve process shares.

Extends the PR-5 cross-process flock coverage
(``tests/engine/test_diskcache.py``) to the in-process thread model the
HTTP server actually runs: many handler threads multiplexed onto one warm
:class:`~repro.api.session.Session` and one persistent cache directory.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.diskcache import SimulationCache, TrainedModelCache
from repro.workloads.benchmarks import get_benchmark


def _run_threads(targets):
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive()


# -------------------------------------------------------- shared sessions


def test_shared_session_threads_match_serial_byte_for_byte():
    selections = [("fig15",), ("fig16",), ("fig15", "fig16")]
    benchmarks = ["Caps-MN1", "Caps-SV1"]

    serial = {
        selection: Session(max_workers=1)
        .run(list(selection), benchmarks=benchmarks)
        .report()
        for selection in selections
    }

    shared = Session()  # one warm session, like the server's LRU slot
    reports = {}
    lock = threading.Lock()
    barrier = threading.Barrier(2 * len(selections), timeout=120)

    def invoke(selection):
        barrier.wait()  # maximize overlap on the shared context
        report = shared.run(list(selection), benchmarks=benchmarks).report()
        with lock:
            reports.setdefault(selection, []).append(report)

    _run_threads(
        [lambda s=s: invoke(s) for s in selections for _ in range(2)]
    )

    for selection in selections:
        assert len(reports[selection]) == 2
        for report in reports[selection]:
            assert report == serial[selection]  # byte-identical to serial


# -------------------------------------------- simulation cache, same shard


def test_threaded_same_shard_writers_lose_no_entries(tmp_path):
    # N threads each flush their own cache instance into one scenario shard
    # concurrently -- the read-merge-publish flush must keep every entry.
    scenario = Scenario.default()
    workload = get_benchmark("Caps-MN1")
    context = SimulationContext(max_workers=1, scenario=scenario)
    result = context.routing(workload.name, DesignPoint.PIM_CAPSNET)

    writers = 8
    barrier = threading.Barrier(writers, timeout=60)

    def write(index):
        cache = SimulationCache(tmp_path)
        # Distinct frequency per writer keys a distinct cache entry.
        cache.put(
            scenario,
            workload,
            "routing",
            DesignPoint.PIM_CAPSNET,
            result,
            pe_frequency_mhz=100.0 + index,
        )
        barrier.wait()  # all flushes race on the same shard file
        cache.flush()

    _run_threads([lambda i=i: write(i) for i in range(writers)])

    fresh = SimulationCache(tmp_path)
    for index in range(writers):
        assert (
            fresh.get(
                scenario,
                workload,
                "routing",
                DesignPoint.PIM_CAPSNET,
                pe_frequency_mhz=100.0 + index,
            )
            == result
        )
    assert fresh.stats.hits == writers


# --------------------------------------------------- trained-model cache


def test_threaded_model_cache_writers_distinct_keys(tmp_path):
    cache = TrainedModelCache(tmp_path)
    writers = 6
    barrier = threading.Barrier(writers, timeout=60)

    def write(index):
        barrier.wait()
        ok = cache.put(
            {"benchmark": "Caps-Tiny", "seed": index},
            {"weights": np.full((4, 4), float(index))},
            {"origin": 0.9, "index": float(index)},
        )
        assert ok

    _run_threads([lambda i=i: write(i) for i in range(writers)])

    fresh = TrainedModelCache(tmp_path)
    for index in range(writers):
        artifact = fresh.get({"benchmark": "Caps-Tiny", "seed": index})
        assert artifact is not None
        np.testing.assert_array_equal(
            artifact.state["weights"], np.full((4, 4), float(index))
        )
        assert artifact.accuracies["index"] == float(index)


def test_threaded_model_cache_same_key_stays_consistent(tmp_path):
    # Racing writers on ONE key: the atomic rename must publish exactly one
    # writer's artifact intact (state and accuracies from the same put).
    cache = TrainedModelCache(tmp_path)
    key = {"benchmark": "Caps-Tiny", "seed": 0}
    writers = 6
    barrier = threading.Barrier(writers, timeout=60)

    def write(index):
        barrier.wait()
        cache.put(
            key,
            {"weights": np.full((3, 3), float(index))},
            {"index": float(index)},
        )

    _run_threads([lambda i=i: write(i) for i in range(writers)])

    artifact = TrainedModelCache(tmp_path).get(key)
    assert artifact is not None
    winner = artifact.accuracies["index"]
    assert winner in {float(index) for index in range(writers)}
    np.testing.assert_array_equal(
        artifact.state["weights"], np.full((3, 3), winner)
    )
