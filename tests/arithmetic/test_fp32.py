"""Tests for the FP32 bit-level utilities."""

import numpy as np
import pytest

from repro.arithmetic.fp32 import (
    FP32_BIAS,
    FloatFields,
    bits_to_float,
    compose,
    decompose,
    float_to_bits,
    shift_significand,
    ulp_distance,
)


def test_float_to_bits_round_trip_scalar():
    value = np.float32(3.14159)
    assert bits_to_float(float_to_bits(value)) == value


def test_float_to_bits_round_trip_array():
    values = np.array([0.0, 1.0, -2.5, 1e-20, 1e20], dtype=np.float32)
    np.testing.assert_array_equal(bits_to_float(float_to_bits(values)), values)


def test_float_to_bits_known_pattern_one():
    # 1.0f is exponent 127, fraction 0 -> 0x3F800000.
    assert int(float_to_bits(1.0)) == 0x3F800000


def test_float_to_bits_known_pattern_minus_two():
    # -2.0f is sign 1, exponent 128, fraction 0 -> 0xC0000000.
    assert int(float_to_bits(-2.0)) == 0xC0000000


def test_decompose_one():
    fields = decompose(1.0)
    assert int(fields.sign) == 0
    assert int(fields.exponent) == FP32_BIAS
    assert int(fields.fraction) == 0


def test_decompose_negative_value_sets_sign():
    fields = decompose(-1.5)
    assert int(fields.sign) == 1
    assert int(fields.exponent) == FP32_BIAS
    assert int(fields.fraction) == 1 << 22  # 1.5 = 1.1b


def test_decompose_real_exponent():
    fields = decompose(np.float32(8.0))
    assert int(fields.real_exponent) == 3


def test_decompose_significand_includes_implicit_one():
    fields = decompose(np.float32(1.0))
    assert int(fields.significand) == 1 << 23


def test_compose_inverse_of_decompose():
    values = np.array([1.0, -3.75, 0.15625, 1234.5], dtype=np.float32)
    fields = decompose(values)
    rebuilt = compose(fields.sign, fields.exponent, fields.fraction)
    np.testing.assert_array_equal(rebuilt, values)


def test_compose_masks_overflowing_fields():
    # An exponent larger than 8 bits must be masked, not corrupt the sign.
    value = compose(np.uint32(0), np.uint32(0x1FF), np.uint32(0))
    fields = decompose(value)
    assert int(fields.sign) == 0
    assert int(fields.exponent) == 0xFF


def test_fields_dataclass_is_frozen():
    fields = decompose(1.0)
    assert isinstance(fields, FloatFields)
    with pytest.raises(AttributeError):
        fields.sign = np.uint32(1)  # type: ignore[misc]


def test_shift_significand_identity():
    value = np.float32(5.25)
    shifted = shift_significand(value, 0)
    assert float(shifted) == pytest.approx(5.25, rel=1e-6)


def test_shift_significand_right_loses_only_low_bits():
    value = np.float32(1.0 + 2**-20)
    shifted = shift_significand(value, 4)
    # The represented magnitude stays ~the same (bits may be chucked).
    assert float(shifted) == pytest.approx(1.0, rel=1e-4)


def test_ulp_distance_zero_for_identical():
    assert int(ulp_distance(1.5, 1.5)) == 0


def test_ulp_distance_one_for_adjacent_floats():
    value = np.float32(1.0)
    next_value = np.nextafter(value, np.float32(2.0), dtype=np.float32)
    assert int(ulp_distance(value, next_value)) == 1


def test_ulp_distance_symmetric():
    a, b = np.float32(3.0), np.float32(3.5)
    assert int(ulp_distance(a, b)) == int(ulp_distance(b, a))
