"""Tests for the MathContext strategy object."""

import numpy as np
import pytest

from repro.arithmetic.context import MathContext


def test_exact_context_matches_numpy_exp():
    ctx = MathContext.exact()
    x = np.linspace(-3, 3, 50, dtype=np.float32)
    np.testing.assert_allclose(ctx.exp(x), np.exp(x), rtol=1e-6)


def test_exact_context_divide():
    ctx = MathContext.exact()
    assert float(ctx.divide(np.float32(3.0), np.float32(4.0))) == pytest.approx(0.75)


def test_approximate_context_exp_close_to_exact():
    ctx = MathContext.approximate()
    x = np.linspace(-5, 5, 100, dtype=np.float32)
    np.testing.assert_allclose(ctx.exp(x), np.exp(x), rtol=0.04)


def test_recovery_context_has_calibrated_scale():
    ctx = MathContext.approximate_with_recovery(calibration_samples=2000)
    assert ctx.exp_recovery is not None
    assert ctx.exp_recovery.samples == 2000


def test_recovery_context_bias_smaller_than_raw_approximation():
    raw = MathContext.approximate()
    recovered = MathContext.approximate_with_recovery(calibration_samples=5000)
    x = np.random.default_rng(11).uniform(-6, 6, size=3000).astype(np.float32)
    exact = np.exp(x.astype(np.float64))
    raw_bias = abs(np.mean((exact - raw.exp(x).astype(np.float64)) / exact))
    rec_bias = abs(np.mean((exact - recovered.exp(x).astype(np.float64)) / exact))
    assert rec_bias < raw_bias


def test_softmax_sums_to_one_exact():
    ctx = MathContext.exact()
    logits = np.random.default_rng(2).normal(size=(6, 9)).astype(np.float32)
    sums = np.sum(ctx.softmax(logits, axis=-1), axis=-1)
    np.testing.assert_allclose(sums, np.ones(6), atol=1e-5)


def test_softmax_sums_close_to_one_approximate():
    ctx = MathContext.approximate()
    logits = np.random.default_rng(3).normal(size=(6, 9)).astype(np.float32)
    sums = np.sum(ctx.softmax(logits, axis=-1), axis=-1)
    np.testing.assert_allclose(sums, np.ones(6), atol=0.05)


def test_squash_norm_bounded_both_contexts():
    for ctx in (MathContext.exact(), MathContext.approximate()):
        vectors = np.random.default_rng(4).normal(size=(20, 16)).astype(np.float32) * 3
        norms = np.linalg.norm(ctx.squash(vectors), axis=-1)
        assert np.all(norms <= 1.0 + 1e-3), ctx.name


def test_squash_small_vector_shrinks_quadratically():
    ctx = MathContext.exact()
    small = np.full((1, 4), 0.01, dtype=np.float32)
    out = ctx.squash(small)
    # ||v|| = ||s||^2/(1+||s||^2) ~ ||s||^2 for small s.
    assert np.linalg.norm(out) < np.linalg.norm(small)


def test_context_names():
    assert MathContext.exact().name == "exact"
    assert MathContext.approximate().name == "approx"
    assert MathContext.approximate_with_recovery(calibration_samples=100).name == "approx+recovery"


def test_inv_sqrt_exact_and_approx_agree():
    exact = MathContext.exact()
    approx = MathContext.approximate()
    x = np.logspace(-2, 2, 50, dtype=np.float32)
    np.testing.assert_allclose(approx.inv_sqrt(x), exact.inv_sqrt(x), rtol=0.01)
