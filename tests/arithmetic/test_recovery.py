"""Tests for the accuracy-recovery calibration."""

import numpy as np
import pytest

from repro.arithmetic.approx import approx_exp, exact_exp
from repro.arithmetic.recovery import (
    AccuracyRecovery,
    calibrate_exp_recovery,
    calibrate_recovery,
)


def test_calibrate_exp_recovery_scale_close_to_one():
    recovery = calibrate_exp_recovery(num_samples=2000)
    assert 0.95 < recovery.scale < 1.05


def test_calibrate_exp_recovery_keeps_bias_small():
    recovery = calibrate_exp_recovery(num_samples=5000)
    x = np.random.default_rng(9).uniform(-8, 8, size=4000).astype(np.float32)
    exact = exact_exp(x).astype(np.float64)
    corrected = recovery.apply(approx_exp(x)).astype(np.float64)
    corrected_bias = abs(np.mean((exact - corrected) / exact))
    assert corrected_bias < 0.005


def test_recovery_corrects_a_one_sided_approximation():
    # Dropping the Avg correction makes the exponential approximation
    # systematically biased; the calibrated recovery must shrink that bias.
    def biased_exp(x):
        return approx_exp(x, correction=0.0)

    samples = np.random.default_rng(10).uniform(-6, 6, size=5000).astype(np.float32)
    recovery = calibrate_recovery(exact_exp, biased_exp, samples)
    x = np.random.default_rng(11).uniform(-6, 6, size=3000).astype(np.float32)
    exact = exact_exp(x).astype(np.float64)
    raw_bias = abs(np.mean((exact - biased_exp(x).astype(np.float64)) / exact))
    corrected_bias = abs(np.mean((exact - recovery.apply(biased_exp(x)).astype(np.float64)) / exact))
    assert corrected_bias < raw_bias


def test_calibrate_exp_recovery_deterministic_for_same_seed():
    a = calibrate_exp_recovery(num_samples=1000, seed=7)
    b = calibrate_exp_recovery(num_samples=1000, seed=7)
    assert a.scale == b.scale


def test_calibrate_exp_recovery_records_sample_count():
    recovery = calibrate_exp_recovery(num_samples=1234)
    assert recovery.samples == 1234


def test_calibrate_exp_recovery_rejects_bad_range():
    with pytest.raises(ValueError):
        calibrate_exp_recovery(input_range=(5.0, -5.0))


def test_calibrate_recovery_identity_for_exact_function():
    samples = np.linspace(0.1, 5.0, 100, dtype=np.float32)
    recovery = calibrate_recovery(exact_exp, exact_exp, samples)
    assert recovery.scale == pytest.approx(1.0, abs=1e-7)
    assert recovery.mean_relative_error == pytest.approx(0.0, abs=1e-7)


def test_calibrate_recovery_known_bias():
    samples = np.linspace(1.0, 2.0, 50, dtype=np.float32)

    def biased(x):
        return 0.9 * np.asarray(x, dtype=np.float32)

    recovery = calibrate_recovery(lambda x: x, biased, samples)
    # exact = x, approx = 0.9x -> relative error 0.1 -> scale 1.1.
    assert recovery.scale == pytest.approx(1.1, rel=1e-5)


def test_apply_scales_values():
    recovery = AccuracyRecovery(scale=1.25, mean_relative_error=0.25, samples=10)
    out = recovery.apply(np.array([4.0, 8.0], dtype=np.float32))
    np.testing.assert_allclose(out, [5.0, 10.0], rtol=1e-6)


def test_apply_preserves_dtype():
    recovery = AccuracyRecovery(scale=1.0, mean_relative_error=0.0, samples=1)
    out = recovery.apply(np.array([1.0, 2.0], dtype=np.float32))
    assert out.dtype == np.float32
