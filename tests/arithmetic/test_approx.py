"""Tests for the PE's bit-level approximate special functions."""

import numpy as np
import pytest

from repro.arithmetic.approx import (
    EXP_AVG_CORRECTION,
    approx_div,
    approx_exp,
    approx_inv_sqrt,
    approx_reciprocal,
    approx_softmax,
    approx_squash,
    exact_exp,
    exact_inv_sqrt,
    exact_reciprocal,
)


def relative_error(approx: np.ndarray, exact: np.ndarray) -> np.ndarray:
    exact = np.asarray(exact, dtype=np.float64)
    return np.abs(np.asarray(approx, dtype=np.float64) - exact) / np.maximum(np.abs(exact), 1e-30)


# ---------------------------------------------------------------------------
# exponential
# ---------------------------------------------------------------------------


def test_exp_avg_correction_value():
    # Avg = 1/ln2 - 1/2 - 1 (the paper's offline integration).
    assert EXP_AVG_CORRECTION == pytest.approx(1.0 / np.log(2.0) - 1.5, abs=1e-12)


def test_approx_exp_of_zero_close_to_one():
    assert float(approx_exp(0.0)) == pytest.approx(1.0, rel=0.05)


def test_approx_exp_accuracy_over_routing_range():
    x = np.linspace(-10, 10, 801, dtype=np.float32)
    err = relative_error(approx_exp(x), exact_exp(x))
    assert float(np.max(err)) < 0.04
    assert float(np.mean(err)) < 0.02


def test_approx_exp_monotonic():
    x = np.linspace(-5, 5, 201, dtype=np.float32)
    y = approx_exp(x)
    assert np.all(np.diff(y.astype(np.float64)) >= 0)


def test_approx_exp_always_positive():
    x = np.linspace(-60, 60, 101, dtype=np.float32)
    assert np.all(approx_exp(x) > 0)


def test_approx_exp_clamps_extreme_inputs():
    assert np.isfinite(float(approx_exp(1e6)))
    assert float(approx_exp(-1e6)) >= 0.0


def test_approx_exp_vector_shape_preserved():
    x = np.zeros((3, 4), dtype=np.float32)
    assert approx_exp(x).shape == (3, 4)


# ---------------------------------------------------------------------------
# inverse square root
# ---------------------------------------------------------------------------


def test_approx_inv_sqrt_accuracy_with_one_newton_step():
    x = np.logspace(-3, 4, 200, dtype=np.float32)
    err = relative_error(approx_inv_sqrt(x, newton_steps=1), exact_inv_sqrt(x))
    assert float(np.max(err)) < 0.002


def test_approx_inv_sqrt_no_newton_still_reasonable():
    x = np.logspace(-2, 2, 100, dtype=np.float32)
    err = relative_error(approx_inv_sqrt(x, newton_steps=0), exact_inv_sqrt(x))
    assert float(np.max(err)) < 0.04


def test_approx_inv_sqrt_more_newton_steps_improve_accuracy():
    x = np.logspace(-2, 2, 100, dtype=np.float32)
    err1 = np.max(relative_error(approx_inv_sqrt(x, newton_steps=1), exact_inv_sqrt(x)))
    err2 = np.max(relative_error(approx_inv_sqrt(x, newton_steps=2), exact_inv_sqrt(x)))
    assert err2 <= err1


def test_approx_inv_sqrt_of_four():
    assert float(approx_inv_sqrt(4.0)) == pytest.approx(0.5, rel=5e-3)


# ---------------------------------------------------------------------------
# reciprocal / division
# ---------------------------------------------------------------------------


def test_approx_reciprocal_accuracy():
    x = np.logspace(-3, 3, 200, dtype=np.float32)
    err = relative_error(approx_reciprocal(x, newton_steps=1), exact_reciprocal(x))
    assert float(np.max(err)) < 0.01


def test_approx_reciprocal_handles_negative_values():
    assert float(approx_reciprocal(-2.0)) == pytest.approx(-0.5, rel=0.01)


def test_approx_div_matches_ratio():
    num = np.array([1.0, 2.0, 3.0], dtype=np.float32)
    den = np.array([4.0, 5.0, 8.0], dtype=np.float32)
    expected = num / den
    np.testing.assert_allclose(approx_div(num, den), expected, rtol=0.01)


def test_approx_div_broadcasting():
    num = np.ones((2, 3), dtype=np.float32)
    den = np.float32(2.0)
    assert approx_div(num, den).shape == (2, 3)


# ---------------------------------------------------------------------------
# composite softmax / squash
# ---------------------------------------------------------------------------


def test_approx_softmax_sums_close_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 7)).astype(np.float32)
    total = np.sum(approx_softmax(logits, axis=-1), axis=-1)
    np.testing.assert_allclose(total, np.ones(5), atol=0.03)


def test_approx_softmax_close_to_exact():
    logits = np.random.default_rng(1).normal(size=(4, 6)).astype(np.float32)
    exact = np.exp(logits) / np.sum(np.exp(logits), axis=-1, keepdims=True)
    np.testing.assert_allclose(approx_softmax(logits), exact, atol=0.03)


def test_approx_squash_norm_below_one():
    vectors = np.random.default_rng(2).normal(size=(10, 16)).astype(np.float32) * 5
    squashed = approx_squash(vectors)
    norms = np.linalg.norm(squashed, axis=-1)
    assert np.all(norms <= 1.0 + 1e-3)


def test_approx_squash_preserves_direction():
    vectors = np.random.default_rng(3).normal(size=(10, 8)).astype(np.float32)
    squashed = approx_squash(vectors)
    cos = np.sum(vectors * squashed, axis=-1) / (
        np.linalg.norm(vectors, axis=-1) * np.linalg.norm(squashed, axis=-1) + 1e-12
    )
    assert np.all(cos > 0.99)
