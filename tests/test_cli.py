"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_characterize_subset(capsys):
    assert main(["characterize", "--benchmarks", "Caps-MN1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Fig. 7" in out
    assert "Caps-MN1" in out


def test_evaluate_subset(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-SV1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 15" in out
    assert "Fig. 17" in out


def test_sweep_single_benchmark(capsys):
    assert main(["sweep", "--benchmark", "Caps-SV1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 18" in out
    assert "312" in out


def test_reproduce_only_overhead(capsys):
    assert main(["reproduce", "--only", "overhead"]) == 0
    out = capsys.readouterr().out
    assert "mm^2" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "--benchmarks", "Caps-XYZ"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["reproduce", "--only", "fig99"])


def test_reproduce_json_format(capsys):
    assert main(["reproduce", "--only", "overhead", "--format", "json"]) == 0
    out = capsys.readouterr().out
    import json

    payload = json.loads(out)
    assert set(payload) == {"overhead"}
    assert payload["overhead"]["experiment"] == "overhead"
    assert payload["overhead"]["data"]["total_area_mm2"] > 0


def test_evaluate_json_format(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-MN1", "--format", "json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"fig15", "fig16", "fig17"}


def test_output_writes_file(tmp_path, capsys):
    target = tmp_path / "overhead.txt"
    assert main(["reproduce", "--only", "overhead", "--output", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "mm^2" in target.read_text(encoding="utf-8")


def test_serial_jobs_flag(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-MN1", "--jobs", "1"]) == 0
    assert "Fig. 15" in capsys.readouterr().out
