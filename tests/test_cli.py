"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_characterize_subset(capsys):
    assert main(["characterize", "--benchmarks", "Caps-MN1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Fig. 7" in out
    assert "Caps-MN1" in out


def test_evaluate_subset(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-SV1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 15" in out
    assert "Fig. 17" in out


def test_sweep_single_benchmark(capsys):
    assert main(["sweep", "--benchmark", "Caps-SV1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 18" in out
    assert "312" in out


def test_reproduce_only_overhead(capsys):
    assert main(["reproduce", "--only", "overhead"]) == 0
    out = capsys.readouterr().out
    assert "mm^2" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "--benchmarks", "Caps-XYZ"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["reproduce", "--only", "fig99"])
