"""Tests for the command line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_characterize_subset(capsys):
    assert main(["characterize", "--benchmarks", "Caps-MN1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Fig. 7" in out
    assert "Caps-MN1" in out


def test_evaluate_subset(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-SV1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 15" in out
    assert "Fig. 17" in out


def test_sweep_single_benchmark(capsys):
    # --benchmark is the deprecated alias of --benchmarks.
    assert main(["sweep", "--benchmark", "Caps-SV1"]) == 0
    captured = capsys.readouterr()
    assert "Fig. 18" in captured.out
    assert "312" in captured.out
    assert "deprecated" in captured.err


def test_sweep_benchmarks_plural(capsys):
    assert main(["sweep", "--benchmarks", "Caps-SV1", "Caps-MN1"]) == 0
    captured = capsys.readouterr()
    assert "Caps-SV1" in captured.out
    assert "Caps-MN1" in captured.out
    assert "deprecated" not in captured.err


def test_reproduce_only_overhead(capsys):
    assert main(["reproduce", "--only", "overhead"]) == 0
    out = capsys.readouterr().out
    assert "mm^2" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "--benchmarks", "Caps-XYZ"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["reproduce", "--only", "fig99"])


def test_reproduce_json_format(capsys):
    assert main(["reproduce", "--only", "overhead", "--format", "json"]) == 0
    out = capsys.readouterr().out
    import json

    payload = json.loads(out)
    assert set(payload) == {"overhead"}
    assert payload["overhead"]["experiment"] == "overhead"
    assert payload["overhead"]["data"]["total_area_mm2"] > 0


def test_evaluate_json_format(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-MN1", "--format", "json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"fig15", "fig16", "fig17"}


def test_output_writes_file(tmp_path, capsys):
    target = tmp_path / "overhead.txt"
    assert main(["reproduce", "--only", "overhead", "--output", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "mm^2" in target.read_text(encoding="utf-8")


def test_serial_jobs_flag(capsys):
    assert main(["evaluate", "--benchmarks", "Caps-MN1", "--jobs", "1"]) == 0
    assert "Fig. 15" in capsys.readouterr().out


def test_build_parser_does_not_import_experiment_modules():
    # Satellite of the scenario redesign: CLI startup must stay lazy --
    # --skip/--only are validated after parsing, not via parser choices.
    src = Path(repro.__file__).parent.parent
    code = (
        "import sys; from repro.cli import build_parser; build_parser(); "
        "loaded = [m for m in sys.modules if m.startswith('repro.experiments')]; "
        "print(','.join(loaded))"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.check_output([sys.executable, "-c", code], env=env, text=True)
    assert out.strip() == ""


def test_custom_experiment_passes_only_validation(capsys):
    from repro.engine import experiment as experiment_module
    from repro.engine.experiment import Experiment, register_experiment

    @register_experiment
    class CustomExperiment(Experiment):
        name = "custom-smoke"
        title = "custom"

        def run(self, context, benchmarks=None):
            return {"ok": True}

        def format_report(self, result):
            return "custom-smoke ran"

    try:
        assert main(["reproduce", "--only", "custom-smoke"]) == 0
        assert "custom-smoke ran" in capsys.readouterr().out
    finally:
        experiment_module._REGISTRY.pop("custom-smoke", None)


def test_scenario_preset_and_set_flags(capsys):
    assert (
        main(
            [
                "evaluate",
                "--benchmarks",
                "Caps-MN1",
                "--scenario",
                "paper-default",
                "--set",
                "hmc.pe_frequency_mhz=625",
                "--format",
                "json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"fig15", "fig16", "fig17"}


def test_scenario_file_flag(tmp_path, capsys):
    scenario_file = tmp_path / "v100.json"
    scenario_file.write_text('{"gpu": "V100"}', encoding="utf-8")
    assert main(["characterize", "--benchmarks", "Caps-MN1", "--scenario", str(scenario_file)]) == 0
    assert "Fig. 4" in capsys.readouterr().out


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["evaluate", "--scenario", "no-such-scenario"])


def test_unknown_set_key_rejected():
    with pytest.raises(SystemExit, match="unknown scenario key"):
        main(["evaluate", "--set", "hmc.nope=1"])  # repro: allow(RPR-C001)


def test_malformed_set_rejected():
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        main(["evaluate", "--set", "hmc.pe_frequency_mhz"])


def test_compare_base_vs_set_variant(capsys):
    assert (
        main(
            [
                "compare",
                "--scenario",
                "paper-default",
                "--set",
                "hmc.pe_frequency_mhz=625",
                "--only",
                "fig15",
                "--benchmarks",
                "Caps-MN1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Scenario comparison" in out
    assert "paper-default+hmc.pe_frequency_mhz=625" in out
    assert "average_speedup" in out


def test_compare_json_two_scenarios(capsys):
    assert (
        main(
            [
                "compare",
                "--scenario",
                "paper-default",
                "--scenario",
                "v100-host",
                "--only",
                "fig15",
                "--benchmarks",
                "Caps-MN1",
                "--format",
                "json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert [scenario["name"] for scenario in payload["scenarios"]] == [
        "paper-default",
        "v100-host",
    ]
    assert payload["metrics"]
    assert set(payload["experiments"]) == {"paper-default", "v100-host"}


def test_compare_requires_two_scenarios():
    with pytest.raises(SystemExit, match="at least two"):
        main(["compare", "--only", "fig15"])


@pytest.fixture()
def workload_file(tmp_path):
    path = tmp_path / "caps-ts43.json"
    path.write_text(
        json.dumps(
            {
                "name": "Caps-TS43",
                "dataset": {
                    "name": "TRAFFIC-SIGNS",
                    "image_shape": [3, 48, 48],
                    "num_classes": 43,
                },
                "batch_size": 64,
                "num_low_capsules": 2048,
                "num_high_capsules": 43,
                "routing_iterations": 4,
            }
        ),
        encoding="utf-8",
    )
    return str(path)


def test_workloads_list_shows_table1(capsys):
    assert main(["workloads", "list"]) == 0
    out = capsys.readouterr().out
    assert "Workload catalog (12 networks" in out
    assert "Caps-MN1" in out and "Caps-SV3" in out


def test_workloads_list_includes_workload_flag(workload_file, capsys):
    assert main(["workloads", "list", "--workload", workload_file]) == 0
    out = capsys.readouterr().out
    assert "Workload catalog (13 networks" in out
    assert "Caps-TS43" in out


def test_workloads_show_case_insensitive(workload_file, capsys):
    assert main(["workloads", "show", "caps-ts43", "--workload", workload_file]) == 0
    out = capsys.readouterr().out
    assert "Caps-TS43" in out
    assert "43 classes (custom)" in out


def test_workloads_show_json(capsys):
    assert main(["workloads", "show", "Caps-MN1", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "Caps-MN1"
    assert payload["routing"] == "dynamic"


def test_workloads_show_requires_name():
    with pytest.raises(SystemExit, match="NAME"):
        main(["workloads", "show"])


def test_workloads_show_unknown_name_rejected():
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["workloads", "show", "Caps-XYZ"])


def test_run_alias_with_user_json_workload(workload_file, capsys):
    # Acceptance: a workload defined only in a user JSON file (never added to
    # BENCHMARKS) runs through `repro run --workload` and appears in fig04,
    # fig15 and fig17 outputs.
    assert (
        main(
            [
                "run",
                "--only",
                "fig04",
                "fig15",
                "fig17",
                "--workload",
                workload_file,
                "--benchmarks",
                "caps-ts43",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    import repro

    assert "Caps-TS43" not in repro.BENCHMARKS
    for section in ("Fig. 4", "Fig. 15", "Fig. 17"):
        assert section in out
    assert out.count("Caps-TS43") >= 3


def test_evaluate_runs_custom_workload_alongside_table1(workload_file, capsys):
    assert (
        main(
            [
                "evaluate",
                "--workload",
                workload_file,
                "--benchmarks",
                "Caps-TS43",
                "Caps-MN1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Caps-TS43" in out and "Caps-MN1" in out


def test_compare_with_custom_workload(workload_file, capsys):
    assert (
        main(
            [
                "compare",
                "--workload",
                workload_file,
                "--set",
                "hmc.pe_frequency_mhz=625",
                "--only",
                "fig15",
                "--benchmarks",
                "Caps-TS43",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Scenario comparison" in out
    assert "+1 workload(s)" in out


def test_unknown_workload_file_rejected():
    with pytest.raises(SystemExit, match="cannot read workload file"):
        main(["evaluate", "--workload", "/no/such/workload.json"])


# ------------------------------------------------------- generalized sweeps


def test_sweep_axis_grid(capsys, tmp_path):
    assert main([
        "sweep",
        "--axis", "hmc.pe_frequency_mhz=312.5,625",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
    ]) == 0
    captured = capsys.readouterr()
    assert "Sweep 'cli-sweep'" in captured.out
    assert "312.5" in captured.out and "625" in captured.out
    # Execution statistics go to stderr, never stdout.
    assert "disk cache" in captured.err
    assert "disk cache" not in captured.out


def test_sweep_warm_cache_runs_zero_simulations(capsys, tmp_path):
    argv = [
        "sweep",
        "--axis", "hmc.pe_frequency_mhz=312.5,625",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out  # byte-identical report
    assert "0 simulations executed" in warm.err
    assert "0 misses" in warm.err


def test_sweep_spec_preset(capsys, tmp_path):
    assert main([
        "sweep", "--spec", "fig18-frequency",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
        "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spec"]["name"] == "fig18-frequency"
    frequencies = [point["assignment"]["hmc.pe_frequency_mhz"] for point in payload["points"]]
    assert frequencies == [312.5, 625.0, 937.5]


def test_sweep_spec_file_with_extra_axis(capsys, tmp_path):
    spec_path = tmp_path / "mine.json"
    spec_path.write_text(json.dumps({"axes": {"hmc.pe_frequency_mhz": [312.5, 625]}}))
    assert main([
        "sweep", "--spec", str(spec_path),
        "--axis", "hmc.pes_per_vault=8,16",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path / "cache"),
        "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["points"]) == 4


def test_sweep_rejects_bad_axis_and_unknown_spec(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "--axis", "nonsense", "--cache-dir", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["sweep", "--axis", "hmc.warp=1,2", "--cache-dir", str(tmp_path)])  # repro: allow(RPR-C001)
    with pytest.raises(SystemExit):
        main(["sweep", "--spec", "no-such-sweep", "--cache-dir", str(tmp_path)])


def test_sweep_no_cache_flag(capsys, tmp_path):
    argv = [
        "sweep",
        "--axis", "hmc.pe_frequency_mhz=312.5",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
        "--no-cache",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "0 hits, 0 misses" in warm.err  # cache disabled: nothing persisted


def test_classic_sweep_unchanged_without_spec_or_axis(capsys):
    assert main(["sweep", "--benchmarks", "Caps-MN1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 18" in out


# ---------------------------------------------------------- --jobs validation


@pytest.mark.parametrize("value", ["0", "-3", "two"])
def test_jobs_rejects_non_positive_values(capsys, value):
    with pytest.raises(SystemExit):
        main(["reproduce", "--only", "overhead", "--jobs", value])
    err = capsys.readouterr().err
    assert "positive integer" in err


def test_jobs_rejected_across_subcommands(capsys):
    for argv in (
        ["characterize", "--jobs", "0"],
        ["evaluate", "--jobs", "-1"],
        ["sweep", "--jobs", "0"],
        ["compare", "--jobs", "0"],
        ["workloads", "list", "--jobs", "0"],
    ):
        with pytest.raises(SystemExit):
            main(argv)
        assert "positive integer" in capsys.readouterr().err


def test_jobs_one_still_accepted(capsys):
    assert main(["reproduce", "--only", "overhead", "--jobs", "1"]) == 0
    assert "mm^2" in capsys.readouterr().out


def test_sweep_bad_axis_value_exits_cleanly(capsys, tmp_path):
    # Axis values only coerce when each point's overrides apply; the CLI
    # must turn that ValueError into a clean exit, not a traceback.
    with pytest.raises(SystemExit):
        main([
            "sweep", "--axis", "hmc.num_vaults=8,abc",
            "--benchmarks", "Caps-MN1", "--cache-dir", str(tmp_path),
        ])


# ------------------------------------------------------------- --version


def test_version_flag_prints_the_package_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.strip() == f"repro {repro.__version__}"


def test_version_matches_pyproject():
    import re

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    match = re.search(r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.M)
    assert match is not None, "pyproject.toml lost its version field"
    assert match.group(1) == repro.__version__


# ------------------------------------------------------------------ serve


def test_serve_subcommand_is_wired():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "0", "--max-sessions", "4"])
    assert args.port == 0
    assert args.max_sessions == 4
    assert args.host == "127.0.0.1"
    assert args.drain_timeout == 30.0


def test_serve_rejects_bad_max_sessions(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--max-sessions", "0"])
    assert "positive integer" in capsys.readouterr().err


# --------------------------------------------------------------- optimize


def test_optimize_axis_search(capsys, tmp_path):
    assert main([
        "optimize",
        "--objective", "fig15.average_speedup",
        "--axis", "hmc.pe_frequency_mhz=312.5,625,1250",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
    ]) == 0
    captured = capsys.readouterr()
    assert "Optimization 'optimize'" in captured.out
    assert "Pareto frontier" in captured.out
    assert "Best probe per objective" in captured.out
    # Execution statistics go to stderr, never stdout.
    assert "disk cache" in captured.err
    assert "disk cache" not in captured.out


def test_optimize_warm_rerun_is_byte_identical(capsys, tmp_path):
    argv = [
        "optimize",
        "--objective", "fig15.average_speedup",
        "--axis", "hmc.pe_frequency_mhz=312.5,625,1250",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out  # byte-identical report
    assert "0 simulations executed" in warm.err
    assert "0 misses" in warm.err


def test_optimize_json_constrained_query(capsys, tmp_path):
    assert main([
        "optimize",
        "--objective", "overhead.total_area_mm2:min",
        "--constraint", "fig15.average_speedup:within_pct_of_best=5",
        "--axis", "hmc.pe_frequency_mhz=625,1250",
        "--axis", "hmc.pes_per_vault=8,16",
        "--driver", "exhaustive",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
        "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    best = payload["best"]["overhead.total_area_mm2"]
    assert set(best["assignment"]) == {
        "hmc.pe_frequency_mhz", "hmc.pes_per_vault",
    }
    (threshold,) = payload["thresholds"]
    assert threshold["op"] == ">="
    assert payload["grid_size"] == 4
    assert payload["budget_exhausted"] is False


def test_optimize_objective_spec_file(capsys, tmp_path):
    objective_path = tmp_path / "problem.json"
    objective_path.write_text(json.dumps({
        "objectives": ["fig15.average_speedup"],
        "constraints": ["fig15.average_speedup:min=0"],
    }))
    assert main([
        "optimize",
        "--objective", str(objective_path),
        "--axis", "hmc.pe_frequency_mhz=625,1250",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "Optimization 'problem'" in out  # name from the file stem


def test_optimize_budget_flag(capsys, tmp_path):
    assert main([
        "optimize",
        "--objective", "fig15.average_speedup",
        "--axis", "hmc.pe_frequency_mhz=312.5,625,1250",
        "--budget", "2",
        "--driver", "exhaustive",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "probes: 2 of 3 grid points (budget exhausted)" in out


def test_optimize_rejects_bad_arguments(tmp_path):
    # No search space at all.
    with pytest.raises(SystemExit):
        main([
            "optimize", "--objective", "fig15.average_speedup",
            "--cache-dir", str(tmp_path),
        ])
    # No objective.
    with pytest.raises(SystemExit):
        main([
            "optimize", "--axis", "hmc.pe_frequency_mhz=625",
            "--cache-dir", str(tmp_path),
        ])
    # Unknown driver is rejected by argparse choices.
    with pytest.raises(SystemExit):
        main([
            "optimize", "--objective", "fig15.average_speedup",
            "--axis", "hmc.pe_frequency_mhz=625",
            "--driver", "annealing",
            "--cache-dir", str(tmp_path),
        ])
    # A metric typo surfaces as a clean exit, not a traceback.
    with pytest.raises(SystemExit):
        main([
            "optimize", "--objective", "fig15.nope",  # repro: allow(RPR-C002)
            "--axis", "hmc.pe_frequency_mhz=625",
            "--benchmarks", "Caps-MN1",
            "--cache-dir", str(tmp_path),
        ])


def test_sweep_json_output_file_roundtrips(capsys, tmp_path):
    """Satellite check: sweep --format json --output dumps loadable points."""
    out_path = tmp_path / "sweep.json"
    assert main([
        "sweep",
        "--axis", "hmc.pe_frequency_mhz=312.5,625",
        "--benchmarks", "Caps-MN1",
        "--cache-dir", str(tmp_path / "cache"),
        "--format", "json",
        "--output", str(out_path),
    ]) == 0
    payload = json.loads(out_path.read_text())
    assert len(payload["points"]) == 2
    # The dump feeds the offline frontier path.
    from repro.optimize import sweep_frontier

    frontier = sweep_frontier(payload, "speedup")
    assert frontier["frontier"]
