"""Unit tests for the declarative objective/constraint layer.

Rejection tests construct deliberately-invalid metric paths throughout.
"""
# repro: allow-file(RPR-C002)

from __future__ import annotations

import json

import pytest

from repro.optimize import (
    CONSTRAINT_OPS,
    Constraint,
    Objective,
    ObjectiveSpec,
    extract_metric,
    metric_paths,
)


# ---------------------------------------------------------------- Objective


def test_objective_parse_forms():
    assert Objective.parse("fig17.average_speedup") == Objective(
        "fig17.average_speedup", "maximize"
    )
    assert Objective.parse("overhead.total_area_mm2:min").sense == "minimize"
    assert Objective.parse("fig17.average_speedup:max").sense == "maximize"
    # Long and short sense spellings are equivalent.
    assert Objective.parse("x.y:minimize") == Objective.parse("x.y:min")


def test_objective_rejects_bad_input():
    with pytest.raises(ValueError):
        Objective.parse("fig17.average_speedup:sideways")
    with pytest.raises(ValueError):
        Objective("")  # empty metric path
    with pytest.raises(ValueError):
        Objective("fig17..speedup")  # empty path segment
    with pytest.raises(ValueError):
        Objective.from_dict({"metric": "a.b", "bogus": 1})


def test_objective_scalar_orients_by_sense():
    maximize = Objective("a.b", "maximize")
    minimize = Objective("a.b", "minimize")
    assert maximize.scalar(2.0) == 2.0
    assert minimize.scalar(2.0) == -2.0
    assert maximize.describe() == "maximize a.b"


def test_objective_json_roundtrip():
    objective = Objective("fig17.average_speedup", "minimize")
    assert Objective.from_dict(objective.to_dict()) == objective


# --------------------------------------------------------------- Constraint


def test_constraint_parse_each_operator():
    relative = Constraint.parse("fig17.average_speedup:within_pct_of_best=5")
    assert relative.within_pct_of_best == 5.0
    assert relative.sense == "maximize"
    low = Constraint.parse("fig17.average_speedup:min=2.5")
    assert low.min_value == 2.5
    high = Constraint.parse("overhead.total_area_mm2:max=40")
    assert high.max_value == 40.0
    # A sense tag between metric and operator flips the "best" direction.
    lowest = Constraint.parse("overhead.total_area_mm2:min:within_pct_of_best=10")
    assert lowest.sense == "minimize"
    assert lowest.within_pct_of_best == 10.0


def test_constraint_parse_rejects_garbage():
    for bad in (
        "no-operator",
        "a.b:within_pct_of_best",  # no value
        "a.b:between=1",  # unknown operator
        "a.b:min=abc",  # non-numeric value
    ):
        with pytest.raises(ValueError):
            Constraint.parse(bad)
    assert "within_pct_of_best" in CONSTRAINT_OPS


def test_constraint_families_are_exclusive():
    with pytest.raises(ValueError):
        Constraint("a.b", within_pct_of_best=5, min_value=1)
    with pytest.raises(ValueError):
        Constraint("a.b")  # no bound at all
    with pytest.raises(ValueError):
        Constraint("a.b", within_pct_of_best=-1)
    # min+max together is one (absolute) family and is fine.
    band = Constraint("a.b", min_value=1, max_value=2)
    assert band.feasible(1.5)
    assert not band.feasible(2.5)
    assert not band.feasible(0.5)


def test_relative_constraint_resolves_against_best():
    constraint = Constraint("a.b", within_pct_of_best=5, sense="maximize")
    # Unresolved (no best yet): cannot reject.
    assert constraint.threshold(None) is None
    assert constraint.feasible(0.001, None)
    op, bound = constraint.threshold(4.0)
    assert op == ">=" and bound == pytest.approx(3.8)
    assert constraint.feasible(3.9, 4.0)
    assert not constraint.feasible(3.7, 4.0)
    # Minimize flips the band to "at most best + 5%".
    cheap = Constraint("a.b", within_pct_of_best=5, sense="minimize")
    op, bound = cheap.threshold(2.0)
    assert op == "<=" and bound == pytest.approx(2.1)


def test_constraint_json_roundtrip():
    constraint = Constraint.parse("fig17.average_speedup:within_pct_of_best=5")
    assert Constraint.from_dict(constraint.to_dict()) == constraint


# ------------------------------------------------------------ ObjectiveSpec


def test_spec_coerce_accepts_every_reasonable_form():
    single = ObjectiveSpec.coerce("fig17.average_speedup")
    assert single.primary.metric == "fig17.average_speedup"
    multi = ObjectiveSpec.coerce(
        ["fig17.average_speedup", "overhead.total_area_mm2:min"]
    )
    assert [obj.sense for obj in multi.objectives] == ["maximize", "minimize"]
    mapped = ObjectiveSpec.coerce(
        {
            "name": "demo",
            "objectives": ["fig17.average_speedup"],
            "constraints": ["overhead.total_area_mm2:max=40"],
        }
    )
    assert mapped.name == "demo"
    assert mapped.constraints[0].max_value == 40.0
    # Coercing a spec with extra constraints merges them in.
    merged = ObjectiveSpec.coerce(mapped, constraints=["fig17.max_speedup:min=1"])
    assert len(merged.constraints) == 2


def test_spec_rejects_duplicates_and_empties():
    with pytest.raises(ValueError):
        ObjectiveSpec.coerce(["a.b", "a.b:min"])  # duplicate metric
    with pytest.raises(ValueError):
        ObjectiveSpec(objectives=())
    with pytest.raises(ValueError):
        ObjectiveSpec.from_dict({"objectives": ["a.b"], "bogus": 1})


def test_spec_file_roundtrip_names_from_stem(tmp_path):
    spec = ObjectiveSpec.coerce(
        ["fig17.average_speedup", "overhead.total_area_mm2:min"],
        constraints=["fig17.average_speedup:within_pct_of_best=5"],
    )
    path = tmp_path / "cheap-and-fast.json"
    spec.to_file(path)
    loaded = ObjectiveSpec.from_file(path)
    assert loaded.objectives == spec.objectives
    assert loaded.constraints == spec.constraints
    # A file without an explicit name takes the file stem.
    bare = tmp_path / "my-problem.json"
    bare.write_text(json.dumps({"objectives": ["a.b"]}), encoding="utf-8")
    assert ObjectiveSpec.from_file(bare).name == "my-problem"


def test_spec_metric_paths_and_experiments_dedupe_in_order():
    spec = ObjectiveSpec.coerce(
        ["overhead.total_area_mm2:min", "fig17.average_speedup"],
        constraints=["fig17.max_speedup:min=1", "overhead.total_area_mm2:max=40"],
    )
    assert spec.metric_paths() == [
        "overhead.total_area_mm2",
        "fig17.average_speedup",
        "fig17.max_speedup",
    ]
    assert spec.experiments() == ["overhead", "fig17"]


# -------------------------------------------------------------- path lookup


def test_extract_metric_walks_dotted_paths():
    metrics = {"fig17": {"average_speedup": 3.2, "nested": {"deep": 1}}}
    assert extract_metric(metrics, "fig17.average_speedup") == 3.2
    assert extract_metric(metrics, "fig17.nested.deep") == 1.0
    assert metric_paths(metrics) == [
        "fig17.average_speedup",
        "fig17.nested.deep",
    ]


def test_extract_metric_errors_list_available_paths():
    metrics = {"fig17": {"average_speedup": 3.2, "flag": True}}
    with pytest.raises(ValueError, match="fig17.average_speedup"):
        extract_metric(metrics, "fig17.no_such_metric")
    with pytest.raises(ValueError, match="not a scalar"):
        extract_metric(metrics, "fig17.flag")  # bools are not metrics
    with pytest.raises(ValueError):
        extract_metric(metrics, "fig17")  # non-leaf path
