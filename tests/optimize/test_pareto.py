"""Pareto-frontier extraction: plain rows, sweep results, the disk cache."""

from __future__ import annotations

import itertools

import pytest

from repro.optimize import (
    cache_frontier,
    dominates,
    pareto_indices,
    point_metrics,
    sweep_frontier,
)
from repro.sweep import SweepRunner, SweepSpec


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One small executed sweep plus the cache directory it populated."""
    cache_dir = tmp_path_factory.mktemp("pareto-cache")
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0, 1250.0]},
        name="pareto-grid",
        benchmarks=["Caps-MN1"],
    )
    result = SweepRunner(spec, jobs=1, cache_dir=cache_dir).run()
    return spec, result, cache_dir


# ------------------------------------------------------------- plain rows


def test_dominates_needs_weak_everywhere_strict_somewhere():
    senses = ["maximize", "minimize"]
    assert dominates([2.0, 1.0], [1.0, 1.0], senses)
    assert dominates([2.0, 0.5], [1.0, 1.0], senses)
    assert not dominates([2.0, 2.0], [1.0, 1.0], senses)  # worse in col 2
    assert not dominates([1.0, 1.0], [1.0, 1.0], senses)  # equal: no strict win
    with pytest.raises(ValueError):
        dominates([1.0], [1.0, 2.0], senses)


def test_pareto_indices_match_brute_force():
    rows = [
        [1.0, 4.0], [2.0, 3.0], [3.0, 3.0], [3.0, 1.0],
        [0.5, 0.5], [2.0, 3.0],
    ]
    for senses in itertools.product(["maximize", "minimize"], repeat=2):
        expected = [
            i
            for i, row in enumerate(rows)
            if not any(
                dominates(other, row, senses)
                for j, other in enumerate(rows)
                if j != i
            )
        ]
        assert pareto_indices(rows, list(senses)) == expected


def test_pareto_keeps_co_optimal_ties():
    rows = [[1.0], [2.0], [2.0]]
    assert pareto_indices(rows, ["maximize"]) == [1, 2]


# ------------------------------------------------------------ sweep results


def test_point_metrics_averages_and_mirrors_first_design(swept):
    _, result, _ = swept
    metrics = point_metrics(result.points[0])
    design = str(result.spec.designs[0])
    assert metrics["speedup"] == metrics[design]["speedup"]
    assert metrics["speedup"] > 0


def test_sweep_frontier_live_equals_offline_dict(swept):
    _, result, _ = swept
    live = sweep_frontier(result, ["speedup", "energy_saving"])
    offline = sweep_frontier(result.to_dict(), ["speedup", "energy_saving"])
    assert live == offline
    assert live["frontier"]  # something is non-dominated
    for entry in live["points"]:
        assert set(entry["values"]) == {"speedup", "energy_saving"}


def test_sweep_frontier_single_objective_picks_the_peak(swept):
    _, result, _ = swept
    data = sweep_frontier(result, "speedup")
    values = [entry["values"]["speedup"] for entry in data["points"]]
    peak = max(values)
    assert data["frontier"] == [
        i for i, value in enumerate(values) if value == peak
    ]


# ------------------------------------------------------------- disk cache


def test_cache_frontier_reuses_the_sweep_with_zero_simulations(swept):
    spec, result, cache_dir = swept
    data = cache_frontier(spec, "speedup", cache_dir=cache_dir)
    assert data["simulations_executed"] == 0
    assert data["covered"] == spec.grid_size()
    assert data["uncovered"] == 0
    assert data["frontier"] == sweep_frontier(result, "speedup")["frontier"]


def test_cache_frontier_over_a_cold_cache_covers_nothing(swept, tmp_path):
    spec, _, _ = swept
    data = cache_frontier(spec, "speedup", cache_dir=tmp_path / "empty")
    assert data["covered"] == 0
    assert data["uncovered"] == spec.grid_size()
    assert data["frontier"] == []
    assert data["simulations_executed"] == 0


def test_cache_frontier_skips_unswept_points_by_grid_index(swept):
    spec, _, cache_dir = swept
    import dataclasses

    wider = dataclasses.replace(
        spec,
        axes=(
            dataclasses.replace(
                spec.axes[0], values=spec.axes[0].values + (2500.0,)
            ),
        ),
    )
    data = cache_frontier(wider, "speedup", cache_dir=cache_dir)
    assert data["covered"] == spec.grid_size()
    assert data["uncovered"] == 1  # the frequency the sweep never ran
    covered_indices = {entry["index"] for entry in data["points"]}
    assert set(data["frontier"]) <= covered_indices
