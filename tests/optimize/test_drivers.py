"""Adaptive search drivers: determinism, correctness, budgets, caching."""

from __future__ import annotations

import pytest

from repro.api import Scenario, Session
from repro.optimize import OptimizeDriver, run_optimize
from repro.sweep import SweepSpec

FREQS = [312.5, 625.0, 1250.0]
GRID = {"hmc.pe_frequency_mhz": [312.5, 625.0, 937.5, 1250.0]}
BENCH = ["Caps-MN1"]


def _driver(objective, axes, cache_dir, **kwargs):
    kwargs.setdefault("benchmarks", BENCH)
    return OptimizeDriver(objective, axes, cache_dir=cache_dir, **kwargs)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One shared cache: later tests ride the probes of earlier ones."""
    return tmp_path_factory.mktemp("optimize-cache")


# ------------------------------------------------------------- determinism


def test_repeated_runs_are_byte_identical_and_warm(cache_dir):
    axes = {"hmc.pe_frequency_mhz": FREQS}
    cold = _driver("fig15.average_speedup", axes, cache_dir).run()
    warm = _driver("fig15.average_speedup", axes, cache_dir).run()
    assert warm.format_report() == cold.format_report()
    assert warm.to_dict() == cold.to_dict()
    # Every warm probe came from the persistent cache: zero simulations.
    assert warm.simulations_executed == 0
    assert warm.cache.misses == 0
    assert warm.cache.hits > 0
    assert all(probe.cache_hit for probe in warm.probes)


def test_report_excludes_execution_statistics(cache_dir):
    result = _driver("fig15.average_speedup", {"hmc.pe_frequency_mhz": FREQS}, cache_dir).run()
    report = result.format_report()
    assert "cache" not in report.lower()
    assert "seconds" not in report.lower()
    stats = result.describe_stats()
    assert "disk cache" in stats
    assert "probes" in stats


# ------------------------------------------------- driver agreement / search


def test_descent_and_exhaustive_agree_on_the_optimum(cache_dir):
    axes = {"hmc.pe_frequency_mhz": FREQS}
    descent = _driver(
        "fig15.average_speedup", axes, cache_dir, driver="descent", refine=0
    ).run()
    full = _driver(
        "fig15.average_speedup", axes, cache_dir, driver="exhaustive"
    ).run()
    metric = "fig15.average_speedup"
    assert descent.best_probe().values[metric] == full.best_probe().values[metric]
    assert descent.driver == "descent"
    assert full.driver == "exhaustive"


def test_halving_finds_the_brute_force_best_with_fewer_probes(cache_dir):
    grid = {**GRID, "hmc.pes_per_vault": [8, 16]}
    halving = _driver(
        "fig15.average_speedup", grid, cache_dir, driver="halving"
    ).run()
    full = _driver(
        "fig15.average_speedup", grid, cache_dir, driver="exhaustive"
    ).run()
    metric = "fig15.average_speedup"
    assert halving.best_probe().values[metric] == full.best_probe().values[metric]
    assert len(full.probes) == full.space.grid_size()
    assert len(halving.probes) <= full.space.grid_size()


def test_auto_picks_descent_for_numeric_axes(cache_dir):
    result = _driver(
        "fig15.average_speedup", {"hmc.pe_frequency_mhz": FREQS}, cache_dir
    ).run()
    assert result.driver == "descent"


def test_refinement_probes_off_grid_values(cache_dir):
    result = _driver(
        "fig15.average_speedup",
        {"hmc.pe_frequency_mhz": FREQS},
        cache_dir,
        driver="descent",
        refine=1,
    ).run()
    probed = {probe.assignment["hmc.pe_frequency_mhz"] for probe in result.probes}
    assert probed - set(FREQS), "refinement never left the declared grid"
    assert any("refine" in str(entry["phase"]) for entry in result.trace)


# ------------------------------------------------------------------ budgets


def test_budget_exhaustion_yields_a_flagged_partial_result(cache_dir):
    result = _driver(
        "fig15.average_speedup",
        GRID,
        cache_dir,
        driver="exhaustive",
        budget=2,
    ).run()
    assert len(result.probes) == 2
    assert result.budget_exhausted
    assert "budget exhausted" in result.format_report()
    assert result.best_probe() is not None  # partial but still an answer


def test_budget_must_be_positive(cache_dir):
    with pytest.raises(ValueError):
        _driver("fig15.average_speedup", GRID, cache_dir, budget=0)


# -------------------------------------------------------------- constraints


def test_constraint_query_documents_the_cheapest_fast_config(cache_dir):
    result = _driver(
        {
            "name": "cheapest-fast",
            "objectives": ["overhead.total_area_mm2:min"],
            "constraints": ["fig15.average_speedup:within_pct_of_best=5"],
        },
        {"hmc.pe_frequency_mhz": [625.0, 1250.0], "hmc.pes_per_vault": [8, 16]},
        cache_dir,
        driver="exhaustive",
    ).run()
    best = result.best_probe()
    assert best is not None
    # The documented config names every axis and satisfies the resolved bound.
    assert set(best.assignment) == {"hmc.pe_frequency_mhz", "hmc.pes_per_vault"}
    (threshold,) = result.thresholds
    assert threshold["op"] == ">="
    assert best.values["fig15.average_speedup"] >= threshold["bound"]
    # The constrained winner is the cheapest *feasible* probe, not the
    # globally cheapest one.
    feasible = [result.probes[index] for index in result.feasible]
    cheapest = min(p.values["overhead.total_area_mm2"] for p in feasible)
    assert best.values["overhead.total_area_mm2"] == cheapest
    assert best.index in result.frontier


def test_infeasible_constraints_produce_an_empty_best(cache_dir):
    result = _driver(
        {
            "objectives": ["fig15.average_speedup"],
            "constraints": ["fig15.average_speedup:min=1e9"],
        },
        {"hmc.pe_frequency_mhz": [625.0]},
        cache_dir,
        driver="exhaustive",
    ).run()
    assert result.best_probe() is None
    assert result.feasible == []
    assert "No probe satisfies the constraints." in result.format_report()


# --------------------------------------------------------- hooks and errors


def test_on_probe_observer_sees_every_probe_in_order(cache_dir):
    seen = []
    _driver(
        "fig15.average_speedup",
        {"hmc.pe_frequency_mhz": FREQS},
        cache_dir,
        driver="exhaustive",
        on_probe=seen.append,
    ).run()
    assert [probe.index for probe in seen] == [0, 1, 2]


def test_should_stop_abandons_the_search_cleanly(cache_dir):
    calls = []

    def stop_after_one() -> bool:
        calls.append(True)
        return len(calls) > 1

    result = _driver(
        "fig15.average_speedup",
        GRID,
        cache_dir,
        driver="exhaustive",
        should_stop=stop_after_one,
    ).run()
    assert len(result.probes) == 1
    assert not result.budget_exhausted


def test_constructor_rejects_bad_arguments(cache_dir):
    with pytest.raises(ValueError):
        _driver("fig15.average_speedup", GRID, cache_dir, driver="annealing")
    with pytest.raises(ValueError):
        _driver("nosuch.metric", GRID, cache_dir)  # unknown experiment
    with pytest.raises(ValueError):
        OptimizeDriver(
            "fig15.average_speedup", GRID, benchmarks=["Caps-Nope"],
            cache_dir=cache_dir,
        )
    with pytest.raises(ValueError):
        _driver(
            "fig15.average_speedup",
            {"core.distribution_dimension": ["batch", "capsule"]},
            cache_dir,
            driver="descent",  # categorical axis: descent refuses
        )


def test_bad_metric_path_fails_on_the_first_probe(cache_dir):
    with pytest.raises(ValueError, match="available paths"):
        _driver(
            "fig15.no_such_metric", {"hmc.pe_frequency_mhz": [625.0]}, cache_dir
        ).run()


# -------------------------------------------------------------- public API


def test_session_and_convenience_entrypoints(cache_dir):
    import repro

    space = {"hmc.pe_frequency_mhz": [625.0, 1250.0]}
    via_session = Session(Scenario.default()).optimize(
        "fig15.average_speedup",
        space,
        benchmarks=BENCH,
        driver="exhaustive",
        cache_dir=cache_dir,
    )
    via_function = run_optimize(
        "fig15.average_speedup",
        space,
        benchmarks=BENCH,
        driver="exhaustive",
        cache_dir=cache_dir,
    )
    assert via_session.format_report() == via_function.format_report()
    assert repro.run_optimize is run_optimize
    assert repro.ObjectiveSpec is not None


def test_space_accepts_a_sweep_spec_and_file(cache_dir, tmp_path):
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [625.0, 1250.0]}, name="my-space"
    )
    path = tmp_path / "space.json"
    path.write_text(__import__("json").dumps(spec.to_dict()), encoding="utf-8")
    from_spec = _driver(
        "fig15.average_speedup", spec, cache_dir, driver="exhaustive"
    ).run()
    from_file = _driver(
        "fig15.average_speedup", str(path), cache_dir, driver="exhaustive"
    ).run()
    assert from_spec.best_probe().values == from_file.best_probe().values
