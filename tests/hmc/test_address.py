"""Tests for the default and customized HMC address mappings."""

import pytest

from repro.hmc.address import (
    CustomAddressMapping,
    DefaultAddressMapping,
    bank_histogram,
    vault_histogram,
)
from repro.hmc.config import HMCConfig


@pytest.fixture
def config():
    return HMCConfig()


def test_default_mapping_spreads_consecutive_subpages_across_vaults(config):
    mapping = DefaultAddressMapping(config)
    addresses = [i * config.max_block_bytes for i in range(config.num_vaults)]
    vaults = [mapping.map(a).vault for a in addresses]
    assert len(set(vaults)) == config.num_vaults


def test_default_mapping_not_snippet_local(config):
    assert not DefaultAddressMapping(config).keeps_snippet_local()


def test_custom_mapping_keeps_consecutive_data_in_one_vault(config):
    mapping = CustomAddressMapping(config)
    addresses = [i * 16 for i in range(4096)]  # 64 KB of consecutive blocks
    histogram = vault_histogram(mapping, addresses)
    assert len(histogram) == 1


def test_custom_mapping_is_snippet_local(config):
    assert CustomAddressMapping(config).keeps_snippet_local()


def test_custom_mapping_spreads_consecutive_subpages_across_banks(config):
    mapping = CustomAddressMapping(config)
    addresses = [i * 16 for i in range(config.banks_per_vault)]
    histogram = bank_histogram(mapping, addresses, request_bytes=16)
    assert len(histogram) == config.banks_per_vault


def test_custom_mapping_keeps_large_requests_in_one_bank(config):
    mapping = CustomAddressMapping(config)
    # A 64-byte request spans 4 consecutive blocks: with the dynamic sub-page
    # size they must land in the same bank.
    addresses = [base + offset for base in (0,) for offset in (0, 16, 32, 48)]
    banks = {mapping.map(a, request_bytes=64).bank for a in addresses}
    assert len(banks) == 1


def test_custom_mapping_different_requests_use_different_banks(config):
    mapping = CustomAddressMapping(config)
    first = mapping.map(0, request_bytes=64).bank
    second = mapping.map(64, request_bytes=64).bank
    assert first != second


def test_default_conflict_factor_grows_with_requesters(config):
    mapping = DefaultAddressMapping(config)
    assert mapping.bank_conflict_factor(16) > mapping.bank_conflict_factor(2)
    assert mapping.bank_conflict_factor(16) >= 4.0


def test_custom_conflict_factor_small(config):
    mapping = CustomAddressMapping(config)
    assert mapping.bank_conflict_factor(16) < 2.0


def test_custom_conflict_factor_grows_past_bank_count(config):
    mapping = CustomAddressMapping(config)
    assert mapping.bank_conflict_factor(64) > mapping.bank_conflict_factor(16)


def test_conflict_factor_rejects_invalid_requesters(config):
    with pytest.raises(ValueError):
        DefaultAddressMapping(config).bank_conflict_factor(0)
    with pytest.raises(ValueError):
        CustomAddressMapping(config).bank_conflict_factor(0)


def test_mapping_rejects_negative_address(config):
    with pytest.raises(ValueError):
        CustomAddressMapping(config).map(-16)


def test_subpage_blocks_power_of_two(config):
    mapping = CustomAddressMapping(config)
    assert mapping.subpage_blocks(16) == 1
    assert mapping.subpage_blocks(48) == 4
    assert mapping.subpage_blocks(256) == 16
    # Capped at the MAX block size.
    assert mapping.subpage_blocks(10_000) == config.max_block_bytes // config.block_bytes


def test_mapped_fields_within_ranges(config):
    mapping = CustomAddressMapping(config)
    for address in range(0, 1 << 16, 16):
        mapped = mapping.map(address)
        assert 0 <= mapped.vault < config.num_vaults
        assert 0 <= mapped.bank < config.banks_per_vault
        assert mapped.subpage >= 0
        assert mapped.block_offset >= 0


def test_default_mapping_fields_within_ranges(config):
    mapping = DefaultAddressMapping(config)
    for address in range(0, 1 << 16, 256):
        mapped = mapping.map(address)
        assert 0 <= mapped.vault < config.num_vaults
        assert 0 <= mapped.bank < config.banks_per_vault
