"""Tests for the thermal headroom model."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.thermal import ThermalModel


@pytest.fixture
def thermal():
    return ThermalModel(config=HMCConfig())


def test_base_frequency_within_budget(thermal):
    report = thermal.check()
    assert report.within_budget
    assert report.headroom_watts > 0


def test_logic_power_matches_paper_scale(thermal):
    # The paper reports ~2.24 W of average logic power at 312.5 MHz.
    assert 1.0 <= thermal.logic_power(312.5) <= 4.0


def test_logic_power_scales_with_frequency(thermal):
    assert thermal.logic_power(937.5) == pytest.approx(
        3 * thermal.logic_power(312.5) - 2 * (0.005 * 32 + 0.02), rel=1e-6
    )


def test_all_fig18_frequencies_within_budget(thermal):
    for frequency in (312.5, 625.0, 937.5):
        assert thermal.check(frequency).within_budget


def test_extreme_frequency_exceeds_budget(thermal):
    report = thermal.check(10_000.0)
    assert not report.within_budget
    assert report.headroom_watts < 0


def test_max_frequency_is_consistent_with_check(thermal):
    max_freq = thermal.max_frequency_mhz()
    assert thermal.check(max_freq * 0.99).within_budget
    assert not thermal.check(max_freq * 1.01).within_budget


def test_utilization_fraction(thermal):
    report = thermal.check(312.5)
    assert 0 < report.utilization < 1


def test_invalid_frequency_rejected(thermal):
    with pytest.raises(ValueError):
        thermal.logic_power(0)


def test_more_pes_consume_more_power():
    base = ThermalModel(config=HMCConfig())
    doubled = ThermalModel(config=HMCConfig().with_pes_per_vault(32))
    assert doubled.logic_power(312.5) > base.logic_power(312.5)
    assert doubled.max_frequency_mhz() < base.max_frequency_mhz()
