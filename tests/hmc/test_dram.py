"""Tests for the vault DRAM timing model."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.dram import BankTimings, VaultMemoryModel


def test_default_bank_timings_valid():
    timings = BankTimings()
    assert timings.row_hit_ns < timings.row_miss_ns
    assert 0 < timings.row_hit_rate <= 1


def test_average_access_latency_between_hit_and_miss():
    timings = BankTimings(row_hit_ns=10, row_miss_ns=50, row_hit_rate=0.5)
    assert timings.average_access_ns == pytest.approx(30.0)


def test_invalid_bank_timings_rejected():
    with pytest.raises(ValueError):
        BankTimings(row_hit_ns=0)
    with pytest.raises(ValueError):
        BankTimings(row_hit_rate=1.5)
    with pytest.raises(ValueError):
        BankTimings(row_buffer_bytes=0)


def test_effective_bandwidth_below_peak():
    model = VaultMemoryModel(HMCConfig())
    assert model.effective_bandwidth_bytes < model.peak_bandwidth_bytes
    assert model.effective_bandwidth_bytes > 0.3 * model.peak_bandwidth_bytes


def test_service_time_linear_in_bytes():
    model = VaultMemoryModel(HMCConfig())
    assert model.service_time(2e6) == pytest.approx(2 * model.service_time(1e6))


def test_service_time_scales_with_conflict_factor():
    model = VaultMemoryModel(HMCConfig())
    assert model.service_time(1e6, conflict_factor=4.0) == pytest.approx(
        4 * model.service_time(1e6, conflict_factor=1.0)
    )


def test_stall_time_is_extra_service_time():
    model = VaultMemoryModel(HMCConfig())
    base = model.base_service_time(1e6)
    stall = model.stall_time(1e6, conflict_factor=3.0)
    assert stall == pytest.approx(2 * base)


def test_stall_time_zero_without_conflicts():
    model = VaultMemoryModel(HMCConfig())
    assert model.stall_time(1e6, conflict_factor=1.0) == pytest.approx(0.0)


def test_service_time_rejects_invalid_inputs():
    model = VaultMemoryModel(HMCConfig())
    with pytest.raises(ValueError):
        model.service_time(-1.0)
    with pytest.raises(ValueError):
        model.service_time(1.0, conflict_factor=0.5)


def test_higher_row_hit_rate_improves_bandwidth():
    good = VaultMemoryModel(HMCConfig(), BankTimings(row_hit_rate=0.95))
    bad = VaultMemoryModel(HMCConfig(), BankTimings(row_hit_rate=0.50))
    assert good.effective_bandwidth_bytes > bad.effective_bandwidth_bytes
