"""Tests for the HMC configuration."""

import pytest

from repro.hmc.config import HMCConfig


def test_defaults_match_table4():
    config = HMCConfig()
    assert config.num_vaults == 32
    assert config.banks_per_vault == 16
    assert config.capacity_gb == 8.0
    assert config.external_bandwidth_gbs == 320.0
    assert config.internal_bandwidth_gbs == 512.0
    assert config.pes_per_vault == 16
    assert config.pe_frequency_mhz == 312.5


def test_derived_frequency_hz():
    assert HMCConfig().pe_frequency_hz == pytest.approx(312.5e6)


def test_vault_and_bank_bandwidth():
    config = HMCConfig()
    assert config.vault_bandwidth_bytes == pytest.approx(512e9 / 32)
    assert config.bank_bandwidth_bytes == pytest.approx(512e9 / 32 / 16)


def test_capacity_and_per_vault_bytes():
    config = HMCConfig()
    assert config.capacity_bytes == 8 * (1 << 30)
    assert config.bytes_per_vault == config.capacity_bytes // 32


def test_total_pes():
    assert HMCConfig().total_pes == 512


def test_with_pe_frequency():
    config = HMCConfig().with_pe_frequency(937.5)
    assert config.pe_frequency_mhz == 937.5
    assert HMCConfig().pe_frequency_mhz == 312.5


def test_with_pes_per_vault():
    config = HMCConfig().with_pes_per_vault(8)
    assert config.pes_per_vault == 8
    assert config.total_pes == 256


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        HMCConfig().with_pe_frequency(0)
    with pytest.raises(ValueError):
        HMCConfig(pe_frequency_mhz=-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        HMCConfig(num_vaults=0)
    with pytest.raises(ValueError):
        HMCConfig(max_block_bytes=8)


def test_invalid_bandwidth_rejected():
    with pytest.raises(ValueError):
        HMCConfig(internal_bandwidth_gbs=0)
