"""Tests for the HMC power, energy and area models."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.hmc.pe import OperationMix, PEOperation
from repro.hmc.power import HMCEnergyBreakdown, HMCPowerModel, LogicAreaModel
from repro.hmc.vault import VaultWorkload


@pytest.fixture
def config():
    return HMCConfig()


@pytest.fixture
def execution(config):
    device = HMCDevice(config=config)
    per_vault = VaultWorkload(
        operations=OperationMix().add(PEOperation.MAC, 1e6), dram_bytes=1e6
    )
    return device.execute_distributed(per_vault, crossbar_payload_bytes=1e5, crossbar_packets=1e3)


def test_energy_components_positive(config, execution):
    model = HMCPowerModel(config=config)
    mix = OperationMix().add(PEOperation.MAC, 32e6)
    energy = model.energy(execution, mix, total_dram_bytes=32e6, crossbar_payload_bytes=1e5)
    assert energy.execution > 0
    assert energy.dram > 0
    assert energy.crossbar > 0
    assert energy.vault > 0
    assert energy.total == pytest.approx(
        energy.execution + energy.dram + energy.crossbar + energy.vault
    )


def test_energy_scales_with_operations(config, execution):
    model = HMCPowerModel(config=config)
    small = model.energy(execution, OperationMix().add(PEOperation.MAC, 1e6), 0.0, 0.0)
    large = model.energy(execution, OperationMix().add(PEOperation.MAC, 3e6), 0.0, 0.0)
    assert large.execution == pytest.approx(3 * small.execution)


def test_vault_energy_scales_with_duration(config, execution):
    model = HMCPowerModel(config=config)
    mix = OperationMix()
    energy = model.energy(execution, mix, 0.0, 0.0)
    expected = (model.static_power_watts + model.logic_power_watts) * execution.total_time
    assert energy.vault == pytest.approx(expected)


def test_logic_power_matches_paper_scale(config):
    model = HMCPowerModel(config=config)
    assert 1.0 <= model.total_logic_power <= 5.0


def test_invalid_coefficients_rejected(config):
    with pytest.raises(ValueError):
        HMCPowerModel(config=config, pe_energy_per_op=-1.0)


def test_energy_breakdown_merge():
    a = HMCEnergyBreakdown(execution=1, dram=2, crossbar=3, vault=4)
    b = HMCEnergyBreakdown(execution=1, dram=1, crossbar=1, vault=1)
    merged = a.merged_with(b)
    assert merged.total == pytest.approx(14)
    assert set(merged.as_dict()) == {"execution", "dram", "crossbar", "vault"}


def test_area_model_matches_paper(config):
    area = LogicAreaModel(config=config)
    assert area.total_area_mm2 == pytest.approx(3.11, abs=0.15)
    assert area.area_fraction == pytest.approx(0.0032, abs=0.0005)


def test_area_scales_with_pes(config):
    base = LogicAreaModel(config=config)
    more_pes = LogicAreaModel(config=config.with_pes_per_vault(32))
    assert more_pes.total_area_mm2 > base.total_area_mm2


def test_per_vault_area_positive(config):
    area = LogicAreaModel(config=config)
    assert area.per_vault_area_mm2 > 0
    assert area.total_area_mm2 > config.num_vaults * area.pe_area_mm2
