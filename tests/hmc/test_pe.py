"""Tests for the PE datapath cost model."""

import pytest

from repro.hmc.pe import (
    DEFAULT_CYCLES_PER_OPERATION,
    STREAMING_MAC_CYCLES,
    OperationMix,
    PEDatapath,
    PEOperation,
)


def test_all_operations_have_default_costs():
    assert set(DEFAULT_CYCLES_PER_OPERATION) == set(PEOperation)
    assert all(v > 0 for v in DEFAULT_CYCLES_PER_OPERATION.values())


def test_special_functions_cost_more_than_mac():
    assert DEFAULT_CYCLES_PER_OPERATION[PEOperation.EXP] > DEFAULT_CYCLES_PER_OPERATION[PEOperation.MAC]
    assert DEFAULT_CYCLES_PER_OPERATION[PEOperation.INV_SQRT] > DEFAULT_CYCLES_PER_OPERATION[PEOperation.DIV] / 2


def test_streaming_mac_cheaper_than_routing_mac():
    assert STREAMING_MAC_CYCLES < DEFAULT_CYCLES_PER_OPERATION[PEOperation.MAC]


def test_operation_mix_add_and_total():
    mix = OperationMix().add(PEOperation.MAC, 10).add(PEOperation.EXP, 2)
    assert mix.total_operations == 12
    assert mix.counts[PEOperation.MAC] == 10


def test_operation_mix_add_accumulates():
    mix = OperationMix().add(PEOperation.ADD, 5).add(PEOperation.ADD, 3)
    assert mix.counts[PEOperation.ADD] == 8


def test_operation_mix_rejects_negative():
    with pytest.raises(ValueError):
        OperationMix().add(PEOperation.MAC, -1)


def test_operation_mix_merge():
    a = OperationMix().add(PEOperation.MAC, 4)
    b = OperationMix().add(PEOperation.MAC, 6).add(PEOperation.DIV, 1)
    merged = a.merged_with(b)
    assert merged.counts[PEOperation.MAC] == 10
    assert merged.counts[PEOperation.DIV] == 1
    # Originals unchanged.
    assert a.counts[PEOperation.MAC] == 4


def test_operation_mix_scaled():
    mix = OperationMix().add(PEOperation.MUL, 3).scaled(2.0)
    assert mix.counts[PEOperation.MUL] == 6
    with pytest.raises(ValueError):
        mix.scaled(-1)


def test_operation_mix_total_flops_counts_mac_as_two():
    mix = OperationMix().add(PEOperation.MAC, 5).add(PEOperation.ADD, 3)
    assert mix.total_flops == pytest.approx(13)


def test_operation_mix_from_counts_and_as_dict():
    mix = OperationMix.from_counts({PEOperation.EXP: 2, PEOperation.SHIFT: 4})
    assert mix.as_dict() == {"exp": 2, "shift": 4}


def test_datapath_cycles_for_mix():
    datapath = PEDatapath(frequency_hz=1e6)
    mix = OperationMix().add(PEOperation.MAC, 10)
    expected = 10 * DEFAULT_CYCLES_PER_OPERATION[PEOperation.MAC]
    assert datapath.cycles_for(mix) == pytest.approx(expected)


def test_datapath_time_divides_across_pes():
    datapath = PEDatapath(frequency_hz=1e6)
    mix = OperationMix().add(PEOperation.MAC, 100)
    assert datapath.time_for(mix, num_pes=4) == pytest.approx(datapath.time_for(mix, num_pes=1) / 4)


def test_datapath_time_scales_inverse_with_frequency():
    mix = OperationMix().add(PEOperation.MAC, 1000)
    slow = PEDatapath(frequency_hz=312.5e6).time_for(mix)
    fast = PEDatapath(frequency_hz=937.5e6).time_for(mix)
    assert slow / fast == pytest.approx(3.0)


def test_datapath_throughput_ops():
    datapath = PEDatapath(frequency_hz=312.5e6)
    expected = 312.5e6 / DEFAULT_CYCLES_PER_OPERATION[PEOperation.MAC]
    assert datapath.throughput_ops(PEOperation.MAC) == pytest.approx(expected)


def test_datapath_rejects_invalid_frequency():
    with pytest.raises(ValueError):
        PEDatapath(frequency_hz=0)


def test_datapath_rejects_missing_operation_cost():
    with pytest.raises(ValueError):
        PEDatapath(frequency_hz=1e6, cycles_per_operation={PEOperation.MAC: 1.0})


def test_datapath_rejects_invalid_num_pes():
    datapath = PEDatapath(frequency_hz=1e6)
    with pytest.raises(ValueError):
        datapath.time_for(OperationMix(), num_pes=0)
