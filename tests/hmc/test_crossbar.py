"""Tests for the logic-layer crossbar model."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar


@pytest.fixture
def crossbar():
    return Crossbar(HMCConfig())


def test_default_raw_bandwidth_is_internal_bandwidth(crossbar):
    assert crossbar.raw_bandwidth_gbs == 512.0


def test_effective_bandwidth_below_raw(crossbar):
    assert crossbar.effective_bandwidth_bytes < 512e9


def test_effective_bandwidth_accounts_for_packet_overhead():
    config = HMCConfig()
    crossbar = Crossbar(config, contention_efficiency=1.0)
    payload_efficiency = config.block_bytes / (config.block_bytes + config.packet_overhead_bytes)
    assert crossbar.effective_bandwidth_bytes == pytest.approx(512e9 * payload_efficiency)


def test_transfer_time_components(crossbar):
    estimate = crossbar.transfer(payload_bytes=1e6, packet_count=1000)
    assert estimate.bandwidth_time > 0
    assert estimate.packet_time == pytest.approx(1000 * crossbar.packet_latency_ns * 1e-9)
    assert estimate.total_time == pytest.approx(estimate.bandwidth_time + estimate.packet_time)


def test_transfer_scales_linearly(crossbar):
    one = crossbar.transfer(1e6, 100)
    two = crossbar.transfer(2e6, 200)
    assert two.total_time == pytest.approx(2 * one.total_time)


def test_receiver_ports_spread_packet_cost(crossbar):
    hot_port = crossbar.transfer(1e6, 32_000, receiver_ports=1)
    spread = crossbar.transfer(1e6, 32_000, receiver_ports=32)
    assert spread.packet_time == pytest.approx(hot_port.packet_time / 32)
    assert spread.bandwidth_time == pytest.approx(hot_port.bandwidth_time)


def test_zero_transfer_costs_nothing(crossbar):
    estimate = crossbar.transfer(0.0, 0.0)
    assert estimate.total_time == 0.0


def test_transfer_rejects_negative_inputs(crossbar):
    with pytest.raises(ValueError):
        crossbar.transfer(-1.0, 0.0)
    with pytest.raises(ValueError):
        crossbar.transfer(0.0, -1.0)
    with pytest.raises(ValueError):
        crossbar.transfer(1.0, 1.0, receiver_ports=0)


def test_broadcast_multiplies_by_other_vaults():
    config = HMCConfig()
    crossbar = Crossbar(config)
    single = crossbar.transfer(1e3, 10)
    broadcast = crossbar.broadcast(1e3, 10)
    assert broadcast.payload_bytes == pytest.approx((config.num_vaults - 1) * single.payload_bytes)


def test_invalid_contention_efficiency_rejected():
    with pytest.raises(ValueError):
        Crossbar(HMCConfig(), contention_efficiency=0.0)
    with pytest.raises(ValueError):
        Crossbar(HMCConfig(), contention_efficiency=1.5)


def test_invalid_packet_latency_rejected():
    with pytest.raises(ValueError):
        Crossbar(HMCConfig(), packet_latency_ns=-1.0)
