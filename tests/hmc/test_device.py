"""Tests for the full HMC device model."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.hmc.pe import OperationMix, PEOperation
from repro.hmc.vault import VaultWorkload


@pytest.fixture
def device():
    return HMCDevice()


def make_per_vault(macs=1e6, dram_bytes=1e6):
    return VaultWorkload(
        operations=OperationMix().add(PEOperation.MAC, macs),
        dram_bytes=dram_bytes,
    )


def test_execute_distributed_components(device):
    execution = device.execute_distributed(
        make_per_vault(), crossbar_payload_bytes=1e6, crossbar_packets=1e4
    )
    assert execution.execution_time > 0
    assert execution.crossbar_time > 0
    assert execution.total_time >= execution.execution_time + execution.crossbar_time - 1e-12
    assert execution.vaults_used == 32


def test_execute_distributed_respects_vaults_used(device):
    execution = device.execute_distributed(
        make_per_vault(), crossbar_payload_bytes=0.0, crossbar_packets=0.0, vaults_used=10
    )
    assert execution.vaults_used == 10


def test_crossbar_receiver_ports_reduce_time(device):
    hot = device.execute_distributed(make_per_vault(), 1e6, 1e6, crossbar_receiver_ports=1)
    spread = device.execute_distributed(make_per_vault(), 1e6, 1e6, crossbar_receiver_ports=32)
    assert spread.crossbar_time < hot.crossbar_time


def test_execute_dense_uses_streaming_macs(device):
    flops = 1e9
    dense = device.execute_dense(flops, dram_bytes=1e6)
    # Streaming MACs take 1 cycle: 0.5e9 MACs / (512 PEs * 312.5 MHz).
    expected_compute = (flops / 2) / (512 * 312.5e6)
    assert dense.compute_time == pytest.approx(expected_compute, rel=1e-6)


def test_execute_dense_rejects_negative(device):
    with pytest.raises(ValueError):
        device.execute_dense(-1.0, 0.0)


def test_dense_time_scales_with_flops(device):
    small = device.execute_dense(1e9, 0.0)
    large = device.execute_dense(4e9, 0.0)
    assert large.total_time == pytest.approx(4 * small.total_time, rel=1e-3)


def test_host_transfer_time(device):
    assert device.host_transfer_time(320e9) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        device.host_transfer_time(-1.0)


def test_custom_configuration_respected():
    config = HMCConfig(num_vaults=8, pes_per_vault=4)
    device = HMCDevice(config=config)
    execution = device.execute_distributed(make_per_vault(), 0.0, 0.0)
    assert execution.vaults_used == 8


def test_higher_frequency_device_is_faster():
    slow = HMCDevice(config=HMCConfig())
    fast = HMCDevice(config=HMCConfig().with_pe_frequency(937.5))
    workload = make_per_vault(macs=1e7, dram_bytes=0.0)
    assert (
        fast.execute_distributed(workload, 0, 0).compute_time
        < slow.execute_distributed(workload, 0, 0).compute_time
    )
