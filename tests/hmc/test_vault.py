"""Tests for the vault execution model."""

import pytest

from repro.hmc.address import CustomAddressMapping, DefaultAddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.pe import OperationMix, PEOperation
from repro.hmc.vault import Vault, VaultWorkload


@pytest.fixture
def config():
    return HMCConfig()


def make_workload(macs=1e6, dram_bytes=1e6, pe_utilization=1.0):
    return VaultWorkload(
        operations=OperationMix().add(PEOperation.MAC, macs),
        dram_bytes=dram_bytes,
        concurrent_requesters=16,
        pe_utilization=pe_utilization,
    )


def test_vault_execution_components_positive(config):
    vault = Vault(config)
    execution = vault.execute(make_workload())
    assert execution.compute_time > 0
    assert execution.dram_time > 0
    assert execution.vrs_time >= 0


def test_execution_time_is_max_of_compute_and_dram(config):
    vault = Vault(config)
    execution = vault.execute(make_workload())
    assert execution.execution_time == pytest.approx(
        max(execution.compute_time, execution.dram_time)
    )
    assert execution.total_time == pytest.approx(execution.execution_time + execution.vrs_time)


def test_compute_time_scales_with_operations(config):
    vault = Vault(config)
    small = vault.execute(make_workload(macs=1e5, dram_bytes=0.0))
    large = vault.execute(make_workload(macs=1e6, dram_bytes=0.0))
    assert large.compute_time == pytest.approx(10 * small.compute_time)


def test_low_pe_utilization_slows_compute(config):
    vault = Vault(config)
    full = vault.execute(make_workload(pe_utilization=1.0))
    quarter = vault.execute(make_workload(pe_utilization=0.25))
    assert quarter.compute_time > full.compute_time


def test_custom_mapping_has_small_vrs(config):
    vault = Vault(config, mapping=CustomAddressMapping(config))
    execution = vault.execute(make_workload())
    assert execution.vrs_time < 0.5 * execution.dram_time


def test_default_mapping_has_large_vrs(config):
    vault = Vault(config, mapping=DefaultAddressMapping(config))
    execution = vault.execute(make_workload())
    assert execution.vrs_time > execution.dram_time


def test_custom_mapping_beats_default_mapping(config):
    workload = make_workload(macs=1e5, dram_bytes=4e6)
    custom = Vault(config, mapping=CustomAddressMapping(config)).execute(workload)
    default = Vault(config, mapping=DefaultAddressMapping(config)).execute(workload)
    assert custom.total_time < default.total_time


def test_workload_validation():
    with pytest.raises(ValueError):
        VaultWorkload(operations=OperationMix(), dram_bytes=-1.0)
    with pytest.raises(ValueError):
        VaultWorkload(operations=OperationMix(), dram_bytes=0.0, concurrent_requesters=0)
    with pytest.raises(ValueError):
        VaultWorkload(operations=OperationMix(), dram_bytes=0.0, pe_utilization=0.0)


def test_compute_throughput_positive(config):
    vault = Vault(config)
    assert vault.compute_throughput_ops() > 0


def test_higher_frequency_vault_is_faster(config):
    from repro.hmc.pe import PEDatapath

    workload = make_workload(macs=1e7, dram_bytes=0.0)
    slow = Vault(config, datapath=PEDatapath(frequency_hz=312.5e6)).execute(workload)
    fast = Vault(config, datapath=PEDatapath(frequency_hz=937.5e6)).execute(workload)
    assert fast.compute_time < slow.compute_time
