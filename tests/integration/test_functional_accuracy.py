"""Integration test: functional CapsNet + approximate arithmetic (Table 5 path).

Trains a small CapsNet on an easy synthetic dataset and verifies that running
inference with the PIM-CapsNet PE approximations (with and without accuracy
recovery) preserves the classification behaviour -- the functional side of
the paper's "almost zero accuracy loss" claim.
"""

import numpy as np
import pytest

from repro.arithmetic.context import MathContext
from repro.capsnet.datasets import DatasetSpec, SyntheticImageDataset
from repro.capsnet.model import CapsNet, CapsNetConfig
from repro.capsnet.training import Trainer


@pytest.fixture(scope="module")
def trained_setup():
    spec = DatasetSpec("TOY-ACC", (1, 16, 16), 4)
    dataset = SyntheticImageDataset(
        spec, num_train=64, num_test=32, noise_level=0.05, max_shift=1, seed=13
    )
    config = CapsNetConfig.scaled(input_shape=(1, 16, 16), num_classes=4, scale=0.05)
    model = CapsNet(config, context=MathContext.exact(), seed=2)
    trainer = Trainer(model, learning_rate=0.003, optimizer="adam", reconstruction_weight=0.0, seed=2)
    trainer.fit(dataset, epochs=3, batch_size=8)
    return model, dataset


def _evaluate(model, dataset, context):
    clone = CapsNet(model.config, context=context, seed=0)
    clone.load_state_dict(model.state_dict())
    images, labels = dataset.test_set()
    return clone.accuracy(images, labels), clone.predict(images)


def test_exact_model_learns_the_task(trained_setup):
    model, dataset = trained_setup
    accuracy, _ = _evaluate(model, dataset, MathContext.exact())
    assert accuracy > 0.85


def test_approximation_without_recovery_loses_little_accuracy(trained_setup):
    model, dataset = trained_setup
    exact_accuracy, _ = _evaluate(model, dataset, MathContext.exact())
    approx_accuracy, _ = _evaluate(model, dataset, MathContext.approximate())
    assert abs(exact_accuracy - approx_accuracy) <= 0.05


def test_approximation_with_recovery_matches_exact_predictions(trained_setup):
    model, dataset = trained_setup
    _, exact_predictions = _evaluate(model, dataset, MathContext.exact())
    _, recovered_predictions = _evaluate(
        model, dataset, MathContext.approximate_with_recovery(calibration_samples=2000)
    )
    agreement = float(np.mean(exact_predictions == recovered_predictions))
    assert agreement >= 0.95


def test_capsule_lengths_stay_close_under_approximation(trained_setup):
    model, dataset = trained_setup
    images, _ = dataset.test_set()
    exact_model = CapsNet(model.config, context=MathContext.exact(), seed=0)
    exact_model.load_state_dict(model.state_dict())
    approx_model = CapsNet(model.config, context=MathContext.approximate(), seed=0)
    approx_model.load_state_dict(model.state_dict())
    exact_lengths = exact_model.forward(images[:16], run_decoder=False).lengths
    approx_lengths = approx_model.forward(images[:16], run_decoder=False).lengths
    assert float(np.max(np.abs(exact_lengths - approx_lengths))) < 0.05
