"""Integration tests: the paper's headline claims hold end-to-end.

These tests exercise the whole stack (workload models -> GPU simulator ->
distributor -> HMC simulator -> accelerator) on the real Table-1 benchmarks
and check the claims the paper's abstract and evaluation highlight.
"""

import numpy as np
import pytest

from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.gpu.simulator import GPUSimulator
from repro.hmc.config import HMCConfig
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.layers_model import CapsNetWorkload

ALL_BENCHMARKS = list(BENCHMARKS)


@pytest.fixture(scope="module")
def routing_comparisons():
    results = {}
    for name in ALL_BENCHMARKS:
        accelerator = PIMCapsNet(name)
        results[name] = {
            DesignPoint.BASELINE_GPU: accelerator.simulate_routing(DesignPoint.BASELINE_GPU),
            DesignPoint.PIM_CAPSNET: accelerator.simulate_routing(DesignPoint.PIM_CAPSNET),
        }
    return results


def test_routing_procedure_dominates_every_benchmark():
    simulator = GPUSimulator()
    fractions = [
        simulator.simulate(CapsNetWorkload(BENCHMARKS[name])).routing_fraction
        for name in ALL_BENCHMARKS
    ]
    assert all(fraction > 0.55 for fraction in fractions)
    # Paper: 74.62% on average.
    assert 0.65 < float(np.mean(fractions)) < 0.90


def test_rp_speedup_average_close_to_paper(routing_comparisons):
    speedups = [
        results[DesignPoint.PIM_CAPSNET].speedup_over(results[DesignPoint.BASELINE_GPU])
        for results in routing_comparisons.values()
    ]
    mean_speedup = float(np.mean(speedups))
    # Paper: 2.17x average, up to 2.27x.
    assert 1.7 < mean_speedup < 2.7
    assert max(speedups) < 3.5
    assert min(speedups) > 1.3


def test_rp_energy_saving_average_close_to_paper(routing_comparisons):
    savings = [
        results[DesignPoint.PIM_CAPSNET].energy_saving_over(results[DesignPoint.BASELINE_GPU])
        for results in routing_comparisons.values()
    ]
    # Paper: 92.18% on average.
    assert 0.85 < float(np.mean(savings)) < 0.99


def test_overall_speedup_and_energy_close_to_paper():
    speedups = []
    savings = []
    for name in ("Caps-MN1", "Caps-CF1", "Caps-EN1", "Caps-SV1"):
        accelerator = PIMCapsNet(name)
        baseline = accelerator.simulate_end_to_end(DesignPoint.BASELINE_GPU)
        pim = accelerator.simulate_end_to_end(DesignPoint.PIM_CAPSNET)
        speedups.append(pim.speedup_over(baseline))
        savings.append(pim.energy_saving_over(baseline))
    # Paper: 2.44x / 64.91% on average.
    assert 1.9 < float(np.mean(speedups)) < 3.0
    assert 0.45 < float(np.mean(savings)) < 0.80


def test_performance_scales_with_network_size(routing_comparisons):
    # Paper: "good performance scalability in optimizing the routing
    # procedure with increasing network size" -- the biggest EMNIST network
    # must see a speedup at least as good as the smallest SVHN network.
    def speedup(name):
        results = routing_comparisons[name]
        return results[DesignPoint.PIM_CAPSNET].speedup_over(results[DesignPoint.BASELINE_GPU])

    assert speedup("Caps-EN3") > speedup("Caps-SV1")
    assert speedup("Caps-CF3") > speedup("Caps-CF1")


def test_different_benchmarks_pick_different_dimensions(routing_comparisons):
    dimensions = {
        results[DesignPoint.PIM_CAPSNET].dimension for results in routing_comparisons.values()
    }
    assert len(dimensions) >= 2


def test_higher_pe_frequency_improves_every_benchmark():
    for name in ("Caps-MN1", "Caps-EN3", "Caps-SV3"):
        slow = PIMCapsNet(name, hmc_config=HMCConfig().with_pe_frequency(312.5))
        fast = PIMCapsNet(name, hmc_config=HMCConfig().with_pe_frequency(937.5))
        assert (
            fast.simulate_routing(DesignPoint.PIM_CAPSNET).time_seconds
            < slow.simulate_routing(DesignPoint.PIM_CAPSNET).time_seconds
        )


def test_design_point_ordering_matches_fig16():
    # PIM-CapsNet < PIM-Intra < baseline-equivalent PIM-Inter ordering on time.
    accelerator = PIMCapsNet("Caps-CF1")
    pim = accelerator.simulate_routing(DesignPoint.PIM_CAPSNET).time_seconds
    intra = accelerator.simulate_routing(DesignPoint.PIM_INTRA).time_seconds
    inter = accelerator.simulate_routing(DesignPoint.PIM_INTER).time_seconds
    assert pim < intra
    assert pim < inter
