"""Golden-report regression tests.

``benchmarks/reports/`` stores the rendered report of every deterministic
experiment as produced by the pre-engine code; the engine refactor (shared
simulation context, strategy dispatch, concurrent execution) must keep
``python -m repro reproduce`` byte-identical.  Table 5 is excluded: it
trains networks, making it both slow and the only experiment whose golden
output depends on training hyper-parameters.
"""

from pathlib import Path

import pytest

from repro.engine.runner import run_experiments

REPORTS_DIR = Path(__file__).parent.parent / "benchmarks" / "reports"

#: experiment name -> golden report file (deterministic experiments only).
GOLDEN_REPORTS = {
    "fig04": "fig04_layer_breakdown.txt",
    "fig05": "fig05_stall_breakdown.txt",
    "fig06": "fig06_onchip_storage.txt",
    "fig07": "fig07_bandwidth.txt",
    "fig15": "fig15_rp_speedup.txt",
    "fig16": "fig16_pim_breakdown.txt",
    "fig17": "fig17_overall.txt",
    "fig18": "fig18_frequency.txt",
    "overhead": "overhead_analysis.txt",
}


@pytest.fixture(scope="module")
def reproduce_result():
    """One shared (parallel) run of every deterministic experiment."""
    return run_experiments(skip=["table5"])


@pytest.mark.parametrize("name", sorted(GOLDEN_REPORTS))
def test_report_matches_golden_file(name, reproduce_result):
    golden = (REPORTS_DIR / GOLDEN_REPORTS[name]).read_text(encoding="utf-8")
    assert reproduce_result.reports[name] + "\n" == golden


def test_combined_report_contains_every_section(reproduce_result):
    combined = reproduce_result.combined_report()
    for name in GOLDEN_REPORTS:
        assert f"\n{name}\n" in combined


def test_default_catalog_preserves_golden_benchmark_set():
    """The workload catalog must keep the Table-1 seed byte-identical.

    The golden tests above already pin the rendered reports; this pins the
    mechanism: the default scenario resolves every benchmark to the *same*
    configurations, in the same order, as the pre-catalog globals.
    """
    from repro.api.scenario import Scenario
    from repro.workloads.benchmarks import BENCHMARKS, benchmark_names
    from repro.workloads.catalog import default_catalog

    assert default_catalog().names() == benchmark_names()
    for name in benchmark_names():
        assert default_catalog().benchmark(name) is BENCHMARKS[name]
    assert Scenario.default().catalog == default_catalog()
