"""Correctness tests for the trained-model disk cache (Table 5).

The contract: a warm cache makes the Table-5 experiment execute *zero*
training steps while rendering a byte-identical report; any change to the
inputs that shape the trained weights (seed, epochs, dataset spec, schema
version) must miss and retrain; corrupt artifacts fall back to retraining.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.capsnet import training
from repro.capsnet.datasets import DatasetSpec
from repro.engine.context import SimulationContext
from repro.engine.diskcache import TrainedModelCache
from repro.experiments import table05_accuracy


#: A deliberately tiny configuration so each training run stays ~1s.
SMALL_RUN = dict(benchmarks=["Caps-MN1"], epochs=1, num_train=60, num_test=40)


def _context(cache: TrainedModelCache) -> SimulationContext:
    return SimulationContext(max_workers=1, model_cache=cache)


@pytest.fixture
def cache(tmp_path) -> TrainedModelCache:
    return TrainedModelCache(tmp_path / "cache")


# ---------------------------------------------------------------------------
# Round trip / warm behaviour
# ---------------------------------------------------------------------------


def test_warm_run_executes_zero_training_steps(cache):
    cold = table05_accuracy.run(context=_context(cache), **SMALL_RUN)
    training.reset_train_step_count()
    warm = table05_accuracy.run(context=_context(TrainedModelCache(cache.root)), **SMALL_RUN)
    assert training.train_steps_executed() == 0
    assert table05_accuracy.format_report(warm) == table05_accuracy.format_report(cold)


def test_warm_run_report_is_byte_identical(cache):
    cold_report = table05_accuracy.format_report(
        table05_accuracy.run(context=_context(cache), **SMALL_RUN)
    )
    warm_cache = TrainedModelCache(cache.root)
    warm_report = table05_accuracy.format_report(
        table05_accuracy.run(context=_context(warm_cache), **SMALL_RUN)
    )
    assert warm_report == cold_report
    assert warm_cache.stats.hits == 1
    assert warm_cache.stats.misses == 0


def test_without_cache_every_run_trains():
    ctx = SimulationContext(max_workers=1)
    assert ctx.trained_models is None
    training.reset_train_step_count()
    table05_accuracy.run(context=ctx, **SMALL_RUN)
    first = training.train_steps_executed()
    assert first > 0
    table05_accuracy.run(context=SimulationContext(max_workers=1), **SMALL_RUN)
    assert training.train_steps_executed() == 2 * first


def test_artifact_round_trips_state_and_accuracies(cache):
    key = {"experiment": "test", "shape": (1, 2, 3)}
    state = {
        "layer0.weight": np.arange(6, dtype=np.float32).reshape(2, 3),
        "layer0.bias": np.zeros(2, dtype=np.float32),
    }
    accuracies = {"origin": 0.9875, "approx": 0.98125}
    assert cache.put(key, state=state, accuracies=accuracies)
    artifact = cache.get(key)
    assert artifact is not None
    assert artifact.accuracies == accuracies
    assert set(artifact.state) == set(state)
    for name, value in state.items():
        assert np.array_equal(artifact.state[name], value)
        assert artifact.state[name].dtype == value.dtype


def test_key_normalization_accepts_tuples(cache):
    state = {"w": np.ones(1, dtype=np.float32)}
    assert cache.put({"shape": (1, 28, 28)}, state=state, accuracies={"a": 1.0})
    assert cache.get({"shape": [1, 28, 28]}) is not None


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def _accuracies_by_digest(cache, **overrides):
    run_kwargs = {**SMALL_RUN, **overrides}
    training.reset_train_step_count()
    table05_accuracy.run(context=_context(cache), **run_kwargs)
    return training.train_steps_executed()


def test_seed_change_invalidates(cache):
    _accuracies_by_digest(cache)
    assert _accuracies_by_digest(TrainedModelCache(cache.root), seed=4) > 0


def test_epochs_change_invalidates(cache):
    _accuracies_by_digest(cache)
    assert _accuracies_by_digest(TrainedModelCache(cache.root), epochs=2) > 0


def test_split_sizes_invalidate(cache):
    # num_train must exceed the 8-samples-per-class floor (80 for MNIST) to
    # actually change the effective split size.
    _accuracies_by_digest(cache)
    assert _accuracies_by_digest(TrainedModelCache(cache.root), num_train=96) > 0


def test_schema_version_change_invalidates(cache):
    _accuracies_by_digest(cache)
    bumped = TrainedModelCache(cache.root, version=cache.version + 1)
    training.reset_train_step_count()
    table05_accuracy.run(context=_context(bumped), **SMALL_RUN)
    assert training.train_steps_executed() > 0
    assert bumped.stats.misses >= 1


def test_dataset_spec_shapes_the_key():
    spec_a = DatasetSpec("MNIST", (1, 28, 28), 10)
    spec_b = DatasetSpec("MNIST", (1, 28, 28), 12)
    spec_c = DatasetSpec("MNIST-PRIME", (1, 28, 28), 10)
    hashes = {spec.content_hash() for spec in (spec_a, spec_b, spec_c)}
    assert len(hashes) == 3
    assert spec_a.content_hash() == DatasetSpec("MNIST", (1, 28, 28), 10).content_hash()


def test_table5_training_key_covers_the_inputs():
    from repro.arithmetic.context import MathContext

    spec = DatasetSpec("MNIST", (1, 28, 28), 10)
    config = table05_accuracy._scaled_config_for("MNIST", 10, (1, 28, 28))
    contexts = {"origin": MathContext.exact(), "approx": MathContext.approximate()}
    base = table05_accuracy.training_cache_key(spec, config, 4, 320, 160, 3, contexts)
    assert base["dataset"] == spec.content_hash()
    # Hyper-parameters are derived from the live Trainer defaults plus the
    # experiment's overrides -- not duplicated literals that can drift.
    assert base["trainer"]["learning_rate"] == 0.002
    assert base["trainer"]["grad_clip"] == 5.0
    changed = table05_accuracy.training_cache_key(spec, config, 4, 320, 160, 5, contexts)
    assert changed != base


def test_table5_key_tracks_arithmetic_context_changes():
    from repro.arithmetic.context import MathContext

    spec = DatasetSpec("MNIST", (1, 28, 28), 10)
    config = table05_accuracy._scaled_config_for("MNIST", 10, (1, 28, 28))
    base_ctx = {"approx": MathContext.approximate()}
    deeper_ctx = {"approx": MathContext.approximate(newton_steps=3)}
    recovered_ctx = {"approx": MathContext.approximate_with_recovery()}
    keys = [
        table05_accuracy.training_cache_key(spec, config, 4, 320, 160, 3, ctx)
        for ctx in (base_ctx, deeper_ctx, recovered_ctx)
    ]
    assert len({json.dumps(key, sort_keys=True) for key in keys}) == 3


# ---------------------------------------------------------------------------
# Corruption / degraded disks
# ---------------------------------------------------------------------------


def _single_artifact_path(cache):
    paths = list(cache.directory.rglob("*.npz"))
    assert len(paths) == 1
    return paths[0]


def test_corrupt_artifact_falls_back_to_training(cache):
    cold = table05_accuracy.run(context=_context(cache), **SMALL_RUN)
    _single_artifact_path(cache).write_bytes(b"not an npz archive")
    recovered_cache = TrainedModelCache(cache.root)
    training.reset_train_step_count()
    recovered = table05_accuracy.run(context=_context(recovered_cache), **SMALL_RUN)
    assert training.train_steps_executed() > 0
    assert recovered_cache.stats.misses == 1
    assert table05_accuracy.format_report(recovered) == table05_accuracy.format_report(cold)
    # The retrain rewrote a valid artifact: the next run is warm again.
    training.reset_train_step_count()
    table05_accuracy.run(context=_context(TrainedModelCache(cache.root)), **SMALL_RUN)
    assert training.train_steps_executed() == 0


def test_truncated_artifact_counts_as_miss(cache):
    key = {"k": 1}
    cache.put(key, state={"w": np.ones(3, dtype=np.float32)}, accuracies={"a": 0.5})
    path = _single_artifact_path(cache)
    path.write_bytes(path.read_bytes()[:10])
    fresh = TrainedModelCache(cache.root)
    assert fresh.get(key) is None
    assert fresh.stats.misses == 1


def test_mismatched_key_counts_as_miss(cache):
    cache.put({"k": 1}, state={"w": np.ones(1, dtype=np.float32)}, accuracies={"a": 0.5})
    assert cache.get({"k": 2}) is None


def test_unwritable_cache_root_degrades_gracefully(tmp_path):
    # A *file* where the cache root should be defeats mkdir even when the
    # test runs as root (chmod-based read-only checks do not).
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    cache = TrainedModelCache(blocker / "cache")
    assert not cache.put(
        {"k": 1}, state={"w": np.ones(1, dtype=np.float32)}, accuracies={"a": 0.5}
    )
    assert cache.get({"k": 1}) is None
