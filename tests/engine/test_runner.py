"""Tests for the engine runner and the runner compatibility shim."""

import pytest

from repro.engine.context import SimulationContext
from repro.engine.experiment import experiment_names, get_experiment
from repro.engine.runner import run_experiments, select_experiments
from repro.experiments import runner


def test_registry_order_matches_report_order():
    assert experiment_names() == [
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table5",
        "overhead",
    ]


def test_get_experiment_unknown_name():
    with pytest.raises(KeyError, match="valid names"):
        get_experiment("fig99")


def test_select_experiments_resolves_only_and_skip():
    assert select_experiments(only=["fig07", "overhead"], skip=["fig07"]) == ["overhead"]
    assert select_experiments(skip=experiment_names()) == []


def test_run_all_unknown_only_raises_value_error():
    with pytest.raises(ValueError, match="fig99"):
        runner.run_all(only=["fig99"])


def test_run_all_unknown_skip_raises_value_error():
    with pytest.raises(ValueError, match="valid names"):
        runner.run_all(skip=["not-an-experiment"])


def test_run_all_only_selection():
    result = runner.run_all(only=["overhead"])
    assert set(result.results) == {"overhead"}
    assert "overhead" in result.combined_report()


def test_run_experiments_shares_one_context():
    ctx = SimulationContext(max_workers=1)
    result = run_experiments(
        only=["fig15", "fig16"], benchmarks=["Caps-MN1"], context=ctx
    )
    assert set(result.results) == {"fig15", "fig16"}
    assert result.context is ctx
    # fig16 re-reads the baseline + PIM routing fig15 already simulated.
    assert ctx.stats.hits > 0


def test_parallel_runner_matches_serial_reports():
    serial = run_experiments(
        only=["fig15", "fig16", "fig17"],
        benchmarks=["Caps-MN1", "Caps-SV1"],
        max_workers=1,
    )
    parallel = run_experiments(
        only=["fig15", "fig16", "fig17"],
        benchmarks=["Caps-MN1", "Caps-SV1"],
        max_workers=4,
    )
    assert serial.reports == parallel.reports
    assert list(serial.reports) == ["fig15", "fig16", "fig17"]


def test_runner_result_to_dict_contains_each_experiment():
    result = run_experiments(only=["overhead"])
    payload = result.to_dict()
    assert set(payload) == {"overhead"}
    assert payload["overhead"]["experiment"] == "overhead"
    assert "data" in payload["overhead"]


def test_legacy_experiments_table_matches_registry():
    assert list(runner.EXPERIMENTS) == experiment_names()
    run_fn, format_fn = runner.EXPERIMENTS["overhead"]
    report = format_fn(run_fn())
    assert "mm^2" in report


def test_context_with_conflicting_scenario_raises():
    # Regression: the scenario argument used to be silently ignored when a
    # context was passed, running under the wrong hardware unnoticed.
    from repro.api.scenario import Scenario

    context = SimulationContext(max_workers=1)
    other = Scenario.preset("hmc-625mhz")
    with pytest.raises(ValueError, match="different scenario"):
        run_experiments(only=["overhead"], context=context, scenario=other)


def test_context_with_matching_scenario_is_accepted():
    from repro.api.scenario import Scenario

    scenario = Scenario.default()
    context = SimulationContext(max_workers=1, scenario=scenario)
    result = run_experiments(only=["overhead"], context=context, scenario=scenario)
    assert result.context is context
