"""Tests for the design-point strategy registry."""

import pytest

from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.engine.design_points import routing_on_hmc
from repro.engine.strategies import (
    DesignPointStrategy,
    design_key,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)


def test_design_key_accepts_enum_and_string():
    assert design_key(DesignPoint.PIM_CAPSNET) == "pim-capsnet"
    assert design_key("pim-capsnet") == "pim-capsnet"


def test_builtin_strategies_cover_every_design_point():
    names = strategy_names()
    for design in DesignPoint:
        assert design.value in names


def test_enum_and_string_resolve_to_same_strategy():
    assert get_strategy(DesignPoint.BASELINE_GPU) is get_strategy("baseline")


def test_unknown_design_point_raises_with_known_names():
    with pytest.raises(KeyError, match="no strategy registered"):
        get_strategy("does-not-exist")


def test_duplicate_registration_rejected_without_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_strategy(get_strategy(DesignPoint.BASELINE_GPU))


@pytest.fixture
def custom_strategy():
    """A custom design point registered for the duration of one test."""

    class DoubledRoutingStrategy(DesignPointStrategy):
        # A scenario the paper does not evaluate: the PIM design with the
        # default (conflicting) mapping *and* doubled routing time.
        key = "test-doubled"

        def simulate_routing(self, model, design=None):
            result = routing_on_hmc(model, design or self.key, custom_mapping=False)
            result.time_seconds *= 2.0
            return result

        def simulate_end_to_end(self, model, design=None):
            delegate = get_strategy(DesignPoint.PIM_CAPSNET)
            return delegate.simulate_end_to_end(model, design or self.key)

    strategy = DoubledRoutingStrategy()
    register_strategy(strategy)
    yield strategy
    unregister_strategy(strategy.key)


def test_custom_design_point_runs_routing_through_facade(custom_strategy):
    model = PIMCapsNet("Caps-MN1")
    custom = model.simulate_routing("test-doubled")
    reference = model.simulate_routing(DesignPoint.PIM_INTER)
    assert custom.design == "test-doubled"
    assert custom.benchmark == "Caps-MN1"
    assert custom.time_seconds == pytest.approx(2.0 * reference.time_seconds)


def test_custom_design_point_runs_end_to_end_through_facade(custom_strategy):
    model = PIMCapsNet("Caps-MN1")
    result = model.simulate_end_to_end("test-doubled")
    assert result.design == "test-doubled"
    assert result.time_seconds > 0
    assert result.energy_joules > 0
    reference = model.simulate_end_to_end(DesignPoint.PIM_CAPSNET)
    assert result.time_seconds == pytest.approx(reference.time_seconds)


def test_strategy_without_routing_model_raises(custom_strategy):
    class EndToEndOnly(DesignPointStrategy):
        key = "test-e2e-only"

    register_strategy(EndToEndOnly())
    try:
        with pytest.raises(NotImplementedError, match="routing"):
            PIMCapsNet("Caps-MN1").simulate_routing("test-e2e-only")
    finally:
        unregister_strategy("test-e2e-only")


def test_facade_memoizes_simulations():
    model = PIMCapsNet("Caps-MN1")
    first = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    executed = model.simulations_executed
    second = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    assert second == first
    assert model.simulations_executed == executed
    assert model.cache_hits >= 1
    model.clear_cache()
    third = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    assert model.simulations_executed == executed + 1
    assert third.time_seconds == pytest.approx(first.time_seconds)


def test_cached_results_are_private_copies():
    # The pre-engine code returned fresh objects per call; callers mutating a
    # result in place must not corrupt what other consumers read.
    model = PIMCapsNet("Caps-MN1")
    first = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    original_time = first.time_seconds
    first.time_seconds *= 100.0
    first.time_components["execution"] = -1.0
    second = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    assert second is not first
    assert second.time_seconds == pytest.approx(original_time)
    assert second.time_components["execution"] != -1.0
