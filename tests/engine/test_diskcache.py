"""Tests for the persistent simulation cache (:mod:`repro.engine.diskcache`)."""

import dataclasses
import json

import pytest

from repro.api.scenario import Scenario
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.engine.diskcache import (
    CACHE_SCHEMA_VERSION,
    SimulationCache,
    benchmark_hash,
    decode_result,
    encode_result,
)
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.catalog import WorkloadSpec


@pytest.fixture
def scenario():
    return Scenario.default()


@pytest.fixture
def workload():
    return get_benchmark("Caps-MN1")


def _routing(scenario, workload):
    context = SimulationContext(max_workers=1, scenario=scenario)
    return context.routing(workload.name, DesignPoint.PIM_CAPSNET)


def _end_to_end(scenario, workload):
    context = SimulationContext(max_workers=1, scenario=scenario)
    return context.end_to_end(workload.name, DesignPoint.PIM_CAPSNET)


# ------------------------------------------------------------------ codecs


def test_routing_round_trips_exactly(scenario, workload):
    result = _routing(scenario, workload)
    decoded = decode_result(json.loads(json.dumps(encode_result(result))))
    assert decoded == result  # dataclass equality covers every float exactly


def test_end_to_end_round_trips_exactly(scenario, workload):
    result = _end_to_end(scenario, workload)
    decoded = decode_result(json.loads(json.dumps(encode_result(result))))
    assert decoded == result


def test_unknown_result_types_are_uncacheable():
    assert encode_result({"custom": 1}) is None
    with pytest.raises(ValueError, match="unknown cache entry type"):
        decode_result({"type": "quantum"})


# ----------------------------------------------------------------- hashing


def test_scenario_hash_ignores_name_and_selections():
    base = Scenario.default()
    renamed = dataclasses.replace(base, name="elsewhere")
    selected = dataclasses.replace(base, benchmarks=("Caps-MN1",))
    assert base.hardware_hash() == renamed.hardware_hash()
    assert base.hardware_hash() == selected.hardware_hash()


def test_scenario_hash_tracks_hardware():
    base = Scenario.default()
    faster = base.with_overrides({"hmc.pe_frequency_mhz": 625.0})
    assert base.hardware_hash() != faster.hardware_hash()


def test_workload_spec_content_hash_tracks_fields():
    spec = WorkloadSpec(
        name="Caps-X", dataset="MNIST", batch_size=64,
        num_low_capsules=512, num_high_capsules=10,
    )
    same = WorkloadSpec.from_dict(spec.to_dict())
    bigger = dataclasses.replace(spec, batch_size=128)
    assert spec.content_hash() == same.content_hash()
    assert spec.content_hash() != bigger.content_hash()


def test_benchmark_hash_distinguishes_configs(workload):
    other = get_benchmark("Caps-SV1")
    assert benchmark_hash(workload) != benchmark_hash(other)
    assert benchmark_hash(workload) == benchmark_hash(get_benchmark("Caps-MN1"))


# ----------------------------------------------------------------- get/put


def test_put_get_round_trip_via_disk(tmp_path, scenario, workload):
    result = _routing(scenario, workload)
    writer = SimulationCache(tmp_path)
    assert writer.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    assert writer.flush() == 1
    reader = SimulationCache(tmp_path)
    cached = reader.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET)
    assert cached == result
    assert reader.stats.hits == 1 and reader.stats.misses == 0


def test_get_misses_on_cold_cache(tmp_path, scenario, workload):
    cache = SimulationCache(tmp_path)
    assert cache.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) is None
    assert cache.stats.misses == 1


def test_schema_version_change_invalidates(tmp_path, scenario, workload):
    result = _routing(scenario, workload)
    cache = SimulationCache(tmp_path, version=CACHE_SCHEMA_VERSION)
    cache.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    cache.flush()
    bumped = SimulationCache(tmp_path, version=CACHE_SCHEMA_VERSION + 1)
    assert bumped.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) is None
    assert bumped.stats.misses == 1


def test_scenario_hash_change_invalidates(tmp_path, scenario, workload):
    result = _routing(scenario, workload)
    cache = SimulationCache(tmp_path)
    cache.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    cache.flush()
    other = scenario.with_overrides({"hmc.pe_frequency_mhz": 625.0})
    reader = SimulationCache(tmp_path)
    assert reader.get(other, workload, "routing", DesignPoint.PIM_CAPSNET) is None


def test_corrupt_shard_counts_as_miss(tmp_path, scenario, workload):
    result = _routing(scenario, workload)
    cache = SimulationCache(tmp_path)
    cache.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    cache.flush()
    shard = next((tmp_path / f"v{CACHE_SCHEMA_VERSION}").rglob("*.json"))
    shard.write_text("{not json", encoding="utf-8")
    reader = SimulationCache(tmp_path)
    assert reader.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) is None
    # The next flush rewrites the corrupt shard wholesale.
    reader.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, result)
    assert reader.flush() == 1
    fresh = SimulationCache(tmp_path)
    assert fresh.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) == result


def test_uncacheable_results_are_skipped(tmp_path, scenario, workload):
    cache = SimulationCache(tmp_path)
    assert not cache.put(
        scenario, workload, "routing", DesignPoint.PIM_CAPSNET, {"opaque": True}
    )
    assert cache.flush() == 0


# ------------------------------------------------------- context integration


def test_context_warms_and_reads_the_disk_cache(tmp_path, scenario):
    cold_cache = SimulationCache(tmp_path)
    cold = SimulationContext(max_workers=1, scenario=scenario, disk_cache=cold_cache)
    result = cold.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert cold.simulations_executed > 0
    cold_cache.flush()

    warm = SimulationContext(
        max_workers=1, scenario=scenario, disk_cache=SimulationCache(tmp_path)
    )
    cached = warm.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert cached == result
    # A disk hit skips model construction entirely: zero simulations ran.
    assert warm.simulations_executed == 0
    assert warm.disk_stats.hits == 1 and warm.disk_stats.misses == 0


def test_context_without_disk_cache_reports_zero_stats(scenario):
    context = SimulationContext(max_workers=1, scenario=scenario)
    assert context.disk_stats.requests == 0


def test_flush_merges_with_concurrent_shard_writers(tmp_path, scenario, workload):
    # Two caches sharing one scenario shard (e.g. parallel sweep points over
    # selection axes) must not clobber each other's entries on flush.
    routing = _routing(scenario, workload)
    end_to_end = _end_to_end(scenario, workload)
    first = SimulationCache(tmp_path)
    second = SimulationCache(tmp_path)
    first.put(scenario, workload, "routing", DesignPoint.PIM_CAPSNET, routing)
    second.put(scenario, workload, "end_to_end", DesignPoint.PIM_CAPSNET, end_to_end)
    first.flush()
    second.flush()  # merges first's published entry instead of overwriting
    fresh = SimulationCache(tmp_path)
    assert fresh.get(scenario, workload, "routing", DesignPoint.PIM_CAPSNET) == routing
    assert (
        fresh.get(scenario, workload, "end_to_end", DesignPoint.PIM_CAPSNET)
        == end_to_end
    )
