"""Tests for the SimulationContext cache."""

import pytest

from repro.core.accelerator import DesignPoint
from repro.engine.context import CacheStats, SimulationContext
from repro.workloads.parallelism import Dimension


def test_model_is_memoized_per_benchmark():
    ctx = SimulationContext(max_workers=1)
    first = ctx.model("Caps-MN1")
    second = ctx.model("Caps-MN1")
    other = ctx.model("Caps-MN2")
    assert first is second
    assert other is not first
    assert ctx.model_stats.hits == 1
    assert ctx.model_stats.misses == 2


def test_model_variants_are_distinct():
    ctx = SimulationContext(max_workers=1)
    base = ctx.model("Caps-MN1")
    fast = ctx.model("Caps-MN1", pe_frequency_mhz=937.5)
    forced = ctx.model("Caps-MN1", force_dimension=Dimension.HIGH)
    assert base is not fast
    assert base is not forced
    assert fast.hmc_config.pe_frequency_mhz == 937.5
    assert forced.force_dimension is Dimension.HIGH


def test_routing_cache_hit_and_miss():
    ctx = SimulationContext(max_workers=1)
    first = ctx.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert ctx.stats.misses == 1 and ctx.stats.hits == 0
    second = ctx.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert second == first
    assert ctx.stats.misses == 1 and ctx.stats.hits == 1
    # A different design or benchmark misses again.
    ctx.routing("Caps-MN1", DesignPoint.BASELINE_GPU)
    ctx.routing("Caps-MN2", DesignPoint.PIM_CAPSNET)
    assert ctx.stats.misses == 3
    assert ctx.stats.hit_rate == pytest.approx(1 / 4)


def test_end_to_end_and_routing_are_cached_separately():
    ctx = SimulationContext(max_workers=1)
    routing = ctx.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    end_to_end = ctx.end_to_end("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert routing is not end_to_end
    assert end_to_end.routing_stage_seconds > 0


def test_end_to_end_reuses_cached_routing_of_same_model():
    ctx = SimulationContext(max_workers=1)
    ctx.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    model = ctx.model("Caps-MN1")
    executed = model.simulations_executed
    # The pipelined end-to-end strategy needs the PIM routing numbers; they
    # must come from the model's cache, adding exactly one new simulation.
    ctx.end_to_end("Caps-MN1", DesignPoint.PIM_CAPSNET)
    assert model.simulations_executed == executed + 1


def test_shared_context_executes_fewer_simulations_than_isolated_runs():
    from repro.experiments import (
        fig15_rp_acceleration,
        fig16_pim_breakdown,
        fig17_end_to_end,
    )

    benchmarks = ["Caps-MN1", "Caps-SV1"]
    shared = SimulationContext(max_workers=1)
    fig15_rp_acceleration.run(benchmarks=benchmarks, context=shared)
    fig16_pim_breakdown.run(benchmarks=benchmarks, context=shared)
    fig17_end_to_end.run(benchmarks=benchmarks, context=shared)

    isolated = 0
    for module in (fig15_rp_acceleration, fig16_pim_breakdown, fig17_end_to_end):
        ctx = SimulationContext(max_workers=1)
        module.run(benchmarks=benchmarks, context=ctx)
        isolated += ctx.simulations_executed

    assert shared.simulations_executed < isolated
    assert shared.stats.hits > 0


def test_custom_config_does_not_alias_canonical_benchmark():
    import dataclasses

    from repro.workloads.benchmarks import BENCHMARKS

    ctx = SimulationContext(max_workers=1)
    canonical = ctx.routing("Caps-MN1", DesignPoint.PIM_CAPSNET)
    custom_config = dataclasses.replace(BENCHMARKS["Caps-MN1"], batch_size=64)
    custom = ctx.routing(custom_config, DesignPoint.PIM_CAPSNET)
    # Same name, different configuration: must be a separate cache entry
    # (and a separate model), not the canonical benchmark's result.
    assert ctx.stats.misses == 2
    assert custom.time_seconds != pytest.approx(canonical.time_seconds)
    assert len(ctx.models()) == 2


def test_parallel_map_preserves_input_order():
    ctx = SimulationContext(max_workers=4)
    items = list(range(20))
    assert ctx.map(lambda x: x * x, items) == [x * x for x in items]


def test_parallel_and_serial_contexts_agree():
    from repro.experiments import fig15_rp_acceleration

    serial = fig15_rp_acceleration.run(context=SimulationContext(max_workers=1))
    parallel = fig15_rp_acceleration.run(context=SimulationContext(max_workers=4))
    assert fig15_rp_acceleration.format_report(serial) == fig15_rp_acceleration.format_report(
        parallel
    )


def test_cache_stats_defaults():
    stats = CacheStats()
    assert stats.requests == 0
    assert stats.hit_rate == 0.0
