"""Tests for the structured (JSON) experiment output."""

import json

import pytest

from repro.engine.context import SimulationContext
from repro.engine.experiment import get_experiment
from repro.engine.serialize import to_jsonable

BENCHMARKS = ["Caps-MN1", "Caps-SV1"]


@pytest.fixture(scope="module")
def context():
    return SimulationContext(max_workers=1)


@pytest.fixture(scope="module")
def fig15_payload(context):
    experiment = get_experiment("fig15")
    return experiment.to_dict(experiment.run(context, benchmarks=BENCHMARKS))


@pytest.fixture(scope="module")
def fig17_payload(context):
    experiment = get_experiment("fig17")
    return experiment.to_dict(experiment.run(context, benchmarks=BENCHMARKS))


def test_fig15_schema(fig15_payload):
    assert fig15_payload["experiment"] == "fig15"
    assert fig15_payload["title"]
    data = fig15_payload["data"]
    assert set(data) == {
        "rows",
        "average_speedup",
        "max_speedup",
        "average_energy_saving",
        "designs",
    }
    assert data["designs"] == ["baseline", "gpu-icp", "pim-capsnet"]
    assert [row["benchmark"] for row in data["rows"]] == BENCHMARKS
    for row in data["rows"]:
        assert set(row) == {"benchmark", "speedup", "normalized_energy", "chosen_dimension"}
        # DesignPoint keys must be lowered to their string values.
        assert set(row["speedup"]) == {"baseline", "gpu-icp", "pim-capsnet"}
        assert row["speedup"]["baseline"] == pytest.approx(1.0)
    assert data["average_speedup"] > 1.0


def test_fig17_schema(fig17_payload):
    data = fig17_payload["data"]
    assert set(data) == {
        "rows",
        "average_speedup",
        "max_speedup",
        "average_energy_saving",
        "average_all_in_pim_speedup",
        "designs",
    }
    for row in data["rows"]:
        assert set(row["speedup"]) == {
            "baseline",
            "all-in-pim",
            "rmas-pim",
            "rmas-gpu",
            "pim-capsnet",
        }
        assert set(row["normalized_energy"]) == set(row["speedup"])


def test_payloads_are_json_serializable(fig15_payload, fig17_payload):
    for payload in (fig15_payload, fig17_payload):
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload


def test_to_jsonable_lowers_enum_and_tuple_keys(context):
    experiment = get_experiment("fig18")
    result = experiment.run(context, benchmarks=["Caps-MN1"])
    data = experiment.to_dict(result)["data"]
    # best_dimension is keyed by (benchmark, frequency) tuples.
    assert all("/" in key for key in data["best_dimension"])
    json.dumps(data)


def test_to_jsonable_falls_back_to_str():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    assert to_jsonable({("a", 1): Opaque()}) == {"a/1": "<opaque>"}


def test_to_jsonable_maps_non_finite_floats_to_none():
    lowered = to_jsonable(
        {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf"), "ok": 1.5}
    )
    assert lowered == {"nan": None, "inf": None, "ninf": None, "ok": 1.5}
    # The emitted JSON must be strict (json.dumps would otherwise print NaN).
    assert json.dumps(lowered, allow_nan=False)


def test_to_jsonable_guards_against_cycles():
    cyclic = {"name": "root"}
    cyclic["self"] = cyclic
    looped = ["a"]
    looped.append(looped)
    assert to_jsonable(cyclic) == {"name": "root", "self": None}
    assert to_jsonable(looped) == ["a", None]


def test_to_jsonable_keeps_shared_acyclic_objects():
    shared = {"value": 3.0}
    assert to_jsonable({"first": shared, "second": shared}) == {
        "first": {"value": 3.0},
        "second": {"value": 3.0},
    }


def test_tuple_keys_with_separator_components_do_not_collide():
    # Regression: ("a/b", "c") and ("a", "b/c") used to both serialize to
    # "a/b/c"; user-named WorkloadSpecs make slashes in components reachable.
    lowered = to_jsonable({("a/b", "c"): 1, ("a", "b/c"): 2})
    assert len(lowered) == 2
    assert lowered == {"a\\/b/c": 1, "a/b\\/c": 2}


def test_tuple_key_backslashes_are_escaped():
    lowered = to_jsonable({("a\\b", "c"): 1})
    assert lowered == {"a\\\\b/c": 1}


def test_plain_tuple_keys_keep_their_classic_form():
    # The golden reports rely on ("Caps-MN1", 312.5) -> "Caps-MN1/312.5".
    assert to_jsonable({("Caps-MN1", 312.5): 1}) == {"Caps-MN1/312.5": 1}


def test_string_key_with_separator_does_not_collide_with_tuple_key():
    # A plain "a/b" string key and the ("a", "b") tuple key must both survive.
    lowered = to_jsonable({("a", "b"): 1, "a/b": 2})
    assert lowered == {"a/b": 1, "a\\/b": 2}
