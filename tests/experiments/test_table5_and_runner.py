"""Tests for the Table 5 accuracy experiment and the experiment runner."""

import pytest

from repro.experiments import runner, table05_accuracy


@pytest.fixture(scope="module")
def small_accuracy_result():
    # A deliberately tiny configuration so the test stays fast; the full
    # experiment is exercised by the benchmark harness.
    return table05_accuracy.run(
        benchmarks=["Caps-MN1", "Caps-MN2"], epochs=1, num_train=60, num_test=40
    )


def test_table5_rows_cover_requested_benchmarks(small_accuracy_result):
    assert [row.benchmark for row in small_accuracy_result.rows] == ["Caps-MN1", "Caps-MN2"]


def test_table5_benchmarks_sharing_a_dataset_share_accuracy(small_accuracy_result):
    first, second = small_accuracy_result.rows
    assert first.dataset == second.dataset == "MNIST"
    assert first.origin_accuracy == pytest.approx(second.origin_accuracy)


def test_table5_accuracies_are_probabilities(small_accuracy_result):
    for row in small_accuracy_result.rows:
        for value in (row.origin_accuracy, row.approx_accuracy, row.recovered_accuracy):
            assert 0.0 <= value <= 1.0


def test_table5_approximation_changes_accuracy_only_slightly(small_accuracy_result):
    for row in small_accuracy_result.rows:
        assert abs(row.loss_without_recovery) < 0.15
        assert row.loss_with_recovery < 0.15


def test_table5_report_mentions_paper_targets(small_accuracy_result):
    report = table05_accuracy.format_report(small_accuracy_result)
    assert "0.35%" in report
    assert "0.04%" in report


def test_runner_registry_covers_all_figures():
    assert set(runner.EXPERIMENTS) == {
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table5",
        "overhead",
    }


def test_runner_only_selection():
    result = runner.run_all(only=["overhead"])
    assert set(result.results) == {"overhead"}
    assert "overhead" in result.combined_report()


def test_runner_skip_selection():
    result = runner.run_all(only=["fig07", "overhead"], skip=["fig07"])
    assert set(result.results) == {"overhead"}


def test_runner_main_cli(capsys):
    exit_code = runner.main(["--only", "overhead"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "overhead" in captured.out
