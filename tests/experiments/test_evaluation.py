"""Tests for the evaluation experiments (Figs. 15-18, overhead)."""

import pytest

from repro.core.accelerator import DesignPoint
from repro.experiments import (
    fig15_rp_acceleration,
    fig16_pim_breakdown,
    fig17_end_to_end,
    fig18_frequency_sweep,
    overhead,
)
from repro.workloads.parallelism import Dimension

SUBSET = ["Caps-MN1", "Caps-SV1"]


def test_fig15_speedups_and_energy():
    result = fig15_rp_acceleration.run(benchmarks=SUBSET)
    for row in result.rows:
        assert row.speedup[DesignPoint.BASELINE_GPU] == pytest.approx(1.0)
        assert row.speedup[DesignPoint.PIM_CAPSNET] > 1.5
        assert row.normalized_energy[DesignPoint.PIM_CAPSNET] < 0.2
        assert row.chosen_dimension in {d.value for d in Dimension}
    assert result.average_speedup > 1.5
    assert result.average_energy_saving > 0.8


def test_fig15_report_mentions_paper_targets():
    result = fig15_rp_acceleration.run(benchmarks=["Caps-MN1"])
    report = fig15_rp_acceleration.format_report(result)
    assert "2.17x" in report
    assert "92.18%" in report


def test_fig16_breakdown_structure():
    result = fig16_pim_breakdown.run(benchmarks=SUBSET)
    assert 0.2 < result.average_intra_crossbar_share < 0.9
    assert 0.3 < result.average_inter_vrs_share < 0.9
    assert result.average_speedup_over_intra > 1.0
    assert result.average_speedup_over_inter > 1.0


def test_fig16_normalized_times_relative_to_baseline():
    result = fig16_pim_breakdown.run(benchmarks=["Caps-MN1"])
    row = result.rows[0]
    pim_total = sum(row.normalized_time[DesignPoint.PIM_CAPSNET].values())
    inter_total = sum(row.normalized_time[DesignPoint.PIM_INTER].values())
    assert pim_total < 1.0  # faster than the GPU baseline
    assert inter_total > pim_total


def test_fig17_speedups_and_energy():
    result = fig17_end_to_end.run(benchmarks=SUBSET)
    for row in result.rows:
        assert row.speedup[DesignPoint.BASELINE_GPU] == pytest.approx(1.0)
        assert row.speedup[DesignPoint.PIM_CAPSNET] > 1.5
        assert row.speedup[DesignPoint.ALL_IN_PIM] < 1.0
        assert row.normalized_energy[DesignPoint.PIM_CAPSNET] < 0.7
    assert result.average_speedup > 1.8


def test_fig17_rmas_beats_naive_schedulers():
    result = fig17_end_to_end.run(benchmarks=["Caps-MN1"])
    row = result.rows[0]
    assert row.speedup[DesignPoint.PIM_CAPSNET] >= row.speedup[DesignPoint.RMAS_PIM] - 1e-9
    assert row.speedup[DesignPoint.PIM_CAPSNET] >= row.speedup[DesignPoint.RMAS_GPU] - 1e-9


def test_fig18_sweep_structure():
    result = fig18_frequency_sweep.run(benchmarks=SUBSET, frequencies_mhz=(312.5, 937.5))
    assert set(result.frequencies_mhz) == {312.5, 937.5}
    # Every (benchmark, frequency, dimension) cell exists.
    for benchmark in SUBSET:
        for frequency in result.frequencies_mhz:
            for dimension in Dimension:
                assert result.speedup(benchmark, frequency, dimension) > 0


def test_fig18_higher_frequency_is_faster():
    result = fig18_frequency_sweep.run(benchmarks=["Caps-MN1"], frequencies_mhz=(312.5, 937.5))
    for dimension in Dimension:
        slow = result.speedup("Caps-MN1", 312.5, dimension)
        fast = result.speedup("Caps-MN1", 937.5, dimension)
        assert fast > slow


def test_fig18_best_dimension_recorded():
    result = fig18_frequency_sweep.run(benchmarks=["Caps-SV1"], frequencies_mhz=(312.5,))
    assert ("Caps-SV1", 312.5) in result.best_dimension


def test_fig18_missing_cell_raises():
    result = fig18_frequency_sweep.run(benchmarks=["Caps-SV1"], frequencies_mhz=(312.5,))
    with pytest.raises(KeyError):
        result.speedup("Caps-MN1", 312.5, Dimension.LOW)


def test_overhead_matches_paper():
    result = overhead.run()
    assert result.total_area_mm2 == pytest.approx(3.11, abs=0.2)
    assert 0.002 < result.area_fraction < 0.005
    assert 1.0 < result.average_logic_power_watts < 4.0
    assert all(report.within_budget for _, report in result.thermal_reports)
    assert result.max_frequency_mhz > 937.5


def test_overhead_report_mentions_budget():
    report = overhead.format_report(overhead.run())
    assert "mm^2" in report
    assert "Thermal" in report
