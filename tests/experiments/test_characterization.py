"""Tests for the characterization experiments (Figs. 4-7)."""

import pytest

from repro.experiments import (
    fig04_layer_breakdown,
    fig05_stall_breakdown,
    fig06_onchip_storage,
    fig07_bandwidth,
)
from repro.gpu.kernels import StallClass

SUBSET = ["Caps-MN1", "Caps-SV1", "Caps-EN1"]


def test_fig04_rows_and_fractions():
    result = fig04_layer_breakdown.run(benchmarks=SUBSET)
    assert [row.benchmark for row in result.rows] == SUBSET
    for row in result.rows:
        total = (
            row.fraction_conv + row.fraction_primary_caps + row.fraction_routing + row.fraction_fc
        )
        assert total == pytest.approx(1.0, abs=1e-6)
        assert row.total_time_s > 0


def test_fig04_routing_dominates():
    result = fig04_layer_breakdown.run(benchmarks=SUBSET)
    assert 0.6 < result.average_routing_fraction < 0.95
    for row in result.rows:
        assert row.fraction_routing > max(row.fraction_conv, row.fraction_fc)


def test_fig04_report_mentions_paper_number():
    result = fig04_layer_breakdown.run(benchmarks=["Caps-MN1"])
    report = fig04_layer_breakdown.format_report(result)
    assert "74.62%" in report
    assert "Caps-MN1" in report


def test_fig05_fractions_sum_to_one():
    result = fig05_stall_breakdown.run(benchmarks=SUBSET)
    for row in result.rows:
        assert sum(row.fractions.values()) == pytest.approx(1.0, abs=1e-6)


def test_fig05_memory_and_sync_dominate():
    result = fig05_stall_breakdown.run(benchmarks=SUBSET)
    assert 0.35 < result.average_memory_fraction < 0.6
    assert 0.25 < result.average_sync_fraction < 0.45
    assert result.average_ldst_utilization > result.average_alu_utilization


def test_fig05_report_contains_stall_classes():
    result = fig05_stall_breakdown.run(benchmarks=["Caps-MN1"])
    report = fig05_stall_breakdown.format_report(result)
    for cls in StallClass:
        assert cls.value in report


def test_fig06_ratios_match_paper_scale():
    result = fig06_onchip_storage.run(benchmarks=SUBSET)
    # Fig. 6(a): ratios in the tens to hundreds.
    for row in result.rows:
        assert row.ratio_by_device["K40m"] > row.ratio_by_device["V100"]
        assert row.ratio_by_device["K40m"] > 20
    assert result.average_ratio_by_device["K40m"] > result.average_ratio_by_device["V100"]


def test_fig06_performance_improves_modestly_with_storage():
    result = fig06_onchip_storage.run(benchmarks=SUBSET)
    for row in result.rows:
        perf = row.normalized_performance_by_device
        assert perf["K40m"] == pytest.approx(1.0)
        assert 1.0 <= perf["V100"] < 1.3


def test_fig07_bandwidth_improvement_in_paper_range():
    result = fig07_bandwidth.run(benchmarks=SUBSET)
    for row in result.rows:
        perf = row.normalized_performance
        assert perf["GDDR5"] == pytest.approx(1.0)
        assert perf["HBM2"] > perf["GDDR6"] > perf["GDDR5X"] > 1.0
    assert 1.1 < result.average_by_technology["HBM2"] < 1.6


def test_fig07_report_contains_bandwidths():
    result = fig07_bandwidth.run(benchmarks=["Caps-MN1"])
    report = fig07_bandwidth.format_report(result)
    assert "288" in report
    assert "897" in report
