"""Tests for :mod:`repro.sweep.spec` (axes, validation, JSON, presets)."""

import json

import pytest

from repro.api.scenario import Scenario
from repro.sweep import SweepAxis, SweepSpec, sweep_preset_names, sweep_presets


# ------------------------------------------------------------------- axes


def test_axis_canonicalizes_abbreviated_keys():
    axis = SweepAxis("hmc.pe_frequency", (312.5, 625.0))
    assert axis.key == "hmc.pe_frequency_mhz"


def test_axis_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown sweep axis"):
        SweepAxis("hmc.warp_core_mhz", (1.0,))  # repro: allow(RPR-C001)


def test_axis_rejects_ambiguous_keys():
    # "hmc.p" abbreviates several HMC fields (packet_overhead_bytes,
    # pes_per_vault, pe_frequency_mhz).
    with pytest.raises(ValueError, match="ambiguous sweep axis"):
        SweepAxis("hmc.p", (1.0,))  # repro: allow(RPR-C001)


def test_axis_rejects_empty_and_duplicate_values():
    with pytest.raises(ValueError, match="no values"):
        SweepAxis("hmc.pe_frequency_mhz", ())
    with pytest.raises(ValueError, match="duplicate values"):
        SweepAxis("hmc.pe_frequency_mhz", (625.0, 625.0))


def test_axis_rejects_non_scalar_values():
    with pytest.raises(ValueError, match="scalars"):
        SweepAxis("hmc.pe_frequency_mhz", ((312.5, 625.0),))


# ------------------------------------------------------------------- spec


def test_spec_requires_an_axis():
    with pytest.raises(ValueError, match="at least one axis"):
        SweepSpec(name="empty")


def test_spec_rejects_duplicate_axes():
    with pytest.raises(ValueError, match="duplicate sweep axes"):
        SweepSpec.from_axes(
            {"hmc.pe_frequency": [312.5], "hmc.pe_frequency_mhz": [625.0]}
        )


def test_spec_rejects_unknown_kind_and_design():
    with pytest.raises(ValueError, match="unknown sweep kind"):
        SweepSpec.from_axes({"hmc.pe_frequency_mhz": [625.0]}, kind="latency")
    with pytest.raises(ValueError, match="unknown design point"):
        SweepSpec.from_axes({"hmc.pe_frequency_mhz": [625.0]}, designs=("warp",))


def test_spec_normalizes_kind_spelling():
    spec = SweepSpec.from_axes({"hmc.pe_frequency_mhz": [625.0]}, kind="end_to_end")
    assert spec.kind == "end-to-end"


def test_spec_drops_baseline_from_designs():
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [625.0]}, designs=("baseline", "pim-capsnet")
    )
    assert spec.designs == ("pim-capsnet",)
    with pytest.raises(ValueError, match="non-baseline"):
        SweepSpec.from_axes({"hmc.pe_frequency_mhz": [625.0]}, designs=("baseline",))


def test_grid_expansion_is_row_major():
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0], "hmc.pes_per_vault": [8, 16]}
    )
    assert spec.grid_size() == 4
    assignments = spec.assignments()
    assert assignments == [
        {"hmc.pe_frequency_mhz": 312.5, "hmc.pes_per_vault": 8},
        {"hmc.pe_frequency_mhz": 312.5, "hmc.pes_per_vault": 16},
        {"hmc.pe_frequency_mhz": 625.0, "hmc.pes_per_vault": 8},
        {"hmc.pe_frequency_mhz": 625.0, "hmc.pes_per_vault": 16},
    ]


def test_scenario_for_applies_overrides_and_names_points():
    spec = SweepSpec.from_axes({"hmc.pe_frequency_mhz": [625.0]})
    base = Scenario.default()
    variant = spec.scenario_for(base, spec.assignments()[0])
    assert variant.hmc.pe_frequency_mhz == 625.0
    assert variant.name == "paper-default+hmc.pe_frequency_mhz=625"


# ------------------------------------------------------------ serialization


def test_spec_round_trips_through_dict():
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0]},
        name="rt",
        benchmarks=("Caps-MN1",),
        designs=("pim-intra",),
        kind="end-to-end",
    )
    assert SweepSpec.from_dict(spec.to_dict()) == spec


def test_spec_from_dict_accepts_axis_mapping_and_entries():
    from_mapping = SweepSpec.from_dict(
        {"name": "m", "axes": {"hmc.pe_frequency_mhz": [312.5]}}
    )
    from_entries = SweepSpec.from_dict(
        {"name": "m", "axes": [{"key": "hmc.pe_frequency_mhz", "values": [312.5]}]}
    )
    assert from_mapping == from_entries


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown sweep key"):
        SweepSpec.from_dict({"axes": {"hmc.pe_frequency_mhz": [1.0]}, "turbo": True})
    with pytest.raises(ValueError, match="missing the required 'axes'"):
        SweepSpec.from_dict({"name": "no-axes"})


def test_spec_from_file_defaults_name_to_stem(tmp_path):
    path = tmp_path / "freq_scan.json"
    path.write_text(json.dumps({"axes": {"hmc.pe_frequency_mhz": [312.5, 625]}}))
    spec = SweepSpec.from_file(path)
    assert spec.name == "freq_scan"
    assert spec.axis_keys == ["hmc.pe_frequency_mhz"]


def test_spec_load_resolves_presets_and_files(tmp_path):
    preset = SweepSpec.load("fig18-frequency")
    assert preset.axis_keys == ["hmc.pe_frequency_mhz"]
    # The preset's grid is exactly the Fig. 18 frequency list.
    from repro.experiments.fig18_frequency_sweep import FIG18_FREQUENCIES_MHZ

    assert preset.axes[0].values == tuple(FIG18_FREQUENCIES_MHZ)
    path = tmp_path / "mine.json"
    SweepSpec.from_axes({"pipeline_batches": [4, 8]}).to_file(path)
    assert SweepSpec.load(str(path)).axis_keys == ["pipeline_batches"]
    with pytest.raises(ValueError, match="unknown sweep spec"):
        SweepSpec.load("no-such-sweep")


def test_preset_registry_is_copied_and_listed():
    presets = sweep_presets()
    presets["fig18-frequency"] = None  # mutating the copy must not leak
    assert sweep_presets()["fig18-frequency"] is not None
    assert "fig18-frequency" in sweep_preset_names()
