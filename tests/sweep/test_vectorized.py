"""Tests for :mod:`repro.sweep.vectorized` (bit-exact plane batching)."""

import dataclasses

import pytest

from repro.api import Scenario
from repro.api.scenario import preset_names
from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.engine.diskcache import SimulationCache
from repro.engine.strategies import (
    DesignPointStrategy,
    register_strategy,
    unregister_strategy,
)
from repro.sweep import (
    SweepRunner,
    SweepSpec,
    VectorizedMismatchError,
    evaluate_grid,
    vectorization_blocker,
)
from repro.sweep.vectorized import _assert_results_equal, _plane_hashes

FREQUENCIES = [156.25, 312.5, 625.0, 1250.0]

#: Every built-in non-baseline design point: covers the GPU strategy, all
#: three PIM-pipelined placements, the scheduler-policy variants and the
#: all-in-PIM offload.
ALL_DESIGNS = (
    "gpu-icp",
    "pim-capsnet",
    "pim-intra",
    "pim-inter",
    "all-in-pim",
    "rmas-pim",
    "rmas-gpu",
)


def _spec(kind="routing", benchmarks=("Caps-MN1", "Caps-SV2"), designs=ALL_DESIGNS):
    return SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": FREQUENCIES},
        benchmarks=benchmarks,
        designs=designs,
        kind=kind,
    )


def _run(spec, base=None, **kwargs):
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("jobs", 1)
    return SweepRunner(spec, base, **kwargs).run()


# --------------------------------------------------------------- equivalence


@pytest.mark.parametrize("preset", preset_names())
@pytest.mark.parametrize("kind", ["routing", "end-to-end"])
def test_vectorized_equals_scalar_on_every_preset(preset, kind):
    """Cell metrics match the scalar path exactly on every preset scenario.

    ``verify="full"`` additionally re-simulates *every* grid point through
    the scalar path inside the evaluator and requires exact equality of all
    result fields (components, dimensions, timings) -- so a clean run is
    itself the bit-exactness proof; the to_dict comparison then pins the
    aggregated output too.
    """
    base = Scenario.preset(preset)
    spec = _spec(kind=kind)
    vectorized = _run(spec, base, backend="vectorized", verify="full")
    scalar = _run(spec, base, backend="scalar", executor="serial")
    assert vectorized.executor_used == "vectorized"
    assert vectorized.to_dict() == scalar.to_dict()
    assert vectorized.format_report() == scalar.format_report()


def test_vectorized_covers_every_table1_workload():
    """All 12 Table-1 benchmarks, all built-in designs, exact equality."""
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 1250.0]}, designs=ALL_DESIGNS
    )
    vectorized = _run(spec, backend="vectorized", verify="full")
    scalar = _run(spec, backend="scalar", executor="serial")
    assert len(vectorized.benchmarks) == 12
    assert vectorized.to_dict() == scalar.to_dict()


@pytest.mark.parametrize("kind", ["routing", "end-to-end"])
def test_vectorized_handles_em_routing_workloads(kind):
    """EM routing (Hinton et al.) flows through the batched path bit-exact."""
    base = Scenario.default().with_workloads(
        [
            {
                "name": "Caps-EM",
                "dataset": "MNIST",
                "batch_size": 64,
                "num_low_capsules": 512,
                "num_high_capsules": 10,
                "routing": "em",
            }
        ]
    )
    spec = _spec(kind=kind, benchmarks=("Caps-EM",))
    vectorized = _run(spec, base, backend="vectorized", verify="full")
    scalar = _run(spec, base, backend="scalar", executor="serial")
    assert vectorized.to_dict() == scalar.to_dict()


def test_vectorized_matches_across_plane_axes():
    """Multi-axis grids (several planes per sweep) stay exact, both orders."""
    for axes in (
        {"hmc.pes_per_vault": [8, 16], "hmc.pe_frequency_mhz": [312.5, 625.0]},
        {"hmc.pe_frequency_mhz": [312.5, 625.0], "hmc.pes_per_vault": [8, 16]},
    ):
        spec = SweepSpec.from_axes(
            axes, benchmarks=("Caps-MN1",), designs=("pim-capsnet", "all-in-pim")
        )
        vectorized = _run(spec, backend="vectorized", verify="full")
        scalar = _run(spec, backend="scalar", executor="serial")
        assert vectorized.to_dict() == scalar.to_dict()


def test_vectorized_reproduces_the_dimension_flip():
    """The Fig. 18 effect: the chosen distribution dimension flips with
    frequency, and the batched argmax picks the same winner as the scalar
    ``best_plan`` at every point (ties included)."""
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [100.0, 200.0, 312.5, 625.0, 1250.0, 2500.0]},
        benchmarks=("Caps-MN1", "Caps-CF3", "Caps-EN3", "Caps-SV3"),
        designs=("pim-capsnet",),
    )
    # verify="full" re-checks RoutingComparison.dimension at every point.
    result = _run(spec, backend="vectorized", verify="full")
    assert result.executor_used == "vectorized"


# ------------------------------------------------------- eligibility/fallback


def test_auto_backend_vectorizes_eligible_sweeps(tmp_path):
    result = SweepRunner(
        _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet",)),
        jobs=1,
        cache_dir=tmp_path,
    ).run()
    assert result.executor_used == "vectorized"


def test_sweeps_without_a_frequency_axis_fall_back_to_scalar(tmp_path):
    spec = SweepSpec.from_axes(
        {"hmc.pes_per_vault": [8, 16]}, benchmarks=("Caps-MN1",)
    )
    assert "hmc.pe_frequency_mhz" in vectorization_blocker(spec)
    result = SweepRunner(spec, jobs=1, cache_dir=tmp_path).run()
    assert result.executor_used != "vectorized"
    with pytest.raises(ValueError, match="cannot be vectorized"):
        SweepRunner(spec, jobs=1, cache_dir=tmp_path, backend="vectorized").run()


def test_selection_axes_block_vectorization():
    spec = SweepSpec.from_axes(
        {
            "hmc.pe_frequency_mhz": [312.5, 625.0],
            "benchmarks": ["Caps-MN1", "Caps-SV1"],
        }
    )
    assert "selection" in vectorization_blocker(spec)


def test_explicit_executor_requests_keep_the_scalar_path(tmp_path):
    spec = _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet",))
    result = SweepRunner(
        spec, jobs=1, executor="serial", cache_dir=tmp_path
    ).run()
    assert result.executor_used == "serial"


@pytest.fixture
def custom_design():
    """A registered strategy the vectorized backend does not understand."""

    class TweakedStrategy(DesignPointStrategy):
        key = "test-vec-custom"

        def simulate_routing(self, model, design=None):
            from repro.engine.design_points import routing_on_hmc

            result = routing_on_hmc(model, design or self.key)
            result.time_seconds *= 1.5
            return result

        def simulate_end_to_end(self, model, design=None):
            from repro.engine.strategies import get_strategy

            delegate = get_strategy(DesignPoint.PIM_CAPSNET)
            return delegate.simulate_end_to_end(model, design or self.key)

    strategy = TweakedStrategy()
    register_strategy(strategy)
    yield strategy.key
    unregister_strategy(strategy.key)


def test_custom_strategies_trigger_the_scalar_fallback(tmp_path, custom_design):
    spec = _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet", custom_design))
    blocker = vectorization_blocker(spec)
    assert "custom strategy" in blocker and custom_design in blocker
    auto = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "auto").run()
    assert auto.executor_used != "vectorized"  # fallback engaged
    scalar = SweepRunner(
        spec, jobs=1, executor="serial", cache_dir=tmp_path / "scalar"
    ).run()
    assert auto.to_dict() == scalar.to_dict()
    with pytest.raises(ValueError, match="custom strategy"):
        SweepRunner(spec, jobs=1, backend="vectorized").run()


def test_unknown_backend_and_verify_are_rejected():
    spec = _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet",))
    with pytest.raises(ValueError, match="unknown backend"):
        SweepRunner(spec, backend="simd")
    with pytest.raises(ValueError, match="unknown verify mode"):
        SweepRunner(spec, verify="sometimes")
    with pytest.raises(ValueError, match="unknown verify mode"):
        evaluate_grid(spec, verify="sometimes")


# ----------------------------------------------------------- equivalence gate


def test_mismatch_gate_raises_on_divergence():
    model = PIMCapsNet("Caps-MN1")
    reference = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    tampered = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    tampered.time_seconds = reference.time_seconds * (1.0 + 1e-15)
    with pytest.raises(VectorizedMismatchError, match="time_seconds"):
        _assert_results_equal(tampered, reference, "unit test")
    # Identical results pass silently.
    _assert_results_equal(
        model.simulate_routing(DesignPoint.PIM_CAPSNET), reference, "unit test"
    )


# ----------------------------------------------------------- cache integration


def test_plane_hashes_equal_full_scenario_hashes():
    spec = _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet",))
    base = Scenario.default()
    anchor = spec.scenario_for(base, {"hmc.pe_frequency_mhz": FREQUENCIES[0]})
    fast = _plane_hashes(anchor, FREQUENCIES)
    slow = [
        spec.scenario_for(base, {"hmc.pe_frequency_mhz": mhz}).hardware_hash()
        for mhz in FREQUENCIES
    ]
    assert fast == slow


def test_vectorized_and_scalar_share_one_cache(tmp_path):
    """Entries written by either backend are warm hits for the other."""
    spec = _spec(benchmarks=("Caps-MN1",), designs=("pim-capsnet", "all-in-pim"))
    cold = SweepRunner(
        spec, jobs=1, executor="serial", cache_dir=tmp_path
    ).run()  # scalar writes
    warm = SweepRunner(
        spec, jobs=1, backend="vectorized", cache_dir=tmp_path
    ).run()  # vectorized reads
    assert cold.simulations_executed > 0
    assert warm.simulations_executed == 0
    assert warm.cache.misses == 0
    assert warm.cache.hits == cold.cache.misses
    assert warm.to_dict() == cold.to_dict()
    assert warm.format_report() == cold.format_report()
    # And the reverse direction: vectorized writes, scalar reads.
    other = tmp_path / "reverse"
    SweepRunner(spec, jobs=1, backend="vectorized", cache_dir=other).run()
    scalar_warm = SweepRunner(
        spec, jobs=1, executor="serial", backend="scalar", cache_dir=other
    ).run()
    assert scalar_warm.simulations_executed == 0
    assert scalar_warm.cache.misses == 0


def test_partial_cache_only_computes_missing_points(tmp_path):
    narrow = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": FREQUENCIES[:2]},
        benchmarks=("Caps-MN1",),
        designs=("pim-capsnet",),
    )
    wide = dataclasses.replace(
        narrow,
        axes=(
            dataclasses.replace(narrow.axes[0], values=tuple(FREQUENCIES)),
        ),
    )
    SweepRunner(narrow, jobs=1, backend="vectorized", cache_dir=tmp_path).run()
    result = SweepRunner(wide, jobs=1, backend="vectorized", cache_dir=tmp_path).run()
    # 2 cached points x (baseline + design) hit; 2 new points miss.
    assert result.cache.hits == 4
    assert result.cache.misses == 4


def test_bulk_cache_roundtrip_matches_single_entry_api(tmp_path):
    scenario = Scenario.default()
    model = PIMCapsNet("Caps-MN1")
    routing = model.simulate_routing(DesignPoint.PIM_CAPSNET)
    config = model.benchmark
    cache = SimulationCache(tmp_path)
    stored = cache.put_many(
        [(scenario, config, "routing", DesignPoint.PIM_CAPSNET, routing)]
    )
    assert stored == 1
    cache.flush()
    fresh = SimulationCache(tmp_path)
    # get_many accepts full scenarios and bare hardware-hash strings alike,
    # returns one slot per request in order, and misses surface as None.
    results = fresh.get_many(
        [
            (scenario, config, "routing", DesignPoint.PIM_CAPSNET),
            (scenario.hardware_hash(), config, "routing", DesignPoint.PIM_CAPSNET),
            (scenario, config, "routing", DesignPoint.ALL_IN_PIM),
        ]
    )
    assert results[2] is None
    for got in results[:2]:
        assert got.time_seconds == routing.time_seconds
        assert got.energy_joules == routing.energy_joules
        assert got.time_components == routing.time_components
    assert fresh.stats.hits == 2 and fresh.stats.misses == 1
    single = fresh.get(scenario, config, "routing", DesignPoint.PIM_CAPSNET)
    assert single.time_seconds == routing.time_seconds
