"""Tests for :mod:`repro.sweep.runner` (execution, caching, executors)."""

import pytest

from repro.api import Scenario, Session
from repro.sweep import SweepRunner, SweepSpec, run_sweep


@pytest.fixture
def small_spec():
    return SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0]},
        name="small",
        benchmarks=("Caps-MN1", "Caps-SV1"),
    )


def test_sweep_runs_the_whole_grid(tmp_path, small_spec):
    result = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    assert len(result.points) == 2
    assert result.benchmarks == ["Caps-MN1", "Caps-SV1"]
    for point in result.points:
        assert len(point.cells) == 2  # one design x two benchmarks
        for cell in point.cells:
            assert cell.speedup > 0
    # Higher PE frequency accelerates routing across the board (Fig. 18).
    assert result.points[1].average_speedup() > result.points[0].average_speedup()


def test_warm_cache_executes_zero_simulations(tmp_path, small_spec):
    cold = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    warm = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    assert cold.simulations_executed > 0
    assert warm.simulations_executed == 0
    assert warm.cache.misses == 0
    assert warm.cache.hits == cold.cache.misses


def test_warm_and_cold_reports_are_byte_identical(tmp_path, small_spec):
    cold = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    warm = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    assert warm.format_report() == cold.format_report()
    assert warm.to_dict() == cold.to_dict()


def test_overlapping_sweeps_are_incremental(tmp_path):
    first = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0]}, benchmarks=("Caps-MN1",)
    )
    wider = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0, 1250.0]}, benchmarks=("Caps-MN1",)
    )
    SweepRunner(first, jobs=1, cache_dir=tmp_path).run()
    result = SweepRunner(wider, jobs=1, cache_dir=tmp_path).run()
    # Only the new 1250 MHz point simulates; the shared points hit the cache.
    assert result.cache.hits == 4
    assert result.cache.misses == 2


def test_executors_produce_identical_output(tmp_path, small_spec):
    outputs = []
    for index, executor in enumerate(("serial", "thread", "process")):
        result = SweepRunner(
            small_spec,
            jobs=2,
            executor=executor,
            cache_dir=tmp_path / str(index),  # separate cold caches
        ).run()
        outputs.append((result.format_report(), result.to_dict()))
    assert outputs[0] == outputs[1] == outputs[2]


def test_schema_version_bump_invalidates_sweep_cache(tmp_path, small_spec):
    SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    bumped = SweepRunner(
        small_spec, jobs=1, cache_dir=tmp_path, cache_version=99
    ).run()
    assert bumped.cache.hits == 0
    assert bumped.simulations_executed > 0


def test_different_base_scenario_misses_the_cache(tmp_path, small_spec):
    SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    other = Scenario.preset("hmc-8pe")
    result = SweepRunner(small_spec, other, jobs=1, cache_dir=tmp_path).run()
    assert result.cache.hits == 0
    assert result.simulations_executed > 0


def test_disabled_cache_always_simulates(tmp_path, small_spec):
    SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    result = SweepRunner(
        small_spec, jobs=1, cache_dir=tmp_path, use_cache=False
    ).run()
    assert result.cache.requests == 0
    assert result.simulations_executed > 0


def test_unknown_benchmark_fails_before_execution(tmp_path):
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [625.0]}, benchmarks=("Caps-XYZ",)
    )
    with pytest.raises(ValueError, match="unknown workload"):
        SweepRunner(spec, cache_dir=tmp_path)


def test_unknown_executor_rejected(small_spec):
    with pytest.raises(ValueError, match="unknown executor"):
        SweepRunner(small_spec, executor="gpu")


def test_end_to_end_kind_and_multiple_designs(tmp_path):
    spec = SweepSpec.from_axes(
        {"pipeline_batches": [4, 8]},
        name="e2e",
        benchmarks=("Caps-MN1",),
        designs=("pim-capsnet", "all-in-pim"),
        kind="end-to-end",
    )
    result = SweepRunner(spec, jobs=1, cache_dir=tmp_path).run()
    designs = {cell.design for point in result.points for cell in point.cells}
    assert designs == {"pim-capsnet", "all-in-pim"}
    report = result.format_report()
    assert "end-to-end speedup" in report
    assert "avg all-in-pim" in report


def test_custom_workloads_flow_through_the_sweep(tmp_path):
    base = Scenario.default().with_workloads(
        [
            {
                "name": "Caps-Sweep",
                "dataset": "MNIST",
                "batch_size": 64,
                "num_low_capsules": 512,
                "num_high_capsules": 10,
            }
        ]
    )
    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625.0]}, benchmarks=("Caps-Sweep",)
    )
    # Custom workloads must survive the (JSON) process boundary too.
    result = SweepRunner(
        spec, base, jobs=2, executor="process", cache_dir=tmp_path
    ).run()
    assert result.benchmarks == ["Caps-Sweep"]
    assert all(cell.speedup > 0 for point in result.points for cell in point.cells)


def test_run_sweep_and_session_sweep_agree(tmp_path, small_spec):
    direct = run_sweep(small_spec, jobs=1, cache_dir=tmp_path)
    session = Session().sweep(small_spec, jobs=1, cache_dir=tmp_path)
    assert session.format_report() == direct.format_report()
    # The session run was fully warm: the direct run populated the cache.
    assert session.simulations_executed == 0


def test_stats_are_excluded_from_structured_output(tmp_path, small_spec):
    result = SweepRunner(small_spec, jobs=1, cache_dir=tmp_path).run()
    payload = result.to_dict()
    assert set(payload) == {"spec", "base_scenario", "points"}
    stats = result.describe_stats()
    assert "simulations executed" in stats
    assert "disk cache" in stats


def test_selection_axes_share_one_shard_without_losing_entries(tmp_path):
    # A benchmarks axis keeps the hardware hash constant, so every grid
    # point writes the same cache shard; the warm run must still be free.
    spec = SweepSpec.from_axes({"benchmarks": ["Caps-MN1", "Caps-SV1"]})
    cold = SweepRunner(spec, jobs=2, executor="thread", cache_dir=tmp_path).run()
    warm = SweepRunner(spec, jobs=2, executor="thread", cache_dir=tmp_path).run()
    assert cold.simulations_executed > 0
    assert warm.simulations_executed == 0
    assert warm.cache.misses == 0
