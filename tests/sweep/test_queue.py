"""Tests for :mod:`repro.sweep.queue` (shards, leases, resume)."""

import json
import os
import socket
import subprocess
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.sweep import (
    SweepRunner,
    SweepSpec,
    run_queued_sweep,
    run_worker,
    shard_ranges,
)
from repro.sweep.queue import _atomic_write_json, _build_manifest, load_manifest


@pytest.fixture
def spec():
    return SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [156.25, 312.5, 625.0, 1250.0]},
        benchmarks=("Caps-MN1", "Caps-SV1"),
    )


def _make_workdir(tmp_path, spec, shard_size=1, use_cache=True):
    """A queue workdir with a written manifest (no workers run yet)."""
    runner = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "cache")
    manifest = _build_manifest(
        runner.spec,
        runner.base,
        runner.benchmarks,
        shard_size=shard_size,
        cache_dir=runner.cache_dir,
        use_cache=use_cache,
        cache_version=runner.cache_version,
    )
    workdir = tmp_path / "wd"
    _atomic_write_json(workdir / "manifest.json", manifest)
    return workdir


def test_shard_ranges_partition_the_grid_exactly():
    assert shard_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert shard_ranges(4, 100) == [(0, 4)]
    assert shard_ranges(0, 4) == []


def test_queued_sweep_matches_the_in_process_runner(tmp_path, spec):
    queued = run_queued_sweep(
        spec, workers=2, shard_size=1, cache_dir=tmp_path / "queue-cache"
    )
    direct = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "direct-cache").run()
    assert queued.format_report() == direct.format_report()
    assert queued.to_dict() == direct.to_dict()
    assert queued.jobs == 2
    assert queued.executor_used.startswith("queue-")


def test_resumed_complete_sweep_executes_nothing(tmp_path, spec):
    cold = run_queued_sweep(spec, workers=2, shard_size=1, cache_dir=tmp_path)
    warm = run_queued_sweep(
        spec, workers=2, shard_size=1, cache_dir=tmp_path, resume=True
    )
    assert cold.simulations_executed > 0
    assert warm.simulations_executed == 0
    assert warm.cache.misses == 0
    assert warm.format_report() == cold.format_report()
    assert warm.to_dict() == cold.to_dict()


def test_killed_sweep_resumes_without_redoing_completed_shards(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, shard_size=1)
    # A worker that dies after two of the four shards (mid-flight kill).
    report = run_worker(workdir, "doomed", max_shards=2)
    assert report["shards_executed"] == 2
    done = sorted(path.name for path in (workdir / "done").iterdir())
    assert done == ["shard-00000.json", "shard-00001.json"]

    resumed = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path / "cache",
        workdir=workdir,
        resume=True,
    )
    # Only the two missing shards executed: completed shards contribute zero
    # new simulations (their results come straight from the done-files).
    assert len(resumed.points) == 4
    assert resumed.cache.misses == report["disk_misses"]  # same 2-shard volume
    reference = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "ref").run()
    assert resumed.format_report() == reference.format_report()

    # Resuming again is entirely free.
    again = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path / "cache",
        workdir=workdir,
        resume=True,
    )
    assert again.simulations_executed == 0


def test_concurrent_workers_never_double_execute_a_shard(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, shard_size=1)
    with ThreadPoolExecutor(max_workers=2) as pool:
        reports = list(
            pool.map(lambda wid: run_worker(workdir, wid), ["w0", "w1"])
        )
    executed = sum(report["shards_executed"] for report in reports)
    assert executed == 4  # every shard exactly once across both workers
    for shard in range(4):
        with open(workdir / "done" / f"shard-{shard:05d}.json") as stream:
            payload = json.load(stream)
        assert payload["worker"] in {"w0", "w1"}
        assert payload["shard"] == shard


def test_live_lease_is_honored(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, shard_size=1)
    leases = workdir / "leases"
    leases.mkdir(parents=True)
    # A lease held by *this* (alive) process must never be stolen.
    with open(leases / "shard-00000.lock", "w") as stream:
        json.dump(
            {"worker": "other", "pid": os.getpid(), "host": socket.gethostname()},
            stream,
        )
    report = run_worker(workdir, "w0")
    assert report["shards_executed"] == 3
    assert not (workdir / "done" / "shard-00000.json").exists()


def test_stale_lease_of_dead_process_is_reclaimed(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, shard_size=1)
    leases = workdir / "leases"
    leases.mkdir(parents=True)
    proc = subprocess.Popen(["true"])
    proc.wait()  # reaped: the pid no longer names a live process
    with open(leases / "shard-00000.lock", "w") as stream:
        json.dump(
            {"worker": "dead", "pid": proc.pid, "host": socket.gethostname()},
            stream,
        )
    report = run_worker(workdir, "w0")
    assert report["shards_executed"] == 4  # the orphaned shard was reclaimed
    assert (workdir / "done" / "shard-00000.json").exists()


def test_resume_refuses_a_mismatched_workdir(tmp_path, spec):
    workdir = tmp_path / "wd"
    run_queued_sweep(
        spec, workers=1, shard_size=2, cache_dir=tmp_path, workdir=workdir
    )
    other = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5]}, benchmarks=("Caps-MN1",)
    )
    with pytest.raises(ValueError, match="different sweep"):
        run_queued_sweep(
            other,
            workers=1,
            shard_size=2,
            cache_dir=tmp_path,
            workdir=workdir,
            resume=True,
        )


def test_fresh_run_clears_stale_queue_state(tmp_path, spec):
    workdir = tmp_path / "wd"
    first = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path,
        workdir=workdir,
        use_cache=False,
    )
    # Without --resume the done-files are dropped and every shard re-runs.
    second = run_queued_sweep(
        spec,
        workers=1,
        shard_size=1,
        cache_dir=tmp_path,
        workdir=workdir,
        use_cache=False,
    )
    assert first.simulations_executed > 0
    assert second.simulations_executed == first.simulations_executed
    assert second.format_report() == first.format_report()


def test_worker_without_manifest_fails_clearly(tmp_path):
    with pytest.raises(FileNotFoundError, match="manifest"):
        run_worker(tmp_path / "nowhere")


def test_manifest_roundtrip_and_digest_stability(tmp_path, spec):
    workdir = _make_workdir(tmp_path, spec, shard_size=2)
    manifest = load_manifest(workdir)
    assert manifest["grid_size"] == 4
    assert manifest["num_shards"] == 2
    assert manifest["benchmarks"] == ["Caps-MN1", "Caps-SV1"]
    runner = SweepRunner(spec, jobs=1, cache_dir=tmp_path / "cache")
    rebuilt = _build_manifest(
        runner.spec,
        runner.base,
        runner.benchmarks,
        shard_size=2,
        cache_dir=runner.cache_dir,
        use_cache=True,
        cache_version=runner.cache_version,
    )
    assert rebuilt["digest"] == manifest["digest"]


def test_default_workdir_is_content_addressed(tmp_path, spec):
    cold = run_queued_sweep(spec, workers=1, shard_size=2, cache_dir=tmp_path)
    sweeps = sorted((tmp_path / "sweeps").iterdir())
    assert len(sweeps) == 1
    # A bare --resume (no explicit workdir) finds the same directory.
    warm = run_queued_sweep(
        spec, workers=1, shard_size=2, cache_dir=tmp_path, resume=True
    )
    assert warm.simulations_executed == 0
    assert warm.format_report() == cold.format_report()
