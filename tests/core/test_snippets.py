"""Tests for workload snippets and the snippet scheduler."""

import pytest

from repro.core.distribution import WorkloadDistributor
from repro.core.snippets import (
    SnippetScheduler,
    build_snippets,
    load_imbalance,
    snippet_count_for,
)
from repro.hmc.config import HMCConfig
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.parallelism import Dimension


@pytest.fixture
def plan():
    return WorkloadDistributor(BENCHMARKS["Caps-MN1"]).best_plan()


def test_build_snippets_count(plan):
    hmc = HMCConfig()
    snippets = build_snippets(plan, hmc.num_vaults)
    assert len(snippets) == plan.per_vault_parallel_suboperations * plan.vaults_used
    assert len(snippets) >= hmc.num_vaults  # many more snippets than vaults


def test_snippets_conserve_per_vault_work(plan):
    hmc = HMCConfig()
    snippets = build_snippets(plan, hmc.num_vaults)
    per_vault = plan.per_vault_parallel_suboperations
    vault_ops = sum(s.operations.total_operations for s in snippets[:per_vault])
    assert vault_ops == pytest.approx(plan.per_vault_operations.total_operations, rel=1e-9)
    vault_bytes = sum(s.dram_bytes for s in snippets[:per_vault])
    assert vault_bytes == pytest.approx(plan.per_vault_dram_bytes, rel=1e-9)


def test_snippets_carry_dimension(plan):
    snippets = build_snippets(plan, 32)
    assert all(s.dimension is plan.dimension for s in snippets)


def test_build_snippets_rejects_bad_vault_count(plan):
    with pytest.raises(ValueError):
        build_snippets(plan, 0)


def test_snippet_count_helper(plan):
    assert snippet_count_for(plan, 32) >= plan.vaults_used


def test_round_robin_assignment_uses_all_vaults(plan):
    hmc = HMCConfig()
    snippets = build_snippets(plan, hmc.num_vaults)
    assignment = SnippetScheduler(hmc.num_vaults).assign(snippets, vaults_used=plan.vaults_used)
    assert assignment.vaults_used == plan.vaults_used
    assert assignment.total_snippets == len(snippets)


def test_round_robin_assignment_is_balanced(plan):
    hmc = HMCConfig()
    snippets = build_snippets(plan, hmc.num_vaults)
    assignment = SnippetScheduler(hmc.num_vaults).assign(snippets, vaults_used=plan.vaults_used)
    assert load_imbalance(assignment) < 1.5


def test_assignment_vault_loads_match_plan(plan):
    hmc = HMCConfig()
    snippets = build_snippets(plan, hmc.num_vaults)
    assignment = SnippetScheduler(hmc.num_vaults).assign(snippets, vaults_used=plan.vaults_used)
    # Each vault's assigned work should be close to the plan's per-vault workload.
    load = assignment.operations_for(0).total_operations
    assert load == pytest.approx(plan.per_vault_operations.total_operations, rel=0.25)


def test_scheduler_respects_vaults_used_restriction(plan):
    scheduler = SnippetScheduler(32)
    snippets = build_snippets(plan, 32)
    assignment = scheduler.assign(snippets, vaults_used=10)
    assert assignment.vaults_used == 10
    assert all(vault < 10 for vault in assignment.vault_snippets)


def test_scheduler_validation(plan):
    with pytest.raises(ValueError):
        SnippetScheduler(0)
    scheduler = SnippetScheduler(8)
    snippets = build_snippets(plan, 8)
    with pytest.raises(ValueError):
        scheduler.assign(snippets, vaults_used=9)


def test_high_dimension_plan_produces_snippets_for_used_vaults_only():
    distributor = WorkloadDistributor(BENCHMARKS["Caps-MN1"])
    plan = distributor.plan_for_dimension(Dimension.HIGH)
    snippets = build_snippets(plan, 32)
    assignment = SnippetScheduler(32).assign(snippets, vaults_used=plan.vaults_used)
    assert assignment.vaults_used == plan.vaults_used == 10


def test_empty_assignment_imbalance_is_one():
    from repro.core.snippets import SnippetAssignment

    assert load_imbalance(SnippetAssignment()) == 1.0
