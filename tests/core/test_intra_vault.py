"""Tests for intra-vault operation lowering and PE utilization."""

import pytest

from repro.core.intra_vault import (
    IntraVaultDistributor,
    lower_routing_to_operations,
    routing_special_function_mix,
    softmax_operation_mix,
    squash_operation_mix,
)
from repro.hmc.pe import PEOperation
from repro.workloads.benchmarks import BENCHMARKS


def test_squash_mix_contents():
    mix = squash_operation_mix(count=10, high_dim=16)
    assert mix.counts[PEOperation.MAC] == 160
    assert mix.counts[PEOperation.INV_SQRT] == 10
    assert mix.counts[PEOperation.DIV] == 10
    assert mix.counts[PEOperation.MUL] == 170


def test_squash_mix_rejects_negative():
    with pytest.raises(ValueError):
        squash_operation_mix(-1, 16)


def test_softmax_mix_contents():
    mix = softmax_operation_mix(rows=5, row_length=10)
    assert mix.counts[PEOperation.EXP] == 50
    assert mix.counts[PEOperation.DIV] == 50
    assert mix.counts[PEOperation.ADD] == 45


def test_softmax_mix_rejects_negative():
    with pytest.raises(ValueError):
        softmax_operation_mix(-1, 4)


def test_lower_routing_mac_count(tiny_benchmark):
    mix = lower_routing_to_operations(
        tiny_benchmark,
        eq1_pairs=10,
        eq2_macs=100,
        eq3_squashes=0,
        eq4_dots=5,
        eq4_accumulations=7,
        eq5_rows=0,
    )
    expected_macs = 10 * tiny_benchmark.low_dim * tiny_benchmark.high_dim + 100 + 5 * tiny_benchmark.high_dim
    assert mix.counts[PEOperation.MAC] == expected_macs
    assert mix.counts[PEOperation.ADD] == 7


def test_lower_routing_includes_special_functions(tiny_benchmark):
    mix = lower_routing_to_operations(
        tiny_benchmark,
        eq1_pairs=0,
        eq2_macs=0,
        eq3_squashes=4,
        eq4_dots=0,
        eq4_accumulations=0,
        eq5_rows=3,
    )
    assert mix.counts[PEOperation.EXP] == 3 * tiny_benchmark.num_high_capsules
    assert mix.counts[PEOperation.INV_SQRT] == 4


def test_utilization_full_when_enough_suboperations():
    distributor = IntraVaultDistributor(pes_per_vault=16)
    assert distributor.utilization(32) == 1.0
    assert distributor.effective_pes(32) == 16


def test_utilization_partial_without_secondary_dimension():
    distributor = IntraVaultDistributor(pes_per_vault=16, allow_secondary_dimension=False)
    assert distributor.utilization(4) == pytest.approx(0.25)
    assert distributor.effective_pes(4) == 4


def test_secondary_dimension_recovers_utilization():
    # The paper's fallback: re-partition along another dimension when the
    # primary dimension does not produce enough parallel sub-operations.
    distributor = IntraVaultDistributor(pes_per_vault=16)
    assert distributor.utilization(1, secondary_parallelism=100) == 1.0


def test_utilization_zero_suboperations_minimal():
    distributor = IntraVaultDistributor(pes_per_vault=16)
    assert distributor.utilization(0) == pytest.approx(1.0 / 16)
    assert distributor.effective_pes(0) == 1


def test_utilization_rejects_invalid_arguments():
    distributor = IntraVaultDistributor()
    with pytest.raises(ValueError):
        distributor.utilization(-1)
    with pytest.raises(ValueError):
        distributor.utilization(1, secondary_parallelism=0)


def test_special_function_mix_matches_workload_model():
    config = BENCHMARKS["Caps-MN1"]
    counts = routing_special_function_mix(config)
    assert counts["exp"] == 3 * 1152 * 10
    assert counts["div"] == 3 * (1152 * 10 + 100 * 10)
    assert counts["inv_sqrt"] == 3 * 100 * 10
