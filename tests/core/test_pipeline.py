"""Tests for the host/HMC batch pipeline model."""

import pytest

from repro.core.pipeline import PipelineModel, PipelineTiming


def test_serial_total_time():
    model = PipelineModel(num_batches=4)
    timing = model.serial(host_time=2.0, routing_time=3.0)
    assert timing.total_time == pytest.approx(4 * 5.0)
    assert timing.steady_state_time == pytest.approx(5.0)


def test_pipelined_total_time_fill_and_drain():
    model = PipelineModel(num_batches=4)
    timing = model.pipelined(host_time=2.0, routing_time=3.0)
    # host + 3 * max + routing = 2 + 9 + 3.
    assert timing.total_time == pytest.approx(14.0)


def test_pipelined_single_batch_has_no_overlap():
    model = PipelineModel(num_batches=1)
    timing = model.pipelined(host_time=2.0, routing_time=3.0)
    assert timing.total_time == pytest.approx(5.0)


def test_pipelined_faster_than_serial():
    model = PipelineModel(num_batches=8)
    serial = model.serial(2.0, 3.0)
    pipelined = model.pipelined(2.0, 3.0)
    assert pipelined.total_time < serial.total_time
    assert PipelineModel.speedup(serial, pipelined) > 1.0


def test_pipelined_speedup_bounded_by_stage_ratio():
    model = PipelineModel(num_batches=100)
    serial = model.serial(2.0, 3.0)
    pipelined = model.pipelined(2.0, 3.0)
    # The ideal bound is (2+3)/3; fill/drain keeps us strictly below it.
    assert PipelineModel.speedup(serial, pipelined) < 5.0 / 3.0
    assert PipelineModel.speedup(serial, pipelined) > 1.5


def test_bubble_time():
    model = PipelineModel(num_batches=4)
    assert model.pipelined(2.0, 3.0).bubble_time == pytest.approx(1.0)
    assert model.serial(2.0, 3.0).bubble_time == 0.0


def test_average_batch_time():
    model = PipelineModel(num_batches=4)
    timing = model.pipelined(2.0, 2.0)
    assert timing.average_batch_time == pytest.approx(timing.total_time / 4)


def test_balanced_stages_maximize_pipeline_benefit():
    model = PipelineModel(num_batches=16)
    balanced = model.pipelined(2.5, 2.5)
    skewed = model.pipelined(1.0, 4.0)
    assert balanced.total_time < skewed.total_time


def test_zero_batches_rejected():
    with pytest.raises(ValueError):
        PipelineModel(num_batches=0)


def test_negative_stage_time_rejected():
    model = PipelineModel()
    with pytest.raises(ValueError):
        model.pipelined(-1.0, 1.0)


def test_speedup_of_identical_timings_is_one():
    model = PipelineModel(num_batches=3)
    timing = model.serial(1.0, 1.0)
    assert PipelineModel.speedup(timing, timing) == pytest.approx(1.0)


def test_zero_time_timing_gives_infinite_speedup():
    baseline = PipelineTiming(host_stage_time=1.0, routing_stage_time=1.0, num_batches=1, pipelined=False)
    zero = PipelineTiming(host_stage_time=0.0, routing_stage_time=0.0, num_batches=1, pipelined=False)
    assert PipelineModel.speedup(baseline, zero) == float("inf")
