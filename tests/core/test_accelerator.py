"""Tests for the top-level PIM-CapsNet accelerator model."""

import pytest

from repro.core.accelerator import DesignPoint, PIMCapsNet
from repro.hmc.config import HMCConfig
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.parallelism import Dimension


@pytest.fixture(scope="module")
def accelerator():
    return PIMCapsNet("Caps-MN1")


@pytest.fixture(scope="module")
def routing_results(accelerator):
    return accelerator.compare_routing()


@pytest.fixture(scope="module")
def end_to_end_results(accelerator):
    return accelerator.compare_end_to_end()


def test_accepts_benchmark_by_name_or_config():
    by_name = PIMCapsNet("Caps-SV1")
    by_config = PIMCapsNet(BENCHMARKS["Caps-SV1"])
    assert by_name.benchmark is by_config.benchmark


def test_routing_comparison_fields(routing_results):
    baseline = routing_results[DesignPoint.BASELINE_GPU]
    assert baseline.benchmark == "Caps-MN1"
    assert baseline.time_seconds > 0
    assert baseline.energy_joules > 0
    assert set(baseline.time_components) == {"compute", "memory", "sync", "overhead"}


def test_pim_routing_components(routing_results):
    pim = routing_results[DesignPoint.PIM_CAPSNET]
    assert set(pim.time_components) == {"execution", "xbar", "vrs"}
    assert pim.dimension in set(Dimension)
    assert set(pim.energy_components) == {"execution", "dram", "crossbar", "vault"}


def test_rp_speedup_in_paper_range(routing_results):
    baseline = routing_results[DesignPoint.BASELINE_GPU]
    pim = routing_results[DesignPoint.PIM_CAPSNET]
    speedup = pim.speedup_over(baseline)
    # Paper: ~2.17x on average (up to ~2.3x per benchmark).
    assert 1.5 < speedup < 3.5


def test_rp_energy_saving_in_paper_range(routing_results):
    baseline = routing_results[DesignPoint.BASELINE_GPU]
    pim = routing_results[DesignPoint.PIM_CAPSNET]
    saving = pim.energy_saving_over(baseline)
    # Paper: 92.18% on average.
    assert 0.85 < saving < 0.99


def test_gpu_icp_barely_helps(routing_results):
    baseline = routing_results[DesignPoint.BASELINE_GPU]
    icp = routing_results[DesignPoint.GPU_ICP]
    assert 0.99 <= icp.speedup_over(baseline) < 1.10


def test_pim_intra_dominated_by_crossbar(routing_results):
    intra = routing_results[DesignPoint.PIM_INTRA]
    assert intra.time_components["xbar"] > 0.3 * intra.time_seconds


def test_pim_inter_dominated_by_vault_request_stalls(routing_results):
    inter = routing_results[DesignPoint.PIM_INTER]
    assert inter.time_components["vrs"] > 0.4 * inter.time_seconds


def test_pim_capsnet_beats_partial_designs(routing_results):
    pim = routing_results[DesignPoint.PIM_CAPSNET]
    assert pim.time_seconds < routing_results[DesignPoint.PIM_INTRA].time_seconds
    assert pim.time_seconds < routing_results[DesignPoint.PIM_INTER].time_seconds


def test_pim_inter_close_to_or_below_baseline(routing_results):
    baseline = routing_results[DesignPoint.BASELINE_GPU]
    inter = routing_results[DesignPoint.PIM_INTER]
    # Paper: PIM-Inter is ~5% slower than the GPU baseline.
    assert 0.5 < inter.speedup_over(baseline) < 1.2


def test_forced_dimension_is_respected():
    forced = PIMCapsNet("Caps-MN1", force_dimension=Dimension.HIGH)
    result = forced.simulate_routing(DesignPoint.PIM_CAPSNET)
    assert result.dimension is Dimension.HIGH


def test_forced_dimension_never_beats_best_choice():
    best = PIMCapsNet("Caps-MN1").simulate_routing(DesignPoint.PIM_CAPSNET)
    for dimension in Dimension:
        forced = PIMCapsNet("Caps-MN1", force_dimension=dimension)
        result = forced.simulate_routing(DesignPoint.PIM_CAPSNET)
        assert result.time_seconds >= best.time_seconds * 0.999


def test_higher_pe_frequency_speeds_up_routing():
    slow = PIMCapsNet("Caps-MN1", hmc_config=HMCConfig().with_pe_frequency(312.5))
    fast = PIMCapsNet("Caps-MN1", hmc_config=HMCConfig().with_pe_frequency(937.5))
    assert (
        fast.simulate_routing(DesignPoint.PIM_CAPSNET).time_seconds
        < slow.simulate_routing(DesignPoint.PIM_CAPSNET).time_seconds
    )


def test_end_to_end_baseline_is_serial(end_to_end_results):
    baseline = end_to_end_results[DesignPoint.BASELINE_GPU]
    assert not baseline.timing.pipelined
    assert baseline.host_stage_seconds > 0
    assert baseline.routing_stage_seconds > 0


def test_end_to_end_pim_is_pipelined(end_to_end_results):
    pim = end_to_end_results[DesignPoint.PIM_CAPSNET]
    assert pim.timing.pipelined


def test_overall_speedup_in_paper_range(end_to_end_results):
    baseline = end_to_end_results[DesignPoint.BASELINE_GPU]
    pim = end_to_end_results[DesignPoint.PIM_CAPSNET]
    # Paper: ~2.44x average overall speedup.
    assert 1.8 < pim.speedup_over(baseline) < 3.2


def test_overall_energy_saving_in_paper_range(end_to_end_results):
    baseline = end_to_end_results[DesignPoint.BASELINE_GPU]
    pim = end_to_end_results[DesignPoint.PIM_CAPSNET]
    # Paper: ~64.9% average energy saving.
    assert 0.4 < pim.energy_saving_over(baseline) < 0.8


def test_all_in_pim_slower_but_draws_far_less_power(end_to_end_results):
    # The paper's All-in-PIM halves performance but saves 71% energy; our GPU
    # host-stage model is considerably more compute-efficient than the paper's
    # measured PyTorch execution, so All-in-PIM is slower still (see
    # EXPERIMENTS.md).  The robust part of the claim -- the HMC draws a small
    # fraction of the GPU's power -- must hold.
    baseline = end_to_end_results[DesignPoint.BASELINE_GPU]
    all_in = end_to_end_results[DesignPoint.ALL_IN_PIM]
    assert all_in.speedup_over(baseline) < 1.0
    baseline_power = baseline.energy_joules / baseline.time_seconds
    all_in_power = all_in.energy_joules / all_in.time_seconds
    assert all_in_power < 0.3 * baseline_power


def test_naive_schedulers_not_better_than_rmas(end_to_end_results):
    pim = end_to_end_results[DesignPoint.PIM_CAPSNET]
    rmas_pim = end_to_end_results[DesignPoint.RMAS_PIM]
    rmas_gpu = end_to_end_results[DesignPoint.RMAS_GPU]
    assert pim.time_seconds <= rmas_pim.time_seconds * 1.001
    assert pim.time_seconds <= rmas_gpu.time_seconds * 1.001


def test_scalability_with_network_size():
    # The paper: the speedup improves (or at least holds) as the routing
    # workload grows (e.g. Caps-EN3 vs Caps-SV1).
    small = PIMCapsNet("Caps-SV1")
    large = PIMCapsNet("Caps-EN3")
    small_speedup = small.simulate_routing(DesignPoint.PIM_CAPSNET).speedup_over(
        small.simulate_routing(DesignPoint.BASELINE_GPU)
    )
    large_speedup = large.simulate_routing(DesignPoint.PIM_CAPSNET).speedup_over(
        large.simulate_routing(DesignPoint.BASELINE_GPU)
    )
    assert large_speedup > small_speedup


def test_compare_routing_default_designs(routing_results):
    assert set(routing_results) == {
        DesignPoint.BASELINE_GPU,
        DesignPoint.GPU_ICP,
        DesignPoint.PIM_INTRA,
        DesignPoint.PIM_INTER,
        DesignPoint.PIM_CAPSNET,
    }


def test_compare_end_to_end_default_designs(end_to_end_results):
    assert set(end_to_end_results) == {
        DesignPoint.BASELINE_GPU,
        DesignPoint.ALL_IN_PIM,
        DesignPoint.RMAS_PIM,
        DesignPoint.RMAS_GPU,
        DesignPoint.PIM_CAPSNET,
    }
