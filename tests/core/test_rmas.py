"""Tests for the runtime memory access scheduler (Eq. 15)."""

import pytest

from repro.core.rmas import (
    ContentionModel,
    RMASDecision,
    RuntimeMemoryAccessScheduler,
    SchedulerPolicy,
)


def test_decision_minimizes_overhead_over_all_candidates():
    scheduler = RuntimeMemoryAccessScheduler()
    decision = scheduler.decide(targeted_vaults=16, queue_depth=4.0)
    best = decision.host_priority_vaults
    for candidate in range(1, 17):
        assert scheduler.overhead(best, 16, 4.0) <= scheduler.overhead(candidate, 16, 4.0) + 1e-9


def test_decision_matches_analytic_optimum():
    # n_h* = sqrt(n_max * gamma_h / (Q * gamma_v)) = sqrt(32/8) = 2.
    scheduler = RuntimeMemoryAccessScheduler(gamma_vault=1.0, gamma_host=1.0)
    decision = scheduler.decide(targeted_vaults=32, queue_depth=8.0)
    assert decision.host_priority_vaults == 2


def test_deeper_queues_shift_priority_to_pims():
    scheduler = RuntimeMemoryAccessScheduler()
    shallow = scheduler.decide(targeted_vaults=32, queue_depth=1.0)
    deep = scheduler.decide(targeted_vaults=32, queue_depth=64.0)
    assert deep.host_priority_vaults <= shallow.host_priority_vaults


def test_memory_sensitive_host_gets_more_vaults():
    neutral = RuntimeMemoryAccessScheduler(gamma_vault=1.0, gamma_host=1.0)
    host_heavy = RuntimeMemoryAccessScheduler(gamma_vault=1.0, gamma_host=8.0)
    assert (
        host_heavy.decide(32, 8.0).host_priority_vaults
        >= neutral.decide(32, 8.0).host_priority_vaults
    )


def test_empty_queue_grants_everything_to_host():
    scheduler = RuntimeMemoryAccessScheduler()
    decision = scheduler.decide(targeted_vaults=8, queue_depth=0.0)
    assert decision.host_priority_vaults == 8
    assert decision.host_share == 1.0


def test_host_share_fraction():
    decision = RMASDecision(host_priority_vaults=4, targeted_vaults=16, overhead=1.0)
    assert decision.host_share == pytest.approx(0.25)


def test_overhead_validation():
    scheduler = RuntimeMemoryAccessScheduler()
    with pytest.raises(ValueError):
        scheduler.overhead(5, 4, 1.0)
    with pytest.raises(ValueError):
        scheduler.overhead(1, 0, 1.0)
    with pytest.raises(ValueError):
        scheduler.overhead(1, 4, -1.0)


def test_decide_validation():
    scheduler = RuntimeMemoryAccessScheduler()
    with pytest.raises(ValueError):
        scheduler.decide(0, 1.0)


def test_invalid_impact_factors_rejected():
    with pytest.raises(ValueError):
        RuntimeMemoryAccessScheduler(gamma_vault=0.0)


def test_contention_slowdowns_at_least_one():
    model = ContentionModel()
    decision = RuntimeMemoryAccessScheduler().decide(32, 8.0)
    for policy in SchedulerPolicy:
        host, pim = model.slowdowns(policy, decision)
        assert host >= 1.0
        assert pim >= 1.0


def test_gpu_priority_penalizes_pim_more():
    model = ContentionModel()
    decision = RuntimeMemoryAccessScheduler().decide(32, 8.0)
    host_g, pim_g = model.slowdowns(SchedulerPolicy.GPU_PRIORITY, decision)
    host_p, pim_p = model.slowdowns(SchedulerPolicy.PIM_PRIORITY, decision)
    assert pim_g > pim_p  # GPU priority stalls the PEs
    assert host_p > host_g  # PIM priority stalls the host


def test_rmas_policy_balances_better_than_naive_policies():
    model = ContentionModel()
    decision = RuntimeMemoryAccessScheduler().decide(32, 8.0)
    slowdowns = {
        policy: model.slowdowns(policy, decision) for policy in SchedulerPolicy
    }
    worst_rmas = max(slowdowns[SchedulerPolicy.RMAS])
    worst_gpu = max(slowdowns[SchedulerPolicy.GPU_PRIORITY])
    worst_pim = max(slowdowns[SchedulerPolicy.PIM_PRIORITY])
    assert worst_rmas <= max(worst_gpu, worst_pim)
