"""Tests for the inter-vault workload distributor and execution score."""

import pytest

from repro.core.distribution import ExecutionScoreModel, WorkloadDistributor
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.pe import PEDatapath, PEOperation
from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.parallelism import Dimension


@pytest.fixture
def distributor():
    return WorkloadDistributor(BENCHMARKS["Caps-MN1"])


def test_plans_exist_for_every_dimension(distributor):
    plans = distributor.all_plans()
    assert set(plans) == set(Dimension)


def test_plan_dimension_field_matches_key(distributor):
    for dimension, plan in distributor.all_plans().items():
        assert plan.dimension is dimension


def test_per_vault_operations_smaller_than_total(distributor):
    for plan in distributor.all_plans().values():
        assert plan.per_vault_operations.total_operations < plan.total_operations.total_operations


def test_per_vault_work_roughly_one_vault_share(distributor):
    # The critical vault should carry roughly 1/num_vaults of the total work
    # (plus the non-parallelizable remainder), never less.
    hmc = HMCConfig()
    for plan in distributor.all_plans().values():
        share = plan.per_vault_operations.total_operations / plan.total_operations.total_operations
        if plan.vaults_used == hmc.num_vaults:
            assert share >= 1.0 / hmc.num_vaults - 1e-9
            assert share < 6.0 / hmc.num_vaults


def test_batch_dimension_communication_matches_eq8_structure(distributor):
    plan = distributor.plan_for_dimension(Dimension.BATCH)
    hmc = HMCConfig()
    config = BENCHMARKS["Caps-MN1"]
    expected_packets = (
        config.routing_iterations
        * 2
        * (hmc.num_vaults - 1)
        * config.num_low_capsules
        * config.num_high_capsules
    )
    assert plan.crossbar_packets == expected_packets
    assert plan.crossbar_payload_bytes == expected_packets * 4


def test_low_dimension_communication_matches_eq10_structure(distributor):
    plan = distributor.plan_for_dimension(Dimension.LOW)
    hmc = HMCConfig()
    config = BENCHMARKS["Caps-MN1"]
    expected_packets = (
        config.routing_iterations
        * 2
        * config.batch_size
        * (hmc.num_vaults - 1)
        * config.num_high_capsules
    )
    assert plan.crossbar_packets == expected_packets
    assert plan.crossbar_payload_bytes == expected_packets * config.high_dim * 4


def test_high_dimension_uses_only_nh_vaults(distributor):
    plan = distributor.plan_for_dimension(Dimension.HIGH)
    assert plan.vaults_used == BENCHMARKS["Caps-MN1"].num_high_capsules


def test_high_dimension_has_smallest_communication(distributor):
    plans = distributor.all_plans()
    # The H-dimension only exchanges the b/c rows needed by the softmax
    # (Eq. 12), which is far less than either other dimension.
    assert plans[Dimension.HIGH].crossbar_payload_bytes < plans[Dimension.LOW].crossbar_payload_bytes
    assert plans[Dimension.HIGH].crossbar_payload_bytes < plans[Dimension.BATCH].crossbar_payload_bytes
    assert plans[Dimension.HIGH].crossbar_packets < plans[Dimension.LOW].crossbar_packets
    # The B-dimension exchanges per-element packets and therefore moves the
    # largest packet count (Eq. 8).
    assert plans[Dimension.BATCH].crossbar_packets > plans[Dimension.LOW].crossbar_packets


def test_best_plan_is_argmax_of_scores(distributor):
    scores = distributor.scores()
    best = distributor.best_plan()
    assert scores[best.dimension] == max(scores.values())


def test_best_dimension_for_mn1_is_low(distributor):
    # With the default 312.5 MHz HMC, the L dimension wins for Caps-MN1
    # (B moves too many packets, H leaves 22 of 32 vaults idle).
    assert distributor.best_dimension() is Dimension.LOW


def test_en3_prefers_high_dimension():
    # Caps-EN3 has 62 high-level capsules (> 32 vaults), making the
    # H-dimension distribution attractive (tiny communication, full vault use).
    distributor = WorkloadDistributor(BENCHMARKS["Caps-EN3"])
    assert distributor.best_dimension() is Dimension.HIGH


def test_score_model_alpha_beta_positive():
    hmc = HMCConfig()
    model = ExecutionScoreModel(
        config=hmc,
        datapath=PEDatapath(frequency_hz=hmc.pe_frequency_hz),
        crossbar=Crossbar(hmc),
    )
    assert model.alpha > 0
    assert model.beta > 0


def test_score_is_reciprocal_of_estimated_time(distributor):
    plan = distributor.best_plan()
    model = distributor.score_model
    assert model.score(plan) == pytest.approx(1.0 / model.estimated_time(plan))


def test_higher_frequency_changes_alpha():
    hmc = HMCConfig()
    slow = ExecutionScoreModel(
        config=hmc, datapath=PEDatapath(frequency_hz=312.5e6), crossbar=Crossbar(hmc)
    )
    fast = ExecutionScoreModel(
        config=hmc, datapath=PEDatapath(frequency_hz=937.5e6), crossbar=Crossbar(hmc)
    )
    assert fast.alpha < slow.alpha
    assert fast.beta == pytest.approx(slow.beta)


def test_total_dram_bytes_exceed_prediction_vector_size(distributor):
    plan = distributor.best_plan()
    predictions = BENCHMARKS["Caps-MN1"].prediction_vector_count * 16 * 4
    assert plan.total_dram_bytes > predictions


def test_operations_contain_special_functions(distributor):
    plan = distributor.best_plan()
    assert plan.total_operations.counts[PEOperation.EXP] > 0
    assert plan.total_operations.counts[PEOperation.INV_SQRT] > 0


def test_unknown_dimension_rejected(distributor):
    with pytest.raises(ValueError):
        distributor.plan_for_dimension("diagonal")  # type: ignore[arg-type]


def test_small_hmc_configuration_supported(tiny_benchmark, small_hmc_config):
    distributor = WorkloadDistributor(tiny_benchmark, small_hmc_config)
    plan = distributor.best_plan()
    assert plan.vaults_used <= small_hmc_config.num_vaults
    assert plan.per_vault_operations.total_operations > 0
