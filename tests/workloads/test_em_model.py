"""Tests for the EM routing workload model."""

import pytest

from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.em_model import EMRoutingWorkload
from repro.workloads.rp_model import RoutingWorkload


@pytest.fixture
def em_mn1():
    return EMRoutingWorkload(BENCHMARKS["Caps-MN1"])


def test_vote_tensor_same_size_as_dynamic_predictions(em_mn1):
    dynamic = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    assert em_mn1.footprint().votes == dynamic.footprint().predictions


def test_responsibilities_are_per_batch(em_mn1):
    dynamic = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    # EM keeps per-batch responsibilities: NB x the dynamic-routing coefficients.
    assert em_mn1.footprint().responsibilities == 100 * dynamic.footprint().coefficients


def test_intermediates_exceed_onchip_storage(em_mn1):
    assert em_mn1.footprint().intermediate_bytes > 16 * 1024 * 1024


def test_vote_flops_match_eq1(em_mn1):
    dynamic = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    assert em_mn1.flops_votes() == dynamic.flops_prediction()


def test_total_flops_structure(em_mn1):
    assert em_mn1.total_flops() == em_mn1.flops_votes() + 3 * em_mn1.iteration_flops()
    assert em_mn1.iteration_flops() == em_mn1.flops_e_step() + em_mn1.flops_m_step()


def test_em_iteration_costs_more_than_dynamic_iteration(em_mn1):
    # The Gaussian E/M steps do more arithmetic per vote than Eq. 2/4.
    dynamic = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    assert em_mn1.iteration_flops() > dynamic.iteration_flops()


def test_traffic_dominated_by_votes(em_mn1):
    fp = em_mn1.footprint()
    assert em_mn1.iteration_traffic_bytes() > 2 * fp.votes
    assert em_mn1.total_traffic_bytes() > em_mn1.iterations * 2 * fp.votes


def test_special_function_counts_positive(em_mn1):
    counts = em_mn1.special_function_counts()
    assert counts["exp"] > 0
    assert counts["div"] > 0
    assert counts["inv_sqrt"] == 0


def test_aggregations_scale_with_iterations():
    sv1 = EMRoutingWorkload(BENCHMARKS["Caps-SV1"])
    sv3 = EMRoutingWorkload(BENCHMARKS["Caps-SV3"])
    assert sv3.total_aggregations() == 3 * sv1.total_aggregations()


def test_dynamic_equivalent_footprint_matches_rp_model(em_mn1):
    dynamic = RoutingWorkload(BENCHMARKS["Caps-MN1"]).footprint()
    assert em_mn1.dynamic_equivalent_footprint() == dynamic


def test_flops_scale_with_network_size():
    cf1 = EMRoutingWorkload(BENCHMARKS["Caps-CF1"])
    cf3 = EMRoutingWorkload(BENCHMARKS["Caps-CF3"])
    assert cf3.total_flops() > cf1.total_flops()
