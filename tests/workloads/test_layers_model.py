"""Tests for the whole-network analytic workload model."""

import pytest

from repro.workloads.benchmarks import BENCHMARKS
from repro.workloads.layers_model import CapsNetWorkload, ConvGeometry, LayerKind


@pytest.fixture
def mn1_workload():
    return CapsNetWorkload(BENCHMARKS["Caps-MN1"])


def test_conv_geometry_output_size():
    geo = ConvGeometry(in_channels=1, out_channels=256, kernel=9, stride=1, in_h=28, in_w=28)
    assert (geo.out_h, geo.out_w) == (20, 20)


def test_conv_geometry_flops_formula():
    geo = ConvGeometry(in_channels=2, out_channels=4, kernel=3, stride=1, in_h=6, in_w=6)
    # 4x4 outputs x 4 channels x 2*2*3*3 flops per output x batch.
    assert geo.flops(batch=2) == 2 * 4 * 4 * 4 * (2 * 2 * 3 * 3)


def test_conv_geometry_invalid_collapse():
    geo = ConvGeometry(in_channels=1, out_channels=1, kernel=9, stride=1, in_h=4, in_w=4)
    with pytest.raises(ValueError):
        _ = geo.out_h


def test_mn1_primary_caps_count_matches_table1(mn1_workload):
    # 6x6 spatial positions; the channel count is chosen to produce 1152 L capsules.
    assert mn1_workload.primary_spatial == (6, 6)
    assert mn1_workload.primary_capsule_channels == 32


def test_layers_in_order(mn1_workload):
    kinds = [layer.kind for layer in mn1_workload.layers()]
    assert kinds[0] is LayerKind.CONV
    assert kinds[1] is LayerKind.PRIMARY_CAPS
    assert kinds[2] is LayerKind.ROUTING
    assert all(k is LayerKind.FULLY_CONNECTED for k in kinds[3:])


def test_fc_decoder_has_three_stages(mn1_workload):
    assert len(mn1_workload.fc_layers()) == 3


def test_fc_decoder_sizes_match_paper(mn1_workload):
    fc = mn1_workload.fc_layers()
    # 10 classes x 16 dims -> 512 -> 1024 -> 784 pixels.
    assert fc[0].flops == 2 * 100 * 160 * 512
    assert fc[2].flops == 2 * 100 * 1024 * 784


def test_total_flops_is_sum_of_layers(mn1_workload):
    assert mn1_workload.total_flops() == sum(l.flops for l in mn1_workload.layers())


def test_flops_by_kind_totals(mn1_workload):
    by_kind = mn1_workload.flops_by_kind()
    assert sum(by_kind.values()) == mn1_workload.total_flops()
    assert by_kind[LayerKind.CONV] > 0


def test_host_layers_exclude_routing(mn1_workload):
    assert all(layer.kind is not LayerKind.ROUTING for layer in mn1_workload.host_layers())
    assert len(mn1_workload.host_layers()) == len(mn1_workload.layers()) - 1


def test_routing_layer_working_set_matches_rp_model(mn1_workload):
    routing_layer = mn1_workload.routing_layer()
    assert routing_layer.working_set_bytes == mn1_workload.routing.footprint().intermediate_bytes


def test_routing_working_set_dwarfs_conv_working_set(mn1_workload):
    # The routing stage's non-shareable intermediates are orders of magnitude
    # larger than the per-image working set of the convolution.
    conv = mn1_workload.conv_layer()
    routing = mn1_workload.routing_layer()
    assert routing.working_set_bytes > 50 * conv.working_set_bytes


def test_traffic_bytes_positive_for_all_layers(mn1_workload):
    for layer in mn1_workload.layers():
        assert layer.traffic_bytes > 0
        assert layer.flops > 0


def test_larger_cifar_benchmarks_have_more_primary_flops():
    cf1 = CapsNetWorkload(BENCHMARKS["Caps-CF1"]).primary_caps_layer().flops
    cf3 = CapsNetWorkload(BENCHMARKS["Caps-CF3"]).primary_caps_layer().flops
    assert cf3 > cf1


def test_describe_contains_layer_names(mn1_workload):
    text = mn1_workload.describe()
    assert "Conv" in text
    assert "Routing" in text


def test_batch_scaling_scales_conv_flops():
    mn1 = CapsNetWorkload(BENCHMARKS["Caps-MN1"]).conv_layer().flops
    mn3 = CapsNetWorkload(BENCHMARKS["Caps-MN3"]).conv_layer().flops
    assert mn3 == 3 * mn1
