"""Tests for the declarative workload specs and the workload catalog."""

import json

import pytest

from repro.capsnet.datasets import DatasetSpec
from repro.workloads.benchmarks import BENCHMARKS, benchmark_names
from repro.workloads.catalog import (
    RoutingAlgorithm,
    WorkloadCatalog,
    WorkloadSpec,
    default_catalog,
    routing_workload_for,
)
from repro.workloads.em_model import EMRoutingWorkload
from repro.workloads.rp_model import RoutingWorkload

CUSTOM = dict(
    name="Caps-TS43",
    dataset={"name": "TRAFFIC-SIGNS", "image_shape": [3, 48, 48], "num_classes": 43},
    batch_size=64,
    num_low_capsules=2048,
    num_high_capsules=43,
    routing_iterations=4,
)


def custom_spec(**overrides) -> WorkloadSpec:
    return WorkloadSpec.from_dict({**CUSTOM, **overrides})


# --------------------------------------------------------------- WorkloadSpec


def test_named_dataset_spec_roundtrips_through_json():
    spec = WorkloadSpec(
        name="Caps-Big", dataset="mnist", batch_size=256,
        num_low_capsules=4608, num_high_capsules=32,
    )
    assert spec.dataset == "MNIST"  # canonicalized
    data = json.loads(json.dumps(spec.to_dict()))
    assert WorkloadSpec.from_dict(data) == spec


def test_inline_dataset_spec_roundtrips_through_json():
    spec = custom_spec(routing="em")
    assert spec.is_custom_dataset
    assert spec.dataset_spec.image_shape == (3, 48, 48)
    assert spec.routing is RoutingAlgorithm.EM
    data = json.loads(json.dumps(spec.to_dict()))
    assert WorkloadSpec.from_dict(data) == spec


def test_spec_is_hashable():
    assert hash(custom_spec()) == hash(custom_spec())


def test_bad_dims_rejected():
    with pytest.raises(ValueError, match="low_dim"):
        custom_spec(low_dim=0)
    with pytest.raises(ValueError, match="batch_size"):
        custom_spec(batch_size=-1)
    with pytest.raises(ValueError, match="num_high_capsules"):
        custom_spec(num_high_capsules=0)
    with pytest.raises(ValueError, match="image_shape"):
        custom_spec(dataset={"name": "X", "image_shape": [3, 0, 48], "num_classes": 4})


def test_non_integral_dataset_values_rejected():
    with pytest.raises(ValueError, match="image_shape dimension"):
        custom_spec(dataset={"name": "X", "image_shape": [3, 48.9, 48], "num_classes": 4})
    with pytest.raises(ValueError, match="num_classes"):
        custom_spec(dataset={"name": "X", "image_shape": [3, 48, 48], "num_classes": 4.5})
    with pytest.raises(ValueError, match="batch_size"):
        custom_spec(batch_size=64.9)


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError, match="unknown dataset"):
        custom_spec(dataset="IMAGENET")


def test_unknown_routing_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown routing algorithm"):
        custom_spec(routing="quantum")


def test_unknown_and_missing_keys_rejected():
    with pytest.raises(ValueError, match="unknown workload key"):
        WorkloadSpec.from_dict({**CUSTOM, "colour": "blue"})
    with pytest.raises(ValueError, match="missing required key"):
        WorkloadSpec.from_dict({"name": "X", "dataset": "MNIST"})


def test_from_file_defaults_name_to_stem(tmp_path):
    data = {k: v for k, v in CUSTOM.items() if k != "name"}
    path = tmp_path / "caps-file.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    spec = WorkloadSpec.from_file(path)
    assert spec.name == "caps-file"


def test_to_file_roundtrip(tmp_path):
    spec = custom_spec()
    path = tmp_path / "spec.json"
    spec.to_file(path)
    assert WorkloadSpec.from_file(path) == spec


def test_benchmark_conversion_roundtrip():
    spec = custom_spec(routing="em")
    config = spec.to_benchmark()
    assert config.routing == "em"
    assert config.custom_dataset == spec.dataset
    assert config.dataset_spec.num_classes == 43
    assert WorkloadSpec.from_benchmark(config) == spec


def test_routing_workload_matches_algorithm():
    assert isinstance(custom_spec().routing_workload(), RoutingWorkload)
    assert isinstance(custom_spec(routing="em").routing_workload(), EMRoutingWorkload)
    assert isinstance(routing_workload_for(BENCHMARKS["Caps-MN1"]), RoutingWorkload)


# ------------------------------------------------------------ WorkloadCatalog


def test_default_catalog_is_the_table1_seed():
    catalog = default_catalog()
    assert catalog.names() == benchmark_names()
    for name in benchmark_names():
        # Identity, not just equality: the golden-report invariant.
        assert catalog.benchmark(name) is BENCHMARKS[name]


def test_catalog_lookup_is_case_insensitive():
    catalog = default_catalog()
    assert catalog.canonical_name("caps-mn1") == "Caps-MN1"
    assert catalog.get("CAPS-SV2").routing_iterations == 6
    assert "caps-en3" in catalog
    with pytest.raises(KeyError, match="unknown workload"):
        catalog.get("Caps-XYZ")


def test_with_specs_appends_after_the_seed():
    catalog = default_catalog().with_specs([custom_spec()])
    assert len(catalog) == 13
    assert catalog.names()[:12] == benchmark_names()
    assert catalog.names()[-1] == "Caps-TS43"
    assert catalog.get("caps-ts43").num_high_capsules == 43
    # The shared default catalog is untouched.
    assert len(default_catalog()) == 12


def test_with_specs_replaces_same_name_in_place():
    override = WorkloadSpec(
        name="caps-mn1", dataset="MNIST", batch_size=999,
        num_low_capsules=1152, num_high_capsules=10,
    )
    catalog = default_catalog().with_specs([override])
    assert len(catalog) == 12
    assert catalog.get("Caps-MN1").batch_size == 999
    assert catalog.names()[1:] == benchmark_names()[1:]


def test_catalog_equality_and_hash():
    extended = default_catalog().with_specs([custom_spec()])
    assert default_catalog() == WorkloadCatalog.default()
    assert extended != default_catalog()
    assert hash(extended) == hash(default_catalog().with_specs([custom_spec()]))


# ------------------------------------------------------- read-only BENCHMARKS


def test_benchmarks_mapping_is_read_only():
    with pytest.raises(TypeError):
        BENCHMARKS["Caps-Evil"] = BENCHMARKS["Caps-MN1"]  # type: ignore[index]
    with pytest.raises(TypeError):
        del BENCHMARKS["Caps-MN1"]  # type: ignore[attr-defined]


def test_repro_benchmarks_reexport_still_works():
    import repro

    assert repro.BENCHMARKS["Caps-MN1"].batch_size == 100
    assert len(repro.BENCHMARKS) == 12
