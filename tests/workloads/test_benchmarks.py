"""Tests for the Table 1 benchmark configurations."""

import pytest

from repro.workloads.benchmarks import BENCHMARKS, BenchmarkConfig, benchmark_names, get_benchmark


def test_twelve_benchmarks_defined():
    assert len(BENCHMARKS) == 12


def test_benchmark_names_order_matches_paper():
    names = benchmark_names()
    assert names[0] == "Caps-MN1"
    assert names[-1] == "Caps-SV3"
    assert names.index("Caps-CF1") < names.index("Caps-EN1") < names.index("Caps-SV1")


def test_mnist_rows_match_table1():
    for name, batch in (("Caps-MN1", 100), ("Caps-MN2", 200), ("Caps-MN3", 300)):
        config = BENCHMARKS[name]
        assert config.batch_size == batch
        assert config.num_low_capsules == 1152
        assert config.num_high_capsules == 10
        assert config.routing_iterations == 3
        assert config.dataset == "MNIST"


def test_cifar_rows_match_table1():
    assert BENCHMARKS["Caps-CF1"].num_low_capsules == 2304
    assert BENCHMARKS["Caps-CF2"].num_low_capsules == 3456
    assert BENCHMARKS["Caps-CF3"].num_low_capsules == 4608
    for name in ("Caps-CF1", "Caps-CF2", "Caps-CF3"):
        assert BENCHMARKS[name].num_high_capsules == 11


def test_emnist_rows_match_table1():
    assert BENCHMARKS["Caps-EN1"].num_high_capsules == 26
    assert BENCHMARKS["Caps-EN2"].num_high_capsules == 47
    assert BENCHMARKS["Caps-EN3"].num_high_capsules == 62


def test_svhn_rows_match_table1():
    assert BENCHMARKS["Caps-SV1"].routing_iterations == 3
    assert BENCHMARKS["Caps-SV2"].routing_iterations == 6
    assert BENCHMARKS["Caps-SV3"].routing_iterations == 9
    for name in ("Caps-SV1", "Caps-SV2", "Caps-SV3"):
        assert BENCHMARKS[name].num_low_capsules == 576


def test_all_benchmarks_use_8d_and_16d_capsules():
    for config in BENCHMARKS.values():
        assert config.low_dim == 8
        assert config.high_dim == 16


def test_get_benchmark_case_insensitive():
    assert get_benchmark("caps-mn1") is BENCHMARKS["Caps-MN1"]


def test_get_benchmark_unknown_raises():
    with pytest.raises(KeyError):
        get_benchmark("Caps-XYZ")


def test_network_scale_increases_with_iterations():
    assert BENCHMARKS["Caps-SV3"].network_scale > BENCHMARKS["Caps-SV1"].network_scale


def test_prediction_vector_count():
    config = BENCHMARKS["Caps-MN1"]
    assert config.prediction_vector_count == 100 * 1152 * 10


def test_describe_mentions_key_parameters():
    text = BENCHMARKS["Caps-EN2"].describe()
    assert "Caps-EN2" in text
    assert "47" in text


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        BenchmarkConfig(
            name="bad", dataset="MNIST", batch_size=0, num_low_capsules=1,
            num_high_capsules=1, routing_iterations=1,
        )


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        BenchmarkConfig(
            name="bad", dataset="NOT-A-DATASET", batch_size=1, num_low_capsules=1,
            num_high_capsules=1, routing_iterations=1,
        )
