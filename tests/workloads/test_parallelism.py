"""Tests for the Table 2 parallelizable-dimension model."""

from repro.workloads.parallelism import (
    Dimension,
    EQUATION_PARALLELISM,
    RoutingEquation,
    common_dimensions,
    equations_not_parallel_along,
    parallelizable_dimensions,
    supports_dimension,
)


def test_table2_eq1_parallel_on_all_dimensions():
    assert parallelizable_dimensions(RoutingEquation.PREDICTION) == {
        Dimension.BATCH,
        Dimension.LOW,
        Dimension.HIGH,
    }


def test_table2_eq2_not_parallel_on_low():
    assert not supports_dimension(RoutingEquation.WEIGHTED_SUM, Dimension.LOW)
    assert supports_dimension(RoutingEquation.WEIGHTED_SUM, Dimension.BATCH)
    assert supports_dimension(RoutingEquation.WEIGHTED_SUM, Dimension.HIGH)


def test_table2_eq3_not_parallel_on_low():
    assert parallelizable_dimensions(RoutingEquation.SQUASH) == {Dimension.BATCH, Dimension.HIGH}


def test_table2_eq4_not_parallel_on_batch():
    assert not supports_dimension(RoutingEquation.AGREEMENT, Dimension.BATCH)
    assert supports_dimension(RoutingEquation.AGREEMENT, Dimension.LOW)
    assert supports_dimension(RoutingEquation.AGREEMENT, Dimension.HIGH)


def test_table2_eq5_only_parallel_on_low():
    assert parallelizable_dimensions(RoutingEquation.SOFTMAX) == {Dimension.LOW}


def test_observation_one_every_equation_parallelizable_somewhere():
    for equation in RoutingEquation:
        assert len(parallelizable_dimensions(equation)) >= 1


def test_observation_two_no_dimension_covers_all_equations():
    assert common_dimensions() == frozenset()


def test_equations_not_parallel_along_batch():
    blocked = equations_not_parallel_along(Dimension.BATCH)
    assert RoutingEquation.AGREEMENT in blocked
    assert RoutingEquation.SOFTMAX in blocked
    assert RoutingEquation.PREDICTION not in blocked


def test_equations_not_parallel_along_low():
    blocked = equations_not_parallel_along(Dimension.LOW)
    assert RoutingEquation.WEIGHTED_SUM in blocked
    assert RoutingEquation.SQUASH in blocked


def test_equations_not_parallel_along_high():
    blocked = equations_not_parallel_along(Dimension.HIGH)
    assert blocked == [RoutingEquation.SOFTMAX]


def test_every_equation_has_an_entry():
    assert set(EQUATION_PARALLELISM) == set(RoutingEquation)


def test_dimension_string_values():
    assert str(Dimension.BATCH) == "B"
    assert str(Dimension.LOW) == "L"
    assert str(Dimension.HIGH) == "H"
