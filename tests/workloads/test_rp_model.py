"""Tests for the analytic routing-procedure workload model."""

import pytest

from repro.workloads.benchmarks import BENCHMARKS, BenchmarkConfig
from repro.workloads.parallelism import RoutingEquation
from repro.workloads.rp_model import FP32_BYTES, RoutingWorkload, footprints_for


@pytest.fixture
def mn1_workload():
    return RoutingWorkload(BENCHMARKS["Caps-MN1"])


def test_footprint_prediction_vector_bytes(mn1_workload):
    fp = mn1_workload.footprint()
    assert fp.predictions == 100 * 1152 * 10 * 16 * FP32_BYTES


def test_footprint_weight_bytes(mn1_workload):
    fp = mn1_workload.footprint()
    assert fp.weights == 1152 * 10 * 8 * 16 * FP32_BYTES


def test_footprint_coefficients_and_logits_equal(mn1_workload):
    fp = mn1_workload.footprint()
    assert fp.logits == fp.coefficients == 1152 * 10 * FP32_BYTES


def test_intermediate_bytes_excludes_inputs_and_weights(mn1_workload):
    fp = mn1_workload.footprint()
    assert fp.intermediate_bytes == (
        fp.predictions + fp.logits + fp.coefficients + fp.weighted_sums + fp.high_capsules
    )
    assert fp.total_bytes == fp.intermediate_bytes + fp.low_capsules + fp.weights


def test_intermediates_far_exceed_onchip_storage(mn1_workload):
    # The paper's Fig. 6(a): the intermediates exceed on-chip storage by 40x+
    # even for the largest GPU (16 MB).
    fp = mn1_workload.footprint()
    assert fp.ratio_to_storage(16 * 1024 * 1024) > 4.0
    assert fp.ratio_to_storage(int(1.73 * 1024 * 1024)) > 40.0


def test_ratio_rejects_non_positive_storage(mn1_workload):
    with pytest.raises(ValueError):
        mn1_workload.footprint().ratio_to_storage(0)


def test_footprint_as_dict_keys(mn1_workload):
    assert set(mn1_workload.footprint().as_dict()) == {"u", "W", "u_hat", "b", "c", "s", "v"}


def test_flops_prediction_formula(mn1_workload):
    # Eq. 1: NB*NL*NH*CH*(2CL-1).
    assert mn1_workload.flops_prediction() == 100 * 1152 * 10 * 16 * 15


def test_flops_weighted_sum_formula(mn1_workload):
    assert mn1_workload.flops_weighted_sum() == 100 * 10 * 16 * (2 * 1152 - 1)


def test_flops_squash_formula(mn1_workload):
    assert mn1_workload.flops_squash() == 100 * 10 * (3 * 16 + 19)


def test_total_flops_includes_all_iterations(mn1_workload):
    per_eq = mn1_workload.flops_per_equation()
    assert mn1_workload.total_flops() == sum(per_eq.values())
    assert per_eq[RoutingEquation.WEIGHTED_SUM] == 3 * mn1_workload.flops_weighted_sum()


def test_flops_scale_with_iterations():
    sv1 = RoutingWorkload(BENCHMARKS["Caps-SV1"])
    sv3 = RoutingWorkload(BENCHMARKS["Caps-SV3"])
    # SV3 has 3x the iterations of SV1 with everything else equal.
    assert sv3.iteration_flops() == sv1.iteration_flops()
    assert sv3.total_flops() - sv3.flops_prediction() == 3 * (
        sv1.total_flops() - sv1.flops_prediction()
    )


def test_traffic_per_equation_prediction_dominates(mn1_workload):
    traffic = mn1_workload.traffic_per_equation()
    assert traffic[RoutingEquation.PREDICTION].write_bytes == mn1_workload.footprint().predictions
    # Eq. 2 and Eq. 4 both re-read the prediction vectors.
    assert traffic[RoutingEquation.WEIGHTED_SUM].read_bytes > mn1_workload.footprint().predictions
    assert traffic[RoutingEquation.AGREEMENT].read_bytes > mn1_workload.footprint().predictions


def test_total_traffic_exceeds_iteration_traffic(mn1_workload):
    assert mn1_workload.total_traffic_bytes() > mn1_workload.iteration_traffic_bytes()
    assert (
        mn1_workload.total_traffic_bytes()
        == mn1_workload.traffic_per_equation()[RoutingEquation.PREDICTION].total_bytes
        + 3 * mn1_workload.iteration_traffic_bytes()
    )


def test_special_function_counts(mn1_workload):
    counts = mn1_workload.special_function_counts()
    assert counts["exp"] == 3 * 1152 * 10
    assert counts["inv_sqrt"] == 3 * 100 * 10


def test_aggregation_points(mn1_workload):
    points = mn1_workload.aggregation_points()
    assert points["eq2_reduce_over_L"] == 3 * 100 * 10
    assert points["eq4_reduce_over_B"] == 3 * 1152 * 10
    assert mn1_workload.total_aggregations() == sum(points.values())


def test_synchronization_groups_scale_with_batch():
    mn1 = RoutingWorkload(BENCHMARKS["Caps-MN1"])
    mn3 = RoutingWorkload(BENCHMARKS["Caps-MN3"])
    # The paper's Observation 1: batching does not amortize the RP.
    ratio = mn3.total_synchronization_groups() / mn1.total_synchronization_groups()
    assert ratio > 2.0


def test_synchronization_groups_rejects_bad_warp(mn1_workload):
    with pytest.raises(ValueError):
        mn1_workload.synchronization_groups(warp_size=0)


def test_footprints_for_helper():
    footprints = footprints_for(BENCHMARKS)
    assert set(footprints) == set(BENCHMARKS)
    assert footprints["Caps-CF3"].predictions > footprints["Caps-CF1"].predictions


def test_tiny_benchmark_consistency(tiny_benchmark: BenchmarkConfig):
    workload = RoutingWorkload(tiny_benchmark)
    assert workload.total_flops() > 0
    assert workload.footprint().intermediate_bytes > 0
