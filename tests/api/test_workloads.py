"""Tests for workload-first scenarios: specs threaded through the engine."""

import json

import pytest

from repro.api import Scenario, Session, WorkloadSpec, compare_scenarios
from repro.engine.context import SimulationContext
from repro.workloads.benchmarks import benchmark_names

CUSTOM = WorkloadSpec(
    name="Caps-TS43",
    dataset={"name": "TRAFFIC-SIGNS", "image_shape": (3, 48, 48), "num_classes": 43},
    batch_size=64,
    num_low_capsules=2048,
    num_high_capsules=43,
    routing_iterations=4,
)


def test_scenario_accepts_spec_dicts_and_files(tmp_path):
    path = tmp_path / "caps-file.json"
    path.write_text(json.dumps(CUSTOM.to_dict()), encoding="utf-8")
    scenario = Scenario(
        workloads=(
            CUSTOM.to_dict(),  # inline dictionary
            str(path),  # file reference
        )
    )
    assert all(isinstance(spec, WorkloadSpec) for spec in scenario.workloads)
    assert scenario.workloads[0] == CUSTOM


def test_scenario_catalog_merges_workloads():
    scenario = Scenario(workloads=(CUSTOM,))
    assert scenario.catalog.names() == benchmark_names() + ["Caps-TS43"]
    # The default scenario resolves through the shared Table-1 catalog.
    assert Scenario.default().catalog.names() == benchmark_names()


def test_benchmarks_selection_canonicalized_case_insensitively():
    scenario = Scenario(workloads=(CUSTOM,), benchmarks=("caps-ts43", "CAPS-MN1"))
    assert scenario.benchmarks == ("Caps-TS43", "Caps-MN1")


def test_unknown_benchmark_error_lists_custom_workloads():
    with pytest.raises(ValueError, match="Caps-TS43"):
        Scenario(workloads=(CUSTOM,), benchmarks=("Caps-XYZ",))


def test_scenario_with_workloads_roundtrips_through_json(tmp_path):
    scenario = Scenario(name="custom", workloads=(CUSTOM,), benchmarks=("Caps-TS43",))
    path = tmp_path / "scenario.json"
    scenario.to_file(path)
    assert Scenario.from_file(path) == scenario


def test_scenario_file_resolves_workload_paths_relative_to_itself(tmp_path):
    (tmp_path / "caps-rel.json").write_text(
        json.dumps({k: v for k, v in CUSTOM.to_dict().items() if k != "name"}),
        encoding="utf-8",
    )
    scenario_path = tmp_path / "scenario.json"
    scenario_path.write_text(json.dumps({"workloads": ["caps-rel.json"]}), encoding="utf-8")
    scenario = Scenario.from_file(scenario_path)
    assert scenario.workloads[0].name == "caps-rel"


def test_scenario_file_resolves_scalar_workload_reference(tmp_path):
    (tmp_path / "caps-rel.json").write_text(json.dumps(CUSTOM.to_dict()), encoding="utf-8")
    scenario_path = tmp_path / "scenario.json"
    scenario_path.write_text(json.dumps({"workloads": "caps-rel.json"}), encoding="utf-8")
    assert Scenario.from_file(scenario_path).workloads[0] == CUSTOM


def test_scenario_sibling_workload_wins_over_cwd_decoy(tmp_path, monkeypatch):
    sibling_dir = tmp_path / "configs"
    sibling_dir.mkdir()
    (sibling_dir / "caps.json").write_text(json.dumps(CUSTOM.to_dict()), encoding="utf-8")
    scenario_path = sibling_dir / "scenario.json"
    scenario_path.write_text(json.dumps({"workloads": ["caps.json"]}), encoding="utf-8")
    decoy = dict(CUSTOM.to_dict(), name="Caps-Decoy")
    (tmp_path / "caps.json").write_text(json.dumps(decoy), encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert Scenario.from_file(scenario_path).workloads[0].name == "Caps-TS43"


def test_with_workloads_and_set_override():
    scenario = Scenario.default().with_workloads([CUSTOM])
    assert scenario.catalog.names()[-1] == "Caps-TS43"
    variant = scenario.with_set(["benchmarks=caps-ts43"])
    assert variant.benchmarks == ("Caps-TS43",)


def test_workloads_are_hashable_scenario_fields():
    assert hash(Scenario(workloads=(CUSTOM,))) == hash(Scenario(workloads=(CUSTOM,)))


def test_context_resolves_custom_workloads():
    ctx = SimulationContext(max_workers=1, scenario=Scenario(workloads=(CUSTOM,)))
    assert ctx.select_benchmarks() == benchmark_names() + ["Caps-TS43"]
    config = ctx.benchmark_config("caps-ts43")
    assert config.num_high_capsules == 43
    model = ctx.model("Caps-TS43")
    assert model.benchmark is config


def test_custom_workload_appears_in_experiments():
    from repro.experiments import fig04_layer_breakdown, fig15_rp_acceleration

    ctx = SimulationContext(max_workers=1, scenario=Scenario(workloads=(CUSTOM,)))
    fig04 = fig04_layer_breakdown.run(benchmarks=["Caps-TS43"], context=ctx)
    assert fig04.rows[0].benchmark == "Caps-TS43"
    assert fig04.rows[0].total_time_s > 0
    fig15 = fig15_rp_acceleration.run(benchmarks=["Caps-TS43", "Caps-MN1"], context=ctx)
    assert [row.benchmark for row in fig15.rows] == ["Caps-TS43", "Caps-MN1"]


def test_session_runs_custom_workload_only():
    scenario = Scenario(name="ts43-only", workloads=(CUSTOM,), benchmarks=("Caps-TS43",))
    result = Session(scenario, max_workers=1).run(["fig15"])
    rows = result.results["fig15"].rows
    assert [row.benchmark for row in rows] == ["Caps-TS43"]


def test_compare_scenarios_aligns_custom_workloads():
    base = Scenario(name="base", workloads=(CUSTOM,), benchmarks=("Caps-TS43",))
    fast = base.with_set(["hmc.pe_frequency_mhz=625"])
    comparison = compare_scenarios([base, fast], only=["fig15"], jobs=1)
    assert "Caps-TS43" not in comparison.labels  # labels are scenario names
    report = comparison.format_report()
    assert "average_speedup" in report
