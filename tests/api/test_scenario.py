"""Tests for the typed hardware scenario layer (repro.api.Scenario)."""

import dataclasses

import pytest

from repro.api import PRESETS, Scenario, override_keys, preset_names
from repro.gpu.devices import GPU_DEVICES
from repro.hmc.config import HMCConfig


def test_default_equals_paper_default_preset():
    assert Scenario() == Scenario.preset("paper-default")
    assert Scenario.default() == PRESETS["paper-default"]


def test_presets_are_valid_and_named():
    for name in preset_names():
        scenario = Scenario.preset(name)
        assert scenario.name == name or name == "paper-default"


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown scenario preset"):
        Scenario.preset("nope")


def test_scenarios_are_frozen_and_hashable():
    scenario = Scenario()
    with pytest.raises(dataclasses.FrozenInstanceError):
        scenario.name = "other"
    assert hash(scenario) == hash(Scenario())
    assert hash(scenario) != hash(scenario.with_overrides({"pipeline_batches": 16}))


def test_to_dict_from_dict_round_trip():
    scenario = Scenario(
        name="custom",
        hmc=HMCConfig().with_pe_frequency(625.0),
        gpu=GPU_DEVICES["V100"],
        pipeline_batches=16,
        benchmarks=("Caps-MN1", "Caps-SV1"),
        designs=("baseline", "pim-capsnet"),
    )
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_from_dict_partial_and_gpu_by_name():
    scenario = Scenario.from_dict({"gpu": "V100", "hmc": {"pe_frequency_mhz": 625}})
    assert scenario.gpu == GPU_DEVICES["V100"]
    assert scenario.hmc.pe_frequency_mhz == 625.0
    # Untouched fields keep the paper defaults.
    assert scenario.hmc.num_vaults == 32
    assert scenario.gpu_params == Scenario().gpu_params


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scenario key"):
        Scenario.from_dict({"hmcc": {}})
    with pytest.raises(ValueError, match="unknown hmc key"):
        Scenario.from_dict({"hmc": {"vaults": 64}})


def test_from_file_names_scenario_after_file(tmp_path):
    path = tmp_path / "fast-hmc.json"
    path.write_text('{"hmc": {"pe_frequency_mhz": 937.5}}', encoding="utf-8")
    scenario = Scenario.from_file(path)
    assert scenario.name == "fast-hmc"
    assert scenario.hmc.pe_frequency_mhz == 937.5


def test_load_resolves_presets_and_files(tmp_path):
    assert Scenario.load("paper-default") == Scenario()
    path = tmp_path / "s.json"
    Scenario(name="saved", pipeline_batches=4).to_file(path)
    assert Scenario.load(str(path)).pipeline_batches == 4
    with pytest.raises(ValueError, match="unknown scenario"):
        Scenario.load("no-such-preset-or-file")


def test_with_overrides_coerces_types():
    scenario = Scenario().with_overrides(
        {
            "hmc.pe_frequency_mhz": "625",
            "hmc.pes_per_vault": "8",
            "gpu.memory_bandwidth_gbs": "897.0",
            "pipeline_batches": "16",
            "benchmarks": "Caps-MN1,Caps-SV1",
        }
    )
    assert scenario.hmc.pe_frequency_mhz == 625.0
    assert scenario.hmc.pes_per_vault == 8
    assert scenario.gpu.memory_bandwidth_gbs == 897.0
    assert scenario.pipeline_batches == 16
    assert scenario.benchmarks == ("Caps-MN1", "Caps-SV1")


def test_with_overrides_gpu_by_catalog_name():
    assert Scenario().with_overrides({"gpu": "V100"}).gpu == GPU_DEVICES["V100"]
    with pytest.raises(ValueError, match="unknown GPU"):
        Scenario().with_overrides({"gpu": "NoSuchGPU"})


def test_with_overrides_rejects_unknown_keys():
    for key in ("nope", "hmc.nope", "gpu_params.nope", "hmc.pe_frequency_mhz.x"):
        with pytest.raises(ValueError, match="scenario key"):
            Scenario().with_overrides({key: "1"})


def test_with_overrides_validates_values():
    with pytest.raises(ValueError):
        Scenario().with_overrides({"hmc.pe_frequency_mhz": "-1"})
    with pytest.raises(ValueError, match="invalid value"):
        Scenario().with_overrides({"hmc.pes_per_vault": "eight"})
    with pytest.raises(ValueError):
        Scenario().with_overrides({"benchmarks": "Caps-XYZ"})


def test_with_set_parses_and_renames():
    scenario = Scenario().with_set(["hmc.pe_frequency_mhz=625", "pipeline_batches=4"])
    assert scenario.hmc.pe_frequency_mhz == 625.0
    assert scenario.pipeline_batches == 4
    assert scenario.name == "paper-default+hmc.pe_frequency_mhz=625,pipeline_batches=4"
    # An explicit name assignment wins over the automatic suffix.
    named = Scenario().with_set(["name=mine", "pipeline_batches=4"])
    assert named.name == "mine"


def test_with_set_rejects_malformed_assignments():
    for bad in ("pipeline_batches", "=5", ""):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            Scenario().with_set([bad])


def test_override_keys_cover_nested_fields():
    keys = override_keys()
    assert "hmc.pe_frequency_mhz" in keys
    assert "gpu.memory_bandwidth_gbs" in keys
    assert "gpu_params.routing_alu_efficiency" in keys
    assert "benchmarks" in keys


def test_validation_rejects_bad_selections():
    with pytest.raises(ValueError, match="unknown benchmark"):
        Scenario(benchmarks=("Caps-XYZ",))
    with pytest.raises(ValueError, match="unknown design point"):
        Scenario(designs=("typo-design",))
    # Empty selections are rejected rather than silently meaning "all".
    for attr in ("benchmarks", "designs"):
        with pytest.raises(ValueError, match="non-empty"):
            Scenario(**{attr: ()})
    with pytest.raises(ValueError):
        Scenario(pipeline_batches=0)
    with pytest.raises(ValueError):
        Scenario(rmas_queue_depth=0.0)


def test_custom_registered_design_passes_validation():
    from repro.engine.strategies import DesignPointStrategy, register_strategy, unregister_strategy

    class ScenarioProbe(DesignPointStrategy):
        key = "scenario-probe"

    register_strategy(ScenarioProbe())
    try:
        assert Scenario(designs=("scenario-probe",)).designs == ("scenario-probe",)
    finally:
        unregister_strategy("scenario-probe")


def test_from_dict_rejects_bad_values():
    with pytest.raises(ValueError, match="unknown GPU"):
        Scenario.from_dict({"gpu": "A100"})
    with pytest.raises(ValueError, match="integer"):
        Scenario.from_dict({"pipeline_batches": 8.5})
    # JSON-typical integral floats are normalized to int.
    assert Scenario.from_dict({"pipeline_batches": 16.0}).pipeline_batches == 16


def test_default_model_kwargs_are_empty():
    # The golden-report invariant: the default scenario builds models with the
    # bare constructor call of the pre-scenario engine.
    assert Scenario().model_kwargs() == {}


def test_model_kwargs_carry_deviations():
    scenario = Scenario().with_overrides({"hmc.pe_frequency_mhz": 625, "gpu": "V100"})
    kwargs = scenario.model_kwargs()
    assert kwargs["hmc_config"].pe_frequency_mhz == 625.0
    assert kwargs["gpu_device"] == GPU_DEVICES["V100"]
    assert "gpu_params" not in kwargs
    # Explicit sweep frequency overrides the scenario's own frequency.
    sweep = scenario.model_kwargs(pe_frequency_mhz=937.5)
    assert sweep["hmc_config"].pe_frequency_mhz == 937.5
