"""Tests for the Session facade and scenario comparison (repro.api)."""

from pathlib import Path

import pytest

from repro.api import Scenario, Session, compare_scenarios, headline_metrics

REPORTS_DIR = Path(__file__).parent.parent.parent / "benchmarks" / "reports"

#: Golden files checked for default-scenario byte-equivalence (a fast,
#: representative subset; tests/test_golden_reports.py covers the full set).
GOLDEN_SUBSET = {
    "fig04": "fig04_layer_breakdown.txt",
    "fig15": "fig15_rp_speedup.txt",
    "overhead": "overhead_analysis.txt",
}


@pytest.fixture(scope="module")
def default_session():
    return Session(max_workers=1)


def test_default_scenario_reproduces_golden_reports(default_session):
    result = default_session.run(sorted(GOLDEN_SUBSET))
    for name, filename in GOLDEN_SUBSET.items():
        golden = (REPORTS_DIR / filename).read_text(encoding="utf-8")
        assert result.reports[name] + "\n" == golden


def test_repeated_runs_are_cache_hits(default_session):
    first = default_session.run(["fig15"])
    executed = default_session.context.simulations_executed
    second = default_session.run(["fig15"])
    # The identical selection is memoized wholesale...
    assert second is first
    # ...and even a fresh overlapping selection re-simulates nothing.
    default_session.run(["fig15", "fig16"], benchmarks=["Caps-MN1"])
    assert default_session.context.stats.hits > 0
    third = default_session.run(["fig15"])
    assert third is first
    assert default_session.context.simulations_executed >= executed


def test_session_rejects_mismatched_context():
    from repro.engine.context import SimulationContext

    context = SimulationContext(max_workers=1, scenario=Scenario.preset("v100-host"))
    with pytest.raises(ValueError, match="different scenario"):
        Session(Scenario.default(), context=context)


def test_session_result_structure(default_session):
    result = default_session.run(["overhead"])
    assert list(result.results) == ["overhead"]
    payload = result.to_dict()
    assert payload["scenario"]["name"] == "paper-default"
    assert payload["experiments"]["overhead"]["experiment"] == "overhead"
    assert result.metrics()["overhead"]["total_area_mm2"] > 0
    assert "overhead" in result.report()


def test_scenario_hardware_changes_results():
    base = Session(max_workers=1).run(["fig15"], benchmarks=["Caps-MN1"])
    fast = Session(
        Scenario.default().with_set(["hmc.pe_frequency_mhz=625"]), max_workers=1
    ).run(["fig15"], benchmarks=["Caps-MN1"])
    assert (
        fast.results["fig15"].average_speedup > base.results["fig15"].average_speedup
    )


def test_scenario_design_selection_threads_through_fig15_and_fig17():
    scenario = Scenario.default().with_overrides(
        {"designs": "pim-capsnet,all-in-pim"}
    )
    result = Session(scenario, max_workers=1).run(
        ["fig15", "fig17"], benchmarks=["Caps-MN1"]
    )
    fig15 = result.results["fig15"]
    assert [str(design) for design in fig15.designs] == ["baseline", "pim-capsnet", "all-in-pim"]
    report = result.reports["fig17"]
    assert "rmas-pim" not in report
    assert "all-in-pim" in report


def test_scenario_benchmark_selection_is_the_default():
    scenario = Scenario.default().with_overrides({"benchmarks": "Caps-MN1"})
    result = Session(scenario, max_workers=1).run(["fig04"])
    assert [row.benchmark for row in result.results["fig04"].rows] == ["Caps-MN1"]


def test_headline_metrics_extracts_top_level_scalars(default_session):
    result = default_session.run(["fig15"])
    metrics = headline_metrics(result.results["fig15"])
    assert set(metrics) == {"average_speedup", "max_speedup", "average_energy_saving"}
    assert headline_metrics(object()) == {}


def test_compare_scenarios_aligns_metrics_and_skips_slow():
    base = Scenario.default()
    fast = base.with_set(["hmc.pe_frequency_mhz=625"])
    comparison = compare_scenarios(
        [base, fast], only=["fig15"], benchmarks=["Caps-MN1"]
    )
    assert comparison.labels == [base.name, fast.name]
    speedups = {
        delta.metric: delta for delta in comparison.deltas if delta.experiment == "fig15"
    }
    avg = speedups["average_speedup"]
    assert avg.values[1] > avg.values[0]
    assert avg.delta_percent(1) > 0
    report = comparison.format_report()
    assert "Scenario comparison" in report
    assert fast.name in report
    payload = comparison.to_dict()
    assert len(payload["scenarios"]) == 2
    assert payload["metrics"]


def test_compare_scenarios_requires_a_scenario():
    with pytest.raises(ValueError, match="at least one"):
        compare_scenarios([])


def test_compare_scenarios_disambiguates_duplicate_names():
    base = Scenario.default()
    comparison = compare_scenarios(
        [base, base], only=["overhead"], benchmarks=["Caps-MN1"]
    )
    assert comparison.labels == ["paper-default", "paper-default#2"]
