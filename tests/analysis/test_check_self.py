"""The self-lint gate: the repo passes its own static analysis.

This is the test-suite twin of the CI ``check`` job -- if it fails, either
a real invariant violation crept in or a new rule needs a fix/annotation
pass over the tree before it ships.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.check import run_check

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_clean_under_all_rules():
    targets = [
        REPO_ROOT / "src",
        REPO_ROOT / "tests",
        REPO_ROOT / "benchmarks",
        REPO_ROOT / "examples",
        REPO_ROOT / "README.md",
        REPO_ROOT / "EXPERIMENTS.md",
    ]
    result = run_check([str(t) for t in targets if t.exists()])
    assert result.files_checked > 100
    details = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"repo not clean:\n{details}"
