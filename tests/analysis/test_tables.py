"""Tests for the plain-text table formatter."""

import pytest

from repro.analysis.tables import format_table, transpose_rows


def test_format_table_contains_headers_and_cells():
    table = format_table(["a", "b"], [[1, 2], [3, 4]])
    assert "a" in table and "b" in table
    assert "1" in table and "4" in table


def test_format_table_title_on_first_line():
    table = format_table(["x"], [[1]], title="My Title")
    assert table.splitlines()[0] == "My Title"


def test_format_table_columns_aligned():
    table = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
    lines = table.splitlines()
    # Separator row has the same width as the header row.
    assert len(lines[1]) == len(lines[0])


def test_format_table_float_formatting():
    table = format_table(["v"], [[0.123456]])
    assert "0.123" in table


def test_format_table_large_float_uses_scientific():
    table = format_table(["v"], [[1.5e9]])
    assert "e+09" in table


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_empty_rows_ok():
    table = format_table(["a"], [])
    assert "a" in table


def test_transpose_rows():
    assert transpose_rows([[1, 2], [3, 4], [5, 6]]) == [[1, 3, 5], [2, 4, 6]]


def test_transpose_rows_empty():
    assert transpose_rows([]) == []


def test_transpose_rows_rejects_ragged():
    with pytest.raises(ValueError):
        transpose_rows([[1, 2], [3]])
