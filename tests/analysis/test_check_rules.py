"""Per-rule tests for ``repro.analysis.check``: each rule catches its seeded
violation, stays quiet on the compliant variant, respects its allowlisted
scopes, and honors inline suppressions."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.check import check_file, resolve_selection

# Assembled at runtime so the raw source of *this* file never contains a
# suppression comment (the self-lint scan would report it as unused).
ALLOW = "# repro: " + "allow"


def _check(tmp_path, relpath, source, select=None):
    """Write ``source`` at ``relpath`` under ``tmp_path`` and check it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_file(str(path), resolve_selection(select))


def _ids(findings):
    return [f.rule_id for f in findings]


# ------------------------------------------------------------------- RPR-D001


def test_d001_flags_wall_clock_in_src(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        """
        import time

        def stamp():
            return time.time()
        """,
        select=["RPR-D001"],
    )
    assert _ids(findings) == ["RPR-D001"]
    assert "wall-clock" in findings[0].message


def test_d001_flags_seedless_rng_but_not_seeded(tmp_path):
    source = """
    import numpy as np

    seedless = np.random.default_rng()
    seeded = np.random.default_rng(1234)
    """
    findings = _check(tmp_path, "repro/engine/rng.py", source, select=["RPR-D001"])
    assert _ids(findings) == ["RPR-D001"]
    assert "seedless" in source.splitlines()[findings[0].line - 1]


def test_d001_flags_global_stdlib_random(tmp_path):
    findings = _check(
        tmp_path,
        "repro/sweep/pick.py",
        """
        import random

        def pick(items):
            return random.choice(items)
        """,
        select=["RPR-D001"],
    )
    assert _ids(findings) == ["RPR-D001"]


def test_d001_allows_perf_counter(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/stats.py",
        """
        import time

        def elapsed(start):
            return time.perf_counter() - start
        """,
        select=["RPR-D001"],
    )
    assert findings == []


def test_d001_serve_is_allowlisted(tmp_path):
    findings = _check(
        tmp_path,
        "repro/serve/uptime.py",
        """
        import time

        def now():
            return time.time()
        """,
        select=["RPR-D001"],
    )
    assert findings == []


def test_d001_outside_src_tree_is_exempt(tmp_path):
    findings = _check(
        tmp_path,
        "scripts/mod.py",
        """
        import time

        def now():
            return time.time()
        """,
        select=["RPR-D001"],
    )
    assert findings == []


def test_d001_line_suppression(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        f"""
        import time

        def stamp():
            return time.time()  {ALLOW}(RPR-D001)
        """,
        select=["RPR-D001"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-D002


def test_d002_flags_matmul_operator_in_capsnet(tmp_path):
    findings = _check(
        tmp_path,
        "repro/capsnet/mod.py",
        """
        def mul(a, b):
            return a @ b
        """,
        select=["RPR-D002"],
    )
    assert _ids(findings) == ["RPR-D002"]
    assert "BLAS" in findings[0].message


def test_d002_flags_einsum_optimize_but_not_plain(tmp_path):
    source = """
    import numpy as np

    def contract(a, b):
        bad = np.einsum("ij,jk->ik", a, b, optimize=True)
        good = np.einsum("ij,jk->ik", a, b)
        explicit_off = np.einsum("ij,jk->ik", a, b, optimize=False)
        return bad, good, explicit_off
    """
    findings = _check(tmp_path, "repro/arithmetic/mod.py", source, select=["RPR-D002"])
    assert _ids(findings) == ["RPR-D002"]
    assert findings[0].line == 5


def test_d002_only_applies_to_exact_modules(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        """
        def mul(a, b):
            return a @ b
        """,
        select=["RPR-D002"],
    )
    assert findings == []


def test_d002_whole_file_suppression(tmp_path):
    findings = _check(
        tmp_path,
        "repro/capsnet/mod.py",
        f"""
        {ALLOW}-file(RPR-D002)

        def mul(a, b):
            return a @ b
        """,
        select=["RPR-D002"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-D003


def test_d003_flags_loop_over_set_literal(tmp_path):
    findings = _check(
        tmp_path,
        "repro/report/mod.py",
        """
        def render():
            for label in {"b", "a"}:
                print(label)
        """,
        select=["RPR-D003"],
    )
    assert _ids(findings) == ["RPR-D003"]


def test_d003_flags_join_over_set_call(tmp_path):
    findings = _check(
        tmp_path,
        "repro/report/mod.py",
        """
        def render(names):
            return ", ".join(set(names))
        """,
        select=["RPR-D003"],
    )
    assert _ids(findings) == ["RPR-D003"]


def test_d003_sorted_set_is_fine(tmp_path):
    findings = _check(
        tmp_path,
        "repro/report/mod.py",
        """
        def render(names):
            return ", ".join(sorted(set(names)))
        """,
        select=["RPR-D003"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-T001


def test_t001_flags_unlocked_mutation_in_threaded_module(tmp_path):
    findings = _check(
        tmp_path,
        "repro/serve/state.py",
        """
        import threading

        _STATE = {}
        _LOCK = threading.Lock()

        def bad(key, value):
            _STATE[key] = value

        def also_bad(key):
            _STATE.pop(key, None)
        """,
        select=["RPR-T001"],
    )
    assert _ids(findings) == ["RPR-T001", "RPR-T001"]


def test_t001_lock_guarded_mutation_is_fine(tmp_path):
    findings = _check(
        tmp_path,
        "repro/serve/state.py",
        """
        import threading

        _STATE = {}
        _LOCK = threading.Lock()

        def good(key, value):
            with _LOCK:
                _STATE[key] = value
        """,
        select=["RPR-T001"],
    )
    assert findings == []


def test_t001_flags_unlocked_global_rebind(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/flags.py",
        """
        import threading

        _LOADED = False

        def mark():
            global _LOADED
            _LOADED = True
        """,
        select=["RPR-T001"],
    )
    assert _ids(findings) == ["RPR-T001"]


def test_t001_unthreaded_module_is_exempt(tmp_path):
    findings = _check(
        tmp_path,
        "repro/sweep/registry.py",
        """
        _PRESETS = {}

        def register(name, value):
            _PRESETS[name] = value
        """,
        select=["RPR-T001"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-T002


def test_t002_flags_plain_write_in_cache_module(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/diskcache.py",
        """
        def publish(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """,
        select=["RPR-T002"],
    )
    assert _ids(findings) == ["RPR-T002"]
    assert "os.replace" in findings[0].message


def test_t002_atomic_publish_is_fine(tmp_path):
    findings = _check(
        tmp_path,
        "repro/sweep/queue.py",
        """
        import os
        import tempfile

        def publish(path, data):
            fd, tmp = tempfile.mkstemp(suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(data)
            os.replace(tmp, path)
        """,
        select=["RPR-T002"],
    )
    assert findings == []


def test_t002_only_applies_to_cache_modules(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/reports.py",
        """
        def publish(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """,
        select=["RPR-T002"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-T003


def test_t003_flags_retry_less_replace_in_hardened_module(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/diskcache.py",
        """
        import os

        def publish(tmp, path):
            os.replace(tmp, path)
        """,
        select=["RPR-T003"],
    )
    assert _ids(findings) == ["RPR-T003"]
    assert "with_retries" in findings[0].message


def test_t003_publish_under_with_retries_is_fine(tmp_path):
    findings = _check(
        tmp_path,
        "repro/sweep/queue.py",
        """
        import os

        from repro.faults.retry import with_retries

        def publish(tmp, path, data):
            def _publish():
                with open(tmp, "w") as handle:
                    handle.write(data)
                os.replace(tmp, path)

            with_retries(_publish)
        """,
        select=["RPR-T003"],
    )
    assert findings == []


def test_t003_exclusive_claim_is_exempt(tmp_path):
    findings = _check(
        tmp_path,
        "repro/sweep/queue.py",
        """
        import os

        def claim(path, payload):
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            with os.fdopen(handle, "w") as stream:
                stream.write(payload)
        """,
        select=["RPR-T003"],
    )
    assert findings == []


def test_t003_only_applies_to_hardened_modules(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/reports.py",
        """
        import os

        def publish(tmp, path):
            os.replace(tmp, path)
        """,
        select=["RPR-T003"],
    )
    assert findings == []


def test_t003_suppression_is_honored(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/diskcache.py",
        f"""
        import os

        def publish(tmp, path):
            os.replace(tmp, path)  {ALLOW}(RPR-T003)
        """,
        select=["RPR-T003"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-C001


def test_c001_flags_unknown_sweep_axis(tmp_path):
    findings = _check(
        tmp_path,
        "repro/experiments/custom.py",
        """
        from repro.sweep.spec import SweepAxis

        AXIS = SweepAxis("hmc.bogus_field", (1.0, 2.0))
        """,
        select=["RPR-C001"],
    )
    assert _ids(findings) == ["RPR-C001"]


def test_c001_accepts_valid_axis_abbreviation(tmp_path):
    findings = _check(
        tmp_path,
        "repro/experiments/custom.py",
        """
        from repro.sweep.spec import SweepAxis

        AXIS = SweepAxis("hmc.pe_frequency", (312.5, 625.0))
        """,
        select=["RPR-C001"],
    )
    assert findings == []


def test_c001_flags_unknown_override_key(tmp_path):
    findings = _check(
        tmp_path,
        "repro/experiments/custom.py",
        """
        def variant(scenario):
            return scenario.with_overrides({"hmc.bogus_field": 625.0})
        """,
        select=["RPR-C001"],
    )
    assert _ids(findings) == ["RPR-C001"]


def test_c001_markdown_flags_bad_set_key_not_placeholders(tmp_path):
    findings = _check(
        tmp_path,
        "docs/usage.md",
        """
        Run with `--set KEY=VALUE` overrides, for example
        `--set hmc.bogus_field=625`; the real flag is
        `--set hmc.pe_frequency_mhz=625`.
        """,
        select=["RPR-C001"],
    )
    assert _ids(findings) == ["RPR-C001"]
    assert "hmc.bogus_field" in findings[0].message


def test_c001_json_flags_bad_axis_key(tmp_path):
    findings = _check(
        tmp_path,
        "specs/sweep.json",
        """
        {
          "axes": [
            {"key": "hmc.bogus_field", "values": [1.0]},
            {"key": "hmc.pe_frequency_mhz", "values": [625.0]}
          ]
        }
        """,
        select=["RPR-C001"],
    )
    assert _ids(findings) == ["RPR-C001"]
    assert findings[0].line == 4  # the line holding "hmc.bogus_field"


# ------------------------------------------------------------------- RPR-C002


def test_c002_flags_unknown_metric_path(tmp_path):
    findings = _check(
        tmp_path,
        "repro/experiments/custom.py",
        """
        from repro.optimize import Objective

        GOAL = Objective("fig17.bogus_metric", "max")
        """,
        select=["RPR-C002"],
    )
    assert _ids(findings) == ["RPR-C002"]
    assert "fig17" in findings[0].message


def test_c002_accepts_real_metric_paths(tmp_path):
    findings = _check(
        tmp_path,
        "repro/experiments/custom.py",
        """
        from repro.optimize import Constraint, Objective

        GOAL = Objective("fig17.average_speedup", "max")
        BOUND = Constraint("overhead.total_area_mm2", "lt", 10.0)
        """,
        select=["RPR-C002"],
    )
    assert findings == []


def test_c002_json_flags_bad_objective_metric(tmp_path):
    findings = _check(
        tmp_path,
        "specs/objective.json",
        """
        {
          "objectives": [
            {"metric": "fig17.bogus_metric", "sense": "maximize"}
          ]
        }
        """,
        select=["RPR-C002"],
    )
    assert _ids(findings) == ["RPR-C002"]


def test_c002_markdown_constraint_flagged(tmp_path):
    findings = _check(
        tmp_path,
        "docs/usage.md",
        """
        Restrict with `--constraint fig17.bogus_metric:within_pct_of_best=5`.
        """,
        select=["RPR-C002"],
    )
    assert _ids(findings) == ["RPR-C002"]


# ------------------------------------------------------------------- RPR-H001


def test_h001_flags_broad_and_bare_handlers(tmp_path):
    findings = _check(
        tmp_path,
        "anywhere/mod.py",
        """
        def swallow():
            try:
                work()
            except Exception:
                pass

        def swallow_everything():
            try:
                work()
            except:
                pass
        """,
        select=["RPR-H001"],
    )
    assert _ids(findings) == ["RPR-H001", "RPR-H001"]


def test_h001_reraise_and_specific_handlers_are_fine(tmp_path):
    findings = _check(
        tmp_path,
        "anywhere/mod.py",
        """
        def cleanup_then_raise(tmp):
            try:
                work()
            except BaseException:
                tmp.unlink()
                raise

        def specific():
            try:
                work()
            except (OSError, ValueError):
                return None
        """,
        select=["RPR-H001"],
    )
    assert findings == []


def test_h001_annotated_handler_is_suppressed(tmp_path):
    findings = _check(
        tmp_path,
        "anywhere/mod.py",
        f"""
        def last_resort():
            try:
                work()
            except Exception:  {ALLOW}(RPR-H001)
                return 500
        """,
        select=["RPR-H001"],
    )
    assert findings == []


# ------------------------------------------------------------------- RPR-S001


def test_s001_reports_unused_suppressions(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        f"""
        {ALLOW}-file(RPR-D002)

        def clean():
            return 1  {ALLOW}(RPR-D001)
        """,
        select=["RPR-D001", "RPR-D002", "RPR-S001"],
    )
    assert _ids(findings) == ["RPR-S001", "RPR-S001"]
    assert all(f.severity == "warning" for f in findings)


def test_s001_used_suppression_not_reported(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        f"""
        import time

        def stamp():
            return time.time()  {ALLOW}(RPR-D001)
        """,
        select=["RPR-D001", "RPR-S001"],
    )
    assert findings == []


def test_s001_silent_for_rules_that_did_not_run(tmp_path):
    findings = _check(
        tmp_path,
        "repro/engine/mod.py",
        f"""
        def clean():
            return 1  {ALLOW}(RPR-D001)
        """,
        select=["RPR-H001", "RPR-S001"],
    )
    assert findings == []
