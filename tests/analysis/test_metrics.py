"""Tests for the analysis metric helpers."""

import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    energy_saving,
    geometric_mean,
    normalize,
    percentage,
    speedup,
)


def test_speedup_basic():
    assert speedup(10.0, 5.0) == pytest.approx(2.0)


def test_speedup_of_zero_time_is_infinite():
    assert speedup(1.0, 0.0) == float("inf")


def test_speedup_rejects_negative_baseline():
    with pytest.raises(ValueError):
        speedup(-1.0, 1.0)


def test_energy_saving():
    assert energy_saving(10.0, 3.0) == pytest.approx(0.7)


def test_energy_saving_negative_when_worse():
    assert energy_saving(10.0, 12.0) == pytest.approx(-0.2)


def test_energy_saving_rejects_non_positive_baseline():
    with pytest.raises(ValueError):
        energy_saving(0.0, 1.0)


def test_normalize():
    assert normalize([2.0, 4.0, 6.0], 2.0) == [1.0, 2.0, 3.0]


def test_normalize_rejects_zero_reference():
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


def test_percentage_formatting():
    assert percentage(0.7462) == "74.62%"


def test_geometric_mean_of_identical_values():
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geometric_mean_below_arithmetic_mean():
    values = [1.0, 4.0]
    assert geometric_mean(values) < arithmetic_mean(values)


def test_geometric_mean_rejects_empty_and_non_positive():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_arithmetic_mean():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        arithmetic_mean([])
