"""Engine-level tests for ``repro.analysis.check``: file discovery, rule
selection, JSON round-trip, the ``repro check`` CLI, and the registry."""

from __future__ import annotations

import json

import pytest

from repro.analysis.check import (
    CheckResult,
    Finding,
    RULES,
    discover_files,
    format_rule_table,
    get_rule,
    resolve_selection,
    rule_ids,
    run_check,
)
from repro.cli import main

# Assembled so this file's raw source never contains a suppression comment.
ALLOW = "# repro: " + "allow"

DIRTY_SOURCE = "import time\n\n\ndef stamp():\n    return time.time()\n"
CLEAN_SOURCE = "def identity(value):\n    return value\n"


def _dirty_file(tmp_path, name="mod.py"):
    target = tmp_path / "repro" / "engine" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    return target


# ------------------------------------------------------------------ discovery


def test_discover_files_recurses_and_filters(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.md").write_text("hello\n")
    (tmp_path / "pkg" / "data.json").write_text("{}\n")
    (tmp_path / "pkg" / "data.yaml").write_text("a: 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
    found = discover_files([str(tmp_path)])
    names = [f.rsplit("/", 1)[-1] for f in found]
    assert names == ["data.json", "mod.py", "notes.md"]


def test_discover_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_files([str(tmp_path / "no-such-dir")])


def test_discover_files_accepts_explicit_file(tmp_path):
    target = tmp_path / "one.py"
    target.write_text("x = 1\n")
    assert discover_files([str(target)]) == [str(target)]


# ------------------------------------------------------------------ selection


def test_resolve_selection_defaults_to_all_rules():
    assert resolve_selection() == set(rule_ids())


def test_resolve_selection_unknown_ids_raise():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_selection(select=["RPR-X999"])
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_selection(ignore=["RPR-X999"])


def test_resolve_selection_empty_set_raises():
    with pytest.raises(ValueError, match="no rules active"):
        resolve_selection(select=["RPR-D001"], ignore=["RPR-D001"])


def test_ignore_disables_a_rule(tmp_path):
    _dirty_file(tmp_path)
    result = run_check([str(tmp_path)], ignore=["RPR-D001"])
    assert result.findings == []
    assert "RPR-D001" not in result.active_rules


def test_select_c002_alone_still_runs_the_consistency_scanner(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "from repro.optimize import Objective\n\n"
        'GOAL = Objective("fig17.bogus_metric", "max")\n',
        encoding="utf-8",
    )
    result = run_check([str(tmp_path)], select=["RPR-C002"])
    assert [f.rule_id for f in result.findings] == ["RPR-C002"]


# ----------------------------------------------------------------- the result


def test_result_counts_and_ok(tmp_path):
    _dirty_file(tmp_path)
    result = run_check([str(tmp_path)])
    assert len(result.errors()) == 1
    assert result.warnings() == []
    assert not result.ok()
    assert not result.ok(max_severity="error")
    with pytest.raises(ValueError, match="unknown severity"):
        result.ok(max_severity="fatal")


def test_warning_only_run_passes_at_error_severity(tmp_path):
    target = tmp_path / "repro" / "engine" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        f"def clean():\n    return 1  {ALLOW}(RPR-D001)\n", encoding="utf-8"
    )
    result = run_check([str(tmp_path)])
    assert [f.rule_id for f in result.findings] == ["RPR-S001"]
    assert not result.ok()
    assert result.ok(max_severity="error")


def test_findings_are_sorted_deterministically(tmp_path):
    _dirty_file(tmp_path, name="b.py")
    _dirty_file(tmp_path, name="a.py")
    result = run_check([str(tmp_path)])
    assert [f.path.rsplit("/", 1)[-1] for f in result.findings] == ["a.py", "b.py"]
    assert result.findings == sorted(result.findings, key=Finding.sort_key)


def test_json_artifact_round_trips(tmp_path):
    _dirty_file(tmp_path)
    result = run_check([str(tmp_path)])
    artifact = json.loads(result.format_json())
    assert artifact["version"] == 1
    assert artifact["files_checked"] == result.files_checked
    assert artifact["rules"] == result.active_rules
    assert artifact["summary"] == {"errors": 1, "warnings": 0}
    rebuilt = [Finding.from_dict(item) for item in artifact["findings"]]
    assert rebuilt == result.findings


def test_finding_from_dict_rejects_unknown_keys():
    data = Finding("RPR-D001", "error", "x.py", 1, 1, "msg").to_dict()
    assert Finding.from_dict(data) == Finding("RPR-D001", "error", "x.py", 1, 1, "msg")
    data["extra"] = True
    with pytest.raises(ValueError, match="unknown finding key"):
        Finding.from_dict(data)


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError, match="unknown severity"):
        Finding("RPR-D001", "fatal", "x.py", 1, 1, "msg")


def test_format_text_summarizes(tmp_path):
    _dirty_file(tmp_path)
    text = run_check([str(tmp_path)]).format_text()
    assert "RPR-D001" in text
    assert "1 error(s), 0 warning(s)" in text
    clean = CheckResult(files_checked=3, active_rules=list(rule_ids()))
    assert "3 file(s) clean" in clean.format_text()


# ------------------------------------------------------------------- registry


def test_rule_ids_are_unique_and_documented():
    ids = rule_ids()
    assert len(ids) == len(set(ids))
    for rule in RULES:
        assert rule.rule_id.startswith("RPR-")
        assert rule.summary and rule.rationale and rule.scope
    assert get_rule("RPR-D001").family == "determinism"
    with pytest.raises(KeyError, match="unknown rule"):
        get_rule("RPR-X999")


def test_rule_table_lists_every_rule():
    table = format_rule_table()
    for rule_id in rule_ids():
        assert rule_id in table


# ------------------------------------------------------------------------ CLI


def test_cli_check_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN_SOURCE, encoding="utf-8")
    assert main(["check", str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_findings_exit_one(tmp_path, capsys):
    target = _dirty_file(tmp_path)
    assert main(["check", str(target)]) == 1
    assert "RPR-D001" in capsys.readouterr().out


def test_cli_check_usage_errors_exit_two(tmp_path, capsys):
    assert main(["check", "--select", "RPR-X999", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err
    assert main(["check", str(tmp_path / "missing")]) == 2


def test_cli_check_json_output_artifact(tmp_path, capsys):
    target = _dirty_file(tmp_path)
    artifact = tmp_path / "findings.json"
    code = main(
        ["check", "--format", "json", "--output", str(artifact), str(target)]
    )
    assert code == 1
    data = json.loads(artifact.read_text(encoding="utf-8"))
    assert data["summary"]["errors"] == 1
    assert data["findings"][0]["rule"] == "RPR-D001"


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_cli_check_severity_error_lets_warnings_pass(tmp_path):
    target = tmp_path / "repro" / "engine" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        f"def clean():\n    return 1  {ALLOW}(RPR-D001)\n", encoding="utf-8"
    )
    assert main(["check", str(target)]) == 1
    assert main(["check", "--severity", "error", str(target)]) == 0
