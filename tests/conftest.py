"""Shared fixtures for the PIM-CapsNet reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capsnet.datasets import DatasetSpec, SyntheticImageDataset
from repro.capsnet.model import CapsNet, CapsNetConfig
from repro.hmc.config import HMCConfig
from repro.workloads.benchmarks import BenchmarkConfig


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the persistent caches at a per-test directory.

    CLI-level runs construct :class:`~repro.engine.diskcache.SimulationCache`
    / :class:`~repro.engine.diskcache.TrainedModelCache` by default; tests
    must never read from (or pollute) the developer's real ``~/.cache/repro``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_benchmark() -> BenchmarkConfig:
    """A very small benchmark configuration for fast analytic-model tests."""
    return BenchmarkConfig(
        name="Caps-Tiny",
        dataset="MNIST",
        batch_size=4,
        num_low_capsules=36,
        num_high_capsules=5,
        routing_iterations=2,
    )


@pytest.fixture
def small_benchmark() -> BenchmarkConfig:
    """A moderately sized benchmark (still far smaller than Table 1)."""
    return BenchmarkConfig(
        name="Caps-Small",
        dataset="MNIST",
        batch_size=8,
        num_low_capsules=72,
        num_high_capsules=10,
        routing_iterations=3,
    )


@pytest.fixture
def hmc_config() -> HMCConfig:
    """The default HMC configuration (32 vaults, 16 PEs/vault, 312.5 MHz)."""
    return HMCConfig()


@pytest.fixture
def small_hmc_config() -> HMCConfig:
    """A reduced HMC (fewer vaults/PEs) for combinatorial tests."""
    return HMCConfig(num_vaults=4, banks_per_vault=4, pes_per_vault=4)


@pytest.fixture
def tiny_capsnet_config() -> CapsNetConfig:
    """A tiny functional CapsNet configuration (fast to run)."""
    return CapsNetConfig.scaled(input_shape=(1, 16, 16), num_classes=3, scale=0.05)


@pytest.fixture
def tiny_capsnet(tiny_capsnet_config: CapsNetConfig) -> CapsNet:
    """A tiny functional CapsNet instance."""
    return CapsNet(tiny_capsnet_config, seed=0)


@pytest.fixture
def toy_dataset() -> SyntheticImageDataset:
    """A small, easy synthetic dataset for training tests."""
    spec = DatasetSpec("TOY", (1, 16, 16), 3)
    return SyntheticImageDataset(
        spec, num_train=48, num_test=24, noise_level=0.05, max_shift=1, seed=5
    )
