"""Generalized design-space sweeps over scenario axes.

The evaluation figures are points in a much larger design space -- PE
frequency, PE count per vault, pipeline depth, host GPU, ... -- and this
package is the exploration tool for the rest of it:

* :class:`~repro.sweep.spec.SweepSpec` declares a sweep: one or more axes
  (dotted scenario override paths with the values to try), an optional
  benchmark restriction, the design points to evaluate and the simulation
  kind.  Specs are frozen, validated and JSON-round-trippable, like
  :class:`~repro.api.scenario.Scenario` and
  :class:`~repro.workloads.catalog.WorkloadSpec`; :func:`~repro.sweep.spec.
  sweep_presets` ships Fig. 18 as the ``fig18-frequency`` preset.
* :class:`~repro.sweep.runner.SweepRunner` expands the grid against a base
  scenario, executes the points serially, over a thread pool, or over a
  ``ProcessPoolExecutor`` (scenarios and results are frozen/JSON-serializable
  and cross process boundaries cleanly), and memoizes every simulation in the
  persistent :class:`~repro.engine.diskcache.SimulationCache`, so repeated
  and overlapping sweeps are incremental.
* :mod:`~repro.sweep.vectorized` batches eligible sweeps: whole frequency
  planes evaluate as single numpy expressions, bit-exact against the scalar
  path (a hard equivalence gate re-checks fresh points).  ``SweepRunner``
  picks it automatically (``backend="auto"``).
* :mod:`~repro.sweep.queue` shards a grid into a filesystem work queue:
  independent worker processes lease shards via atomic lockfiles, publish
  results into the shared disk cache, and a merger aggregates a
  :class:`~repro.sweep.runner.SweepResult`; killed sweeps resume
  (``repro sweep --workers N --resume``).

Quickstart::

    from repro.api import Session
    from repro.sweep import SweepSpec

    spec = SweepSpec.from_axes({"hmc.pe_frequency_mhz": [312.5, 625, 1250]})
    result = Session().sweep(spec, jobs=4)
    print(result.format_report())
"""

from repro.sweep.spec import (
    SweepAxis,
    SweepSpec,
    sweep_preset_names,
    sweep_presets,
)
from repro.sweep.runner import (
    BACKENDS,
    SweepCell,
    SweepPoint,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.sweep.vectorized import (
    VERIFY_MODES,
    VectorizedMismatchError,
    evaluate_grid,
    vectorization_blocker,
)
from repro.sweep.queue import (
    DEFAULT_SHARD_SIZE,
    queue_workdir,
    run_queued_sweep,
    run_worker,
    shard_ranges,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_SHARD_SIZE",
    "SweepAxis",
    "SweepCell",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "VERIFY_MODES",
    "VectorizedMismatchError",
    "evaluate_grid",
    "queue_workdir",
    "run_queued_sweep",
    "run_sweep",
    "run_worker",
    "shard_ranges",
    "sweep_preset_names",
    "sweep_presets",
    "vectorization_blocker",
]
