"""Sweep execution: grid expansion, parallel point runs, persistent caching.

:class:`SweepRunner` turns a :class:`~repro.sweep.spec.SweepSpec` plus a base
:class:`~repro.api.scenario.Scenario` into results:

* the grid is expanded to one variant scenario per point
  (:meth:`SweepSpec.scenario_for`),
* points execute serially, over a thread pool, or over a
  ``ProcessPoolExecutor`` -- scenarios cross the process boundary as plain
  JSON dictionaries and workers send back plain metric dictionaries, so the
  process path needs no custom pickling.  The simulations are pure-Python
  analytical models (GIL-bound), which is exactly why processes beat the
  thread pool on cold multi-point sweeps; ``executor="auto"`` picks processes
  whenever more than one job is requested.  (The process path relies on the
  ``fork`` start method to inherit custom strategy/experiment registrations;
  on spawn-only platforms use the thread or serial path for custom designs.)
* every simulation is memoized in the persistent
  :class:`~repro.engine.diskcache.SimulationCache`, so a repeated or
  overlapping sweep re-runs only the points it has never seen.  A fully warm
  sweep executes **zero** simulations -- :attr:`SweepResult.simulations_executed`
  and :attr:`SweepResult.cache` prove it.

:meth:`SweepResult.format_report` and :meth:`SweepResult.to_dict` contain
only grid data (no timings, no cache counters), so reports are byte-identical
between cold and warm runs; execution statistics live in
:meth:`SweepResult.describe_stats`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.analysis.tables import format_table
from repro.api.scenario import Scenario
from repro.core.accelerator import DesignPoint
from repro.engine.context import CacheStats, SimulationContext, default_worker_count
from repro.engine.diskcache import CACHE_SCHEMA_VERSION, SimulationCache
from repro.faults import point as fault_point
from repro.sweep.spec import SweepSpec, _format_value
from repro.sweep.vectorized import VERIFY_MODES, evaluate_grid, vectorization_blocker

#: Executor modes accepted by :class:`SweepRunner`.
EXECUTORS = ("auto", "process", "thread", "serial")

#: Evaluation backends: ``"auto"`` batches whole grid planes through
#: :mod:`repro.sweep.vectorized` whenever the sweep is eligible (and no
#: explicit scalar executor was requested), ``"vectorized"`` demands the
#: batched path (erroring with the blocker reason when ineligible) and
#: ``"scalar"`` always evaluates point by point.
BACKENDS = ("auto", "vectorized", "scalar")


@dataclass(frozen=True)
class SweepCell:
    """One ``(grid point, benchmark, design)`` measurement."""

    benchmark: str
    design: str
    time_seconds: float
    energy_joules: float
    baseline_time_seconds: float
    baseline_energy_joules: float

    @property
    def speedup(self) -> float:
        """Speedup of the design over the GPU baseline."""
        if self.time_seconds <= 0:
            return float("inf")
        return self.baseline_time_seconds / self.time_seconds

    @property
    def energy_saving(self) -> float:
        """Fractional energy saving of the design over the GPU baseline."""
        if self.baseline_energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / self.baseline_energy_joules


@dataclass
class SweepPoint:
    """One executed grid point: the axis assignment and its cells."""

    index: int
    assignment: Dict[str, object]
    scenario_name: str
    cells: List[SweepCell] = field(default_factory=list)

    def cell(self, benchmark: str, design: str) -> SweepCell:
        """Look up one cell of this point."""
        for cell in self.cells:
            if cell.benchmark == benchmark and cell.design == design:
                return cell
        raise KeyError((benchmark, design))

    def average_speedup(self, design: Optional[str] = None) -> float:
        """Mean speedup across this point's benchmarks (one design)."""
        design = design if design is not None else self.cells[0].design
        speedups = [cell.speedup for cell in self.cells if cell.design == design]
        if not speedups:
            raise KeyError(design)
        return sum(speedups) / len(speedups)


@dataclass
class SweepResult:
    """The whole executed grid plus execution statistics.

    The statistics fields (:attr:`cache`, :attr:`simulations_executed`,
    :attr:`elapsed_seconds`, :attr:`executor_used`, :attr:`jobs`) are
    intentionally excluded from :meth:`format_report` and :meth:`to_dict`,
    keeping rendered output byte-identical between cold and warm runs.
    """

    spec: SweepSpec
    base: Scenario
    points: List[SweepPoint]
    cache: CacheStats = field(default_factory=CacheStats)
    simulations_executed: int = 0
    elapsed_seconds: float = 0.0
    executor_used: str = "serial"
    jobs: int = 1
    #: Poison shards the queue retired (``{shard, start, stop, attempts,
    #: error, ...}`` records); empty for complete sweeps, in which case the
    #: report and dict renderings are byte-identical to pre-fault builds.
    failed_shards: List[dict] = field(default_factory=list)

    @property
    def benchmarks(self) -> List[str]:
        """Benchmarks evaluated at every point (grid order of the first)."""
        if not self.points:
            return []
        seen: Dict[str, None] = {}
        for cell in self.points[0].cells:
            seen.setdefault(cell.benchmark, None)
        return list(seen)

    def format_report(self) -> str:
        """Render the sweep as plain-text tables (grid data only)."""
        metric = "RP speedup" if self.spec.kind == "routing" else "end-to-end speedup"
        axis_headers = list(self.spec.axis_keys)
        headers = axis_headers + ["Benchmark", "Design", "Speedup", "Energy saving"]
        rows: List[List[object]] = []
        for point in self.points:
            prefix = [_axis_cell(point.assignment[key]) for key in self.spec.axis_keys]
            for cell in point.cells:
                rows.append(
                    prefix
                    + [cell.benchmark, cell.design, cell.speedup, cell.energy_saving]
                )
        table = format_table(
            headers,
            rows,
            title=f"Sweep {self.spec.name!r} -- {metric} over the GPU baseline",
        )
        summary_rows: List[List[object]] = []
        for point in self.points:
            summary_rows.append(
                [_axis_cell(point.assignment[key]) for key in self.spec.axis_keys]
                + [point.average_speedup(design) for design in self.spec.designs]
            )
        summary = format_table(
            axis_headers + [f"avg {design}" for design in self.spec.designs],
            summary_rows,
            title=f"Per-point average {metric} ({len(self.benchmarks)} benchmarks)",
        )
        lines = [
            f"Base scenario: {self.base.describe()}",
            f"Grid: {self.spec.describe()}",
            "",
            table,
            "",
            summary,
        ]
        if self.failed_shards:
            lines.extend(["", self._format_failed_shards()])
        return "\n".join(lines)

    def _format_failed_shards(self) -> str:
        """The partial-results section (only rendered when shards failed)."""
        count = len(self.failed_shards)
        section = [
            f"PARTIAL RESULTS: {count} shard(s) failed permanently and were "
            f"excluded from the tables above:"
        ]
        for info in self.failed_shards:
            section.append(
                f"  shard {info.get('shard')} "
                f"(grid points {info.get('start')}:{info.get('stop')}): "
                f"{info.get('error')} after {info.get('attempts')} attempt(s)"
            )
        section.append(
            "Fix the cause and re-run with --resume to fill in the missing "
            "points (completed shards are never re-executed)."
        )
        return "\n".join(section)

    def to_dict(self) -> dict:
        """Structured (JSON-ready) grid output -- stable across warm re-runs."""
        payload = {
            "spec": self.spec.to_dict(),
            "base_scenario": self.base.to_dict(),
            "points": [
                {
                    "assignment": dict(point.assignment),
                    "scenario": point.scenario_name,
                    "cells": [
                        {
                            "benchmark": cell.benchmark,
                            "design": cell.design,
                            "time_seconds": cell.time_seconds,
                            "energy_joules": cell.energy_joules,
                            "baseline_time_seconds": cell.baseline_time_seconds,
                            "baseline_energy_joules": cell.baseline_energy_joules,
                            "speedup": cell.speedup,
                            "energy_saving": cell.energy_saving,
                        }
                        for cell in point.cells
                    ],
                }
                for point in self.points
            ],
        }
        if self.failed_shards:
            # Only present for partial sweeps: complete sweeps keep the
            # exact pre-fault dict shape (byte-identical golden artifacts).
            payload["failed_shards"] = [dict(info) for info in self.failed_shards]
        return payload

    def describe_stats(self) -> str:
        """One-line execution summary (cache hits prove warm runs are free)."""
        cells = sum(len(point.cells) for point in self.points)
        failed = (
            f", {len(self.failed_shards)} failed shard(s)"
            if self.failed_shards
            else ""
        )
        return (
            f"sweep {self.spec.name!r}: {len(self.points)} points, {cells} cells, "
            f"{self.simulations_executed} simulations executed, "
            f"disk cache: {self.cache.hits} hits, {self.cache.misses} misses, "
            f"{self.elapsed_seconds:.2f}s ({self.executor_used}, jobs={self.jobs})"
            f"{failed}"
        )


class SweepRunner:
    """Expand and execute one sweep over a base scenario.

    Args:
        spec: the sweep (a :class:`~repro.sweep.spec.SweepSpec`, a preset
            name, or a JSON spec file path).
        base: base scenario every grid point overrides (paper default when
            ``None``).
        jobs: worker count (``None`` picks a bounded CPU count; ``1`` runs
            serially).
        executor: ``"auto"`` (processes when ``jobs > 1``), ``"process"``,
            ``"thread"`` or ``"serial"``.
        cache_dir: persistent cache root
            (:func:`~repro.engine.diskcache.default_cache_dir` when ``None``).
        use_cache: disable the persistent cache entirely with ``False``.
        cache_version: entry schema version (tests exercise invalidation).
        backend: evaluation backend (:data:`BACKENDS`).
        verify: vectorized equivalence-gate mode
            (:data:`~repro.sweep.vectorized.VERIFY_MODES`; ignored by the
            scalar path).
    """

    def __init__(
        self,
        spec: Union[SweepSpec, str],
        base: Optional[Scenario] = None,
        *,
        jobs: Optional[int] = None,
        executor: str = "auto",
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        cache_version: int = CACHE_SCHEMA_VERSION,
        backend: str = "auto",
        verify: str = "sample",
    ) -> None:
        self.spec = spec if isinstance(spec, SweepSpec) else SweepSpec.load(str(spec))
        self.base = base if base is not None else Scenario.default()
        self.jobs = default_worker_count() if jobs is None else max(1, int(jobs))
        executor = str(executor).strip().lower()
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; choose from {list(EXECUTORS)}")
        self.executor = executor
        backend = str(backend).strip().lower()
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
        self.backend = backend
        verify = str(verify).strip().lower()
        if verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}"
            )
        self.verify = verify
        self.use_cache = bool(use_cache)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache_version = int(cache_version)
        # Resolve (and canonicalize) the benchmark restriction up front so a
        # typo fails before any worker is spawned.
        if self.spec.benchmarks is not None:
            catalog = self.base.catalog
            try:
                self.benchmarks: Optional[List[str]] = [
                    catalog.canonical_name(name) for name in self.spec.benchmarks
                ]
            except KeyError as error:
                raise ValueError(str(error.args[0])) from None
        else:
            self.benchmarks = None

    # ------------------------------------------------------------------ running

    def run(self) -> SweepResult:
        """Execute the grid and aggregate cells + execution statistics."""
        start = time.perf_counter()
        assignments = self.spec.assignments()
        if self._use_vectorized():
            result = self._run_vectorized(assignments)
            result.elapsed_seconds = time.perf_counter() - start
            return result
        variants = [
            self.spec.scenario_for(self.base, assignment) for assignment in assignments
        ]
        points = [
            SweepPoint(index=index, assignment=assignment, scenario_name=variant.name)
            for index, (assignment, variant) in enumerate(zip(assignments, variants))
        ]
        payloads = [
            {
                "scenario": variant.to_dict(),
                "benchmarks": self.benchmarks,
                "designs": list(self.spec.designs),
                "kind": self.spec.kind,
                "cache_dir": self.cache_dir if self.use_cache else _NO_CACHE,
                "cache_version": self.cache_version,
            }
            for variant in variants
        ]
        mode = self.executor
        if mode == "auto":
            mode = "process" if self.jobs > 1 and len(payloads) > 1 else "serial"
        if mode != "serial" and (self.jobs <= 1 or len(payloads) <= 1):
            mode = "serial"
        outcomes, mode = _execute(payloads, mode, self.jobs)
        result = SweepResult(
            spec=self.spec,
            base=self.base,
            points=points,
            executor_used=mode,
            jobs=self.jobs,
        )
        for point, outcome in zip(points, outcomes):
            point.cells = [SweepCell(**cell) for cell in outcome["cells"]]
            result.simulations_executed += outcome["simulations"]
            result.cache.hits += outcome["disk_hits"]
            result.cache.misses += outcome["disk_misses"]
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------- vectorized

    def _use_vectorized(self) -> bool:
        """Whether this run takes the batched plane evaluator.

        ``backend="vectorized"`` forces it (:func:`evaluate_grid` raises the
        blocker reason when the sweep is ineligible).  ``"auto"`` takes it
        only for eligible sweeps when no explicit executor was requested --
        asking for ``executor="process"`` & friends keeps the per-point path
        so executor comparisons keep comparing what they claim to.
        """
        if self.backend == "vectorized":
            return True
        if self.backend == "scalar" or self.executor != "auto":
            return False
        return vectorization_blocker(self.spec, self.base) is None

    def _run_vectorized(self, assignments: List[Dict[str, object]]) -> SweepResult:
        """Evaluate the whole grid through :func:`evaluate_grid`.

        Point names are composed directly from the assignment labels --
        provably what :meth:`SweepSpec.scenario_for` names each variant --
        so no per-point ``Scenario`` is ever built; on 100k-point grids the
        scenario objects alone would dwarf the model arithmetic.
        """
        # One formatted string per distinct axis value, not per grid point.
        formatted = {
            axis.key: {value: _format_value(value) for value in axis.values}
            for axis in self.spec.axes
        }
        prefix = f"{self.base.name}+"
        points = []
        for index, assignment in enumerate(assignments):
            label = ",".join(
                f"{key}={formatted[key][value]}" for key, value in assignment.items()
            )
            points.append(
                SweepPoint(
                    index=index,
                    assignment=assignment,
                    scenario_name=prefix + label,
                )
            )
        cache = (
            SimulationCache(self.cache_dir, version=self.cache_version)
            if self.use_cache
            else None
        )
        outcomes = evaluate_grid(
            self.spec,
            self.base,
            self.benchmarks,
            assignments=assignments,
            cache=cache,
            verify=self.verify,
        )
        result = SweepResult(
            spec=self.spec,
            base=self.base,
            points=points,
            executor_used="vectorized",
            jobs=self.jobs,
        )
        for point, outcome in zip(points, outcomes):
            point.cells = [SweepCell(**cell) for cell in outcome["cells"]]
            result.simulations_executed += outcome["simulations"]
            result.cache.hits += outcome["disk_hits"]
            result.cache.misses += outcome["disk_misses"]
        return result


def run_sweep(
    spec: Union[SweepSpec, str],
    base: Optional[Scenario] = None,
    **kwargs,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(spec, base, **kwargs).run()


# ------------------------------------------------------------- point execution

#: Sentinel distinguishing "cache disabled" from "default cache directory".
_NO_CACHE = "__no_cache__"


def _execute(payloads: List[dict], mode: str, jobs: int):
    """Run every payload under the requested executor, preserving order.

    The process pool degrades to threads when the platform cannot provide
    one (sandboxes without semaphores, missing ``/dev/shm``); results are
    identical either way, only wall-clock differs.
    """
    if mode == "serial":
        return [_execute_point(payload) for payload in payloads], mode
    workers = min(jobs, len(payloads))
    if mode == "process":
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_execute_point, payloads)), mode
        except (OSError, NotImplementedError):
            mode = "thread"
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_point, payloads)), mode


def _execute_point(payload: Mapping[str, object]) -> dict:
    """Execute one grid point; plain dicts in, plain dicts out (picklable)."""
    fault_point("sweep.point.execute")
    scenario = Scenario.from_dict(payload["scenario"])  # type: ignore[arg-type]
    cache_dir = payload["cache_dir"]
    cache = (
        None
        if cache_dir == _NO_CACHE
        else SimulationCache(cache_dir, version=int(payload["cache_version"]))  # type: ignore[arg-type]
    )
    context = SimulationContext(max_workers=1, scenario=scenario, disk_cache=cache)
    benchmarks = context.select_benchmarks(payload["benchmarks"])  # type: ignore[arg-type]
    simulate = context.routing if payload["kind"] == "routing" else context.end_to_end
    cells: List[dict] = []
    for name in benchmarks:
        baseline = simulate(name, DesignPoint.BASELINE_GPU)
        for design in payload["designs"]:  # type: ignore[union-attr]
            result = simulate(name, design)
            cells.append(
                {
                    "benchmark": name,
                    "design": str(design),
                    "time_seconds": result.time_seconds,
                    "energy_joules": result.energy_joules,
                    "baseline_time_seconds": baseline.time_seconds,
                    "baseline_energy_joules": baseline.energy_joules,
                }
            )
    if cache is not None:
        cache.flush()
    return {
        "cells": cells,
        "simulations": context.simulations_executed,
        "disk_hits": context.disk_stats.hits,
        "disk_misses": context.disk_stats.misses,
    }


def _axis_cell(value: object) -> str:
    """Axis values render in their compact label form (``312.5``, ``625``).

    Reusing the grid-label formatting keeps one axis column uniform even
    when its values mix int and float spellings.
    """
    return _format_value(value)
