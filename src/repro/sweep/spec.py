"""Declarative sweep specifications over scenario override axes.

A :class:`SweepSpec` names the slice of the design space to explore: every
axis is a dotted :class:`~repro.api.scenario.Scenario` override path (the
same keys ``--set`` accepts, e.g. ``hmc.pe_frequency_mhz``) with the values
to try, and the grid is the cartesian product of all axes.  Specs are
frozen, validated at construction and JSON-round-trippable, mirroring
:class:`~repro.api.scenario.Scenario` / :class:`~repro.workloads.catalog.
WorkloadSpec`::

    spec = SweepSpec.from_axes(
        {"hmc.pe_frequency_mhz": [312.5, 625, 1250], "hmc.pes_per_vault": [8, 16]},
        name="freq-x-pe",
    )
    spec.to_file("freq_x_pe.json")
    SweepSpec.load("freq_x_pe.json")        # or a preset name, see sweep_presets()

Axis keys may abbreviate a unique override key (``hmc.pe_frequency``
resolves to ``hmc.pe_frequency_mhz``); ambiguous or unknown keys raise
:class:`ValueError` listing the candidates.  Fig. 18's frequency sweep ships
as the ``fig18-frequency`` preset -- the paper figure is just one point grid
of this machinery.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.scenario import Scenario, override_keys

#: Simulation kinds a sweep can evaluate per cell.
SWEEP_KINDS = ("routing", "end-to-end")

#: Scenario keys that cannot be swept (labels / selection bookkeeping).
_UNSWEEPABLE_KEYS = ("name",)

#: Axis value types that serialize to JSON and label grid points cleanly.
_VALUE_TYPES = (str, int, float, bool)


def canonical_axis_key(key: str) -> str:
    """Resolve an axis key against the scenario override keys.

    Exact matches win; otherwise a key that unambiguously abbreviates one
    override key (``hmc.pe_frequency`` -> ``hmc.pe_frequency_mhz``) resolves
    to it.  Unknown or ambiguous keys raise :class:`ValueError`.
    """
    key = str(key).strip()
    valid = [name for name in override_keys() if name not in _UNSWEEPABLE_KEYS]
    if key in valid:
        return key
    candidates = [name for name in valid if name.startswith(key)]
    if len(candidates) == 1:
        return candidates[0]
    if candidates:
        raise ValueError(f"ambiguous sweep axis {key!r}; candidates: {candidates}")
    raise ValueError(f"unknown sweep axis {key!r}; valid keys: {valid}")


def _format_value(value: object) -> str:
    """Deterministic, compact label form of one axis value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a scenario override key and the values to try."""

    key: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", canonical_axis_key(self.key))
        values = tuple(self.values)
        if not values:
            raise ValueError(f"sweep axis {self.key!r} has no values")
        for value in values:
            if not isinstance(value, _VALUE_TYPES):
                raise ValueError(
                    f"sweep axis {self.key!r} values must be scalars "
                    f"(str/int/float/bool), got {type(value).__name__}"
                )
        if len(set(map(_format_value, values))) != len(values):
            raise ValueError(f"sweep axis {self.key!r} has duplicate values")
        object.__setattr__(self, "values", values)

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) form."""
        return {"key": self.key, "values": list(self.values)}


@dataclass(frozen=True)
class SweepSpec:
    """One declarative design-space sweep (frozen, validated, JSON-ready).

    Attributes:
        name: label used in reports and cache bookkeeping.
        axes: the swept dimensions; the grid is their cartesian product, in
            declaration order (the last axis varies fastest).
        benchmarks: restrict every point to these catalog workloads (``None``
            = the base scenario's own selection, then the whole catalog).
        designs: design points evaluated per cell; the GPU baseline is always
            simulated too (it normalizes every metric) and need not be listed.
        kind: per-cell simulation, ``"routing"`` (routing-procedure time and
            energy, the Fig. 15/18 metric) or ``"end-to-end"`` (whole
            inference, the Fig. 17 metric).
    """

    name: str = "sweep"
    axes: Tuple[SweepAxis, ...] = ()
    benchmarks: Optional[Tuple[str, ...]] = None
    designs: Tuple[str, ...] = ("pim-capsnet",)
    kind: str = "routing"

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("sweep name must be a non-empty string")
        object.__setattr__(self, "name", str(self.name).strip())
        axes = tuple(
            axis if isinstance(axis, SweepAxis) else _axis_from(axis)
            for axis in self.axes
        )
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        keys = [axis.key for axis in axes]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate sweep axes {keys}")
        object.__setattr__(self, "axes", axes)
        if self.benchmarks is not None:
            benchmarks = tuple(str(name) for name in self.benchmarks)
            if not benchmarks:
                raise ValueError("benchmarks must be None or a non-empty selection")
            object.__setattr__(self, "benchmarks", benchmarks)
        kind = str(self.kind).strip().lower().replace("_", "-")
        if kind not in SWEEP_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}; choose from {list(SWEEP_KINDS)}")
        object.__setattr__(self, "kind", kind)
        designs = tuple(str(design) for design in self.designs)
        if not designs:
            raise ValueError("a sweep needs at least one design point")
        # Custom strategies must be registered before the spec is built;
        # typos then fail here instead of mid-run.
        from repro.core.accelerator import DesignPoint
        from repro.engine.strategies import strategy_names

        known = set(strategy_names())
        unknown = [design for design in designs if design not in known]
        if unknown:
            raise ValueError(
                f"unknown design point(s) {unknown}; "
                f"registered design points: {sorted(known)}"
            )
        baseline = DesignPoint.BASELINE_GPU.value
        designs = tuple(design for design in designs if design != baseline)
        if not designs:
            raise ValueError(
                "a sweep needs at least one non-baseline design point "
                "(the GPU baseline is always simulated for normalization)"
            )
        object.__setattr__(self, "designs", designs)

    # ------------------------------------------------------------- constructors

    @classmethod
    def from_axes(
        cls, axes: Mapping[str, Sequence[object]], **kwargs
    ) -> "SweepSpec":
        """Build a spec from an ``{override-key: values}`` mapping."""
        return cls(
            axes=tuple(SweepAxis(key, tuple(values)) for key, values in axes.items()),
            **kwargs,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Build a spec from a plain (JSON-shaped) dictionary.

        ``axes`` is required and may be an ``{key: values}`` mapping or a
        list of ``{"key": ..., "values": [...]}`` entries; unknown keys raise
        :class:`ValueError`.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"sweep data must be a mapping, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep key(s) {unknown}; valid keys: {sorted(known)}"
            )
        if "axes" not in data or not data["axes"]:
            raise ValueError("sweep spec is missing the required 'axes' section")
        kwargs: Dict[str, object] = {"axes": _axes_from(data["axes"])}
        if "name" in data:
            kwargs["name"] = str(data["name"])
        if data.get("benchmarks") is not None:
            value = data["benchmarks"]
            if isinstance(value, str):
                value = [part.strip() for part in value.split(",") if part.strip()]
            kwargs["benchmarks"] = tuple(str(item) for item in value)  # type: ignore[union-attr]
        if data.get("designs") is not None:
            value = data["designs"]
            if isinstance(value, str):
                value = [part.strip() for part in value.split(",") if part.strip()]
            kwargs["designs"] = tuple(str(item) for item in value)  # type: ignore[union-attr]
        if "kind" in data:
            kwargs["kind"] = str(data["kind"])
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a JSON file (``name`` defaults to the file stem)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read sweep file {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON in sweep file {path}: {error}") from None
        if isinstance(data, Mapping) and "name" not in data:
            data = {**data, "name": path.stem}
        return cls.from_dict(data)

    @classmethod
    def load(cls, spec: str) -> "SweepSpec":
        """Resolve a CLI sweep spec: a preset name or a JSON file path."""
        presets = sweep_presets()
        if spec in presets:
            return presets[spec]
        path = Path(spec)
        if path.exists():
            return cls.from_file(path)
        raise ValueError(
            f"unknown sweep spec {spec!r}: not a preset ({sweep_preset_names()}) "
            f"and no such file"
        )

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) dictionary round-tripping through :meth:`from_dict`."""
        return {
            "name": self.name,
            "axes": [axis.to_dict() for axis in self.axes],
            "benchmarks": list(self.benchmarks) if self.benchmarks is not None else None,
            "designs": list(self.designs),
            "kind": self.kind,
        }

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the spec as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # ---------------------------------------------------------------- expansion

    @property
    def axis_keys(self) -> List[str]:
        """The canonical override keys of every axis, in declaration order."""
        return [axis.key for axis in self.axes]

    def grid_size(self) -> int:
        """Number of grid points (product of the axis value counts)."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def assignments(self) -> List[Dict[str, object]]:
        """Every grid point's ``{key: value}`` assignment, in grid order.

        The grid is the cartesian product of the axes in declaration order;
        the last axis varies fastest (row-major, like nested loops).
        """
        grid: List[Dict[str, object]] = [{}]
        for axis in self.axes:
            grid = [
                {**assignment, axis.key: value}
                for assignment in grid
                for value in axis.values
            ]
        return grid

    def scenario_for(self, base: Scenario, assignment: Mapping[str, object]) -> Scenario:
        """The variant scenario of one grid point, deterministically named.

        The name is ``<base>+<key>=<value>,...`` so reports, comparisons and
        logs keep every point distinguishable.
        """
        label = ",".join(
            f"{key}={_format_value(value)}" for key, value in assignment.items()
        )
        variant = base.with_overrides(assignment)
        return variant.with_overrides({"name": f"{base.name}+{label}"})

    def describe(self) -> str:
        """Human-readable one-liner."""
        axes = " x ".join(f"{axis.key}[{len(axis.values)}]" for axis in self.axes)
        return f"{self.name}: {axes} = {self.grid_size()} points, {self.kind} metric"


def _axis_from(value: object) -> SweepAxis:
    """Coerce one ``axes`` entry (mapping or pair) to a :class:`SweepAxis`."""
    if isinstance(value, SweepAxis):
        return value
    if isinstance(value, Mapping):
        unknown = sorted(set(value) - {"key", "values"})
        if unknown:
            raise ValueError(
                f"unknown sweep axis key(s) {unknown}; valid keys: ['key', 'values']"
            )
        if "key" not in value or "values" not in value:
            raise ValueError("a sweep axis needs both 'key' and 'values'")
        return SweepAxis(str(value["key"]), tuple(value["values"]))  # type: ignore[arg-type]
    if isinstance(value, Sequence) and not isinstance(value, str) and len(value) == 2:
        key, values = value
        return SweepAxis(str(key), tuple(values))
    raise ValueError(
        f"sweep axes entries must be SweepAxis, {{'key', 'values'}} mappings "
        f"or (key, values) pairs, got {type(value).__name__}"
    )


def _axes_from(value: object) -> Tuple[SweepAxis, ...]:
    """Coerce the whole ``axes`` section (mapping or sequence of entries)."""
    if isinstance(value, Mapping):
        return tuple(SweepAxis(str(key), tuple(values)) for key, values in value.items())
    if isinstance(value, Iterable) and not isinstance(value, str):
        return tuple(_axis_from(entry) for entry in value)
    raise ValueError(
        f"sweep 'axes' must be a {{key: values}} mapping or a list of axis "
        f"entries, got {type(value).__name__}"
    )


#: Lazily built preset sweeps (see :func:`sweep_presets`).
_PRESET_SWEEPS: Optional[Dict[str, SweepSpec]] = None


def sweep_presets() -> Dict[str, SweepSpec]:
    """Named preset sweeps selectable via ``repro sweep --spec NAME``.

    Fig. 18's frequency sweep is the canonical example: the paper figure is
    this grid (plus its per-dimension force, which the figure's own
    experiment renders).  Built lazily -- the frequencies come from the
    Fig. 18 experiment module, and importing experiment modules at CLI
    startup would defeat the parser's laziness guarantee.
    """
    global _PRESET_SWEEPS
    if _PRESET_SWEEPS is None:
        from repro.experiments.fig18_frequency_sweep import FIG18_FREQUENCIES_MHZ

        _PRESET_SWEEPS = {
            "fig18-frequency": SweepSpec(
                name="fig18-frequency",
                axes=(SweepAxis("hmc.pe_frequency_mhz", FIG18_FREQUENCIES_MHZ),),
            ),
        }
    return dict(_PRESET_SWEEPS)


def sweep_preset_names() -> List[str]:
    """Names of the built-in preset sweeps."""
    return sorted(sweep_presets())
