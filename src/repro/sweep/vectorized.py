"""Vectorized (plane-batched) evaluation of sweep grids, bit-exact with the scalar path.

The analytic models behind every design point are closed-form float
arithmetic; a sweep grid only re-evaluates them with different scenario
parameters.  This module exploits the structure of that arithmetic: of all
swept quantities, only ``hmc.pe_frequency_mhz`` enters the models as a pure
*scaling* input (``PEDatapath.time_for = cycles / (pes * frequency_hz)``) --
every other quantity (distribution plans, operation mixes, DRAM and crossbar
times, GPU simulations, power coefficients, scheduler decisions) is
frequency-free.  The evaluator therefore

1. groups the grid into **planes**: points sharing every non-frequency axis
   value.  Each plane is one frequency array.
2. computes the frequency-free quantities of each plane **once**, via the
   *actual scalar model code* on an anchor scenario (so they are identical to
   the scalar path by construction), and
3. re-expresses only the frequency-dependent chains as single numpy
   expressions over the whole frequency array, replicating the scalar
   operation order exactly.  IEEE-754 arithmetic is deterministic: the same
   operations in the same order produce the same bits, so every cell equals
   the scalar result **exactly** -- the same policy as the training kernels'
   bit-exactness gate.

Two guard rails keep this honest:

* :func:`vectorization_blocker` refuses any sweep the batcher does not fully
  understand (no frequency axis, selection axes, custom strategies); the
  runner then falls back to the scalar path.
* the **equivalence gate**: unless disabled, freshly computed points are
  re-simulated through the plain scalar path (all of them under
  ``verify="full"``, the first and last fresh frequency of every plane under
  the default ``verify="sample"``) and compared field-by-field with exact
  float equality.  Any difference raises :class:`VectorizedMismatchError` --
  divergence is a bug, never something to silently fall back from.

Results flow through the same content-addressed
:class:`~repro.engine.diskcache.SimulationCache` entries as the scalar path
(bulk ``get_many``/``put_many``), so vectorized, scalar, process-pool and
work-queue executions all share one cache, and a warm vectorized sweep
executes zero simulations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.scenario import Scenario
from repro.core.accelerator import (
    DesignPoint,
    EndToEndComparison,
    PIMCapsNet,
    RoutingComparison,
)
from repro.core.rmas import SchedulerPolicy
from repro.engine.diskcache import SimulationCache, canonical_digest
from repro.engine.strategies import DesignLike, design_key, get_strategy
from repro.hmc.address import CustomAddressMapping, DefaultAddressMapping
from repro.hmc.dram import VaultMemoryModel
from repro.hmc.pe import (
    DEFAULT_CYCLES_PER_OPERATION,
    STREAMING_MAC_CYCLES,
    OperationMix,
    PEDatapath,
    PEOperation,
)
from repro.sweep.spec import SweepSpec

#: The axis broadcast as a numpy array; every other axis defines planes.
FREQUENCY_AXIS = "hmc.pe_frequency_mhz"

#: Equivalence-gate modes: scalar re-check of every fresh point, of the first
#: and last fresh frequency per plane, or of nothing.
VERIFY_MODES = ("full", "sample", "off")

#: Axes that change *which* cells a point evaluates rather than their inputs.
_SELECTION_AXES = ("benchmarks", "workloads")


class VectorizedMismatchError(RuntimeError):
    """A vectorized cell differed from the scalar path (always a bug)."""


# ----------------------------------------------------------------- eligibility


def _design_points_module():
    """The built-in strategy module, loaded after the registry initialized.

    ``get_strategy`` first so the registry's own deferred import populates
    the built-ins; importing :mod:`repro.engine.design_points` directly while
    it is half-executed would observe a partial registry.
    """
    get_strategy(DesignPoint.BASELINE_GPU)
    from repro.engine import design_points

    return design_points


def vectorization_blocker(spec: SweepSpec, base: Optional[Scenario] = None) -> Optional[str]:
    """Why this sweep cannot be vectorized, or ``None`` if it can.

    The ``base`` scenario is accepted for signature stability but does not
    influence eligibility today: planes anchor on whatever scenario each
    grid point produces, so any base that survives scalar execution works.
    """
    del base
    if FREQUENCY_AXIS not in spec.axis_keys:
        return (
            f"no {FREQUENCY_AXIS!r} axis to broadcast; only frequency planes "
            f"are batched today"
        )
    for key in spec.axis_keys:
        if key in _SELECTION_AXES:
            return f"axis {key!r} changes the evaluated workload selection per point"
    for axis in spec.axes:
        if axis.key != FREQUENCY_AXIS:
            continue
        for value in axis.values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return f"non-numeric {FREQUENCY_AXIS} value {value!r}"
    designs: List[DesignLike] = [DesignPoint.BASELINE_GPU]
    designs.extend(spec.designs)
    for design in designs:
        reason = _strategy_blocker(design, spec.kind)
        if reason is not None:
            return reason
    return None


def _strategy_blocker(design: DesignLike, kind: str) -> Optional[str]:
    """Why one design point's strategy cannot be vectorized (``None`` = fine)."""
    dp = _design_points_module()
    try:
        strategy = get_strategy(design)
    except KeyError:
        return f"no strategy registered for design point {design_key(design)!r}"
    if type(strategy) is dp.GPUExecutionStrategy:
        return None
    if type(strategy) not in (dp.PIMPipelinedStrategy, dp.AllInPIMStrategy):
        return (
            f"design {design_key(design)!r} uses a custom strategy "
            f"({type(strategy).__name__}); the scalar path handles it"
        )
    if kind != "routing":
        try:
            rp_strategy = get_strategy(strategy.rp_design)
        except KeyError:
            return (
                f"design {design_key(design)!r} pipelines an unregistered "
                f"routing design {design_key(strategy.rp_design)!r}"
            )
        if type(rp_strategy) not in (
            dp.GPUExecutionStrategy,
            dp.PIMPipelinedStrategy,
            dp.AllInPIMStrategy,
        ):
            return (
                f"design {design_key(design)!r} pipelines routing design "
                f"{design_key(strategy.rp_design)!r}, whose strategy "
                f"({type(rp_strategy).__name__}) is not vectorized"
            )
    return None


# ------------------------------------------------------------- value batching


def _select_rows(indices: np.ndarray, rows: Sequence[object]) -> np.ndarray:
    """Per-point row selection: ``result[i] = rows[indices[i]][i]``.

    Rows may be scalars or arrays; scalars broadcast.  Fancy indexing copies
    the selected float64 values bit-for-bit.
    """
    stacked = np.stack(
        [np.broadcast_to(np.asarray(row, dtype=np.float64), indices.shape) for row in rows]
    )
    return stacked[indices, np.arange(indices.shape[0])]


class _DesignValues:
    """Per-point times/energies of one design, plus a result materializer."""

    __slots__ = ("times", "energies", "_materialize")

    def __init__(
        self,
        times: List[float],
        energies: List[float],
        materialize: Callable[[int], object],
    ) -> None:
        self.times = times
        self.energies = energies
        self._materialize = materialize

    @classmethod
    def constant(cls, result: object, count: int) -> "_DesignValues":
        return cls(
            [result.time_seconds] * count,
            [result.energy_joules] * count,
            lambda index: result,
        )

    def result(self, index: int) -> object:
        return self._materialize(index)


class _BenchmarkPlane:
    """All vectorized quantities of one ``(plane, benchmark)`` pair.

    Frequency-free quantities come from ``model0`` -- the scalar model built
    for the plane's anchor scenario -- so they are the scalar path's own
    values; only frequency-dependent chains are recomputed as arrays.
    """

    def __init__(self, model0: PIMCapsNet, f_hz: np.ndarray, kind: str) -> None:
        self.model0 = model0
        self.f_hz = f_hz
        self.n = int(f_hz.shape[0])
        self.kind = kind  # "routing" | "end_to_end"
        self._values: Dict[str, _DesignValues] = {}
        self._plans: Optional[List[object]] = None
        self._dim_idx: Optional[np.ndarray] = None
        self._flavors: Dict[Tuple[bool, bool], Dict[str, object]] = {}
        self._rp_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    def values(self, design: DesignLike) -> _DesignValues:
        key = design_key(design)
        if key not in self._values:
            self._values[key] = self._build(design)
        return self._values[key]

    # -------------------------------------------------------------- dispatch

    def _build(self, design: DesignLike) -> _DesignValues:
        dp = _design_points_module()
        strategy = get_strategy(design)
        if type(strategy) is dp.GPUExecutionStrategy:
            # GPU execution never touches the HMC: one scalar simulation of
            # the anchor model covers the whole frequency plane.
            result = (
                self.model0.simulate_routing(design)
                if self.kind == "routing"
                else self.model0.simulate_end_to_end(design)
            )
            return _DesignValues.constant(result, self.n)
        if self.kind == "routing":
            if type(strategy) is dp.PIMPipelinedStrategy:
                flags = (strategy.custom_mapping, strategy.interleaved_placement)
            else:  # AllInPIMStrategy routes with routing_on_hmc defaults
                flags = (True, False)
            return self._routing_values(self._flavor(*flags), design)
        if type(strategy) is dp.PIMPipelinedStrategy:
            return self._pipelined_values(strategy, design)
        return self._all_in_pim_values(strategy, design)

    # ------------------------------------------------- plan/dimension choice

    def _dim_selection(self) -> Tuple[List[object], np.ndarray]:
        """The distribution plans and the per-frequency best-dimension index.

        Replicates ``WorkloadDistributor.best_plan``: the plans themselves
        are frequency-free; only the compute term of the estimated time
        scales with frequency, so the winning dimension can flip across the
        plane (the Fig. 18 effect).  Scores compare like the scalar path
        (``1/t`` vs ``inf``), and ``argmax`` keeps the first winner on ties
        exactly like ``max`` over the ``Dimension``-ordered plan dict.
        """
        if self._dim_idx is None:
            model = self.model0
            plans = model.distributor.all_plans()
            self._plans = list(plans.values())
            score_rows = []
            for plan in self._plans:
                cycles = model.datapath.cycles_for(plan.per_vault_operations)
                pes = model.intra_vault.effective_pes(
                    plan.per_vault_parallel_suboperations, plan.secondary_parallelism
                )
                compute = cycles / (pes * self.f_hz)
                estimated = (
                    np.maximum(compute, model.score_model.memory_time(plan))
                    + model.score_model.communication_time(plan)
                )
                with np.errstate(divide="ignore"):
                    score_rows.append(
                        np.where(estimated > 0.0, 1.0 / estimated, np.inf)
                    )
            self._dim_idx = np.argmax(np.stack(score_rows), axis=0)
        return self._plans, self._dim_idx

    # --------------------------------------------------- routing on the HMC

    def _flavor(self, custom_mapping: bool, interleaved: bool) -> Dict[str, object]:
        """Per-point ``routing_on_hmc`` quantities for one placement flavor."""
        flags = (custom_mapping, interleaved)
        if flags in self._flavors:
            return self._flavors[flags]
        model = self.model0
        cfg = model.hmc_config
        plans, dim_idx = self._dim_selection()
        mapping = (CustomAddressMapping if custom_mapping else DefaultAddressMapping)(cfg)
        memory = VaultMemoryModel(cfg)
        power = model.hmc_power
        per_dim: List[Dict[str, object]] = []
        for plan in plans:
            if interleaved:
                remote_fraction = (cfg.num_vaults - 1) / cfg.num_vaults
                remote_bytes = plan.total_dram_bytes * remote_fraction
                payload = remote_bytes
                packets = remote_bytes / cfg.block_bytes
                per_vault_dram = plan.total_dram_bytes / cfg.num_vaults
                ports = cfg.num_vaults
            else:
                payload = plan.crossbar_payload_bytes
                packets = plan.crossbar_packets
                per_vault_dram = plan.per_vault_dram_bytes
                ports = 1
            utilization = model.intra_vault.utilization(
                plan.per_vault_parallel_suboperations, plan.secondary_parallelism
            )
            pes = max(1, int(round(cfg.pes_per_vault * utilization)))
            cycles = model.datapath.cycles_for(plan.per_vault_operations)
            dram_time = memory.base_service_time(per_vault_dram)
            conflict = mapping.bank_conflict_factor(cfg.pes_per_vault)
            vrs = memory.stall_time(per_vault_dram, conflict)
            xbar = model.crossbar.transfer(
                payload, packets, receiver_ports=ports
            ).total_time
            execution = np.maximum(cycles / (pes * self.f_hz), dram_time)
            total = (execution + vrs) + xbar
            wire_bytes = payload * (1.0 + cfg.packet_overhead_bytes / float(cfg.block_bytes))
            e_execution = power.pe_energy_per_op * plan.total_operations.total_operations
            e_dram = power.dram_energy_per_byte * plan.total_dram_bytes
            e_crossbar = power.crossbar_energy_per_byte * wire_bytes
            e_vault = (power.static_power_watts + power.logic_power_watts) * total
            energy = ((e_execution + e_dram) + e_crossbar) + e_vault
            per_dim.append(
                {
                    "execution": execution,
                    "vrs": vrs,
                    "xbar": xbar,
                    "time": total,
                    "energy": energy,
                    "e_execution": e_execution,
                    "e_dram": e_dram,
                    "e_crossbar": e_crossbar,
                    "e_vault": e_vault,
                    "dimension": plan.dimension,
                }
            )
        flavor: Dict[str, object] = {
            name: _select_rows(dim_idx, [entry[name] for entry in per_dim])
            for name in (
                "execution",
                "vrs",
                "xbar",
                "time",
                "energy",
                "e_execution",
                "e_dram",
                "e_crossbar",
                "e_vault",
            )
        }
        flavor["dimension"] = [per_dim[j]["dimension"] for j in dim_idx.tolist()]
        self._flavors[flags] = flavor
        return flavor

    def _routing_values(self, flavor: Dict[str, object], design: DesignLike) -> _DesignValues:
        benchmark = self.model0.benchmark.name
        times = flavor["time"].tolist()
        energies = flavor["energy"].tolist()
        execution = flavor["execution"].tolist()
        vrs = flavor["vrs"].tolist()
        xbar = flavor["xbar"].tolist()
        e_execution = flavor["e_execution"].tolist()
        e_dram = flavor["e_dram"].tolist()
        e_crossbar = flavor["e_crossbar"].tolist()
        e_vault = flavor["e_vault"].tolist()
        dimensions = flavor["dimension"]

        def materialize(i: int) -> RoutingComparison:
            return RoutingComparison(
                design=design,
                benchmark=benchmark,
                time_seconds=times[i],
                energy_joules=energies[i],
                time_components={
                    "execution": execution[i],
                    "xbar": xbar[i],
                    "vrs": vrs[i],
                },
                energy_components={
                    "execution": e_execution[i],
                    "dram": e_dram[i],
                    "crossbar": e_crossbar[i],
                    "vault": e_vault[i],
                },
                dimension=dimensions[i],
            )

        return _DesignValues(times, energies, materialize)

    def _rp(self, rp_design: DesignLike) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point routing time/energy arrays of a pipeline's RP stage."""
        dp = _design_points_module()
        key = design_key(rp_design)
        if key not in self._rp_cache:
            strategy = get_strategy(rp_design)
            if type(strategy) is dp.GPUExecutionStrategy:
                result = self.model0.simulate_routing(rp_design)
                pair = (
                    np.full(self.n, result.time_seconds),
                    np.full(self.n, result.energy_joules),
                )
            else:
                if type(strategy) is dp.PIMPipelinedStrategy:
                    flags = (strategy.custom_mapping, strategy.interleaved_placement)
                else:
                    flags = (True, False)
                flavor = self._flavor(*flags)
                pair = (flavor["time"], flavor["energy"])
            self._rp_cache[key] = pair
        return self._rp_cache[key]

    # ------------------------------------------------------------ end-to-end

    def _pipelined_values(self, strategy, design: DesignLike) -> _DesignValues:
        model = self.model0
        host = model.host_stage()
        rp_time_raw, rp_energy = self._rp(strategy.rp_design)
        num_vaults = model.hmc_config.num_vaults
        if strategy.policy is SchedulerPolicy.RMAS:
            # ContentionModel.optimal_share scans every host-priority vault
            # count; the cost matrix compares all shares per point at once.
            pairs = [
                model.contention.slowdowns_for_share(n / num_vaults)
                for n in range(num_vaults + 1)
            ]
            cost = np.stack(
                [
                    np.maximum(host["time"] * hs, rp_time_raw * ps)
                    for hs, ps in pairs
                ]
            )
            best = np.argmin(cost, axis=0)  # first minimum, like strict '<'
            host_slowdown = np.asarray([hs for hs, _ in pairs])[best]
            pim_slowdown = np.asarray([ps for _, ps in pairs])[best]
        else:
            decision = model.rmas.decide(
                targeted_vaults=num_vaults, queue_depth=model.rmas_queue_depth
            )
            host_slowdown, pim_slowdown = model.contention.slowdowns(
                strategy.policy, decision
            )
        host_time = host["time"] * host_slowdown
        rp_time = rp_time_raw * pim_slowdown
        num_batches = model.pipeline.num_batches
        if num_batches == 1:
            total = host_time + rp_time
        else:
            total = (
                host_time + (num_batches - 1) * np.maximum(host_time, rp_time)
            ) + rp_time
        gpu_energy = model.gpu_energy
        host_energy = (
            gpu_energy._background_power * host_time
            + gpu_energy.energy_per_flop * host["flops"]
        ) + gpu_energy.energy_per_dram_byte * host["traffic"]
        idle_time = np.maximum(0.0, total - num_batches * host_time)
        idle_energy = (gpu_energy.device.idle_watts * idle_time + 0.0) + 0.0
        energy = num_batches * (host_energy + rp_energy * pim_slowdown) + idle_energy
        return self._end_to_end_values(
            design, host_time, rp_time, total, energy, pipelined=True
        )

    def _all_in_pim_values(self, strategy, design: DesignLike) -> _DesignValues:
        dp = _design_points_module()
        model = self.model0
        cfg = model.hmc_config
        host = model.host_stage()
        rp_time, rp_energy = self._rp(strategy.rp_design)
        # HMCDevice.execute_dense: streaming MACs spread over every vault.
        streaming_costs = dict(DEFAULT_CYCLES_PER_OPERATION)
        streaming_costs[PEOperation.MAC] = STREAMING_MAC_CYCLES
        datapath = PEDatapath(
            frequency_hz=model.datapath.frequency_hz,
            cycles_per_operation=streaming_costs,
        )
        macs = host["flops"] / 2.0
        mix = OperationMix().add(PEOperation.MAC, macs / cfg.num_vaults)
        cycles = datapath.cycles_for(mix)
        pes = max(1, int(round(cfg.pes_per_vault * 1.0)))
        memory = VaultMemoryModel(cfg)
        per_vault_bytes = host["traffic"] / cfg.num_vaults
        dram_time = memory.base_service_time(per_vault_bytes)
        conflict = CustomAddressMapping(cfg).bank_conflict_factor(cfg.pes_per_vault)
        vrs = memory.stall_time(per_vault_bytes, conflict)
        xbar = model.crossbar.transfer(0.0, 0.0).total_time
        host_time = (np.maximum(cycles / (pes * self.f_hz), dram_time) + vrs) + xbar
        num_batches = model.pipeline.num_batches
        total = num_batches * (host_time + rp_time)
        power = model.hmc_power
        wire_bytes = 0.0 * (1.0 + cfg.packet_overhead_bytes / float(cfg.block_bytes))
        e_execution = (
            power.pe_energy_per_op * dp.dense_operation_mix(host["flops"]).total_operations
        )
        e_dram = power.dram_energy_per_byte * host["traffic"]
        e_crossbar = power.crossbar_energy_per_byte * wire_bytes
        e_vault = (power.static_power_watts + power.logic_power_watts) * host_time
        host_energy = ((e_execution + e_dram) + e_crossbar) + e_vault
        energy = num_batches * (host_energy + rp_energy)
        return self._end_to_end_values(
            design, host_time, rp_time, total, energy, pipelined=False
        )

    def _end_to_end_values(
        self,
        design: DesignLike,
        host_time: np.ndarray,
        rp_time: np.ndarray,
        total: np.ndarray,
        energy: np.ndarray,
        *,
        pipelined: bool,
    ) -> _DesignValues:
        model = self.model0
        benchmark = model.benchmark.name
        host_list = np.broadcast_to(host_time, total.shape).tolist()
        rp_list = np.broadcast_to(rp_time, total.shape).tolist()
        times = total.tolist()
        energies = np.broadcast_to(energy, total.shape).tolist()
        timing_of = model.pipeline.pipelined if pipelined else model.pipeline.serial

        def materialize(i: int) -> EndToEndComparison:
            return EndToEndComparison(
                design=design,
                benchmark=benchmark,
                timing=timing_of(host_list[i], rp_list[i]),
                energy_joules=energies[i],
                host_stage_seconds=host_list[i],
                routing_stage_seconds=rp_list[i],
            )

        return _DesignValues(times, energies, materialize)


# ------------------------------------------------------------ grid evaluation


def _select_benchmarks(base: Scenario) -> List[str]:
    """The benchmark fallback chain, mirroring ``SimulationContext``."""
    selection = base.benchmark_selection()
    return selection if selection else base.catalog.names()


def _plane_hashes(anchor: Scenario, frequencies: List[float]) -> List[str]:
    """Per-frequency hardware hashes of one plane, without per-point scenarios.

    Within a plane the variants differ *only* in ``hmc.pe_frequency_mhz``,
    so one hardware dict is re-digested per frequency -- identical to
    ``Scenario.hardware_hash()`` of the full variant, at a fraction of the
    construction cost (a unit test pins the equivalence).
    """
    template = anchor.hardware_dict()
    hmc = template["hmc"]
    hashes = []
    for value in frequencies:
        hmc["pe_frequency_mhz"] = value
        hashes.append(canonical_digest(template))
    return hashes


def evaluate_grid(
    spec: SweepSpec,
    base: Optional[Scenario] = None,
    benchmarks: Optional[List[str]] = None,
    *,
    assignments: Optional[List[Dict[str, object]]] = None,
    cache: Optional[SimulationCache] = None,
    verify: str = "sample",
) -> List[dict]:
    """Evaluate (a slice of) a sweep grid with the vectorized backend.

    Args:
        spec: the sweep (must pass :func:`vectorization_blocker`).
        base: base scenario (paper default when ``None``).
        benchmarks: resolved benchmark names (``None`` = the base scenario's
            selection chain).
        assignments: grid-point assignments to evaluate (``None`` = the whole
            grid); work-queue shards pass their slice.
        cache: shared :class:`~repro.engine.diskcache.SimulationCache`
            (``None`` disables persistence); flushed once before returning.
        verify: equivalence-gate mode (:data:`VERIFY_MODES`).

    Returns:
        One outcome dict per assignment, shaped exactly like the scalar
        executor's: ``{"cells", "simulations", "disk_hits", "disk_misses"}``.
    """
    base = base if base is not None else Scenario.default()
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}")
    blocker = vectorization_blocker(spec, base)
    if blocker is not None:
        raise ValueError(f"sweep cannot be vectorized: {blocker}")
    if assignments is None:
        assignments = spec.assignments()
    names = list(benchmarks) if benchmarks else _select_benchmarks(base)
    kind = "routing" if spec.kind == "routing" else "end_to_end"
    outcomes: List[Optional[dict]] = [None] * len(assignments)
    plane_axes = [key for key in spec.axis_keys if key != FREQUENCY_AXIS]
    planes: Dict[tuple, List[int]] = {}
    for position, assignment in enumerate(assignments):
        plane_key = tuple(assignment[key] for key in plane_axes)
        planes.setdefault(plane_key, []).append(position)
    for positions in planes.values():
        _evaluate_plane(
            spec, base, assignments, positions, names, kind, cache, verify, outcomes
        )
    if cache is not None:
        cache.flush()
    return outcomes  # type: ignore[return-value]


def _evaluate_plane(
    spec: SweepSpec,
    base: Scenario,
    assignments: List[Dict[str, object]],
    positions: List[int],
    names: List[str],
    kind: str,
    cache: Optional[SimulationCache],
    verify: str,
    outcomes: List[Optional[dict]],
) -> None:
    """Evaluate one frequency plane into ``outcomes`` (in grid positions)."""
    count = len(positions)
    frequencies = [float(assignments[p][FREQUENCY_AXIS]) for p in positions]
    anchor = spec.scenario_for(base, assignments[positions[0]])
    catalog = anchor.catalog
    configs = {name: catalog.benchmark(name) for name in names}
    cell_designs: List[DesignLike] = [DesignPoint.BASELINE_GPU]
    cell_designs.extend(str(design) for design in spec.designs)
    baseline_key = design_key(DesignPoint.BASELINE_GPU)

    # -- disk cache: one bulk lookup for the whole plane ----------------------
    hit_results: Dict[Tuple[int, str, str], object] = {}
    hits_per_point = [0] * count
    misses_per_point = [0] * count
    hashes: Optional[List[str]] = None
    if cache is not None:
        hashes = _plane_hashes(anchor, frequencies)
        requests = [
            (hashes[i], configs[name], kind, design)
            for i in range(count)
            for name in names
            for design in cell_designs
        ]
        found = cache.get_many(requests)
        cursor = 0
        for i in range(count):
            for name in names:
                for design in cell_designs:
                    result = found[cursor]
                    cursor += 1
                    if result is None:
                        misses_per_point[i] += 1
                    else:
                        hits_per_point[i] += 1
                        hit_results[(i, name, design_key(design))] = result
        any_miss = any(misses_per_point)
    else:
        any_miss = True

    # -- vectorized evaluation (only the planes' fresh cells need it) --------
    bench_planes: Dict[str, _BenchmarkPlane] = {}
    if any_miss:
        f_hz = np.asarray(frequencies, dtype=np.float64) * 1e6
        kwargs = anchor.model_kwargs()
        for name in names:
            bench_planes[name] = _BenchmarkPlane(
                PIMCapsNet(configs[name], **kwargs), f_hz, kind
            )

    # Per-(benchmark, design) value arrays, hoisted out of the point loop:
    # the loop below runs once per grid point and is the only per-point
    # Python cost of the whole backend, so it must only index lists.
    computed: Dict[Tuple[int, str, str], object] = {}
    design_meta = [(str(design), design_key(design)) for design in cell_designs[1:]]
    per_bench: Dict[str, tuple] = {}
    for name in names:
        if any_miss:
            plane = bench_planes[name]
            baseline_values = plane.values(DesignPoint.BASELINE_GPU)
            design_values = [
                (design_str, dkey, plane.values(dkey))
                for design_str, dkey in design_meta
            ]
        else:  # fully warm plane: every lookup hits, the arrays are unused
            baseline_values = None
            design_values = [
                (design_str, dkey, None) for design_str, dkey in design_meta
            ]
        per_bench[name] = (baseline_values, design_values)

    if cache is None:
        # Fast path (also the 100k-point benchmark path): no hit lookups,
        # every cell is fresh, simulations count the whole point.
        point_simulations = len(names) * len(cell_designs)
        for i in range(count):
            cells: List[dict] = []
            for name in names:
                baseline_values, design_values = per_bench[name]
                baseline_time = baseline_values.times[i]
                baseline_energy = baseline_values.energies[i]
                for design_str, _, values in design_values:
                    cells.append(
                        {
                            "benchmark": name,
                            "design": design_str,
                            "time_seconds": values.times[i],
                            "energy_joules": values.energies[i],
                            "baseline_time_seconds": baseline_time,
                            "baseline_energy_joules": baseline_energy,
                        }
                    )
            outcomes[positions[i]] = {
                "cells": cells,
                "simulations": point_simulations,
                "disk_hits": 0,
                "disk_misses": 0,
            }
    else:
        puts: List[tuple] = []
        for i in range(count):
            cells = []
            fresh = 0
            for name in names:
                baseline_values, design_values = per_bench[name]
                hit = hit_results.get((i, name, baseline_key))
                if hit is not None:
                    baseline_time = hit.time_seconds
                    baseline_energy = hit.energy_joules
                else:
                    baseline_time = baseline_values.times[i]
                    baseline_energy = baseline_values.energies[i]
                    fresh += 1
                    result = baseline_values.result(i)
                    computed[(i, name, baseline_key)] = result
                    puts.append(
                        (hashes[i], configs[name], kind, DesignPoint.BASELINE_GPU, result)
                    )
                for design_str, dkey, values in design_values:
                    hit = hit_results.get((i, name, dkey))
                    if hit is not None:
                        time_seconds = hit.time_seconds
                        energy_joules = hit.energy_joules
                    else:
                        time_seconds = values.times[i]
                        energy_joules = values.energies[i]
                        fresh += 1
                        result = values.result(i)
                        computed[(i, name, dkey)] = result
                        puts.append((hashes[i], configs[name], kind, design_str, result))
                    cells.append(
                        {
                            "benchmark": name,
                            "design": design_str,
                            "time_seconds": time_seconds,
                            "energy_joules": energy_joules,
                            "baseline_time_seconds": baseline_time,
                            "baseline_energy_joules": baseline_energy,
                        }
                    )
            outcomes[positions[i]] = {
                "cells": cells,
                "simulations": fresh,
                "disk_hits": hits_per_point[i],
                "disk_misses": misses_per_point[i],
            }
        if puts:
            cache.put_many(puts)

    # -- equivalence gate: scalar re-check of freshly computed points --------
    if verify == "off" or not any_miss:
        return
    if cache is None:
        fresh_points = list(range(count))
    else:
        fresh_points = sorted({i for (i, _, _) in computed})
    if not fresh_points:
        return
    if verify == "sample":
        fresh_points = sorted({fresh_points[0], fresh_points[-1]})
    for i in fresh_points:
        sims = _verify_point(
            spec,
            base,
            assignments[positions[i]],
            names,
            configs,
            kind,
            cell_designs,
            lambda name, design, i=i: (
                computed.get((i, name, design_key(design)))
                if cache is not None
                else bench_planes[name].values(design).result(i)
            ),
        )
        outcomes[positions[i]]["simulations"] += sims


def _verify_point(
    spec: SweepSpec,
    base: Scenario,
    assignment: Dict[str, object],
    names: List[str],
    configs: Dict[str, object],
    kind: str,
    cell_designs: List[DesignLike],
    vectorized_result: Callable[[str, DesignLike], Optional[object]],
) -> int:
    """Re-simulate one grid point through the scalar path and compare exactly."""
    variant = spec.scenario_for(base, assignment)
    kwargs = variant.model_kwargs()
    simulations = 0
    for name in names:
        model = PIMCapsNet(configs[name], **kwargs)
        for design in cell_designs:
            vectorized = vectorized_result(name, design)
            if vectorized is None:
                continue
            reference = (
                model.simulate_routing(design)
                if kind == "routing"
                else model.simulate_end_to_end(design)
            )
            _assert_results_equal(
                vectorized,
                reference,
                f"point {assignment!r}, benchmark {name!r}, "
                f"design {design_key(design)!r}",
            )
        simulations += model.simulations_executed
    return simulations


def _assert_results_equal(vectorized: object, reference: object, context: str) -> None:
    """Exact field-by-field comparison; any difference is a hard error."""
    problems: List[str] = []

    def check(label: str, got: object, want: object) -> None:
        if got != want:
            problems.append(f"{label}: vectorized {got!r} != scalar {want!r}")

    check("design", design_key(vectorized.design), design_key(reference.design))
    check("benchmark", vectorized.benchmark, reference.benchmark)
    check("energy_joules", vectorized.energy_joules, reference.energy_joules)
    if isinstance(reference, RoutingComparison):
        check("time_seconds", vectorized.time_seconds, reference.time_seconds)
        check("time_components", vectorized.time_components, reference.time_components)
        check(
            "energy_components", vectorized.energy_components, reference.energy_components
        )
        check("dimension", vectorized.dimension, reference.dimension)
    else:
        check(
            "timing.host_stage_time",
            vectorized.timing.host_stage_time,
            reference.timing.host_stage_time,
        )
        check(
            "timing.routing_stage_time",
            vectorized.timing.routing_stage_time,
            reference.timing.routing_stage_time,
        )
        check(
            "timing.num_batches",
            vectorized.timing.num_batches,
            reference.timing.num_batches,
        )
        check("timing.pipelined", vectorized.timing.pipelined, reference.timing.pipelined)
        check(
            "host_stage_seconds",
            vectorized.host_stage_seconds,
            reference.host_stage_seconds,
        )
        check(
            "routing_stage_seconds",
            vectorized.routing_stage_seconds,
            reference.routing_stage_seconds,
        )
    if problems:
        raise VectorizedMismatchError(
            f"vectorized sweep result diverged from the scalar path at {context}: "
            + "; ".join(problems)
            + " -- this is a bug in the vectorized backend; "
            "run with backend='scalar' to work around it"
        )
