"""Sharded, resumable sweep execution over a filesystem work queue.

Huge grids need two properties the in-process executors cannot give:

* **scale-out** -- N independent worker *processes* (same host or many, on a
  shared filesystem) chew through one grid without any shared runtime, and
* **resume** -- a killed sweep restarts and completes without redoing work.

Both come from one layout: a *workdir* holding a manifest plus two
directories of tiny files, with the filesystem as the only coordination
channel (the batch-job pattern of condor/slurm runners):

``workdir/``
    ``manifest.json``          the full job description: sweep spec, base
                               scenario, resolved benchmarks, shard size,
                               cache settings and a content digest.  Workers
                               read *only* this file; they never need the
                               merger process.
    ``leases/shard-NNNNN.lock``  an **atomic claim** (``O_CREAT | O_EXCL``)
                               naming the worker (pid + host).  At most one
                               worker can ever hold a shard; leases of dead
                               local processes are reclaimed, and leases of
                               *remote* workers whose heartbeat expired are
                               reclaimed too.
    ``done/shard-NNNNN.json``  the shard's published outcomes, written to a
                               temp file and ``os.replace``-d so readers only
                               ever see complete shards.
    ``heartbeats/<worker>.json``  touched periodically by every live worker;
                               a lease whose holder's heartbeat is older
                               than the TTL is provably abandoned even
                               across hosts (a worker with *no* heartbeat
                               file is honored -- never steal on silence).
    ``attempts/shard-NNNNN.json``  per-shard failure count, updated under
                               the shard's exclusive lease.
    ``failed/shard-NNNNN.json``  the poison-shard marker: a shard that
                               failed ``max_attempts`` times is retired so
                               the sweep completes with an explicit
                               partial-results report instead of hanging.

Shards are deterministic, contiguous slices of the row-major grid
(``spec.assignments()``), so any worker can recompute the whole partition
from the manifest alone.  Results additionally flow into the shared
content-addressed :class:`~repro.engine.diskcache.SimulationCache`, which
means a *resumed* sweep finishes from done-files and cache hits with zero
re-executed simulations -- and an unrelated ``repro compare`` benefits from a
sweep that already visited its scenario.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.api.scenario import Scenario
from repro.engine.diskcache import (
    CACHE_SCHEMA_VERSION,
    SimulationCache,
    canonical_digest,
    default_cache_dir,
)
from repro.faults import point as fault_point
from repro.faults.retry import with_retries
from repro.sweep.runner import (
    _NO_CACHE,
    BACKENDS,
    SweepCell,
    SweepPoint,
    SweepResult,
    SweepRunner,
    _execute_point,
)
from repro.sweep.spec import SweepSpec, _format_value
from repro.sweep.vectorized import VERIFY_MODES, evaluate_grid, vectorization_blocker

#: Version of the workdir layout; bumping it orphans old workdirs.
QUEUE_SCHEMA_VERSION = 1

#: Default grid points per shard -- small enough that a killed worker loses
#: little work, large enough that the vectorized backend sees whole planes.
DEFAULT_SHARD_SIZE = 256

#: Default executions a shard gets before it is retired as poisoned.
DEFAULT_MAX_ATTEMPTS = 3

#: Default age (seconds) after which a worker's heartbeat counts as expired
#: and its leases become reclaimable by other hosts.
DEFAULT_HEARTBEAT_TTL = 60.0


def _atomic_write_json(
    path: Path, payload: dict, fault: Optional[str] = None
) -> None:
    """Publish ``payload`` at ``path`` so readers never see partial JSON.

    Transient write errors are retried with deterministic backoff (each
    attempt rebuilds its own temp file, so a retry can never publish a torn
    predecessor).  ``fault`` names the registered fault point exercised
    between write and publish.
    """
    path.parent.mkdir(parents=True, exist_ok=True)

    def _publish() -> None:
        handle, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            if fault is not None:
                fault_point(fault, path=tmp_name)
            os.replace(tmp_name, str(path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    with_retries(_publish)


def shard_ranges(grid_size: int, shard_size: int) -> List[tuple]:
    """Deterministic ``(start, stop)`` partition of the row-major grid."""
    shard_size = max(1, int(shard_size))
    return [
        (start, min(start + shard_size, grid_size))
        for start in range(0, grid_size, shard_size)
    ]


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}"


def _queue_digest(manifest: dict) -> str:
    """Content digest identifying one queue job (spec + base + settings)."""
    return canonical_digest(
        {
            "schema": manifest["schema"],
            "sweep": manifest["sweep"],
            "base_scenario": manifest["base_scenario"],
            "benchmarks": manifest["benchmarks"],
            "shard_size": manifest["shard_size"],
            "kind_cache": [
                manifest["cache_dir"],
                manifest["use_cache"],
                manifest["cache_version"],
            ],
        }
    )


def load_manifest(workdir: Union[str, Path]) -> dict:
    """Read and validate a queue manifest."""
    path = Path(workdir) / "manifest.json"
    try:
        with open(path) as stream:
            manifest = json.load(stream)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no sweep manifest at {path}; run the sweep without --resume first"
        ) from None
    if manifest.get("schema") != QUEUE_SCHEMA_VERSION:
        raise ValueError(
            f"sweep workdir {workdir} uses queue schema "
            f"{manifest.get('schema')!r}, expected {QUEUE_SCHEMA_VERSION}"
        )
    return manifest


# ------------------------------------------------------------------- workers


class _ShardQueue:
    """One worker's view of the queue: claim, execute, publish."""

    def __init__(self, workdir: Path, manifest: dict, worker_id: str) -> None:
        self.workdir = workdir
        self.manifest = manifest
        self.worker_id = worker_id
        self.leases = workdir / "leases"
        self.done = workdir / "done"
        self.heartbeats = workdir / "heartbeats"
        self.failed = workdir / "failed"
        self.attempts = workdir / "attempts"
        for directory in (
            self.leases, self.done, self.heartbeats, self.failed, self.attempts
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.heartbeat_ttl = float(
            manifest.get("heartbeat_ttl", DEFAULT_HEARTBEAT_TTL)
        )
        self.spec = SweepSpec.from_dict(manifest["sweep"])
        self.base = Scenario.from_dict(manifest["base_scenario"])
        self.benchmarks: Optional[List[str]] = manifest["benchmarks"]
        self.assignments = self.spec.assignments()
        self.ranges = shard_ranges(len(self.assignments), manifest["shard_size"])
        #: shards whose done-file this worker already validated.
        self._done_valid: Set[int] = set()

    # ----------------------------------------------------------- lease files

    def done_path(self, shard: int) -> Path:
        return self.done / f"{_shard_name(shard)}.json"

    def lease_path(self, shard: int) -> Path:
        return self.leases / f"{_shard_name(shard)}.lock"

    def failed_path(self, shard: int) -> Path:
        return self.failed / f"{_shard_name(shard)}.json"

    def attempts_path(self, shard: int) -> Path:
        return self.attempts / f"{_shard_name(shard)}.json"

    def heartbeat_path(self, worker: str) -> Path:
        return self.heartbeats / f"{worker}.json"

    def beat(self) -> None:
        """Refresh this worker's heartbeat (best-effort: a worker that
        cannot heartbeat keeps working, it merely becomes reclaimable)."""
        path = self.heartbeat_path(self.worker_id)
        try:
            fault_point("queue.heartbeat.write", path=path)
            if path.exists():
                os.utime(path, None)
            else:
                _atomic_write_json(
                    path,
                    {
                        "worker": self.worker_id,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                    },
                )
        except OSError:
            pass

    def clear_heartbeat(self) -> None:
        """Drop this worker's heartbeat on clean exit."""
        try:
            os.unlink(str(self.heartbeat_path(self.worker_id)))
        except OSError:
            pass

    def try_claim(self, shard: int) -> bool:
        """Atomically claim one shard; reclaim provably abandoned leases."""
        for attempt in range(2):
            try:
                fault_point("queue.lease.claim", path=self.lease_path(shard))
                handle = os.open(
                    str(self.lease_path(shard)),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                if attempt == 0 and self._lease_is_stale(shard):
                    try:
                        os.unlink(str(self.lease_path(shard)))
                    except OSError:
                        return False
                    continue  # retry the claim once; another worker may race us
                return False
            except OSError:
                # Transient claim failure (permissions, I/O): skip the
                # shard; a later pass or another worker picks it up.
                return False
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(
                        {
                            "worker": self.worker_id,
                            "pid": os.getpid(),
                            "host": socket.gethostname(),
                        },
                        stream,
                    )
            except OSError:
                # A lease we cannot fill would read as corrupt (honored
                # forever until the heartbeat TTL); drop it instead.
                self.release(shard)
                return False
            return True
        return False

    def _lease_is_stale(self, shard: int) -> bool:
        """True when a lease's holder is provably gone.

        Two proofs are accepted: a *local* pid that no longer exists, or a
        holder (any host) whose heartbeat file is older than the TTL.
        Unreadable leases and holders without a heartbeat are honored --
        wrongly stealing a live worker's shard would double-execute it,
        while honoring a truly dead lease merely leaves one shard for
        ``--resume`` or the TTL to expire.
        """
        try:
            with open(self.lease_path(shard)) as stream:
                lease = json.load(stream)
            pid = int(lease["pid"])
            host = lease["host"]
            holder = str(lease.get("worker", ""))
        except (OSError, ValueError, KeyError, TypeError):
            return False  # mid-write or corrupt: treat as live
        if pid == os.getpid() and host == socket.gethostname():
            return False
        if host == socket.gethostname():
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except PermissionError:
                pass  # pid exists but is not ours; fall back to the heartbeat
            else:
                return False  # provably alive locally: never steal
        return self._heartbeat_expired(holder)

    def _heartbeat_expired(self, worker: str) -> bool:
        """True when ``worker``'s heartbeat exists and is older than the TTL."""
        if not worker:
            return False
        try:
            mtime = os.stat(self.heartbeat_path(worker)).st_mtime
        except OSError:
            return False  # no heartbeat: stay conservative, honor the lease
        age = time.time() - mtime  # repro: allow(RPR-D001) -- lease-liveness ages are coordination metadata, never report data
        return age > self.heartbeat_ttl

    def release(self, shard: int) -> None:
        try:
            os.unlink(str(self.lease_path(shard)))
        except OSError:
            pass

    # -------------------------------------------------- poison-shard records

    def attempt_count(self, shard: int) -> int:
        """Failed executions recorded so far for one shard."""
        try:
            with open(self.attempts_path(shard)) as stream:
                return int(json.load(stream).get("attempts", 0))
        except (OSError, ValueError, TypeError, AttributeError):
            return 0

    def record_attempt(self, shard: int, error: BaseException) -> int:
        """Persist one failed execution (caller holds the lease); new total."""
        attempts = self.attempt_count(shard) + 1
        _atomic_write_json(
            self.attempts_path(shard),
            {
                "shard": shard,
                "attempts": attempts,
                "error": _describe_error(error),
                "worker": self.worker_id,
            },
        )
        return attempts

    def mark_failed(self, shard: int, error: BaseException, attempts: int) -> None:
        """Retire a poison shard so the sweep completes without it."""
        start, stop = self.ranges[shard]
        _atomic_write_json(
            self.failed_path(shard),
            {
                "schema": QUEUE_SCHEMA_VERSION,
                "shard": shard,
                "start": start,
                "stop": stop,
                "worker": self.worker_id,
                "attempts": attempts,
                "error": _describe_error(error),
            },
        )

    def settled(self, shard: int) -> bool:
        """True when a shard needs no more work (valid done-file, or failed).

        A done-file that exists but does not parse (real corruption -- the
        publish itself is atomic) is dropped so the shard re-executes.
        """
        if shard in self._done_valid:
            return True
        if self.failed_path(shard).exists():
            return True
        payload = _load_done(self.done_path(shard))
        if payload is None:
            return False
        self._done_valid.add(shard)
        return True

    # ------------------------------------------------------------- execution

    def execute(self, shard: int, backend: str, verify: str) -> dict:
        """Evaluate one shard's grid slice and publish its done-file."""
        fault_point("queue.shard.execute")
        start, stop = self.ranges[shard]
        chunk = self.assignments[start:stop]
        manifest = self.manifest
        use_cache = manifest["use_cache"]
        blocker = vectorization_blocker(self.spec, self.base)
        if backend == "vectorized" and blocker is not None:
            raise ValueError(f"sweep cannot be vectorized: {blocker}")
        if backend != "scalar" and blocker is None:
            cache = (
                SimulationCache(
                    manifest["cache_dir"], version=manifest["cache_version"]
                )
                if use_cache
                else None
            )
            outcomes = evaluate_grid(
                self.spec,
                self.base,
                self.benchmarks,
                assignments=chunk,
                cache=cache,
                verify=verify,
            )
        else:
            outcomes = []
            for assignment in chunk:
                variant = self.spec.scenario_for(self.base, assignment)
                outcomes.append(
                    _execute_point(
                        {
                            "scenario": variant.to_dict(),
                            "benchmarks": self.benchmarks,
                            "designs": list(self.spec.designs),
                            "kind": self.spec.kind,
                            "cache_dir": (
                                manifest["cache_dir"] if use_cache else _NO_CACHE
                            ),
                            "cache_version": manifest["cache_version"],
                        }
                    )
                )
        payload = {
            "schema": QUEUE_SCHEMA_VERSION,
            "shard": shard,
            "start": start,
            "stop": stop,
            "worker": self.worker_id,
            "outcomes": outcomes,
        }
        _atomic_write_json(self.done_path(shard), payload, fault="queue.done.publish")
        return payload


def _describe_error(error: BaseException) -> str:
    """One-line, JSON-safe description of a shard failure."""
    return f"{type(error).__name__}: {error}"


def _load_done(path: Path) -> Optional[dict]:
    """A published done-file's payload, or ``None`` (missing or corrupt).

    Done-files are published atomically, so a file that exists but does not
    parse -- or parses to the wrong shape -- is genuine corruption (or an
    injected torn write).  It is unlinked so the shard simply re-executes;
    shard results are re-creatable and the simulation cache makes the redo
    nearly free.
    """
    try:
        with open(path) as stream:
            payload = json.load(stream)
        if not isinstance(payload, dict) or not isinstance(
            payload.get("outcomes"), list
        ):
            raise ValueError("done-file payload shape mismatch")
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        try:
            os.unlink(str(path))
        except OSError:
            pass
        return None
    return payload


def run_worker(
    workdir: Union[str, Path],
    worker_id: Optional[str] = None,
    *,
    max_shards: Optional[int] = None,
    backend: str = "auto",
    verify: str = "sample",
    max_attempts: Optional[int] = None,
) -> dict:
    """Drain the queue at ``workdir``: claim shards until none remain.

    Workers need nothing but the workdir path -- launch any number of
    ``repro sweep --workers``/:func:`run_worker` processes against the same
    directory (including from other hosts sharing the filesystem) and they
    partition the grid among themselves through lease files alone.

    While draining, a background thread refreshes the worker's heartbeat
    file so that, should this process die (any host, any signal), its
    leases become reclaimable once the heartbeat TTL expires.  A shard
    whose execution raises is released and retried; after ``max_attempts``
    recorded failures it is retired as *failed* (poison-shard accounting)
    so the queue always drains.

    Args:
        workdir: queue directory holding ``manifest.json``.
        worker_id: label recorded in leases/done-files (host-pid by default).
        max_shards: stop after executing this many shards (simulates a
            mid-flight kill in tests; ``None`` drains the queue).
        backend: one of :data:`BACKENDS`.
        verify: vectorized equivalence-gate mode (:data:`VERIFY_MODES`).
        max_attempts: executions a shard gets before it is retired
            (``None``: the manifest's value, or :data:`DEFAULT_MAX_ATTEMPTS`).

    Returns:
        A report dict: ``worker_id``, ``shards_executed``, ``simulations``,
        ``disk_hits``, ``disk_misses``, ``shard_failures``.
    """
    workdir = Path(workdir)
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}")
    manifest = load_manifest(workdir)
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    if max_attempts is None:
        max_attempts = int(manifest.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
    max_attempts = max(1, int(max_attempts))
    queue = _ShardQueue(workdir, manifest, worker_id)
    if backend == "vectorized":
        # A config error would fail every shard identically; fail fast
        # instead of burning the whole grid's attempt budget on it.
        blocker = vectorization_blocker(queue.spec, queue.base)
        if blocker is not None:
            raise ValueError(f"sweep cannot be vectorized: {blocker}")
    report = {
        "worker_id": worker_id,
        "shards_executed": 0,
        "simulations": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "shard_failures": 0,
    }
    queue.beat()
    stop_beating = threading.Event()
    interval = max(0.05, queue.heartbeat_ttl / 5.0)
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(queue, stop_beating, interval),
        name=f"repro-heartbeat-{worker_id}",
        daemon=True,
    )
    beater.start()
    try:
        while True:
            claimed_this_pass = 0
            for shard in range(len(queue.ranges)):
                if max_shards is not None and report["shards_executed"] >= max_shards:
                    return report
                if queue.settled(shard):
                    continue
                if not queue.try_claim(shard):
                    continue  # done or leased by a live worker
                claimed_this_pass += 1
                try:
                    # Re-check under the lease: another worker may have
                    # settled the shard between our check and the claim.
                    if queue.settled(shard):
                        continue
                    try:
                        payload = queue.execute(shard, backend, verify)
                    except Exception as error:  # repro: allow(RPR-H001) -- a poison shard must not kill the worker; the failure is recorded, bounded by max_attempts, and surfaced in the partial-results report
                        report["shard_failures"] += 1
                        attempts = queue.record_attempt(shard, error)
                        if attempts >= max_attempts:
                            queue.mark_failed(shard, error, attempts)
                        continue
                    report["shards_executed"] += 1
                    for outcome in payload["outcomes"]:
                        report["simulations"] += outcome["simulations"]
                        report["disk_hits"] += outcome["disk_hits"]
                        report["disk_misses"] += outcome["disk_misses"]
                finally:
                    queue.release(shard)
            pending = [
                shard
                for shard in range(len(queue.ranges))
                if not queue.settled(shard)
            ]
            if not pending:
                return report
            if claimed_this_pass == 0:
                # Everything left is leased by live workers; let them finish.
                # The merger re-checks completeness (and reclaims stale leases).
                return report
            time.sleep(0)  # yield between passes when sharing a host
    finally:
        stop_beating.set()
        beater.join(timeout=1.0)
        queue.clear_heartbeat()


def _heartbeat_loop(
    queue: _ShardQueue, stop: threading.Event, interval: float
) -> None:
    """Refresh the worker heartbeat until told to stop."""
    while not stop.wait(interval):
        queue.beat()


def _worker_entry(payload: dict) -> dict:
    """Picklable pool entry point for :func:`run_worker`."""
    return run_worker(
        payload["workdir"],
        payload["worker_id"],
        max_shards=payload["max_shards"],
        backend=payload["backend"],
        verify=payload["verify"],
        max_attempts=payload.get("max_attempts"),
    )


# -------------------------------------------------------------------- merger


def queue_workdir(
    spec: SweepSpec,
    base: Scenario,
    benchmarks: Optional[List[str]],
    *,
    shard_size: int,
    cache_dir: Optional[str],
    use_cache: bool,
    cache_version: int,
) -> Path:
    """The default content-addressed workdir of one queue job.

    Same spec + base + settings → same directory, which is what makes a bare
    ``repro sweep --resume`` (no explicit workdir) find its predecessor.
    """
    manifest = _build_manifest(
        spec,
        base,
        benchmarks,
        shard_size=shard_size,
        cache_dir=cache_dir,
        use_cache=use_cache,
        cache_version=cache_version,
    )
    root = Path(cache_dir) if cache_dir is not None else Path(default_cache_dir())
    return root / "sweeps" / manifest["digest"][:16]


def _build_manifest(
    spec: SweepSpec,
    base: Scenario,
    benchmarks: Optional[List[str]],
    *,
    shard_size: int,
    cache_dir: Optional[str],
    use_cache: bool,
    cache_version: int,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
) -> dict:
    manifest = {
        "schema": QUEUE_SCHEMA_VERSION,
        "sweep": spec.to_dict(),
        "base_scenario": base.to_dict(),
        "benchmarks": benchmarks,
        "shard_size": max(1, int(shard_size)),
        "grid_size": spec.grid_size(),
        "cache_dir": cache_dir,
        "use_cache": bool(use_cache),
        "cache_version": int(cache_version),
        # Robustness knobs: deliberately excluded from the digest, so the
        # same sweep resumes into the same workdir whatever they are set to.
        "max_attempts": max(1, int(max_attempts)),
        "heartbeat_ttl": float(heartbeat_ttl),
    }
    manifest["num_shards"] = len(shard_ranges(manifest["grid_size"], shard_size))
    manifest["digest"] = _queue_digest(manifest)
    return manifest


def run_queued_sweep(
    spec: Union[SweepSpec, str],
    base: Optional[Scenario] = None,
    *,
    workers: int = 1,
    resume: bool = False,
    shard_size: Optional[int] = None,
    workdir: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    cache_version: int = CACHE_SCHEMA_VERSION,
    backend: str = "auto",
    verify: str = "sample",
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
) -> SweepResult:
    """Execute a sweep through the sharded work queue and merge the result.

    Creates (or, with ``resume=True``, re-opens) the workdir, drives
    ``workers`` worker processes against it (degrading to threads where the
    platform lacks process pools), runs one final in-process drain to pick up
    shards orphaned by killed workers, then merges every done-file into a
    :class:`~repro.sweep.runner.SweepResult`.

    A shard that keeps raising is retired after ``max_attempts`` recorded
    failures and reported in the result's ``failed_shards`` (an explicit
    partial-results section) instead of hanging the sweep; ``resume=True``
    clears previous failed/attempt records so cleared faults get a fresh
    budget.  ``heartbeat_ttl`` bounds how long a worker killed on another
    host can strand its leases.

    The result's statistics count **this run only**: a resumed sweep whose
    shards were all published before reports zero executed simulations.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}")
    start_time = time.perf_counter()
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else max(1, int(shard_size))
    # SweepRunner owns spec loading and benchmark canonicalization.
    runner = SweepRunner(
        spec,
        base,
        jobs=max(1, int(workers)),
        cache_dir=cache_dir,
        use_cache=use_cache,
        cache_version=cache_version,
    )
    spec, base = runner.spec, runner.base
    workers = max(1, int(workers))
    manifest = _build_manifest(
        spec,
        base,
        runner.benchmarks,
        shard_size=shard_size,
        cache_dir=runner.cache_dir,
        use_cache=runner.use_cache,
        cache_version=runner.cache_version,
        max_attempts=max_attempts,
        heartbeat_ttl=heartbeat_ttl,
    )
    if workdir is None:
        workdir = queue_workdir(
            spec,
            base,
            runner.benchmarks,
            shard_size=shard_size,
            cache_dir=runner.cache_dir,
            use_cache=runner.use_cache,
            cache_version=runner.cache_version,
        )
    workdir = Path(workdir)
    manifest_path = workdir / "manifest.json"
    if manifest_path.exists():
        existing = load_manifest(workdir)
        if existing["digest"] != manifest["digest"]:
            if resume:
                raise ValueError(
                    f"cannot resume: workdir {workdir} belongs to a different "
                    f"sweep (digest {existing['digest'][:16]} != "
                    f"{manifest['digest'][:16]})"
                )
            _clear_queue_state(workdir)
        elif not resume:
            _clear_queue_state(workdir)
        else:
            # Resume: keep done-files, but give previously failed shards a
            # fresh attempt budget -- the operator presumably cleared the
            # fault before retrying.
            _clear_queue_state(workdir, only=("failed", "attempts"))
    # (Re)publish the manifest: same digest, but the robustness knobs
    # (max_attempts, heartbeat_ttl) track the latest invocation.
    _atomic_write_json(manifest_path, manifest)
    (workdir / "leases").mkdir(parents=True, exist_ok=True)
    (workdir / "done").mkdir(parents=True, exist_ok=True)

    payloads = [
        {
            "workdir": str(workdir),
            "worker_id": f"worker-{index}",
            "max_shards": None,
            "backend": backend,
            "verify": verify,
            "max_attempts": manifest["max_attempts"],
        }
        for index in range(workers)
    ]
    reports, mode = _run_workers(payloads)
    # Final in-process drain: reclaims stale leases of killed workers and
    # executes anything still missing, so the merge below cannot starve.
    reports.append(
        run_worker(
            workdir,
            "merger",
            backend=backend,
            verify=verify,
            max_attempts=manifest["max_attempts"],
        )
    )

    result = _merge(workdir, spec, base, manifest)
    result.executor_used = f"queue-{mode}"
    result.jobs = workers
    for report in reports:
        result.simulations_executed += report["simulations"]
        result.cache.hits += report["disk_hits"]
        result.cache.misses += report["disk_misses"]
    result.elapsed_seconds = time.perf_counter() - start_time
    return result


def _clear_queue_state(
    workdir: Path,
    only: Optional[tuple] = None,
) -> None:
    """Drop queue coordination files (fresh run), or just the ``only`` dirs."""
    for child in ("leases", "done", "heartbeats", "failed", "attempts"):
        if only is not None and child not in only:
            continue
        directory = workdir / child
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            try:
                entry.unlink()
            except OSError:
                pass


def _run_workers(payloads: List[dict]):
    """Run worker entries over a process pool, degrading like the runner."""
    if len(payloads) <= 1:
        return [_worker_entry(payload) for payload in payloads], "serial"
    try:
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            return list(pool.map(_worker_entry, payloads)), "process"
    except (OSError, NotImplementedError):
        with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
            return list(pool.map(_worker_entry, payloads)), "thread"


def _merge(workdir: Path, spec: SweepSpec, base: Scenario, manifest: dict) -> SweepResult:
    """Assemble every done-file into an ordered :class:`SweepResult`.

    Shards retired as *failed* (poison shards) contribute no points; they
    are collected into the result's ``failed_shards`` so the report states
    exactly which grid slices are missing and why.  A shard that is
    neither done nor failed still raises -- that sweep genuinely did not
    finish and ``--resume`` will.
    """
    assignments = spec.assignments()
    ranges = shard_ranges(len(assignments), manifest["shard_size"])
    outcomes: List[Optional[dict]] = [None] * len(assignments)
    failed: List[dict] = []
    for shard, (start, stop) in enumerate(ranges):
        payload = _load_done(workdir / "done" / f"{_shard_name(shard)}.json")
        if payload is None:
            failure = _load_failed(workdir / "failed" / f"{_shard_name(shard)}.json")
            if failure is not None:
                failed.append(failure)
                continue
            raise RuntimeError(
                f"sweep incomplete: shard {shard} ({start}:{stop}) has no "
                f"published result in {workdir}; re-run with --resume"
            )
        for offset, outcome in enumerate(payload["outcomes"]):
            outcomes[start + offset] = outcome
    points: List[SweepPoint] = []
    for index, (assignment, outcome) in enumerate(zip(assignments, outcomes)):
        if outcome is None:
            continue  # a failed shard's slice: reported, not fabricated
        label = ",".join(
            f"{key}={_format_value(value)}" for key, value in assignment.items()
        )
        point = SweepPoint(
            index=index,
            assignment=assignment,
            scenario_name=f"{base.name}+{label}",
            cells=[SweepCell(**cell) for cell in outcome["cells"]],
        )
        points.append(point)
    return SweepResult(spec=spec, base=base, points=points, failed_shards=failed)


def _load_failed(path: Path) -> Optional[dict]:
    """A failed-shard marker's payload, or ``None`` (missing/unreadable)."""
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "shard" not in payload:
        return None
    return payload
