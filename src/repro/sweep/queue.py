"""Sharded, resumable sweep execution over a filesystem work queue.

Huge grids need two properties the in-process executors cannot give:

* **scale-out** -- N independent worker *processes* (same host or many, on a
  shared filesystem) chew through one grid without any shared runtime, and
* **resume** -- a killed sweep restarts and completes without redoing work.

Both come from one layout: a *workdir* holding a manifest plus two
directories of tiny files, with the filesystem as the only coordination
channel (the batch-job pattern of condor/slurm runners):

``workdir/``
    ``manifest.json``          the full job description: sweep spec, base
                               scenario, resolved benchmarks, shard size,
                               cache settings and a content digest.  Workers
                               read *only* this file; they never need the
                               merger process.
    ``leases/shard-NNNNN.lock``  an **atomic claim** (``O_CREAT | O_EXCL``)
                               naming the worker (pid + host).  At most one
                               worker can ever hold a shard; leases of dead
                               local processes are reclaimed.
    ``done/shard-NNNNN.json``  the shard's published outcomes, written to a
                               temp file and ``os.replace``-d so readers only
                               ever see complete shards.

Shards are deterministic, contiguous slices of the row-major grid
(``spec.assignments()``), so any worker can recompute the whole partition
from the manifest alone.  Results additionally flow into the shared
content-addressed :class:`~repro.engine.diskcache.SimulationCache`, which
means a *resumed* sweep finishes from done-files and cache hits with zero
re-executed simulations -- and an unrelated ``repro compare`` benefits from a
sweep that already visited its scenario.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api.scenario import Scenario
from repro.engine.diskcache import (
    CACHE_SCHEMA_VERSION,
    SimulationCache,
    canonical_digest,
    default_cache_dir,
)
from repro.sweep.runner import (
    _NO_CACHE,
    BACKENDS,
    SweepCell,
    SweepPoint,
    SweepResult,
    SweepRunner,
    _execute_point,
)
from repro.sweep.spec import SweepSpec, _format_value
from repro.sweep.vectorized import VERIFY_MODES, evaluate_grid, vectorization_blocker

#: Version of the workdir layout; bumping it orphans old workdirs.
QUEUE_SCHEMA_VERSION = 1

#: Default grid points per shard -- small enough that a killed worker loses
#: little work, large enough that the vectorized backend sees whole planes.
DEFAULT_SHARD_SIZE = 256


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Publish ``payload`` at ``path`` so readers never see partial JSON."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def shard_ranges(grid_size: int, shard_size: int) -> List[tuple]:
    """Deterministic ``(start, stop)`` partition of the row-major grid."""
    shard_size = max(1, int(shard_size))
    return [
        (start, min(start + shard_size, grid_size))
        for start in range(0, grid_size, shard_size)
    ]


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}"


def _queue_digest(manifest: dict) -> str:
    """Content digest identifying one queue job (spec + base + settings)."""
    return canonical_digest(
        {
            "schema": manifest["schema"],
            "sweep": manifest["sweep"],
            "base_scenario": manifest["base_scenario"],
            "benchmarks": manifest["benchmarks"],
            "shard_size": manifest["shard_size"],
            "kind_cache": [
                manifest["cache_dir"],
                manifest["use_cache"],
                manifest["cache_version"],
            ],
        }
    )


def load_manifest(workdir: Union[str, Path]) -> dict:
    """Read and validate a queue manifest."""
    path = Path(workdir) / "manifest.json"
    try:
        with open(path) as stream:
            manifest = json.load(stream)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no sweep manifest at {path}; run the sweep without --resume first"
        ) from None
    if manifest.get("schema") != QUEUE_SCHEMA_VERSION:
        raise ValueError(
            f"sweep workdir {workdir} uses queue schema "
            f"{manifest.get('schema')!r}, expected {QUEUE_SCHEMA_VERSION}"
        )
    return manifest


# ------------------------------------------------------------------- workers


class _ShardQueue:
    """One worker's view of the queue: claim, execute, publish."""

    def __init__(self, workdir: Path, manifest: dict, worker_id: str) -> None:
        self.workdir = workdir
        self.manifest = manifest
        self.worker_id = worker_id
        self.leases = workdir / "leases"
        self.done = workdir / "done"
        self.leases.mkdir(parents=True, exist_ok=True)
        self.done.mkdir(parents=True, exist_ok=True)
        self.spec = SweepSpec.from_dict(manifest["sweep"])
        self.base = Scenario.from_dict(manifest["base_scenario"])
        self.benchmarks: Optional[List[str]] = manifest["benchmarks"]
        self.assignments = self.spec.assignments()
        self.ranges = shard_ranges(len(self.assignments), manifest["shard_size"])

    # ----------------------------------------------------------- lease files

    def done_path(self, shard: int) -> Path:
        return self.done / f"{_shard_name(shard)}.json"

    def lease_path(self, shard: int) -> Path:
        return self.leases / f"{_shard_name(shard)}.lock"

    def try_claim(self, shard: int) -> bool:
        """Atomically claim one shard; reclaim a dead local worker's lease."""
        for attempt in range(2):
            try:
                handle = os.open(
                    str(self.lease_path(shard)),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                if attempt == 0 and self._lease_is_stale(shard):
                    try:
                        os.unlink(str(self.lease_path(shard)))
                    except OSError:
                        return False
                    continue  # retry the claim once; another worker may race us
                return False
            with os.fdopen(handle, "w") as stream:
                json.dump(
                    {
                        "worker": self.worker_id,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                    },
                    stream,
                )
            return True
        return False

    def _lease_is_stale(self, shard: int) -> bool:
        """A lease is stale only for a provably dead *local* process.

        Remote holders and unreadable leases are honored: wrongly stealing a
        live worker's shard would double-execute it, while honoring a truly
        dead remote lease merely leaves one shard for ``--resume``.
        """
        try:
            with open(self.lease_path(shard)) as stream:
                lease = json.load(stream)
            pid = int(lease["pid"])
            host = lease["host"]
        except (OSError, ValueError, KeyError, TypeError):
            return False  # mid-write or corrupt: treat as live
        if host != socket.gethostname() or pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # exists, owned by someone else
        return False

    def release(self, shard: int) -> None:
        try:
            os.unlink(str(self.lease_path(shard)))
        except OSError:
            pass

    # ------------------------------------------------------------- execution

    def execute(self, shard: int, backend: str, verify: str) -> dict:
        """Evaluate one shard's grid slice and publish its done-file."""
        start, stop = self.ranges[shard]
        chunk = self.assignments[start:stop]
        manifest = self.manifest
        use_cache = manifest["use_cache"]
        blocker = vectorization_blocker(self.spec, self.base)
        if backend == "vectorized" and blocker is not None:
            raise ValueError(f"sweep cannot be vectorized: {blocker}")
        if backend != "scalar" and blocker is None:
            cache = (
                SimulationCache(
                    manifest["cache_dir"], version=manifest["cache_version"]
                )
                if use_cache
                else None
            )
            outcomes = evaluate_grid(
                self.spec,
                self.base,
                self.benchmarks,
                assignments=chunk,
                cache=cache,
                verify=verify,
            )
        else:
            outcomes = []
            for assignment in chunk:
                variant = self.spec.scenario_for(self.base, assignment)
                outcomes.append(
                    _execute_point(
                        {
                            "scenario": variant.to_dict(),
                            "benchmarks": self.benchmarks,
                            "designs": list(self.spec.designs),
                            "kind": self.spec.kind,
                            "cache_dir": (
                                manifest["cache_dir"] if use_cache else _NO_CACHE
                            ),
                            "cache_version": manifest["cache_version"],
                        }
                    )
                )
        payload = {
            "schema": QUEUE_SCHEMA_VERSION,
            "shard": shard,
            "start": start,
            "stop": stop,
            "worker": self.worker_id,
            "outcomes": outcomes,
        }
        _atomic_write_json(self.done_path(shard), payload)
        return payload


def run_worker(
    workdir: Union[str, Path],
    worker_id: Optional[str] = None,
    *,
    max_shards: Optional[int] = None,
    backend: str = "auto",
    verify: str = "sample",
) -> dict:
    """Drain the queue at ``workdir``: claim shards until none remain.

    Workers need nothing but the workdir path -- launch any number of
    ``repro sweep --workers``/:func:`run_worker` processes against the same
    directory (including from other hosts sharing the filesystem) and they
    partition the grid among themselves through lease files alone.

    Args:
        workdir: queue directory holding ``manifest.json``.
        worker_id: label recorded in leases/done-files (host-pid by default).
        max_shards: stop after executing this many shards (simulates a
            mid-flight kill in tests; ``None`` drains the queue).
        backend: one of :data:`BACKENDS`.
        verify: vectorized equivalence-gate mode (:data:`VERIFY_MODES`).

    Returns:
        A report dict: ``worker_id``, ``shards_executed``, ``simulations``,
        ``disk_hits``, ``disk_misses``.
    """
    workdir = Path(workdir)
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}")
    manifest = load_manifest(workdir)
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    queue = _ShardQueue(workdir, manifest, worker_id)
    report = {
        "worker_id": worker_id,
        "shards_executed": 0,
        "simulations": 0,
        "disk_hits": 0,
        "disk_misses": 0,
    }
    while True:
        claimed_this_pass = 0
        for shard in range(len(queue.ranges)):
            if max_shards is not None and report["shards_executed"] >= max_shards:
                return report
            if queue.done_path(shard).exists():
                continue
            if not queue.try_claim(shard):
                continue  # done or leased by a live worker
            claimed_this_pass += 1
            try:
                # Re-check under the lease: another worker may have finished
                # the shard between our existence check and the claim.
                if not queue.done_path(shard).exists():
                    payload = queue.execute(shard, backend, verify)
                    report["shards_executed"] += 1
                    for outcome in payload["outcomes"]:
                        report["simulations"] += outcome["simulations"]
                        report["disk_hits"] += outcome["disk_hits"]
                        report["disk_misses"] += outcome["disk_misses"]
            finally:
                queue.release(shard)
        pending = [
            shard
            for shard in range(len(queue.ranges))
            if not queue.done_path(shard).exists()
        ]
        if not pending:
            return report
        if claimed_this_pass == 0:
            # Everything left is leased by live workers; let them finish.
            # The merger re-checks completeness (and reclaims stale leases).
            return report
        time.sleep(0)  # yield between passes when sharing a host


def _worker_entry(payload: dict) -> dict:
    """Picklable pool entry point for :func:`run_worker`."""
    return run_worker(
        payload["workdir"],
        payload["worker_id"],
        max_shards=payload["max_shards"],
        backend=payload["backend"],
        verify=payload["verify"],
    )


# -------------------------------------------------------------------- merger


def queue_workdir(
    spec: SweepSpec,
    base: Scenario,
    benchmarks: Optional[List[str]],
    *,
    shard_size: int,
    cache_dir: Optional[str],
    use_cache: bool,
    cache_version: int,
) -> Path:
    """The default content-addressed workdir of one queue job.

    Same spec + base + settings → same directory, which is what makes a bare
    ``repro sweep --resume`` (no explicit workdir) find its predecessor.
    """
    manifest = _build_manifest(
        spec,
        base,
        benchmarks,
        shard_size=shard_size,
        cache_dir=cache_dir,
        use_cache=use_cache,
        cache_version=cache_version,
    )
    root = Path(cache_dir) if cache_dir is not None else Path(default_cache_dir())
    return root / "sweeps" / manifest["digest"][:16]


def _build_manifest(
    spec: SweepSpec,
    base: Scenario,
    benchmarks: Optional[List[str]],
    *,
    shard_size: int,
    cache_dir: Optional[str],
    use_cache: bool,
    cache_version: int,
) -> dict:
    manifest = {
        "schema": QUEUE_SCHEMA_VERSION,
        "sweep": spec.to_dict(),
        "base_scenario": base.to_dict(),
        "benchmarks": benchmarks,
        "shard_size": max(1, int(shard_size)),
        "grid_size": spec.grid_size(),
        "cache_dir": cache_dir,
        "use_cache": bool(use_cache),
        "cache_version": int(cache_version),
    }
    manifest["num_shards"] = len(shard_ranges(manifest["grid_size"], shard_size))
    manifest["digest"] = _queue_digest(manifest)
    return manifest


def run_queued_sweep(
    spec: Union[SweepSpec, str],
    base: Optional[Scenario] = None,
    *,
    workers: int = 1,
    resume: bool = False,
    shard_size: Optional[int] = None,
    workdir: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    cache_version: int = CACHE_SCHEMA_VERSION,
    backend: str = "auto",
    verify: str = "sample",
) -> SweepResult:
    """Execute a sweep through the sharded work queue and merge the result.

    Creates (or, with ``resume=True``, re-opens) the workdir, drives
    ``workers`` worker processes against it (degrading to threads where the
    platform lacks process pools), runs one final in-process drain to pick up
    shards orphaned by killed workers, then merges every done-file into a
    :class:`~repro.sweep.runner.SweepResult`.

    The result's statistics count **this run only**: a resumed sweep whose
    shards were all published before reports zero executed simulations.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; choose from {list(VERIFY_MODES)}")
    start_time = time.perf_counter()
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else max(1, int(shard_size))
    # SweepRunner owns spec loading and benchmark canonicalization.
    runner = SweepRunner(
        spec,
        base,
        jobs=max(1, int(workers)),
        cache_dir=cache_dir,
        use_cache=use_cache,
        cache_version=cache_version,
    )
    spec, base = runner.spec, runner.base
    workers = max(1, int(workers))
    manifest = _build_manifest(
        spec,
        base,
        runner.benchmarks,
        shard_size=shard_size,
        cache_dir=runner.cache_dir,
        use_cache=runner.use_cache,
        cache_version=runner.cache_version,
    )
    if workdir is None:
        workdir = queue_workdir(
            spec,
            base,
            runner.benchmarks,
            shard_size=shard_size,
            cache_dir=runner.cache_dir,
            use_cache=runner.use_cache,
            cache_version=runner.cache_version,
        )
    workdir = Path(workdir)
    manifest_path = workdir / "manifest.json"
    if manifest_path.exists():
        existing = load_manifest(workdir)
        if existing["digest"] != manifest["digest"]:
            if resume:
                raise ValueError(
                    f"cannot resume: workdir {workdir} belongs to a different "
                    f"sweep (digest {existing['digest'][:16]} != "
                    f"{manifest['digest'][:16]})"
                )
            _clear_queue_state(workdir)
            _atomic_write_json(manifest_path, manifest)
        elif not resume:
            _clear_queue_state(workdir)
    else:
        _atomic_write_json(manifest_path, manifest)
    (workdir / "leases").mkdir(parents=True, exist_ok=True)
    (workdir / "done").mkdir(parents=True, exist_ok=True)

    payloads = [
        {
            "workdir": str(workdir),
            "worker_id": f"worker-{index}",
            "max_shards": None,
            "backend": backend,
            "verify": verify,
        }
        for index in range(workers)
    ]
    reports, mode = _run_workers(payloads)
    # Final in-process drain: reclaims stale leases of killed workers and
    # executes anything still missing, so the merge below cannot starve.
    reports.append(
        run_worker(workdir, "merger", backend=backend, verify=verify)
    )

    result = _merge(workdir, spec, base, manifest)
    result.executor_used = f"queue-{mode}"
    result.jobs = workers
    for report in reports:
        result.simulations_executed += report["simulations"]
        result.cache.hits += report["disk_hits"]
        result.cache.misses += report["disk_misses"]
    result.elapsed_seconds = time.perf_counter() - start_time
    return result


def _clear_queue_state(workdir: Path) -> None:
    """Drop leases and done-files (fresh, non-resume run)."""
    for child in ("leases", "done"):
        directory = workdir / child
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            try:
                entry.unlink()
            except OSError:
                pass


def _run_workers(payloads: List[dict]):
    """Run worker entries over a process pool, degrading like the runner."""
    if len(payloads) <= 1:
        return [_worker_entry(payload) for payload in payloads], "serial"
    try:
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            return list(pool.map(_worker_entry, payloads)), "process"
    except (OSError, NotImplementedError):
        with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
            return list(pool.map(_worker_entry, payloads)), "thread"


def _merge(workdir: Path, spec: SweepSpec, base: Scenario, manifest: dict) -> SweepResult:
    """Assemble every done-file into an ordered :class:`SweepResult`."""
    assignments = spec.assignments()
    ranges = shard_ranges(len(assignments), manifest["shard_size"])
    outcomes: List[Optional[dict]] = [None] * len(assignments)
    for shard, (start, stop) in enumerate(ranges):
        path = workdir / "done" / f"{_shard_name(shard)}.json"
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            raise RuntimeError(
                f"sweep incomplete: shard {shard} ({start}:{stop}) has no "
                f"published result in {workdir}; re-run with --resume"
            ) from None
        for offset, outcome in enumerate(payload["outcomes"]):
            outcomes[start + offset] = outcome
    points: List[SweepPoint] = []
    for index, (assignment, outcome) in enumerate(zip(assignments, outcomes)):
        label = ",".join(
            f"{key}={_format_value(value)}" for key, value in assignment.items()
        )
        point = SweepPoint(
            index=index,
            assignment=assignment,
            scenario_name=f"{base.name}+{label}",
            cells=[SweepCell(**cell) for cell in outcome["cells"]],
        )
        points.append(point)
    return SweepResult(spec=spec, base=base, points=points)
