"""Structured errors of the serve layer.

Every error a handler raises intentionally is a :class:`ServeError`: it
carries the HTTP status, a stable machine-readable ``code`` and a
human-readable message, and renders as the JSON body every non-2xx response
uses::

    {"error": {"code": "unknown_experiment", "status": 400,
               "message": "unknown experiment name(s) ..."}}

Anything else a handler raises is a bug; the app layer logs it server-side
and answers with an opaque ``internal`` 500 -- stack traces never reach a
client.
"""

from __future__ import annotations

from typing import Optional


class ServeError(Exception):
    """Base class of every intentional (structured) service error."""

    #: Default HTTP status of this error class.
    status = 400
    #: Default machine-readable error code of this error class.
    code = "bad_request"

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        code: Optional[str] = None,
        details: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.message = str(message)
        if status is not None:
            self.status = int(status)
        if code is not None:
            self.code = str(code)
        self.details = details

    def to_dict(self) -> dict:
        """The structured JSON error body."""
        error = {
            "code": self.code,
            "status": self.status,
            "message": self.message,
        }
        if self.details:
            error["details"] = self.details
        return {"error": error}


class BadRequest(ServeError):
    """Malformed or invalid request content (400)."""

    status = 400
    code = "bad_request"


class NotFound(ServeError):
    """Unknown endpoint path (404)."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ServeError):
    """Known path, wrong HTTP method (405)."""

    status = 405
    code = "method_not_allowed"


class PayloadTooLarge(ServeError):
    """Request body over the configured limit (413)."""

    status = 413
    code = "payload_too_large"


class Draining(ServeError):
    """Server is shutting down and no longer admits work (503)."""

    status = 503
    code = "draining"

    def __init__(self, message: str = "server is draining for shutdown") -> None:
        super().__init__(message)


class Overloaded(ServeError):
    """Backpressure: the in-flight work limit is reached (503 + Retry-After).

    Carries ``retry_after`` (seconds) which the app layer renders as the
    HTTP ``Retry-After`` header, so well-behaved clients back off instead
    of piling onto a saturated worker pool.
    """

    status = 503
    code = "overloaded"

    def __init__(
        self,
        message: str = "server is at its in-flight work limit; retry shortly",
        *,
        retry_after: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class RequestTimeout(ServeError):
    """A handler exceeded the configured per-request timeout (504).

    The abandoned work keeps running server-side and lands in the warm
    caches, so a retried request usually completes instantly.
    """

    status = 504
    code = "request_timeout"


class InternalError(ServeError):
    """Opaque internal failure (500); details stay server-side."""

    status = 500
    code = "internal"
