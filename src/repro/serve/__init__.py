"""``repro serve``: the long-running HTTP/JSON simulation service.

Pure stdlib (``http.server``) on top of the library's warm layers: requests
multiplex onto shared :class:`~repro.api.session.Session` contexts and the
persistent disk caches, identical in-flight requests coalesce onto one
underlying run, sweeps stream NDJSON progress, and SIGINT/SIGTERM drain
gracefully.  See :mod:`repro.serve.app` for the endpoint reference.
"""

from repro.serve.app import ReproRequestHandler, ReproServer
from repro.serve.coalesce import Coalescer
from repro.serve.errors import BadRequest, Draining, NotFound, ServeError
from repro.serve.state import ServeConfig, ServerState

__all__ = [
    "ReproServer",
    "ReproRequestHandler",
    "ServeConfig",
    "ServerState",
    "Coalescer",
    "ServeError",
    "BadRequest",
    "NotFound",
    "Draining",
]
