"""Streaming sweep/optimize execution: one NDJSON event per milestone.

``POST /v1/sweep`` cannot buffer a whole grid before answering -- a sweep
may run for minutes -- so the serve layer executes points one at a time and
streams progress as newline-delimited JSON over a chunked response:

* ``sweep_started``  -- grid shape, axes, designs, point count;
* ``point_started``  -- one per grid point, with its axis assignment;
* ``point_completed`` -- the point's cells (speedup / energy saving per
  benchmark x design), whether it was served entirely from the persistent
  cache (``cache_hit``), and how many simulations it executed;
* ``summary``        -- totals (points, cells, simulations, cache hits) and
  per-design average speedups; always the final event of a successful
  stream.

``POST /v1/optimize`` streams the same way (``optimize_started`` /
``probe_completed`` / ``summary``), but the probe sequence is decided by an
adaptive :class:`~repro.optimize.drivers.OptimizeDriver` rather than a fixed
grid, so :func:`optimize_events` runs the search on a worker thread and
relays its ``on_probe`` callbacks; a closed consumer (disconnected client)
stops the search through its ``should_stop`` hook.

Every point runs over its own single-threaded
:class:`~repro.engine.context.SimulationContext` sharing the server's
process-wide :class:`~repro.engine.diskcache.SimulationCache`, so streamed
sweeps warm the same cache ``/v1/run`` and the CLI use.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.api.scenario import Scenario
from repro.core.accelerator import DesignPoint
from repro.engine.context import SimulationContext
from repro.serve.errors import BadRequest
from repro.sweep.spec import SweepSpec


def sweep_events(
    spec: SweepSpec,
    base: Scenario,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    disk_cache=None,
) -> Iterator[dict]:
    """Execute one sweep point-by-point, yielding NDJSON-ready event dicts."""
    if benchmarks is None and spec.benchmarks is not None:
        benchmarks = list(spec.benchmarks)
    if benchmarks:
        catalog = base.catalog
        try:
            benchmarks = [catalog.canonical_name(name) for name in benchmarks]
        except KeyError as error:
            raise BadRequest(str(error.args[0]), code="unknown_benchmark") from None
    started = time.perf_counter()
    assignments = spec.assignments()
    yield {
        "event": "sweep_started",
        "sweep": spec.name,
        "kind": spec.kind,
        "axes": spec.axis_keys,
        "designs": [str(design) for design in spec.designs],
        "points": len(assignments),
        "base_scenario": base.name,
    }
    total_cells = 0
    total_simulations = 0
    points_from_cache = 0
    speedup_sums: Dict[str, float] = {}
    speedup_counts: Dict[str, int] = {}
    for index, assignment in enumerate(assignments):
        variant = spec.scenario_for(base, assignment)
        yield {
            "event": "point_started",
            "index": index,
            "assignment": dict(assignment),
            "scenario": variant.name,
        }
        point_started = time.perf_counter()
        context = SimulationContext(
            max_workers=1, scenario=variant, disk_cache=disk_cache
        )
        cells = _point_cells(context, spec.kind, spec.designs, benchmarks)
        simulations = context.simulations_executed
        total_cells += len(cells)
        total_simulations += simulations
        cache_hit = simulations == 0
        if cache_hit:
            points_from_cache += 1
        for cell in cells:
            speedup_sums[cell["design"]] = (
                speedup_sums.get(cell["design"], 0.0) + cell["speedup"]
            )
            speedup_counts[cell["design"]] = speedup_counts.get(cell["design"], 0) + 1
        yield {
            "event": "point_completed",
            "index": index,
            "assignment": dict(assignment),
            "scenario": variant.name,
            "cache_hit": cache_hit,
            "simulations": simulations,
            "elapsed_seconds": time.perf_counter() - point_started,
            "cells": cells,
        }
    if disk_cache is not None:
        disk_cache.flush()
    yield {
        "event": "summary",
        "sweep": spec.name,
        "points": len(assignments),
        "cells": total_cells,
        "simulations": total_simulations,
        "points_from_cache": points_from_cache,
        "average_speedup": {
            design: speedup_sums[design] / speedup_counts[design]
            for design in speedup_sums
        },
        "elapsed_seconds": time.perf_counter() - started,
    }


def optimize_events(
    objective: object,
    spec: SweepSpec,
    base: Scenario,
    *,
    constraints: Optional[Sequence[object]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    budget: Optional[int] = None,
    driver: str = "auto",
    refine: int = 1,
    disk_cache=None,
) -> Iterator[dict]:
    """Run one optimization, yielding NDJSON-ready probe events.

    The search runs on a worker thread; its ``on_probe`` callbacks are
    relayed through a queue so the consumer sees one ``probe_completed``
    event per evaluated probe as it happens.  The first queue item is
    awaited *before* the first event is yielded, so a bad objective (e.g. a
    mistyped metric path, which fails on the first probe) surfaces as a
    structured :class:`BadRequest` while headers can still say 4xx.  Closing
    the generator (client disconnect) flips the driver's ``should_stop``
    flag and the worker abandons the search.
    """
    from repro.optimize.drivers import OptimizeDriver

    try:
        search = OptimizeDriver(
            objective,
            spec,
            base,
            constraints=constraints,
            benchmarks=benchmarks,
            budget=budget,
            driver=driver,
            refine=refine,
            cache=disk_cache,
            use_cache=disk_cache is not None,
        )
    except ValueError as error:
        raise BadRequest(str(error), code="invalid_optimize") from None
    events: "queue.Queue" = queue.Queue()
    stop = threading.Event()
    outcome: Dict[str, object] = {}
    search.on_probe = lambda probe: events.put(("probe", probe))
    search.should_stop = stop.is_set

    def work() -> None:
        try:
            outcome["result"] = search.run()
        # Cross-thread propagation: the error is re-raised on the consumer
        # side after the event queue drains, so nothing is swallowed here.
        except BaseException as error:  # repro: allow(RPR-H001)
            outcome["error"] = error
        finally:
            events.put(("done", None))

    started = time.perf_counter()
    worker = threading.Thread(
        target=work, name="repro-serve-optimize", daemon=True
    )
    worker.start()
    kind, payload = events.get()
    if kind == "done" and outcome.get("error") is not None:
        error = outcome["error"]
        if isinstance(error, ValueError):
            raise BadRequest(str(error), code="invalid_objective") from None
        raise error  # type: ignore[misc]
    try:
        yield {
            "event": "optimize_started",
            "optimize": search.objective.name,
            "objectives": [obj.describe() for obj in search.objective.objectives],
            "constraints": [c.describe() for c in search.objective.constraints],
            "axes": search.space.axis_keys,
            "grid_size": search.space.grid_size(),
            "budget": search.budget,
            "driver": search.driver,
            "base_scenario": base.name,
        }
        while kind == "probe":
            probe = payload
            yield {
                "event": "probe_completed",
                "index": probe.index,
                "assignment": dict(probe.assignment),
                "scenario": probe.scenario_name,
                "values": dict(probe.values),
                "cache_hit": probe.cache_hit,
                "simulations": probe.simulations,
                "elapsed_seconds": probe.elapsed_seconds,
            }
            kind, payload = events.get()
        error = outcome.get("error")
        if error is not None:
            raise error  # type: ignore[misc]  # -> in-band stream error
        result = outcome["result"]
        data = result.to_dict()  # type: ignore[attr-defined]
        yield {
            "event": "summary",
            "optimize": data["objective"]["name"],
            "driver": data["driver"],
            "probes": len(data["probes"]),
            "grid_size": data["grid_size"],
            "simulations": result.simulations_executed,  # type: ignore[attr-defined]
            "probes_from_cache": sum(
                1 for probe in result.probes if probe.cache_hit  # type: ignore[attr-defined]
            ),
            "feasible": data["feasible"],
            "frontier": data["frontier"],
            "best": data["best"],
            "budget_exhausted": data["budget_exhausted"],
            "elapsed_seconds": time.perf_counter() - started,
        }
    finally:
        stop.set()


def _point_cells(
    context: SimulationContext,
    kind: str,
    designs: Sequence[object],
    benchmarks: Optional[Sequence[str]],
) -> List[dict]:
    """One grid point's cells, mirroring the scalar sweep runner's layout."""
    simulate = context.routing if kind == "routing" else context.end_to_end
    cells: List[dict] = []
    for name in context.select_benchmarks(list(benchmarks) if benchmarks else None):
        baseline = simulate(name, DesignPoint.BASELINE_GPU)
        for design in designs:
            result = simulate(name, design)
            speedup = (
                baseline.time_seconds / result.time_seconds
                if result.time_seconds > 0
                else float("inf")
            )
            saving = (
                1.0 - result.energy_joules / baseline.energy_joules
                if baseline.energy_joules > 0
                else 0.0
            )
            cells.append(
                {
                    "benchmark": name,
                    "design": str(design),
                    "time_seconds": result.time_seconds,
                    "energy_joules": result.energy_joules,
                    "baseline_time_seconds": baseline.time_seconds,
                    "baseline_energy_joules": baseline.energy_joules,
                    "speedup": speedup,
                    "energy_saving": saving,
                }
            )
    return cells
