"""The ``repro serve`` HTTP/JSON application.

A long-running simulation service over stdlib
:class:`http.server.ThreadingHTTPServer` -- no dependencies beyond the
library itself.  Endpoints:

====================  ========================================================
``POST /v1/run``      scenario + experiment/benchmark selection -> reports
                      and structured results (the ``repro reproduce`` text,
                      byte-identical); identical in-flight requests coalesce
                      onto one underlying run.
``POST /v1/compare``  N scenarios (or one plus ``set`` overrides) -> the
                      side-by-side delta table of ``repro compare``.
``POST /v1/sweep``    sweep spec/axes -> streamed NDJSON progress events
                      (chunked transfer), terminated by a ``summary`` event.
``POST /v1/optimize`` objective + search space -> adaptive design-space
                      search; one NDJSON ``probe_completed`` event per
                      evaluated probe, terminated by a ``summary`` event
                      carrying the Pareto frontier and best probes.
``GET /v1/workloads`` the server's workload catalog.
``GET /v1/presets``   scenario and sweep presets, plus endpoint discovery.
``GET /healthz``      liveness; 503 + ``"draining"`` during shutdown drain.
``GET /metrics``      JSON counters: requests by endpoint/status, p50/p99
                      latency, coalescing, session LRU and persistent-cache
                      hit rates.
====================  ========================================================

Request bodies are JSON objects; scenarios arrive as preset names or inline
scenario objects (the server never reads client-named files), with
``"set"`` carrying the CLI's dotted ``KEY=VALUE`` overrides.  Intentional
errors answer with the structured 4xx body of
:class:`~repro.serve.errors.ServeError`; unexpected exceptions are logged
server-side and answer an opaque 500 -- never a stack trace.

:class:`ReproServer` adds the lifecycle: SIGINT/SIGTERM flip the shared
:class:`~repro.serve.state.ServerState` into draining (new work is refused
with 503, ``/healthz`` reports it), in-flight requests finish, buffered
cache entries are flushed to disk, and ``serve_forever`` returns 0.
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.api.scenario import Scenario, preset_names
from repro.api.session import compare_scenarios
from repro.engine.runner import select_experiments
from repro.engine.serialize import to_jsonable
from repro.faults import point as fault_point
from repro.serve.errors import (
    BadRequest,
    InternalError,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    RequestTimeout,
    ServeError,
)
from repro.serve.progress import optimize_events, sweep_events
from repro.serve.state import ServeConfig, ServerState

#: Upper bound on accepted request bodies (inline workloads stay small).
MAX_BODY_BYTES = 8 * 1024 * 1024

_GET_PATHS = ("/healthz", "/metrics", "/v1/workloads", "/v1/presets")
_POST_PATHS = ("/v1/run", "/v1/compare", "/v1/sweep", "/v1/optimize")


# ----------------------------------------------------------- request parsing


def _check_fields(body: Mapping, allowed: Sequence[str], endpoint: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise BadRequest(
            f"unknown field(s) {unknown} for {endpoint}; "
            f"valid fields: {sorted(allowed)}",
            code="unknown_field",
        )


def _string_list(body: Mapping, field: str) -> Optional[List[str]]:
    """An optional list-of-strings field (``None`` when absent/empty)."""
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise BadRequest(
            f"field {field!r} must be a list of strings", code="invalid_field"
        )
    items = [str(item) for item in value]
    return items or None


def scenario_from_request(state: ServerState, body: Mapping) -> Scenario:
    """Resolve a request's ``scenario`` / ``workloads`` / ``set`` fields.

    ``scenario`` is a preset name or an inline scenario object; ``workloads``
    must be inline spec objects (file paths are rejected -- the server never
    reads files a client names); ``set`` applies dotted CLI-style overrides.
    The server's base scenario is the default.
    """
    raw = body.get("scenario")
    if raw is None:
        scenario = state.base_scenario
    elif isinstance(raw, str):
        try:
            scenario = Scenario.preset(raw)
        except ValueError as error:
            raise BadRequest(str(error), code="unknown_scenario") from None
    elif isinstance(raw, Mapping):
        try:
            scenario = Scenario.from_dict(raw)
        except ValueError as error:
            raise BadRequest(str(error), code="invalid_scenario") from None
    else:
        raise BadRequest(
            "field 'scenario' must be a preset name or a scenario object",
            code="invalid_scenario",
        )
    workloads = body.get("workloads")
    if workloads is not None:
        if not isinstance(workloads, (list, tuple)) or any(
            not isinstance(entry, Mapping) for entry in workloads
        ):
            raise BadRequest(
                "field 'workloads' must be a list of inline workload spec "
                "objects (the server does not read workload files)",
                code="invalid_workloads",
            )
        try:
            scenario = scenario.with_workloads(workloads)
        except ValueError as error:
            raise BadRequest(str(error), code="invalid_workloads") from None
    overrides = _string_list(body, "set")
    if overrides:
        try:
            scenario = scenario.with_set(overrides)
        except ValueError as error:
            raise BadRequest(str(error), code="invalid_override") from None
    return scenario


def _validated_benchmarks(
    benchmarks: Optional[List[str]], scenario: Scenario
) -> Optional[List[str]]:
    if not benchmarks:
        return None
    catalog = scenario.catalog
    unknown = [name for name in benchmarks if name not in catalog]
    if unknown:
        raise BadRequest(
            f"unknown benchmark(s) {unknown}; choose from {catalog.names()}",
            code="unknown_benchmark",
        )
    return [catalog.canonical_name(name) for name in benchmarks]


def _selected_experiments(
    only: Optional[List[str]], skip: Optional[List[str]]
) -> List[str]:
    try:
        names = select_experiments(only=only, skip=skip)
    except ValueError as error:
        raise BadRequest(str(error), code="unknown_experiment") from None
    if not names:
        raise BadRequest(
            "the experiment selection matches no experiments",
            code="empty_selection",
        )
    return names


# ------------------------------------------------------------------- handler


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Shared serve state; assigned by :class:`ReproServer` right after bind.
    state: ServerState


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the shared :class:`ServerState`."""

    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if not self.state.config.quiet:
            sys.stderr.write(
                f"[serve] {self.address_string()} {format % args}\n"
            )

    # ------------------------------------------------------------- dispatch

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self._started = time.perf_counter()
        path = urlsplit(self.path).path.rstrip("/") or "/"
        self._endpoint = f"{method} {path}"
        self._recorded = False
        self.state.metrics.begin()
        status = 500
        try:
            try:
                handler = self._route(method, path)
                result = handler()
                if isinstance(result, int):  # streaming handler sent itself
                    status = result
                else:
                    status, payload = result
                    self._record(status)
                    self._send_json(status, payload)
            except ServeError as error:
                status = error.status
                self._record(status)
                retry_after = getattr(error, "retry_after", None)
                headers = (
                    (("Retry-After", str(max(1, math.ceil(retry_after)))),)
                    if retry_after is not None
                    else ()
                )
                self._send_json(status, error.to_dict(), headers=headers)
            except (BrokenPipeError, ConnectionResetError):
                # The client went away mid-response; nothing left to send.
                status = 499
                self.close_connection = True
            # Last-resort 500 handler: a request must never kill the server
            # thread, and the traceback is preserved on stderr.
            except Exception:  # repro: allow(RPR-H001)
                traceback.print_exc(file=sys.stderr)
                status = 500
                self._record(status)
                self._send_json(
                    status, InternalError("internal server error").to_dict()
                )
        finally:
            # Fallback for paths that never reached a pre-send record (client
            # disconnects); everything else recorded before its bytes left.
            self._record(status)

    def _record(self, status: int) -> None:
        """Record the request's metrics exactly once, *before* the response
        bytes hit the socket -- a client that has read its response is then
        guaranteed to see the request in an immediate ``/metrics`` probe."""
        if self._recorded:
            return
        self._recorded = True
        self.state.metrics.record(
            self._endpoint, status, time.perf_counter() - self._started
        )

    def _route(self, method: str, path: str):
        routes = {
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
            "/v1/workloads": self._get_workloads,
            "/v1/presets": self._get_presets,
            "/v1/run": self._post_run,
            "/v1/compare": self._post_compare,
            "/v1/sweep": self._post_sweep,
            "/v1/optimize": self._post_optimize,
        }
        handler = routes.get(path)
        if handler is None:
            raise NotFound(
                f"unknown endpoint {path!r}; endpoints: "
                f"{sorted(_GET_PATHS + _POST_PATHS)}"
            )
        expected = "GET" if path in _GET_PATHS else "POST"
        if method != expected:
            raise MethodNotAllowed(f"{path} only accepts {expected}")
        return handler

    # ---------------------------------------------------------------- plumbing

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        # Payloads are already JSON-ready (`.to_dict()` shapes, the same the
        # CLI dumps); to_jsonable is NOT applied wholesale here because its
        # tuple-key convention escapes literal slashes in string keys, which
        # would mangle the metrics' "GET /healthz"-style endpoint keys.
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _execute_with_timeout(self, fn):
        """Run one work callable, bounded by ``config.request_timeout``.

        The work runs in a helper thread; when the deadline passes the
        request answers 504 while the work keeps running server-side -- its
        results still land in the warm caches, so a retried request usually
        completes instantly.  Without a configured timeout the callable runs
        inline (no thread hop).
        """
        timeout = self.state.config.request_timeout
        if timeout is None:
            return fn()
        box: dict = {}
        done = threading.Event()

        def run() -> None:
            try:
                box["value"] = fn()
            # Everything is relayed verbatim to the request thread below;
            # nothing is swallowed.
            except BaseException as error:  # repro: allow(RPR-H001)
                box["error"] = error
            finally:
                done.set()

        worker = threading.Thread(target=run, name="repro-serve-work", daemon=True)
        worker.start()
        if not done.wait(timeout):
            self.state.record_timeout()
            raise RequestTimeout(
                f"request exceeded the {timeout:g}s handler timeout; the "
                "work continues server-side and a retry will reuse its "
                "cached results"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise BadRequest(
                "request needs a JSON body (and a Content-Length header)",
                code="missing_body",
            )
        try:
            size = int(length)
        except ValueError:
            raise BadRequest("invalid Content-Length header", code="missing_body") from None
        if size > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body over the {MAX_BODY_BYTES} byte limit"
            )
        raw = self.rfile.read(size)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"invalid JSON body: {error}", code="invalid_json") from None
        if not isinstance(data, dict):
            raise BadRequest(
                "request body must be a JSON object", code="invalid_body"
            )
        return data

    def _write_chunk(self, data: bytes) -> None:
        """One chunk of a ``Transfer-Encoding: chunked`` response."""
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    # --------------------------------------------------------------- GET views

    def _get_healthz(self) -> Tuple[int, dict]:
        state = self.state
        draining = state.draining
        payload = {
            "status": "draining" if draining else "ok",
            "uptime_seconds": time.time() - state.metrics.started,
            "active_work": state.active_work,
            "sessions": state.session_count,
        }
        return (503 if draining else 200), payload

    def _get_metrics(self) -> Tuple[int, dict]:
        return 200, self.state.metrics_snapshot()

    def _get_workloads(self) -> Tuple[int, dict]:
        catalog = self.state.base_scenario.catalog
        return 200, {
            "count": len(catalog),
            "workloads": [spec.to_dict() for spec in catalog.specs()],
        }

    def _get_presets(self) -> Tuple[int, dict]:
        # Imported here: sweep presets lazily import an experiment module.
        from repro.sweep.spec import sweep_presets

        return 200, {
            "scenarios": {
                name: Scenario.preset(name).describe() for name in preset_names()
            },
            "sweeps": {
                name: spec.describe() for name, spec in sorted(sweep_presets().items())
            },
            "endpoints": {
                "GET": sorted(_GET_PATHS),
                "POST": sorted(_POST_PATHS),
            },
        }

    # -------------------------------------------------------------- POST views

    def _post_run(self) -> Tuple[int, dict]:
        state = self.state
        body = self._json_body()
        _check_fields(
            body,
            ("scenario", "set", "workloads", "experiments", "skip", "benchmarks"),
            "POST /v1/run",
        )
        state.begin_work()
        try:
            scenario = scenario_from_request(state, body)
            names = _selected_experiments(
                _string_list(body, "experiments"), _string_list(body, "skip")
            )
            benchmarks = _validated_benchmarks(
                _string_list(body, "benchmarks"), scenario
            )
            # Identical concurrent requests (same scenario *content*, same
            # selection) coalesce onto one underlying run; the scenario name
            # is a label and deliberately not part of the identity.
            key = (
                "run",
                scenario.content_hash(),
                tuple(names),
                tuple(benchmarks or ()),
            )

            def execute() -> dict:
                fault_point("serve.handler.execute")
                session = state.session_for(scenario)
                result = session.run(names, benchmarks=benchmarks)
                return {
                    "scenario": {
                        "name": session.scenario.name,
                        "content_hash": scenario.content_hash(),
                    },
                    "experiments": names,
                    "report": result.report(),
                    "data": result.runner.to_dict(),
                }

            payload, coalesced = self._execute_with_timeout(
                lambda: state.coalescer.run(key, execute)
            )
            return 200, {**payload, "coalesced": coalesced}
        finally:
            state.end_work()

    def _post_compare(self) -> Tuple[int, dict]:
        state = self.state
        body = self._json_body()
        _check_fields(
            body,
            ("scenarios", "set", "workloads", "experiments", "skip", "benchmarks"),
            "POST /v1/compare",
        )
        state.begin_work()
        try:
            raw_scenarios = body.get("scenarios")
            if raw_scenarios is None:
                bases = [state.base_scenario]
            elif isinstance(raw_scenarios, (list, tuple)) and raw_scenarios:
                bases = [
                    scenario_from_request(
                        state, {"scenario": raw, "workloads": body.get("workloads")}
                    )
                    for raw in raw_scenarios
                ]
            else:
                raise BadRequest(
                    "field 'scenarios' must be a non-empty list of preset "
                    "names or scenario objects",
                    code="invalid_scenario",
                )
            overrides = _string_list(body, "set")
            if overrides:
                try:
                    variants = [base.with_set(overrides) for base in bases]
                except ValueError as error:
                    raise BadRequest(str(error), code="invalid_override") from None
                # One base + overrides compares base vs. variant (the CLI
                # convention); several bases compare the overridden variants.
                scenarios = [bases[0]] + variants if len(bases) == 1 else variants
            else:
                scenarios = bases
            if len(scenarios) < 2:
                raise BadRequest(
                    "compare needs at least two scenarios: list several in "
                    "'scenarios', or add 'set' overrides to compare one "
                    "against its variant",
                    code="invalid_scenario",
                )
            only = _string_list(body, "experiments")
            skip = _string_list(body, "skip")
            if only or skip:
                _selected_experiments(only, skip)
            benchmarks = _string_list(body, "benchmarks")
            if benchmarks:
                canonical = [
                    _validated_benchmarks(benchmarks, scenario)
                    for scenario in scenarios
                ]
                benchmarks = canonical[0]
            key = (
                "compare",
                tuple((s.name, s.content_hash()) for s in scenarios),
                tuple(only or ()),
                tuple(skip or ()),
                tuple(benchmarks or ()),
            )

            def execute() -> dict:
                fault_point("serve.handler.execute")
                sessions = [state.session_for(scenario) for scenario in scenarios]
                comparison = compare_scenarios(
                    scenarios,
                    only=only,
                    skip=skip,
                    benchmarks=benchmarks,
                    sessions=sessions,
                )
                return {
                    "scenarios": [
                        {"name": s.name, "content_hash": s.content_hash()}
                        for s in scenarios
                    ],
                    "report": comparison.format_report(),
                    "data": comparison.to_dict(),
                }

            payload, coalesced = self._execute_with_timeout(
                lambda: state.coalescer.run(key, execute)
            )
            return 200, {**payload, "coalesced": coalesced}
        finally:
            state.end_work()

    def _post_sweep(self) -> int:
        """Streamed sweep: NDJSON progress events over chunked transfer."""
        state = self.state
        body = self._json_body()
        _check_fields(
            body,
            ("spec", "axes", "scenario", "set", "workloads", "benchmarks"),
            "POST /v1/sweep",
        )
        state.begin_work()
        try:
            base = scenario_from_request(state, body)
            spec = self._sweep_spec(body)
            benchmarks = _string_list(body, "benchmarks")
            events = sweep_events(
                spec, base, benchmarks=benchmarks, disk_cache=state.disk_cache
            )
            return self._stream_ndjson(events)
        finally:
            state.end_work()

    def _post_optimize(self) -> int:
        """Streamed design-space search: NDJSON probe events per evaluation."""
        state = self.state
        body = self._json_body()
        _check_fields(
            body,
            (
                "objective",
                "objectives",
                "constraints",
                "spec",
                "axes",
                "budget",
                "driver",
                "refine",
                "scenario",
                "set",
                "workloads",
                "benchmarks",
            ),
            "POST /v1/optimize",
        )
        state.begin_work()
        try:
            base = scenario_from_request(state, body)
            spec = self._sweep_spec(body)
            objective = self._objective_spec(body)
            benchmarks = _string_list(body, "benchmarks")
            budget = body.get("budget")
            if budget is not None and (
                isinstance(budget, bool) or not isinstance(budget, int) or budget < 1
            ):
                raise BadRequest(
                    "field 'budget' must be a positive integer",
                    code="invalid_budget",
                )
            driver = body.get("driver", "auto")
            if not isinstance(driver, str):
                raise BadRequest(
                    "field 'driver' must be a string", code="invalid_driver"
                )
            refine = body.get("refine", 1)
            if isinstance(refine, bool) or not isinstance(refine, int) or refine < 0:
                raise BadRequest(
                    "field 'refine' must be a non-negative integer",
                    code="invalid_refine",
                )
            events = optimize_events(
                objective,
                spec,
                base,
                benchmarks=benchmarks,
                budget=budget,
                driver=driver,
                refine=refine,
                disk_cache=state.disk_cache,
            )
            return self._stream_ndjson(events)
        finally:
            state.end_work()

    def _stream_ndjson(self, events) -> int:
        """Send an event iterator as chunked NDJSON; returns the status.

        The first event is pulled *before* headers go out, so validation
        errors (including ones only a first probe can surface) still answer
        as structured 4xx JSON.  Metrics are recorded immediately before the
        terminal empty chunk -- a client that has read the whole stream sees
        this request in ``/metrics`` without polling.
        """
        first = next(events)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        event = first
        try:
            try:
                while True:
                    line = json.dumps(to_jsonable(event)) + "\n"
                    self._write_chunk(line.encode("utf-8"))
                    event = next(events)
            except StopIteration:
                pass
            except (BrokenPipeError, ConnectionResetError):
                return 499
            except Exception as error:  # repro: allow(RPR-H001)
                # Headers are long gone; report the failure in-band as the
                # stream's last event (no summary event = the run failed).
                traceback.print_exc(file=sys.stderr)
                failure = {
                    "event": "error",
                    "code": "internal",
                    "message": str(error) or type(error).__name__,
                }
                self._record(500)
                self._write_chunk((json.dumps(failure) + "\n").encode("utf-8"))
                self._write_chunk(b"")
                return 500
            self._record(200)
            self._write_chunk(b"")
            return 200
        finally:
            # Tear the generator down promptly: a streaming search stops its
            # worker through the generator's own finally clause.
            events.close()

    @staticmethod
    def _objective_spec(body: Mapping):
        """The request's objective + constraints as an ``ObjectiveSpec``."""
        raw = body.get("objectives", body.get("objective"))
        if raw is None:
            raise BadRequest(
                "an optimization needs 'objectives' (or 'objective'): a "
                "dotted metric path like 'fig17.average_speedup', optionally "
                "with ':max'/':min', an objective object, or a list of them",
                code="missing_objective",
            )
        constraints = body.get("constraints")
        if constraints is not None:
            if isinstance(constraints, (str, Mapping)):
                constraints = [constraints]
            elif not isinstance(constraints, (list, tuple)):
                raise BadRequest(
                    "field 'constraints' must be a constraint (string or "
                    "object) or a list of them",
                    code="invalid_constraint",
                )
        # Validate eagerly so malformed objectives answer 4xx here rather
        # than surfacing from the driver's constructor.
        from repro.optimize.objective import ObjectiveSpec

        try:
            return ObjectiveSpec.coerce(raw, constraints=constraints)
        except (TypeError, ValueError) as error:
            raise BadRequest(str(error), code="invalid_objective") from None

    @staticmethod
    def _sweep_spec(body: Mapping):
        from repro.sweep.spec import SweepAxis, SweepSpec, sweep_preset_names, sweep_presets

        raw = body.get("spec")
        axes = body.get("axes")
        spec = None
        if isinstance(raw, str):
            presets = sweep_presets()
            if raw not in presets:
                raise BadRequest(
                    f"unknown sweep preset {raw!r}; presets: {sweep_preset_names()}",
                    code="unknown_sweep",
                )
            spec = presets[raw]
        elif isinstance(raw, Mapping):
            try:
                spec = SweepSpec.from_dict(raw)
            except ValueError as error:
                raise BadRequest(str(error), code="invalid_spec") from None
        elif raw is not None:
            raise BadRequest(
                "field 'spec' must be a sweep preset name or a sweep spec object",
                code="invalid_spec",
            )
        if axes is not None:
            if not isinstance(axes, Mapping) or not axes:
                raise BadRequest(
                    "field 'axes' must be a non-empty {override-key: [values]} "
                    "object",
                    code="invalid_axis",
                )
            try:
                extra = tuple(
                    SweepAxis(str(key), tuple(values)) for key, values in axes.items()
                )
                if spec is None:
                    spec = SweepSpec(name="serve-sweep", axes=extra)
                else:
                    import dataclasses

                    spec = dataclasses.replace(spec, axes=spec.axes + extra)
            except (TypeError, ValueError) as error:
                raise BadRequest(str(error), code="invalid_axis") from None
        if spec is None:
            raise BadRequest(
                "a sweep needs a 'spec' (preset name or object) or 'axes'",
                code="missing_spec",
            )
        return spec


# -------------------------------------------------------------------- server


class ReproServer:
    """A bound serve process: lifecycle around :class:`_HTTPServer`.

    Construction binds the socket (``port=0`` picks a free port, exposed as
    :attr:`port`).  :meth:`serve_forever` blocks until :meth:`shutdown` (or
    SIGINT/SIGTERM) initiates the drain: new work is refused with 503,
    in-flight requests finish (bounded by ``config.drain_timeout``), buffered
    cache shards are flushed, and the call returns ``0`` -- the CLI's clean
    exit code.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.state = ServerState(self.config)
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), ReproRequestHandler
        )
        self._httpd.state = self.state
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._shutdown_started = threading.Event()
        self._stopped = threading.Event()

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM into a graceful drain (main thread only)."""
        try:
            signal.signal(signal.SIGINT, self._on_signal)
            signal.signal(signal.SIGTERM, self._on_signal)
        except ValueError:
            # Not the main thread (in-process test/benchmark servers); the
            # owner triggers shutdown() directly instead.
            pass

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - signals
        self.shutdown()

    def shutdown(self) -> None:
        """Initiate the graceful drain (idempotent, returns immediately)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        self.state.start_draining()
        # The listener must close from a helper thread: shutdown() blocks
        # until the serve loop exits, and a signal handler runs *inside*
        # that loop's thread.
        threading.Thread(
            target=self._finish_shutdown, name="repro-serve-drain", daemon=True
        ).start()

    def _finish_shutdown(self) -> None:
        self.state.drain(timeout=self.config.drain_timeout)
        self._httpd.shutdown()

    def serve_forever(self, install_signals: bool = True) -> int:
        """Serve until drained shutdown; returns the process exit code (0)."""
        if install_signals:
            self.install_signal_handlers()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self.state.start_draining()
            self.state.drain(timeout=self.config.drain_timeout)
            self.state.flush()
            self._httpd.server_close()
            self._stopped.set()
        return 0

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`serve_forever` has fully exited."""
        return self._stopped.wait(timeout)
