"""In-flight request coalescing.

Identical requests that arrive while an equivalent one is still executing
must not redo its work: the first caller (the *leader*) executes the
function, every later identical caller (a *follower*) blocks until the
leader finishes and receives the very same result object.  The serve layer
keys requests by scenario content hash plus the experiment/benchmark
selection, so K clients asking for the same cold report trigger exactly one
underlying simulation run.

The result is shared by reference; callers must treat it as immutable
(the serve handlers only serialize it to JSON).

Completed keys are removed from the in-flight table *before* followers are
woken, so a request arriving after completion starts a fresh execution --
coalescing only ever merges genuinely overlapping work, it is not a cache.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

T = TypeVar("T")


class _InFlight:
    """One running execution and the followers waiting on it."""

    __slots__ = ("event", "result", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class Coalescer:
    """Deduplicate concurrent executions of identical work.

    Attributes:
        executed: completed leader executions (each ran the function once).
        coalesced: total follower requests served from a leader's result.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _InFlight] = {}
        self.executed = 0
        self.coalesced = 0

    @property
    def in_flight(self) -> int:
        """Distinct keys currently executing."""
        with self._lock:
            return len(self._inflight)

    @property
    def waiting(self) -> int:
        """Follower requests currently blocked on a leader."""
        with self._lock:
            return sum(entry.followers for entry in self._inflight.values())

    def run(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Execute ``fn`` once per concurrently-requested ``key``.

        Returns ``(result, coalesced)``: ``coalesced`` is ``False`` for the
        leader that actually executed ``fn`` and ``True`` for followers that
        received the leader's result.  If the leader raised, every follower
        re-raises the same exception.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _InFlight()
                self._inflight[key] = entry
                leader = True
            else:
                entry.followers += 1
                leader = False
        if not leader:
            entry.event.wait()
            with self._lock:
                self.coalesced += 1
            if entry.error is not None:
                raise entry.error
            return entry.result, True  # type: ignore[return-value]
        try:
            entry.result = fn()
        except BaseException as error:
            entry.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                if entry.error is None:
                    self.executed += 1
            entry.event.set()
        return entry.result, False  # type: ignore[return-value]
