"""Shared warm context of the serve process.

One :class:`ServerState` is shared by every handler thread of a
:class:`~repro.serve.app.ReproServer`:

* a bounded LRU of warm :class:`~repro.api.session.Session` objects, keyed
  by :meth:`~repro.api.scenario.Scenario.content_hash` -- every request for
  the same scenario (regardless of its name) lands on the same memoizing
  :class:`~repro.engine.context.SimulationContext`, whose ``RLock`` makes
  concurrent simulation lookups safe;
* the process-wide persistent caches
  (:class:`~repro.engine.diskcache.SimulationCache` /
  :class:`~repro.engine.diskcache.TrainedModelCache`) threaded into every
  session's context, so warm state survives restarts and is shared across
  scenarios;
* the request :class:`~repro.serve.coalesce.Coalescer`;
* request metrics (per-endpoint/status counters, p50/p99 latency); and
* the drain lifecycle: once :meth:`ServerState.start_draining` is called no
  new work is admitted (:class:`~repro.serve.errors.Draining`), and
  :meth:`ServerState.drain` blocks until every in-flight work request has
  finished.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.api.scenario import Scenario
from repro.api.session import Session
from repro.engine.context import SimulationContext
from repro.serve.coalesce import Coalescer
from repro.serve.errors import Draining, Overloaded

#: Default bound of the warm-session LRU.
DEFAULT_MAX_SESSIONS = 8
#: Latency samples kept per endpoint (a bounded sliding window).
LATENCY_WINDOW = 4096


@dataclass
class ServeConfig:
    """Configuration of one serve process.

    Attributes:
        host: bind address (loopback by default; bind ``0.0.0.0`` explicitly
            to serve other machines).
        port: TCP port (``0`` picks a free one -- used by tests/benchmarks).
        scenario: base scenario requests default to when they send none.
        cache_dir: persistent cache root (``None``: ``$REPRO_CACHE_DIR`` or
            ``~/.cache/repro``).
        use_cache: disable both persistent caches with ``False``.
        jobs: per-session thread-pool width (``None``: bounded CPU count).
        max_sessions: warm sessions kept in the LRU.
        drain_timeout: seconds shutdown waits for in-flight work before
            closing anyway.
        quiet: suppress per-request access logging.
        max_inflight: admit at most this many concurrent work (POST)
            requests; the rest get a 503 + ``Retry-After`` instead of
            queueing unboundedly (``None``: unlimited, the old behavior).
        request_timeout: seconds a run/compare handler may take before the
            request is answered with a 504 (``None``: no timeout).
        retry_after: ``Retry-After`` seconds suggested on backpressure 503s.
    """

    host: str = "127.0.0.1"
    port: int = 8752
    scenario: Optional[Scenario] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    jobs: Optional[int] = None
    max_sessions: int = DEFAULT_MAX_SESSIONS
    drain_timeout: float = 30.0
    quiet: bool = False
    max_inflight: Optional[int] = None
    request_timeout: Optional[float] = None
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.scenario is None:
            self.scenario = Scenario.default()
        if int(self.max_sessions) < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = int(self.max_sessions)
        if self.max_inflight is not None:
            if int(self.max_inflight) < 1:
                raise ValueError("max_inflight must be >= 1")
            self.max_inflight = int(self.max_inflight)
        if self.request_timeout is not None and float(self.request_timeout) <= 0:
            raise ValueError("request_timeout must be > 0")


def _percentile(samples: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    index = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
    return samples[int(index)]


class Metrics:
    """Thread-safe request counters and latency windows."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.time()
        #: ``"POST /v1/run" -> {"200": count, ...}``
        self._requests: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, Deque[float]] = {}
        self.in_flight = 0

    def begin(self) -> None:
        with self._lock:
            self.in_flight += 1

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)
            by_status = self._requests.setdefault(endpoint, {})
            key = str(int(status))
            by_status[key] = by_status.get(key, 0) + 1
            window = self._latency.setdefault(endpoint, deque(maxlen=LATENCY_WINDOW))
            window.append(float(seconds))

    def snapshot(self) -> dict:
        """Counters plus p50/p99 latency per endpoint and overall."""
        with self._lock:
            requests = {
                endpoint: dict(by_status)
                for endpoint, by_status in self._requests.items()
            }
            windows = {
                endpoint: list(window) for endpoint, window in self._latency.items()
            }
            in_flight = self.in_flight
        latency: Dict[str, dict] = {}
        combined: list = []
        for endpoint, samples in windows.items():
            combined.extend(samples)
            samples.sort()
            latency[endpoint] = {
                "count": len(samples),
                "p50_seconds": _percentile(samples, 0.50),
                "p99_seconds": _percentile(samples, 0.99),
            }
        if combined:
            combined.sort()
            latency["overall"] = {
                "count": len(combined),
                "p50_seconds": _percentile(combined, 0.50),
                "p99_seconds": _percentile(combined, 0.99),
            }
        return {
            "uptime_seconds": time.time() - self.started,
            "requests_in_flight": in_flight,
            "requests": requests,
            "latency_seconds": latency,
        }


class ServerState:
    """Everything the handler threads share (see module docstring)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.base_scenario: Scenario = self.config.scenario  # type: ignore[assignment]
        self.disk_cache = None
        self.model_cache = None
        if self.config.use_cache:
            # Imported here: only cache-enabled servers need the disk layer.
            from repro.engine.diskcache import SimulationCache, TrainedModelCache

            self.disk_cache = SimulationCache(self.config.cache_dir)
            self.model_cache = TrainedModelCache(self.config.cache_dir)
        self.metrics = Metrics()
        self.coalescer = Coalescer()
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self.sessions_evicted = 0
        self._draining = threading.Event()
        self._work_done = threading.Condition()
        self._active_work = 0
        #: Degradation counters (mutated under ``_work_done``).
        self.requests_rejected_overload = 0
        self.requests_timed_out = 0

    # ---------------------------------------------------------------- sessions

    def session_for(self, scenario: Scenario) -> Session:
        """The warm session of one scenario (created and LRU-tracked on demand).

        Sessions are keyed by content hash, so two scenarios differing only
        in name share one warm context.  Evicting the least-recently-used
        session drops only in-memory memos; everything it simulated stays in
        the persistent caches.
        """
        key = scenario.content_hash()
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                if session.scenario == scenario:
                    self._sessions.move_to_end(key)
                    return session
                # Same content, different name: the name is only a label,
                # but downstream consumers (compare legends) must see the
                # requested one, so rebuild under it.  The persistent caches
                # keep the replacement warm.
                del self._sessions[key]
            context = SimulationContext(
                max_workers=self.config.jobs,
                scenario=scenario,
                disk_cache=self.disk_cache,
                model_cache=self.model_cache,
            )
            session = Session(scenario, context=context)
            self._sessions[key] = session
            while len(self._sessions) > self.config.max_sessions:
                self._sessions.popitem(last=False)
                self.sessions_evicted += 1
            return session

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def simulations_executed(self) -> int:
        """Simulations actually executed across every warm session."""
        with self._lock:
            sessions = list(self._sessions.values())
        return sum(session.context.simulations_executed for session in sessions)

    # ------------------------------------------------------------------- drain

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start_draining(self) -> None:
        """Stop admitting work; already-running requests keep going."""
        self._draining.set()
        with self._work_done:
            self._work_done.notify_all()

    def begin_work(self) -> None:
        """Admit one work (POST) request.

        Raises :class:`Draining` during shutdown and :class:`Overloaded`
        (503 + ``Retry-After``) when ``max_inflight`` concurrent work
        requests are already running -- bounded admission instead of an
        unbounded thread pile-up.
        """
        with self._work_done:
            if self._draining.is_set():
                raise Draining()
            limit = self.config.max_inflight
            if limit is not None and self._active_work >= limit:
                self.requests_rejected_overload += 1
                raise Overloaded(
                    f"server is at its in-flight work limit ({limit}); "
                    f"retry shortly",
                    retry_after=self.config.retry_after,
                )
            self._active_work += 1

    def record_timeout(self) -> None:
        """Count one request answered with a 504 handler timeout."""
        with self._work_done:
            self.requests_timed_out += 1

    def end_work(self) -> None:
        with self._work_done:
            self._active_work = max(0, self._active_work - 1)
            self._work_done.notify_all()

    @property
    def active_work(self) -> int:
        with self._work_done:
            return self._active_work

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every in-flight work request finished (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._work_done:
            while self._active_work > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._work_done.wait(remaining)
            return True

    def flush(self) -> None:
        """Publish buffered simulation results to disk."""
        if self.disk_cache is not None:
            self.disk_cache.flush()

    # ----------------------------------------------------------------- metrics

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: requests, latency, coalescing, caches."""
        snapshot = self.metrics.snapshot()
        snapshot["draining"] = self.draining
        snapshot["runs"] = {
            "executed": self.coalescer.executed,
            "coalesced": self.coalescer.coalesced,
            "in_flight": self.coalescer.in_flight,
            "waiting": self.coalescer.waiting,
        }
        snapshot["sessions"] = {
            "active": self.session_count,
            "capacity": self.config.max_sessions,
            "evicted": self.sessions_evicted,
        }
        snapshot["simulations_executed"] = self.simulations_executed
        snapshot["disk_cache"] = _cache_stats(self.disk_cache)
        snapshot["model_cache"] = _cache_stats(self.model_cache)
        with self._work_done:
            snapshot["degradation"] = {
                "requests_rejected_overload": self.requests_rejected_overload,
                "requests_timed_out": self.requests_timed_out,
            }
        return snapshot


def _cache_stats(cache) -> dict:
    """Hit/miss and degradation counters of one persistent cache."""
    if cache is None:
        return {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "corrupt_artifacts": 0,
            "write_errors": 0,
            "read_only": False,
        }
    stats = cache.stats
    return {
        "enabled": True,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
        "corrupt_artifacts": stats.corrupt_artifacts,
        "write_errors": stats.write_errors,
        "read_only": bool(getattr(cache, "read_only", False)),
    }
