"""Inter-vault workload distribution (Sec. 5.1).

The routing procedure is distributed across the HMC's vaults along exactly
one of the three parallelization dimensions (B, L or H).  For each candidate
dimension this module models

* ``E`` -- the workload of the most heavily loaded vault (Eqs. 6, 7, 9, 11),
  expressed as a PE operation mix plus the DRAM bytes that vault touches, and
* ``M`` -- the inter-vault communication the choice requires (Eqs. 8, 10,
  12), expressed as payload bytes and packet counts over the crossbar,

and summarizes them into the paper's execution score ``S = 1/(alpha E + beta M)``
where ``alpha`` captures the vault compute capability (PE count x frequency)
and ``beta`` the crossbar cost (bandwidth and per-packet latency).  The
distributor evaluates the score for every dimension offline and picks the
best one, which is how Fig. 18's dimension choice shifts with PE frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.intra_vault import IntraVaultDistributor, lower_routing_to_operations
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.dram import VaultMemoryModel
from repro.hmc.pe import OperationMix, PEDatapath
from repro.workloads.benchmarks import BenchmarkConfig
from repro.workloads.parallelism import Dimension
from repro.workloads.rp_model import FP32_BYTES, RoutingWorkload


@dataclass
class DistributionPlan:
    """Outcome of distributing the routing procedure along one dimension.

    Attributes:
        dimension: the chosen parallelization dimension.
        per_vault_operations: PE operation mix of the most loaded vault (``E``).
        total_operations: operation mix across every vault (used for energy).
        per_vault_dram_bytes: DRAM bytes the most loaded vault touches.
        total_dram_bytes: DRAM bytes touched across the cube.
        crossbar_payload_bytes: inter-vault payload bytes (``M``).
        crossbar_packets: number of inter-vault packets.
        vaults_used: vaults that actually receive work.
        per_vault_parallel_suboperations: independent sub-operations assigned
            to a vault along the primary dimension (feeds the intra-vault
            utilization model).
        secondary_parallelism: parallelism available along a secondary
            dimension per primary sub-operation.
    """

    dimension: Dimension
    per_vault_operations: OperationMix
    total_operations: OperationMix
    per_vault_dram_bytes: float
    total_dram_bytes: float
    crossbar_payload_bytes: float
    crossbar_packets: float
    vaults_used: int
    per_vault_parallel_suboperations: int
    secondary_parallelism: int


@dataclass(frozen=True)
class ExecutionScoreModel:
    """The paper's execution score ``S = 1 / (alpha E + beta M)``.

    Args:
        config: HMC configuration.
        datapath: PE datapath (defines how expensive ``E`` is on this device).
        crossbar: crossbar model (defines how expensive ``M`` is).
        intra_vault: intra-vault distributor (PE utilization model).
    """

    config: HMCConfig
    datapath: PEDatapath
    crossbar: Crossbar
    intra_vault: IntraVaultDistributor = IntraVaultDistributor()

    @property
    def alpha(self) -> float:
        """Device-dependent compute coefficient (seconds per PE cycle per vault)."""
        return 1.0 / (self.config.pes_per_vault * self.datapath.frequency_hz)

    @property
    def beta(self) -> float:
        """Device-dependent communication coefficient (seconds per payload byte)."""
        return 1.0 / self.crossbar.effective_bandwidth_bytes

    def compute_time(self, plan: DistributionPlan) -> float:
        """Estimated PE time of the critical vault under the plan."""
        effective_pes = self.intra_vault.effective_pes(
            plan.per_vault_parallel_suboperations, plan.secondary_parallelism
        )
        return self.datapath.time_for(plan.per_vault_operations, num_pes=effective_pes)

    def memory_time(self, plan: DistributionPlan) -> float:
        """Estimated conflict-free DRAM service time of the critical vault."""
        return VaultMemoryModel(self.config).base_service_time(plan.per_vault_dram_bytes)

    def communication_time(self, plan: DistributionPlan) -> float:
        """Estimated inter-vault communication time under the plan."""
        return self.crossbar.transfer(plan.crossbar_payload_bytes, plan.crossbar_packets).total_time

    def estimated_time(self, plan: DistributionPlan) -> float:
        """``alpha E + beta M`` expressed directly in seconds.

        ``E`` is the critical vault's workload: its PE execution overlapped
        with the conflict-free DRAM service (the slower of the two binds);
        ``M`` is the inter-vault communication.
        """
        return max(self.compute_time(plan), self.memory_time(plan)) + self.communication_time(plan)

    def score(self, plan: DistributionPlan) -> float:
        """The execution score ``S`` (higher is better)."""
        time = self.estimated_time(plan)
        return 1.0 / time if time > 0 else float("inf")


class WorkloadDistributor:
    """Builds distribution plans and selects the best dimension (Sec. 5.1.2).

    Args:
        benchmark: the CapsNet benchmark being executed.
        hmc: HMC configuration.
        score_model: execution score model; a default one is constructed from
            ``hmc`` when omitted.
    """

    def __init__(
        self,
        benchmark: BenchmarkConfig,
        hmc: Optional[HMCConfig] = None,
        score_model: Optional[ExecutionScoreModel] = None,
    ) -> None:
        self.benchmark = benchmark
        self.hmc = hmc or HMCConfig()
        if score_model is None:
            datapath = PEDatapath(frequency_hz=self.hmc.pe_frequency_hz)
            score_model = ExecutionScoreModel(
                config=self.hmc,
                datapath=datapath,
                crossbar=Crossbar(self.hmc),
            )
        self.score_model = score_model
        self.routing = RoutingWorkload(benchmark)

    # -- helpers -----------------------------------------------------------------

    def _ceil_share(self, total: int) -> int:
        return int(math.ceil(total / float(self.hmc.num_vaults)))

    def _total_operations(self) -> OperationMix:
        """Operation mix of the full routing procedure across all vaults."""
        cfg = self.benchmark
        i = cfg.routing_iterations
        return lower_routing_to_operations(
            cfg,
            eq1_pairs=cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules,
            eq2_macs=i * cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules * cfg.high_dim,
            eq3_squashes=i * cfg.batch_size * cfg.num_high_capsules,
            eq4_dots=i * cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules,
            eq4_accumulations=i * cfg.batch_size * cfg.num_low_capsules * cfg.num_high_capsules,
            eq5_rows=i * cfg.num_low_capsules,
        )

    def _total_dram_bytes(self) -> float:
        """DRAM bytes touched by the whole routing procedure (all vaults)."""
        fp = self.routing.footprint()
        eq1 = fp.low_capsules + fp.weights + fp.predictions
        per_iter = (
            2 * fp.predictions
            + 2 * (fp.weighted_sums + fp.high_capsules)
            + 3 * fp.logits
            + 2 * fp.coefficients
        )
        return float(eq1 + self.benchmark.routing_iterations * per_iter)

    # -- per-dimension plans --------------------------------------------------------

    def plan_for_dimension(self, dimension: Dimension) -> DistributionPlan:
        """Build the distribution plan for one parallelization dimension."""
        if dimension is Dimension.BATCH:
            return self._plan_batch()
        if dimension is Dimension.LOW:
            return self._plan_low()
        if dimension is Dimension.HIGH:
            return self._plan_high()
        raise ValueError(f"unknown dimension {dimension!r}")

    def _plan_batch(self) -> DistributionPlan:
        cfg = self.benchmark
        hmc = self.hmc
        i = cfg.routing_iterations
        nb = self._ceil_share(cfg.batch_size)
        nl, nh, cl, ch = cfg.num_low_capsules, cfg.num_high_capsules, cfg.low_dim, cfg.high_dim
        reduction_levels = int(math.ceil(math.log2(hmc.num_vaults))) if hmc.num_vaults > 1 else 0

        per_vault = lower_routing_to_operations(
            cfg,
            eq1_pairs=nb * nl * nh,
            eq2_macs=i * nb * nl * nh * ch,
            eq3_squashes=i * nb * nh,
            eq4_dots=i * nb * nl * nh,
            # Local accumulation over the vault's batches plus this vault's
            # share of the inter-vault tree reduction of b.
            eq4_accumulations=i * (nb * nl * nh + nl * nh * reduction_levels),
            # The softmax cannot be split along B; the aggregating vault runs it.
            eq5_rows=i * nl,
        )

        u_slice = nb * nl * cl * FP32_BYTES
        w_full = nl * nh * cl * ch * FP32_BYTES
        uhat_slice = nb * nl * nh * ch * FP32_BYTES
        sv_slice = 2 * nb * nh * ch * FP32_BYTES
        bc_full = 2 * nl * nh * FP32_BYTES
        per_vault_dram = (u_slice + w_full + uhat_slice) + i * (
            2 * uhat_slice + sv_slice + bc_full + nl * nh * FP32_BYTES
        )

        elements_per_iter = 2 * (hmc.num_vaults - 1) * nl * nh
        payload = i * elements_per_iter * FP32_BYTES
        packets = i * elements_per_iter

        return DistributionPlan(
            dimension=Dimension.BATCH,
            per_vault_operations=per_vault,
            total_operations=self._total_operations(),
            per_vault_dram_bytes=float(per_vault_dram),
            total_dram_bytes=self._total_dram_bytes(),
            crossbar_payload_bytes=float(payload),
            crossbar_packets=float(packets),
            vaults_used=min(hmc.num_vaults, cfg.batch_size),
            per_vault_parallel_suboperations=nb,
            secondary_parallelism=nl,
        )

    def _plan_low(self) -> DistributionPlan:
        cfg = self.benchmark
        hmc = self.hmc
        i = cfg.routing_iterations
        nl_share = self._ceil_share(cfg.num_low_capsules)
        nb, nh, cl, ch = cfg.batch_size, cfg.num_high_capsules, cfg.low_dim, cfg.high_dim

        per_vault = lower_routing_to_operations(
            cfg,
            eq1_pairs=nb * nl_share * nh,
            eq2_macs=i * nb * nl_share * nh * ch,
            # The squash runs on the vault holding the aggregated s (small).
            eq3_squashes=i * nb * nh,
            eq4_dots=i * nb * nl_share * nh,
            eq4_accumulations=i * nb * nl_share * nh,
            eq5_rows=i * nl_share,
        )

        u_slice = nb * nl_share * cl * FP32_BYTES
        w_slice = nl_share * nh * cl * ch * FP32_BYTES
        uhat_slice = nb * nl_share * nh * ch * FP32_BYTES
        sv_full = 2 * nb * nh * ch * FP32_BYTES
        bc_slice = 2 * nl_share * nh * FP32_BYTES
        per_vault_dram = (u_slice + w_slice + uhat_slice) + i * (
            2 * uhat_slice + sv_full + bc_slice + nl_share * nh * FP32_BYTES
        )

        vectors_per_iter = 2 * nb * (hmc.num_vaults - 1) * nh
        payload = i * vectors_per_iter * ch * FP32_BYTES
        packets = i * vectors_per_iter

        return DistributionPlan(
            dimension=Dimension.LOW,
            per_vault_operations=per_vault,
            total_operations=self._total_operations(),
            per_vault_dram_bytes=float(per_vault_dram),
            total_dram_bytes=self._total_dram_bytes(),
            crossbar_payload_bytes=float(payload),
            crossbar_packets=float(packets),
            vaults_used=min(hmc.num_vaults, cfg.num_low_capsules),
            per_vault_parallel_suboperations=nl_share,
            secondary_parallelism=nb,
        )

    def _plan_high(self) -> DistributionPlan:
        cfg = self.benchmark
        hmc = self.hmc
        i = cfg.routing_iterations
        nh_share = self._ceil_share(cfg.num_high_capsules)
        nb, nl, cl, ch = cfg.batch_size, cfg.num_low_capsules, cfg.low_dim, cfg.high_dim
        vaults_used = min(hmc.num_vaults, cfg.num_high_capsules)

        per_vault = lower_routing_to_operations(
            cfg,
            eq1_pairs=nb * nl * nh_share,
            eq2_macs=i * nb * nl * nh_share * ch,
            eq3_squashes=i * nb * nh_share,
            eq4_dots=i * nb * nl * nh_share,
            eq4_accumulations=i * nb * nl * nh_share,
            # The softmax normalizes over H and therefore cannot be split
            # along H; the vault gathering b runs it for every L capsule.
            eq5_rows=i * nl,
        )

        u_full = nb * nl * cl * FP32_BYTES
        w_slice = nl * nh_share * cl * ch * FP32_BYTES
        uhat_slice = nb * nl * nh_share * ch * FP32_BYTES
        sv_slice = 2 * nb * nh_share * ch * FP32_BYTES
        bc_slice = 2 * nl * nh_share * FP32_BYTES
        per_vault_dram = (u_full + w_slice + uhat_slice) + i * (
            2 * uhat_slice + sv_slice + bc_slice + nl * nh_share * FP32_BYTES
        )

        # Eq. 12: gather the partial b rows for the softmax and scatter c back.
        gather_packets = (vaults_used - 1) * nl
        scatter_packets = nl
        payload = i * (gather_packets + scatter_packets) * FP32_BYTES
        packets = i * (gather_packets + scatter_packets)

        return DistributionPlan(
            dimension=Dimension.HIGH,
            per_vault_operations=per_vault,
            total_operations=self._total_operations(),
            per_vault_dram_bytes=float(per_vault_dram),
            total_dram_bytes=self._total_dram_bytes(),
            crossbar_payload_bytes=float(payload),
            crossbar_packets=float(packets),
            vaults_used=vaults_used,
            per_vault_parallel_suboperations=nh_share,
            secondary_parallelism=nb,
        )

    # -- selection --------------------------------------------------------------------

    def all_plans(self) -> Dict[Dimension, DistributionPlan]:
        """Distribution plans for every dimension."""
        return {dim: self.plan_for_dimension(dim) for dim in Dimension}

    def scores(self) -> Dict[Dimension, float]:
        """Execution score of every dimension."""
        return {dim: self.score_model.score(plan) for dim, plan in self.all_plans().items()}

    def best_plan(self) -> DistributionPlan:
        """The plan with the highest execution score."""
        plans = self.all_plans()
        best_dim = max(plans, key=lambda dim: self.score_model.score(plans[dim]))
        return plans[best_dim]

    def best_dimension(self) -> Dimension:
        """The dimension the distributor selects for this benchmark/device."""
        return self.best_plan().dimension
