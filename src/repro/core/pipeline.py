"""Host / HMC batch pipeline (Sec. 4).

PIM-CapsNet processes a stream of batched input sets: while the HMC executes
the routing procedure of batch *k*, the host GPU already runs the Conv /
PrimaryCaps layers of batch *k+1* and the FC decoder of batch *k-1*.  In
steady state the per-batch latency is the longer of the two stages (plus the
contention each side suffers from sharing the cube, see
:mod:`repro.core.rmas`); the pipeline fill and drain expose one extra host
stage and one extra routing stage.

The same model also evaluates the non-pipelined baselines: the GPU-only
baseline simply runs both stages back to back, and All-in-PIM runs both
stages on the HMC back to back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PipelineTiming:
    """Latency of processing ``num_batches`` batch groups.

    Attributes:
        host_stage_time: per-batch host stage time (after contention).
        routing_stage_time: per-batch routing stage time (after contention).
        num_batches: batch groups processed.
        pipelined: whether the two stages overlapped.
    """

    host_stage_time: float
    routing_stage_time: float
    num_batches: int
    pipelined: bool

    @property
    def steady_state_time(self) -> float:
        """Per-batch latency once the pipeline is full."""
        if self.pipelined:
            return max(self.host_stage_time, self.routing_stage_time)
        return self.host_stage_time + self.routing_stage_time

    @property
    def total_time(self) -> float:
        """Latency of the whole stream including fill/drain."""
        if self.num_batches < 1:
            return 0.0
        if not self.pipelined:
            return self.num_batches * self.steady_state_time
        if self.num_batches == 1:
            return self.host_stage_time + self.routing_stage_time
        return (
            self.host_stage_time
            + (self.num_batches - 1) * self.steady_state_time
            + self.routing_stage_time
        )

    @property
    def average_batch_time(self) -> float:
        """Average per-batch latency over the stream."""
        if self.num_batches < 1:
            return 0.0
        return self.total_time / self.num_batches

    @property
    def bubble_time(self) -> float:
        """Per-batch idle time of the faster stage in steady state."""
        if not self.pipelined:
            return 0.0
        return abs(self.host_stage_time - self.routing_stage_time)


@dataclass(frozen=True)
class PipelineModel:
    """Builds :class:`PipelineTiming` instances for the evaluated designs.

    Attributes:
        num_batches: number of batch groups in the evaluated stream; the
            paper pipelines across batched input sets, and a moderate stream
            length exposes the fill/drain overhead that keeps the end-to-end
            speedup below the ideal ``T_total / max(stage)`` bound.
    """

    num_batches: int = 8

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ValueError("num_batches must be >= 1")

    def serial(self, host_time: float, routing_time: float) -> PipelineTiming:
        """Non-pipelined execution (GPU baseline, All-in-PIM)."""
        self._validate(host_time, routing_time)
        return PipelineTiming(
            host_stage_time=host_time,
            routing_stage_time=routing_time,
            num_batches=self.num_batches,
            pipelined=False,
        )

    def pipelined(self, host_time: float, routing_time: float) -> PipelineTiming:
        """Pipelined host + HMC execution (PIM-CapsNet)."""
        self._validate(host_time, routing_time)
        return PipelineTiming(
            host_stage_time=host_time,
            routing_stage_time=routing_time,
            num_batches=self.num_batches,
            pipelined=True,
        )

    @staticmethod
    def _validate(host_time: float, routing_time: float) -> None:
        if host_time < 0 or routing_time < 0:
            raise ValueError("stage times must be non-negative")

    @staticmethod
    def speedup(baseline: PipelineTiming, improved: PipelineTiming) -> float:
        """Speedup of one timing over another (same number of batches)."""
        if improved.total_time <= 0:
            return float("inf")
        return baseline.total_time / improved.total_time
