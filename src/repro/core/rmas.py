"""Runtime Memory Access Scheduler (RMAS, Sec. 5.3.2).

When the host GPU (running Conv/PrimaryCaps/FC of the next batch) and the
vault PEs (running the routing procedure of the current batch) request data
from the same vaults, someone has to wait.  The RMAS picks, per scheduling
epoch, how many of the vaults targeted by the host (``n_h`` out of
``n_max``) grant the host priority, minimizing the overhead function of
Eq. 15::

    kappa = gamma_v * n_h * Q  +  gamma_h * n_max / n_h

where ``Q`` is the average PE request queue depth of the targeted vaults and
``gamma_v`` / ``gamma_h`` weight how sensitive the HMC-side and host-side
work are to memory service delays.  The optimum is
``n_h* = sqrt(n_max * gamma_h / (Q * gamma_v))`` clamped to ``[1, n_max]``.

Two naive policies are modelled for the Fig. 17 comparison: always giving
the PEs priority (RMAS-PIM) and always giving the GPU priority (RMAS-GPU).
The scheduler's decision is translated into multiplicative slowdowns of the
two pipeline stages by :class:`ContentionModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class SchedulerPolicy(str, Enum):
    """Memory access scheduling policies compared in Fig. 17."""

    RMAS = "rmas"            #: the paper's runtime scheduler (Eq. 15)
    PIM_PRIORITY = "rmas-pim"  #: naive: HMC PEs always win
    GPU_PRIORITY = "rmas-gpu"  #: naive: host GPU always wins

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RMASDecision:
    """Outcome of one RMAS scheduling decision.

    Attributes:
        host_priority_vaults: ``n_h`` -- vaults granting the host priority.
        targeted_vaults: ``n_max`` -- vaults the host is requesting from.
        overhead: the value of the Eq. 15 overhead function at the decision.
    """

    host_priority_vaults: int
    targeted_vaults: int
    overhead: float

    @property
    def host_share(self) -> float:
        """Fraction of targeted vaults that serve the host first."""
        if self.targeted_vaults == 0:
            return 0.0
        return self.host_priority_vaults / float(self.targeted_vaults)


@dataclass(frozen=True)
class RuntimeMemoryAccessScheduler:
    """The RMAS decision model.

    Attributes:
        gamma_vault: impact factor of delaying the HMC-side (PE) requests;
            larger when the routing phase is memory sensitive.
        gamma_host: impact factor of delaying the host's requests; larger
            when the host layers are memory intensive.
    """

    gamma_vault: float = 1.0
    gamma_host: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma_vault <= 0 or self.gamma_host <= 0:
            raise ValueError("impact factors must be positive")

    def overhead(self, host_priority_vaults: int, targeted_vaults: int, queue_depth: float) -> float:
        """Evaluate the Eq. 15 overhead for a candidate ``n_h``."""
        if targeted_vaults < 1:
            raise ValueError("targeted_vaults must be positive")
        if not 0 <= host_priority_vaults <= targeted_vaults:
            raise ValueError("host_priority_vaults must lie in [0, targeted_vaults]")
        if queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        vault_term = self.gamma_vault * host_priority_vaults * queue_depth
        if host_priority_vaults == 0:
            host_term = self.gamma_host * targeted_vaults * 2.0  # host fully stalled
        else:
            host_term = self.gamma_host * targeted_vaults / host_priority_vaults
        return vault_term + host_term

    def decide(self, targeted_vaults: int, queue_depth: float) -> RMASDecision:
        """Pick the ``n_h`` minimizing the Eq. 15 overhead."""
        if targeted_vaults < 1:
            raise ValueError("targeted_vaults must be positive")
        if queue_depth <= 0:
            # No PE requests pending: the host can have every vault.
            return RMASDecision(
                host_priority_vaults=targeted_vaults,
                targeted_vaults=targeted_vaults,
                overhead=self.overhead(targeted_vaults, targeted_vaults, max(queue_depth, 0.0)),
            )
        optimum = math.sqrt(targeted_vaults * self.gamma_host / (queue_depth * self.gamma_vault))
        candidates = {
            max(1, min(targeted_vaults, int(math.floor(optimum)))),
            max(1, min(targeted_vaults, int(math.ceil(optimum)))),
        }
        best = min(candidates, key=lambda n: self.overhead(n, targeted_vaults, queue_depth))
        return RMASDecision(
            host_priority_vaults=best,
            targeted_vaults=targeted_vaults,
            overhead=self.overhead(best, targeted_vaults, queue_depth),
        )


@dataclass(frozen=True)
class ContentionModel:
    """Translates a scheduling policy into pipeline-stage slowdowns.

    When the host and the HMC PEs execute concurrently (the pipelined design
    of Sec. 4), both touch the same cube.  The slowdown each side suffers
    depends on who gets priority:

    * the side with priority only suffers a small residual interference,
    * the side without priority queues behind the other's requests.

    Attributes:
        host_memory_sensitivity: fraction of the host stage's time that is
            memory-bound against the HMC (and therefore exposed to queuing).
        pim_memory_sensitivity: fraction of the routing stage's time that is
            DRAM-bound inside the vaults.
        queue_penalty: slowdown of the de-prioritized side's memory-bound
            fraction.
        residual_penalty: slowdown of the prioritized side's memory-bound
            fraction (arbitration is not free).
    """

    host_memory_sensitivity: float = 0.35
    pim_memory_sensitivity: float = 0.30
    queue_penalty: float = 0.80
    residual_penalty: float = 0.10

    def slowdowns_for_share(self, host_share: float) -> tuple[float, float]:
        """Slowdowns for a given fraction of vaults granting the host priority."""
        if not 0.0 <= host_share <= 1.0:
            raise ValueError("host_share must be in [0, 1]")
        host_penalty = self.residual_penalty * host_share + self.queue_penalty * (1.0 - host_share)
        pim_penalty = self.residual_penalty * (1.0 - host_share) + self.queue_penalty * host_share
        host_slowdown = 1.0 + self.host_memory_sensitivity * host_penalty
        pim_slowdown = 1.0 + self.pim_memory_sensitivity * pim_penalty
        return host_slowdown, pim_slowdown

    def slowdowns(self, policy: SchedulerPolicy, decision: RMASDecision) -> tuple[float, float]:
        """Return multiplicative ``(host_slowdown, pim_slowdown)`` factors (>= 1)."""
        if policy is SchedulerPolicy.GPU_PRIORITY:
            host_share = 1.0
        elif policy is SchedulerPolicy.PIM_PRIORITY:
            host_share = 0.0
        else:
            host_share = decision.host_share
        return self.slowdowns_for_share(host_share)

    def optimal_share(
        self, host_time: float, routing_time: float, targeted_vaults: int
    ) -> float:
        """Host-priority share minimizing the pipelined steady-state latency.

        The RMAS re-evaluates its decision at runtime from the actual queue
        occupancy; at the model level that is equivalent to picking the
        ``n_h / n_max`` share whose contention slowdowns minimize
        ``max(host_time * host_slowdown, routing_time * pim_slowdown)``.
        """
        if host_time < 0 or routing_time < 0:
            raise ValueError("stage times must be non-negative")
        if targeted_vaults < 1:
            raise ValueError("targeted_vaults must be positive")
        best_share = 0.0
        best_cost = float("inf")
        for n_h in range(0, targeted_vaults + 1):
            share = n_h / targeted_vaults
            host_slowdown, pim_slowdown = self.slowdowns_for_share(share)
            cost = max(host_time * host_slowdown, routing_time * pim_slowdown)
            if cost < best_cost:
                best_cost = cost
                best_share = share
        return best_share
