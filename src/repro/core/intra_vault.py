"""Intra-vault workload distribution and operation lowering (Sec. 5.2).

The inter-vault distributor decides *which* routing sub-operations a vault
executes; this module decides how they map onto the vault's 16 PEs and what
they cost:

* :func:`lower_routing_to_operations` translates counts of routing-equation
  evaluations into a PE :class:`~repro.hmc.pe.OperationMix` (MACs for
  Eqs. 1/2/4, the squash flow for Eq. 3, the softmax flow for Eq. 5).
* :class:`IntraVaultDistributor` models how well the sub-operations assigned
  to a vault keep its PEs busy.  When the number of independent
  sub-operations along the chosen dimension is smaller than the PE count the
  distributor re-partitions along a secondary dimension, so utilization only
  collapses in genuinely degenerate configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hmc.pe import OperationMix, PEOperation
from repro.workloads.benchmarks import BenchmarkConfig


def squash_operation_mix(count: float, high_dim: int) -> OperationMix:
    """PE operations for ``count`` squash evaluations of ``high_dim``-vectors.

    The squash (Eq. 3) needs the squared norm (``high_dim`` MACs), the
    approximate inverse square root, the approximate division for the
    ``||s||^2 / (1 + ||s||^2)`` factor, and ``high_dim + 1`` multiplies for
    the final scaling.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    mix = OperationMix()
    mix.add(PEOperation.MAC, count * high_dim)
    mix.add(PEOperation.ADD, count)
    mix.add(PEOperation.INV_SQRT, count)
    mix.add(PEOperation.DIV, count)
    mix.add(PEOperation.MUL, count * (high_dim + 1))
    return mix


def softmax_operation_mix(rows: float, row_length: int) -> OperationMix:
    """PE operations for ``rows`` softmax evaluations over ``row_length`` entries.

    Each row needs ``row_length`` exponentials, ``row_length - 1`` additions
    for the denominator and ``row_length`` divisions (Eq. 5).
    """
    if rows < 0:
        raise ValueError("rows must be non-negative")
    mix = OperationMix()
    mix.add(PEOperation.EXP, rows * row_length)
    mix.add(PEOperation.ADD, rows * max(0, row_length - 1))
    mix.add(PEOperation.DIV, rows * row_length)
    return mix


def lower_routing_to_operations(
    config: BenchmarkConfig,
    eq1_pairs: float,
    eq2_macs: float,
    eq3_squashes: float,
    eq4_dots: float,
    eq4_accumulations: float,
    eq5_rows: float,
) -> OperationMix:
    """Lower routing-equation evaluation counts to a PE operation mix.

    Args:
        config: benchmark configuration (provides ``CL`` / ``CH``).
        eq1_pairs: number of (batch, L, H) prediction-vector products
            (each costs ``CL * CH`` MACs).
        eq2_macs: number of scalar MACs of the weighted sum.
        eq3_squashes: number of squash evaluations.
        eq4_dots: number of (batch, L, H) agreement dot products
            (each costs ``CH`` MACs).
        eq4_accumulations: number of scalar additions accumulating agreements
            into ``b``.
        eq5_rows: number of softmax rows (length ``NH``).
    """
    mix = OperationMix()
    mix.add(PEOperation.MAC, eq1_pairs * config.low_dim * config.high_dim)
    mix.add(PEOperation.MAC, eq2_macs)
    mix = mix.merged_with(squash_operation_mix(eq3_squashes, config.high_dim))
    mix.add(PEOperation.MAC, eq4_dots * config.high_dim)
    mix.add(PEOperation.ADD, eq4_accumulations)
    mix = mix.merged_with(softmax_operation_mix(eq5_rows, config.num_high_capsules))
    return mix


@dataclass(frozen=True)
class IntraVaultDistributor:
    """Models PE utilization inside a vault (Sec. 5.2.1).

    Attributes:
        pes_per_vault: PEs available per vault.
        allow_secondary_dimension: when the primary dimension does not offer
            enough independent sub-operations to feed every PE, the
            distributor re-partitions along another dimension (the paper's
            fallback); disabling this models a naive design.
    """

    pes_per_vault: int = 16
    allow_secondary_dimension: bool = True

    def utilization(self, independent_suboperations: int, secondary_parallelism: int = 1) -> float:
        """Fraction of PEs kept busy given the available parallelism.

        Args:
            independent_suboperations: parallel sub-operations along the
                chosen (primary) dimension assigned to this vault.
            secondary_parallelism: additional parallel work available along a
                secondary dimension per primary sub-operation.
        """
        if independent_suboperations < 0 or secondary_parallelism < 1:
            raise ValueError("parallelism arguments must be positive")
        if independent_suboperations == 0:
            return 1.0 / self.pes_per_vault
        available = independent_suboperations
        if self.allow_secondary_dimension:
            available *= secondary_parallelism
        return min(1.0, available / float(self.pes_per_vault))

    def effective_pes(self, independent_suboperations: int, secondary_parallelism: int = 1) -> int:
        """Number of PEs the assignment actually keeps busy."""
        return max(
            1,
            int(
                round(
                    self.pes_per_vault
                    * self.utilization(independent_suboperations, secondary_parallelism)
                )
            ),
        )


def routing_special_function_mix(config: BenchmarkConfig) -> Dict[str, float]:
    """Total special-function evaluations for one routing pass (for energy/accuracy).

    Returns counts keyed by ``exp`` / ``div`` / ``inv_sqrt``.
    """
    i = config.routing_iterations
    return {
        "exp": float(i * config.num_low_capsules * config.num_high_capsules),
        "div": float(
            i
            * (
                config.num_low_capsules * config.num_high_capsules
                + config.batch_size * config.num_high_capsules
            )
        ),
        "inv_sqrt": float(i * config.batch_size * config.num_high_capsules),
    }
