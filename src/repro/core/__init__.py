"""PIM-CapsNet: the paper's primary contribution.

The core package wires the substrates together into the hybrid GPU + HMC
accelerator the paper proposes:

* :mod:`repro.core.distribution` -- the inter-vault workload distributor:
  models the per-vault workload ``E`` and the inter-vault traffic ``M`` for
  the three parallelization dimensions (Eqs. 6-12) and picks the dimension
  with the best execution score ``S = 1/(alpha*E + beta*M)``.
* :mod:`repro.core.intra_vault` -- lowers routing equations to PE operation
  mixes and distributes them over a vault's 16 PEs (Sec. 5.2.1).
* :mod:`repro.core.rmas` -- the runtime memory access scheduler arbitrating
  GPU vs. PE requests (Sec. 5.3.2, Eq. 15).
* :mod:`repro.core.pipeline` -- the host/HMC batch pipeline (Sec. 4).
* :mod:`repro.core.accelerator` -- the top-level :class:`PIMCapsNet` model and
  the design-point variants evaluated in Figs. 15-17.
"""

from repro.core.distribution import (
    DistributionPlan,
    ExecutionScoreModel,
    WorkloadDistributor,
)
from repro.core.intra_vault import IntraVaultDistributor, lower_routing_to_operations
from repro.core.rmas import ContentionModel, RMASDecision, RuntimeMemoryAccessScheduler, SchedulerPolicy
from repro.core.pipeline import PipelineModel, PipelineTiming
from repro.core.snippets import (
    SnippetAssignment,
    SnippetScheduler,
    WorkloadSnippet,
    build_snippets,
    load_imbalance,
)
from repro.core.accelerator import (
    DesignPoint,
    PIMCapsNet,
    RoutingComparison,
    EndToEndComparison,
)

__all__ = [
    "DistributionPlan",
    "ExecutionScoreModel",
    "WorkloadDistributor",
    "IntraVaultDistributor",
    "lower_routing_to_operations",
    "ContentionModel",
    "RMASDecision",
    "RuntimeMemoryAccessScheduler",
    "SchedulerPolicy",
    "PipelineModel",
    "PipelineTiming",
    "SnippetAssignment",
    "SnippetScheduler",
    "WorkloadSnippet",
    "build_snippets",
    "load_imbalance",
    "DesignPoint",
    "PIMCapsNet",
    "RoutingComparison",
    "EndToEndComparison",
]
