"""Workload snippets and the runtime snippet scheduler (Fig. 8 / Fig. 10).

The inter-vault distributor (Sec. 5.1.2) does not ship one monolithic blob of
work to each vault: the parallelizable portion of the routing procedure is
divided into *workload snippets* -- independent slices along the chosen
dimension -- which a hardware scheduler assigns to vaults at runtime.
Typical CapsNet configurations produce far more snippets than the 32 vaults,
which is what makes the distribution flexible (a vault that finishes early
can pick up another snippet) and keeps the imbalance bounded by a single
snippet.

This module makes that machinery explicit:

* :func:`build_snippets` slices a :class:`~repro.core.distribution.DistributionPlan`
  into per-snippet operation mixes and DRAM footprints,
* :class:`SnippetScheduler` assigns snippets to vaults (round-robin, matching
  the paper's hardware scheduler) and reports the resulting per-vault load,
* :func:`load_imbalance` quantifies how uneven the assignment is, which the
  tests use to verify the "largest workload of a single vault" assumption
  behind the paper's ``E`` formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.distribution import DistributionPlan
from repro.hmc.pe import OperationMix
from repro.workloads.parallelism import Dimension


@dataclass(frozen=True)
class WorkloadSnippet:
    """One independent slice of the distributed routing workload.

    Attributes:
        index: snippet index along the distribution dimension.
        dimension: the distribution dimension the snippet was cut along.
        operations: PE operations this snippet executes.
        dram_bytes: DRAM bytes this snippet touches in its vault.
    """

    index: int
    dimension: Dimension
    operations: OperationMix
    dram_bytes: float


@dataclass
class SnippetAssignment:
    """Result of scheduling snippets onto vaults."""

    vault_snippets: Dict[int, List[WorkloadSnippet]] = field(default_factory=dict)

    def snippets_for(self, vault: int) -> List[WorkloadSnippet]:
        """Snippets assigned to one vault."""
        return self.vault_snippets.get(vault, [])

    def operations_for(self, vault: int) -> OperationMix:
        """Combined operation mix of one vault's snippets."""
        total = OperationMix()
        for snippet in self.snippets_for(vault):
            total = total.merged_with(snippet.operations)
        return total

    def dram_bytes_for(self, vault: int) -> float:
        """Combined DRAM bytes of one vault's snippets."""
        return float(sum(snippet.dram_bytes for snippet in self.snippets_for(vault)))

    @property
    def vaults_used(self) -> int:
        """Number of vaults that received at least one snippet."""
        return sum(1 for snippets in self.vault_snippets.values() if snippets)

    @property
    def total_snippets(self) -> int:
        """Total number of snippets assigned."""
        return sum(len(snippets) for snippets in self.vault_snippets.values())


def snippet_count_for(plan: DistributionPlan, num_vaults: int) -> int:
    """Number of snippets the plan's dimension naturally produces.

    The distributor cuts along its chosen dimension, producing one snippet
    per index of that dimension assigned to each vault slot (i.e. the total
    extent of the dimension), never fewer than the number of vaults in use.
    """
    per_vault = max(1, plan.per_vault_parallel_suboperations)
    return max(plan.vaults_used, per_vault * min(plan.vaults_used, num_vaults))


def build_snippets(plan: DistributionPlan, num_vaults: int) -> List[WorkloadSnippet]:
    """Slice a distribution plan into workload snippets.

    The parallelizable work of the critical vault is divided evenly over its
    ``per_vault_parallel_suboperations`` snippets; every vault in use gets the
    same snippet structure (the plan already describes the *largest* vault, so
    this is a slight over-approximation for the last, partially filled vault,
    exactly like the ceiling terms of Eqs. 6-11).
    """
    if num_vaults < 1:
        raise ValueError("num_vaults must be positive")
    snippets_per_vault = max(1, plan.per_vault_parallel_suboperations)
    total = snippets_per_vault * plan.vaults_used
    per_snippet_ops = plan.per_vault_operations.scaled(1.0 / snippets_per_vault)
    per_snippet_bytes = plan.per_vault_dram_bytes / snippets_per_vault
    return [
        WorkloadSnippet(
            index=i,
            dimension=plan.dimension,
            operations=per_snippet_ops,
            dram_bytes=per_snippet_bytes,
        )
        for i in range(total)
    ]


class SnippetScheduler:
    """Round-robin snippet-to-vault scheduler (the paper's hardware scheduler).

    Args:
        num_vaults: vaults available in the cube.
    """

    def __init__(self, num_vaults: int) -> None:
        if num_vaults < 1:
            raise ValueError("num_vaults must be positive")
        self.num_vaults = num_vaults

    def assign(self, snippets: List[WorkloadSnippet], vaults_used: int | None = None) -> SnippetAssignment:
        """Assign snippets to vaults in round-robin order.

        Args:
            snippets: snippets to assign.
            vaults_used: restrict the assignment to the first ``vaults_used``
                vaults (e.g. an H-dimension distribution with fewer high-level
                capsules than vaults).
        """
        vaults = self.num_vaults if vaults_used is None else vaults_used
        if not 1 <= vaults <= self.num_vaults:
            raise ValueError("vaults_used must be in [1, num_vaults]")
        assignment = SnippetAssignment({vault: [] for vault in range(vaults)})
        for position, snippet in enumerate(snippets):
            assignment.vault_snippets[position % vaults].append(snippet)
        return assignment


def load_imbalance(assignment: SnippetAssignment) -> float:
    """Ratio of the most- to the least-loaded vault's operation count.

    1.0 means perfectly balanced; the round-robin scheduler bounds this by
    one snippet's worth of work.
    """
    loads = [
        assignment.operations_for(vault).total_operations
        for vault in assignment.vault_snippets
        if assignment.snippets_for(vault)
    ]
    if not loads:
        return 1.0
    smallest = min(loads)
    if smallest == 0:
        return float("inf")
    return max(loads) / smallest
