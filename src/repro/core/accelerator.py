"""Top-level PIM-CapsNet accelerator model and its design-point variants.

:class:`PIMCapsNet` ties the substrates together for one Table-1 benchmark:

* the GPU simulator provides the baseline (and GPU-ICP) routing times, the
  host-stage times and the GPU energy,
* the workload distributor + HMC device provide the in-memory routing times
  and energy for the PIM design points,
* the RMAS contention model and the pipeline model combine the two sides
  into end-to-end numbers.

The :class:`DesignPoint` enumeration covers every configuration evaluated in
Figs. 15-17 of the paper:

===============  ==============================================================
``BASELINE_GPU``  GPU-only execution with HBM memory
``GPU_ICP``       GPU with an ideal cache replacement policy
``PIM_CAPSNET``   the full proposal (inter-vault + intra-vault + mapping + RMAS)
``PIM_INTRA``     intra-vault design only (no inter-vault data placement)
``PIM_INTER``     inter-vault design only (no intra-vault bank-conflict fix)
``ALL_IN_PIM``    the whole network runs on the HMC
``RMAS_PIM``      pipelined design, PEs always win memory arbitration
``RMAS_GPU``      pipelined design, GPU always wins memory arbitration
===============  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Union

from repro.core.distribution import DistributionPlan, ExecutionScoreModel, WorkloadDistributor
from repro.core.intra_vault import IntraVaultDistributor
from repro.core.pipeline import PipelineModel, PipelineTiming
from repro.core.rmas import ContentionModel, RuntimeMemoryAccessScheduler, SchedulerPolicy
from repro.gpu.devices import GPUDevice, baseline_device
from repro.gpu.energy import GPUEnergyModel
from repro.gpu.kernels import GPUCostParameters
from repro.gpu.simulator import GPUSimulator
from repro.hmc.address import CustomAddressMapping, DefaultAddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.device import HMCDevice
from repro.hmc.pe import PEDatapath
from repro.hmc.power import HMCPowerModel
from repro.hmc.vault import VaultWorkload
from repro.workloads.benchmarks import BenchmarkConfig, get_benchmark
from repro.workloads.layers_model import CapsNetWorkload
from repro.workloads.parallelism import Dimension


class DesignPoint(str, Enum):
    """Design points evaluated by the paper."""

    BASELINE_GPU = "baseline"
    GPU_ICP = "gpu-icp"
    PIM_CAPSNET = "pim-capsnet"
    PIM_INTRA = "pim-intra"
    PIM_INTER = "pim-inter"
    ALL_IN_PIM = "all-in-pim"
    RMAS_PIM = "rmas-pim"
    RMAS_GPU = "rmas-gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class RoutingComparison:
    """Routing-procedure execution result for one design point (Fig. 15/16)."""

    design: DesignPoint
    benchmark: str
    time_seconds: float
    energy_joules: float
    time_components: Dict[str, float] = field(default_factory=dict)
    energy_components: Dict[str, float] = field(default_factory=dict)
    dimension: Optional[Dimension] = None

    def speedup_over(self, other: "RoutingComparison") -> float:
        """Speedup of this design over ``other``."""
        if self.time_seconds <= 0:
            return float("inf")
        return other.time_seconds / self.time_seconds

    def energy_saving_over(self, other: "RoutingComparison") -> float:
        """Fractional energy saving of this design relative to ``other``."""
        if other.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / other.energy_joules


@dataclass
class EndToEndComparison:
    """Whole-inference execution result for one design point (Fig. 17)."""

    design: DesignPoint
    benchmark: str
    timing: PipelineTiming
    energy_joules: float
    host_stage_seconds: float
    routing_stage_seconds: float

    @property
    def time_seconds(self) -> float:
        """Total latency of the evaluated batch stream."""
        return self.timing.total_time

    def speedup_over(self, other: "EndToEndComparison") -> float:
        if self.time_seconds <= 0:
            return float("inf")
        return other.time_seconds / self.time_seconds

    def energy_saving_over(self, other: "EndToEndComparison") -> float:
        if other.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / other.energy_joules


class PIMCapsNet:
    """Hybrid GPU + HMC accelerator model for one CapsNet benchmark.

    Args:
        benchmark: Table-1 benchmark (name or configuration).
        gpu_device: host GPU (defaults to the paper's P100 baseline).
        gpu_params: GPU cost-model calibration.
        hmc_config: HMC configuration (32 vaults, 16 PEs/vault, 312.5 MHz).
        pipeline: batch-stream pipeline model.
        force_dimension: override the distributor's dimension choice
            (used by the Fig. 18 sweeps).
        rmas_queue_depth: average PE queue depth ``Q`` seen by the RMAS.
    """

    def __init__(
        self,
        benchmark: Union[str, BenchmarkConfig],
        gpu_device: Optional[GPUDevice] = None,
        gpu_params: Optional[GPUCostParameters] = None,
        hmc_config: Optional[HMCConfig] = None,
        pipeline: Optional[PipelineModel] = None,
        force_dimension: Optional[Dimension] = None,
        rmas_queue_depth: float = 8.0,
    ) -> None:
        self.benchmark = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        self.gpu_device = gpu_device or baseline_device()
        self.gpu_params = gpu_params or GPUCostParameters()
        self.hmc_config = hmc_config or HMCConfig()
        self.pipeline = pipeline or PipelineModel()
        self.force_dimension = force_dimension
        self.rmas_queue_depth = rmas_queue_depth

        self.workload = CapsNetWorkload(self.benchmark)
        self.gpu = GPUSimulator(self.gpu_device, self.gpu_params)
        self.gpu_energy = GPUEnergyModel(device=self.gpu_device)

        self.datapath = PEDatapath(frequency_hz=self.hmc_config.pe_frequency_hz)
        self.crossbar = Crossbar(self.hmc_config)
        self.intra_vault = IntraVaultDistributor(pes_per_vault=self.hmc_config.pes_per_vault)
        self.score_model = ExecutionScoreModel(
            config=self.hmc_config,
            datapath=self.datapath,
            crossbar=self.crossbar,
            intra_vault=self.intra_vault,
        )
        self.distributor = WorkloadDistributor(
            self.benchmark, self.hmc_config, score_model=self.score_model
        )
        self.hmc_power = HMCPowerModel(config=self.hmc_config)
        self.rmas = RuntimeMemoryAccessScheduler()
        self.contention = ContentionModel()

    # ------------------------------------------------------------------ helpers

    def distribution_plan(self) -> DistributionPlan:
        """The plan PIM-CapsNet uses (best scoring, unless a dimension is forced)."""
        if self.force_dimension is not None:
            return self.distributor.plan_for_dimension(self.force_dimension)
        return self.distributor.best_plan()

    def _hmc_device(self, custom_mapping: bool) -> HMCDevice:
        mapping_cls = CustomAddressMapping if custom_mapping else DefaultAddressMapping
        return HMCDevice(
            config=self.hmc_config,
            mapping=mapping_cls(self.hmc_config),
            crossbar=self.crossbar,
            datapath=self.datapath,
        )

    def _host_stage(self) -> Dict[str, float]:
        """Host-stage (Conv/PrimaryCaps/FC) time, flops and traffic on the GPU."""
        layers = self.workload.host_layers()
        time = sum(self.gpu.simulate_dense_layer(layer).total for layer in layers)
        flops = float(sum(layer.flops for layer in layers))
        traffic = float(sum(layer.traffic_bytes for layer in layers))
        return {"time": time, "flops": flops, "traffic": traffic}

    # ------------------------------------------------------------ routing procedure

    def simulate_routing(self, design: DesignPoint) -> RoutingComparison:
        """Routing-procedure time and energy for one design point."""
        if design in (DesignPoint.BASELINE_GPU, DesignPoint.GPU_ICP):
            return self._routing_on_gpu(design)
        return self._routing_on_hmc(design)

    def _routing_on_gpu(self, design: DesignPoint) -> RoutingComparison:
        simulator = GPUSimulator(
            self.gpu_device, self.gpu_params, ideal_cache=(design is DesignPoint.GPU_ICP)
        )
        profile = simulator.simulate_routing(self.workload.routing)
        energy = self.gpu_energy.phase_energy(
            profile.total_time,
            flops=self.workload.routing.total_flops(),
            dram_bytes=profile.offchip_traffic_bytes,
        )
        timing = profile.timing
        return RoutingComparison(
            design=design,
            benchmark=self.benchmark.name,
            time_seconds=profile.total_time,
            energy_joules=energy.total,
            time_components={
                "compute": timing.compute,
                "memory": timing.memory,
                "sync": timing.sync,
                "overhead": timing.overhead,
            },
            energy_components=energy.as_dict(),
        )

    def _routing_on_hmc(self, design: DesignPoint) -> RoutingComparison:
        plan = self.distribution_plan()
        custom_mapping = design is not DesignPoint.PIM_INTER
        device = self._hmc_device(custom_mapping=custom_mapping)

        crossbar_payload = plan.crossbar_payload_bytes
        crossbar_packets = plan.crossbar_packets
        per_vault_dram = plan.per_vault_dram_bytes
        receiver_ports = 1
        if design is DesignPoint.PIM_INTRA:
            # Without the inter-vault data placement the operands stay
            # interleaved across all vaults: (num_vaults-1)/num_vaults of every
            # access is remote and must cross the crossbar as 16-byte blocks,
            # spread over every vault port (all-to-all pattern).
            remote_fraction = (self.hmc_config.num_vaults - 1) / self.hmc_config.num_vaults
            remote_bytes = plan.total_dram_bytes * remote_fraction
            crossbar_payload = remote_bytes
            crossbar_packets = remote_bytes / self.hmc_config.block_bytes
            per_vault_dram = plan.total_dram_bytes / self.hmc_config.num_vaults
            receiver_ports = self.hmc_config.num_vaults

        utilization = self.intra_vault.utilization(
            plan.per_vault_parallel_suboperations, plan.secondary_parallelism
        )
        per_vault = VaultWorkload(
            operations=plan.per_vault_operations,
            dram_bytes=per_vault_dram,
            concurrent_requesters=self.hmc_config.pes_per_vault,
            pe_utilization=utilization,
        )
        execution = device.execute_distributed(
            per_vault,
            crossbar_payload_bytes=crossbar_payload,
            crossbar_packets=crossbar_packets,
            vaults_used=plan.vaults_used,
            crossbar_receiver_ports=receiver_ports,
        )
        energy = self.hmc_power.energy(
            execution,
            total_operations=plan.total_operations,
            total_dram_bytes=plan.total_dram_bytes,
            crossbar_payload_bytes=crossbar_payload,
        )
        return RoutingComparison(
            design=design,
            benchmark=self.benchmark.name,
            time_seconds=execution.total_time,
            energy_joules=energy.total,
            time_components={
                "execution": execution.execution_time,
                "xbar": execution.crossbar_time,
                "vrs": execution.vrs_time,
            },
            energy_components=energy.as_dict(),
            dimension=plan.dimension,
        )

    # ------------------------------------------------------------------ end to end

    def simulate_end_to_end(self, design: DesignPoint) -> EndToEndComparison:
        """Whole-inference latency and energy for one design point."""
        host = self._host_stage()
        routing_flops = self.workload.routing.total_flops()

        if design in (DesignPoint.BASELINE_GPU, DesignPoint.GPU_ICP):
            rp = self.simulate_routing(design)
            timing = self.pipeline.serial(host["time"], rp.time_seconds)
            host_energy = self.gpu_energy.phase_energy(host["time"], host["flops"], host["traffic"])
            energy = self.pipeline.num_batches * (host_energy.total + rp.energy_joules)
            return EndToEndComparison(
                design=design,
                benchmark=self.benchmark.name,
                timing=timing,
                energy_joules=energy,
                host_stage_seconds=host["time"],
                routing_stage_seconds=rp.time_seconds,
            )

        if design is DesignPoint.ALL_IN_PIM:
            rp = self.simulate_routing(DesignPoint.PIM_CAPSNET)
            device = self._hmc_device(custom_mapping=True)
            host_execution = device.execute_dense(host["flops"], host["traffic"])
            host_time = host_execution.total_time
            timing = self.pipeline.serial(host_time, rp.time_seconds)
            host_energy = self.hmc_power.energy(
                host_execution,
                total_operations=_dense_operation_mix(host["flops"]),
                total_dram_bytes=host["traffic"],
                crossbar_payload_bytes=0.0,
            )
            # With the whole network in memory the host GPU has no work at all
            # and is assumed to be power-gated, so no idle energy is charged.
            energy = self.pipeline.num_batches * (host_energy.total + rp.energy_joules)
            return EndToEndComparison(
                design=design,
                benchmark=self.benchmark.name,
                timing=timing,
                energy_joules=energy,
                host_stage_seconds=host_time,
                routing_stage_seconds=rp.time_seconds,
            )

        # Pipelined designs (PIM-CapsNet and the two naive schedulers).
        policy = {
            DesignPoint.PIM_CAPSNET: SchedulerPolicy.RMAS,
            DesignPoint.PIM_INTRA: SchedulerPolicy.RMAS,
            DesignPoint.PIM_INTER: SchedulerPolicy.RMAS,
            DesignPoint.RMAS_PIM: SchedulerPolicy.PIM_PRIORITY,
            DesignPoint.RMAS_GPU: SchedulerPolicy.GPU_PRIORITY,
        }[design]
        rp_design = design if design in (DesignPoint.PIM_INTRA, DesignPoint.PIM_INTER) else DesignPoint.PIM_CAPSNET
        rp = self.simulate_routing(rp_design)
        if policy is SchedulerPolicy.RMAS:
            # The runtime scheduler balances the two pipeline stages: it picks
            # the host-priority share that minimizes the steady-state latency.
            share = self.contention.optimal_share(
                host["time"], rp.time_seconds, self.hmc_config.num_vaults
            )
            host_slowdown, pim_slowdown = self.contention.slowdowns_for_share(share)
        else:
            decision = self.rmas.decide(
                targeted_vaults=self.hmc_config.num_vaults, queue_depth=self.rmas_queue_depth
            )
            host_slowdown, pim_slowdown = self.contention.slowdowns(policy, decision)
        host_time = host["time"] * host_slowdown
        rp_time = rp.time_seconds * pim_slowdown
        timing = self.pipeline.pipelined(host_time, rp_time)

        host_energy = self.gpu_energy.phase_energy(host_time, host["flops"], host["traffic"])
        pim_energy_scale = pim_slowdown  # static HMC power accrues over the longer time
        gpu_idle_time = max(0.0, timing.total_time - self.pipeline.num_batches * host_time)
        energy = (
            self.pipeline.num_batches * (host_energy.total + rp.energy_joules * pim_energy_scale)
            + self.gpu_energy.idle_energy(gpu_idle_time).total
        )
        return EndToEndComparison(
            design=design,
            benchmark=self.benchmark.name,
            timing=timing,
            energy_joules=energy,
            host_stage_seconds=host_time,
            routing_stage_seconds=rp_time,
        )

    # ------------------------------------------------------------------ conveniences

    def compare_routing(self, designs: Optional[list[DesignPoint]] = None) -> Dict[DesignPoint, RoutingComparison]:
        """Routing results for several design points."""
        designs = designs or [
            DesignPoint.BASELINE_GPU,
            DesignPoint.GPU_ICP,
            DesignPoint.PIM_INTRA,
            DesignPoint.PIM_INTER,
            DesignPoint.PIM_CAPSNET,
        ]
        return {design: self.simulate_routing(design) for design in designs}

    def compare_end_to_end(
        self, designs: Optional[list[DesignPoint]] = None
    ) -> Dict[DesignPoint, EndToEndComparison]:
        """End-to-end results for several design points."""
        designs = designs or [
            DesignPoint.BASELINE_GPU,
            DesignPoint.ALL_IN_PIM,
            DesignPoint.RMAS_PIM,
            DesignPoint.RMAS_GPU,
            DesignPoint.PIM_CAPSNET,
        ]
        return {design: self.simulate_end_to_end(design) for design in designs}


def _dense_operation_mix(flops: float):
    """Operation mix of a dense stage executed on the HMC PEs (MACs only)."""
    from repro.hmc.pe import OperationMix, PEOperation

    return OperationMix().add(PEOperation.MAC, flops / 2.0)
