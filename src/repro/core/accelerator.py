"""Top-level PIM-CapsNet accelerator model and its design-point variants.

:class:`PIMCapsNet` ties the substrates together for one Table-1 benchmark:

* the GPU simulator provides the baseline (and GPU-ICP) routing times, the
  host-stage times and the GPU energy,
* the workload distributor + HMC device provide the in-memory routing times
  and energy for the PIM design points,
* the RMAS contention model and the pipeline model combine the two sides
  into end-to-end numbers.

The :class:`DesignPoint` enumeration covers every configuration evaluated in
Figs. 15-17 of the paper:

===============  ==============================================================
``BASELINE_GPU``  GPU-only execution with HBM memory
``GPU_ICP``       GPU with an ideal cache replacement policy
``PIM_CAPSNET``   the full proposal (inter-vault + intra-vault + mapping + RMAS)
``PIM_INTRA``     intra-vault design only (no inter-vault data placement)
``PIM_INTER``     inter-vault design only (no intra-vault bank-conflict fix)
``ALL_IN_PIM``    the whole network runs on the HMC
``RMAS_PIM``      pipelined design, PEs always win memory arbitration
``RMAS_GPU``      pipelined design, GPU always wins memory arbitration
===============  ==============================================================
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Union

from repro.core.distribution import DistributionPlan, ExecutionScoreModel, WorkloadDistributor
from repro.core.intra_vault import IntraVaultDistributor
from repro.core.pipeline import PipelineModel, PipelineTiming
from repro.core.rmas import ContentionModel, RuntimeMemoryAccessScheduler
from repro.gpu.devices import GPUDevice, baseline_device
from repro.gpu.energy import GPUEnergyModel
from repro.gpu.kernels import GPUCostParameters
from repro.gpu.simulator import GPUSimulator
from repro.hmc.address import CustomAddressMapping, DefaultAddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.device import HMCDevice
from repro.hmc.pe import PEDatapath
from repro.hmc.power import HMCPowerModel
from repro.workloads.benchmarks import BenchmarkConfig, get_benchmark
from repro.workloads.layers_model import CapsNetWorkload
from repro.workloads.parallelism import Dimension


class DesignPoint(str, Enum):
    """Design points evaluated by the paper."""

    BASELINE_GPU = "baseline"
    GPU_ICP = "gpu-icp"
    PIM_CAPSNET = "pim-capsnet"
    PIM_INTRA = "pim-intra"
    PIM_INTER = "pim-inter"
    ALL_IN_PIM = "all-in-pim"
    RMAS_PIM = "rmas-pim"
    RMAS_GPU = "rmas-gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class RoutingComparison:
    """Routing-procedure execution result for one design point (Fig. 15/16).

    ``design`` is usually a :class:`DesignPoint` member but may be any
    registry key when a custom
    :class:`~repro.engine.strategies.DesignPointStrategy` produced the result.
    """

    design: Union[DesignPoint, str]
    benchmark: str
    time_seconds: float
    energy_joules: float
    time_components: Dict[str, float] = field(default_factory=dict)
    energy_components: Dict[str, float] = field(default_factory=dict)
    dimension: Optional[Dimension] = None

    def speedup_over(self, other: "RoutingComparison") -> float:
        """Speedup of this design over ``other``."""
        if self.time_seconds <= 0:
            return float("inf")
        return other.time_seconds / self.time_seconds

    def energy_saving_over(self, other: "RoutingComparison") -> float:
        """Fractional energy saving of this design relative to ``other``."""
        if other.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / other.energy_joules


@dataclass
class EndToEndComparison:
    """Whole-inference execution result for one design point (Fig. 17)."""

    design: Union[DesignPoint, str]
    benchmark: str
    timing: PipelineTiming
    energy_joules: float
    host_stage_seconds: float
    routing_stage_seconds: float

    @property
    def time_seconds(self) -> float:
        """Total latency of the evaluated batch stream."""
        return self.timing.total_time

    def speedup_over(self, other: "EndToEndComparison") -> float:
        if self.time_seconds <= 0:
            return float("inf")
        return other.time_seconds / self.time_seconds

    def energy_saving_over(self, other: "EndToEndComparison") -> float:
        if other.energy_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / other.energy_joules


class PIMCapsNet:
    """Hybrid GPU + HMC accelerator model for one CapsNet benchmark.

    Args:
        benchmark: Table-1 benchmark (name or configuration).
        gpu_device: host GPU (defaults to the paper's P100 baseline).
        gpu_params: GPU cost-model calibration.
        hmc_config: HMC configuration (32 vaults, 16 PEs/vault, 312.5 MHz).
        pipeline: batch-stream pipeline model.
        force_dimension: override the distributor's dimension choice
            (used by the Fig. 18 sweeps).
        rmas_queue_depth: average PE queue depth ``Q`` seen by the RMAS.
    """

    def __init__(
        self,
        benchmark: Union[str, BenchmarkConfig],
        gpu_device: Optional[GPUDevice] = None,
        gpu_params: Optional[GPUCostParameters] = None,
        hmc_config: Optional[HMCConfig] = None,
        pipeline: Optional[PipelineModel] = None,
        force_dimension: Optional[Dimension] = None,
        rmas_queue_depth: float = 8.0,
    ) -> None:
        self.benchmark = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        self.gpu_device = gpu_device or baseline_device()
        self.gpu_params = gpu_params or GPUCostParameters()
        self.hmc_config = hmc_config or HMCConfig()
        self.pipeline = pipeline or PipelineModel()
        self.force_dimension = force_dimension
        self.rmas_queue_depth = rmas_queue_depth

        self.workload = CapsNetWorkload(self.benchmark)
        self.gpu = GPUSimulator(self.gpu_device, self.gpu_params)
        self.gpu_energy = GPUEnergyModel(device=self.gpu_device)

        self.datapath = PEDatapath(frequency_hz=self.hmc_config.pe_frequency_hz)
        self.crossbar = Crossbar(self.hmc_config)
        self.intra_vault = IntraVaultDistributor(pes_per_vault=self.hmc_config.pes_per_vault)
        self.score_model = ExecutionScoreModel(
            config=self.hmc_config,
            datapath=self.datapath,
            crossbar=self.crossbar,
            intra_vault=self.intra_vault,
        )
        self.distributor = WorkloadDistributor(
            self.benchmark, self.hmc_config, score_model=self.score_model
        )
        self.hmc_power = HMCPowerModel(config=self.hmc_config)
        self.rmas = RuntimeMemoryAccessScheduler()
        self.contention = ContentionModel()

        # Memoized simulation results.  The model is immutable in practice,
        # so every (kind, design) simulation is deterministic and can be
        # cached per instance; ``clear_cache`` resets it after a manual
        # attribute mutation.  The RLock makes the cache safe under the
        # engine's thread pool (reentrant because end-to-end strategies call
        # back into ``simulate_routing``).
        self._simulation_lock = threading.RLock()
        self._result_cache: Dict[tuple, object] = {}
        self._host_stage_cache: Optional[Dict[str, float]] = None
        self.simulations_executed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ helpers

    def distribution_plan(self) -> DistributionPlan:
        """The plan PIM-CapsNet uses (best scoring, unless a dimension is forced)."""
        if self.force_dimension is not None:
            return self.distributor.plan_for_dimension(self.force_dimension)
        return self.distributor.best_plan()

    def hmc_device(self, custom_mapping: bool) -> HMCDevice:
        """An HMC device with the paper's custom or the default address mapping."""
        mapping_cls = CustomAddressMapping if custom_mapping else DefaultAddressMapping
        return HMCDevice(
            config=self.hmc_config,
            mapping=mapping_cls(self.hmc_config),
            crossbar=self.crossbar,
            datapath=self.datapath,
        )

    def host_stage(self) -> Dict[str, float]:
        """Host-stage (Conv/PrimaryCaps/FC) time, flops and traffic on the GPU."""
        with self._simulation_lock:
            if self._host_stage_cache is None:
                layers = self.workload.host_layers()
                time = sum(self.gpu.simulate_dense_layer(layer).total for layer in layers)
                flops = float(sum(layer.flops for layer in layers))
                traffic = float(sum(layer.traffic_bytes for layer in layers))
                self._host_stage_cache = {"time": time, "flops": flops, "traffic": traffic}
            return dict(self._host_stage_cache)

    # Backwards-compatible aliases for the pre-engine private helpers.
    _hmc_device = hmc_device
    _host_stage = host_stage

    def clear_cache(self) -> None:
        """Drop memoized simulation results (after mutating model attributes)."""
        with self._simulation_lock:
            self._result_cache.clear()
            self._host_stage_cache = None

    # ----------------------------------------------------------------- simulation

    def simulate_routing(self, design: Union[DesignPoint, str]) -> RoutingComparison:
        """Routing-procedure time and energy for one design point.

        Dispatches to the :class:`~repro.engine.strategies.DesignPointStrategy`
        registered for ``design``; results are memoized per instance.
        """
        return self._simulate("routing", design)

    def simulate_end_to_end(self, design: Union[DesignPoint, str]) -> EndToEndComparison:
        """Whole-inference latency and energy for one design point.

        Dispatches to the :class:`~repro.engine.strategies.DesignPointStrategy`
        registered for ``design``; results are memoized per instance.
        """
        return self._simulate("end_to_end", design)

    def _simulate(self, kind: str, design: Union[DesignPoint, str]):
        # Imported lazily: repro.engine imports this module at load time.
        from repro.engine.strategies import design_key, get_strategy

        key = (kind, design_key(design))
        with self._simulation_lock:
            cached = self._result_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                # Every caller gets a private copy: the pre-engine code
                # returned fresh objects per call, so consumers are free to
                # mutate results in place without corrupting other
                # experiments reading the same cache.
                return copy.deepcopy(cached)
            strategy = get_strategy(design)
            self.simulations_executed += 1
            if kind == "routing":
                result = strategy.simulate_routing(self, design)
            else:
                result = strategy.simulate_end_to_end(self, design)
            self._result_cache[key] = copy.deepcopy(result)
            return result

    # ------------------------------------------------------------------ conveniences

    def compare_routing(self, designs: Optional[list[DesignPoint]] = None) -> Dict[DesignPoint, RoutingComparison]:
        """Routing results for several design points."""
        designs = designs or [
            DesignPoint.BASELINE_GPU,
            DesignPoint.GPU_ICP,
            DesignPoint.PIM_INTRA,
            DesignPoint.PIM_INTER,
            DesignPoint.PIM_CAPSNET,
        ]
        return {design: self.simulate_routing(design) for design in designs}

    def compare_end_to_end(
        self, designs: Optional[list[DesignPoint]] = None
    ) -> Dict[DesignPoint, EndToEndComparison]:
        """End-to-end results for several design points."""
        designs = designs or [
            DesignPoint.BASELINE_GPU,
            DesignPoint.ALL_IN_PIM,
            DesignPoint.RMAS_PIM,
            DesignPoint.RMAS_GPU,
            DesignPoint.PIM_CAPSNET,
        ]
        return {design: self.simulate_end_to_end(design) for design in designs}


def _dense_operation_mix(flops: float):
    """Deprecated alias of :func:`repro.engine.design_points.dense_operation_mix`."""
    from repro.engine.design_points import dense_operation_mix

    return dense_operation_mix(flops)
