"""Logic-layer crossbar model.

The HMC logic layer routes traffic between the SerDes links and the vaults
through a crossbar switch.  PIM-CapsNet's inter-vault design tries to keep
the crossbar out of the critical path; the PIM-Intra design point (no
inter-vault optimization) pushes *all* routing data through it, which is why
the crossbar shows up as ~45% of PIM-Intra's execution time (Fig. 16a).

Two cost components are modelled:

* a per-byte cost limited by the crossbar's effective bandwidth (raw switch
  bandwidth derated by payload efficiency and contention), and
* a per-packet cost covering arbitration and serialization at the receiving
  vault's port -- this is what penalizes distribution dimensions that
  exchange many small packets and what makes the optimal dimension shift
  with PE frequency in Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class TransferEstimate:
    """Cost estimate of one inter-vault transfer pattern."""

    payload_bytes: float
    packet_count: float
    bandwidth_time: float
    packet_time: float

    @property
    def total_time(self) -> float:
        return self.bandwidth_time + self.packet_time

    @property
    def wire_bytes(self) -> float:
        """Bytes actually moved including packet overheads."""
        return self.payload_bytes + self.packet_count * 0.0  # overhead folded into bandwidth_time


@dataclass(frozen=True)
class Crossbar:
    """Crossbar switch of the HMC logic layer.

    Attributes:
        config: HMC configuration.
        raw_bandwidth_gbs: switch bandwidth before derating (defaults to the
            aggregate internal bandwidth).
        contention_efficiency: fraction of the raw bandwidth achievable under
            the many-to-many traffic the routing procedure generates.
        packet_latency_ns: arbitration + serialization cost per packet at the
            hot (receiving) port.
    """

    config: HMCConfig
    raw_bandwidth_gbs: float = 0.0
    contention_efficiency: float = 0.55
    packet_latency_ns: float = 8.0

    def __post_init__(self) -> None:
        if self.raw_bandwidth_gbs <= 0:
            object.__setattr__(self, "raw_bandwidth_gbs", self.config.internal_bandwidth_gbs)
        if not 0.0 < self.contention_efficiency <= 1.0:
            raise ValueError("contention_efficiency must be in (0, 1]")
        if self.packet_latency_ns < 0:
            raise ValueError("packet_latency_ns must be non-negative")

    @property
    def effective_bandwidth_bytes(self) -> float:
        """Usable crossbar bandwidth (bytes/s) after payload and contention derating.

        Every ``block_bytes`` payload carries ``packet_overhead_bytes`` of
        head/tail flits, and the many-to-many pattern only sustains a
        fraction of the switch bandwidth.
        """
        cfg = self.config
        payload_efficiency = cfg.block_bytes / float(cfg.block_bytes + cfg.packet_overhead_bytes)
        return (
            self.raw_bandwidth_gbs * 1e9 * payload_efficiency * self.contention_efficiency
        )

    def transfer(
        self, payload_bytes: float, packet_count: float, receiver_ports: int = 1
    ) -> TransferEstimate:
        """Estimate the cost of moving ``payload_bytes`` in ``packet_count`` packets.

        Args:
            payload_bytes: useful bytes transferred.
            packet_count: number of packets carrying them.
            receiver_ports: number of vault ports the packets are spread over.
                Aggregation patterns (all-reduce into one vault) serialize at a
                single hot port (``1``); all-to-all patterns spread across
                every vault.
        """
        if payload_bytes < 0 or packet_count < 0:
            raise ValueError("payload and packet counts must be non-negative")
        if receiver_ports < 1:
            raise ValueError("receiver_ports must be positive")
        bandwidth_time = payload_bytes / self.effective_bandwidth_bytes
        packet_time = packet_count * self.packet_latency_ns * 1e-9 / receiver_ports
        return TransferEstimate(
            payload_bytes=payload_bytes,
            packet_count=packet_count,
            bandwidth_time=bandwidth_time,
            packet_time=packet_time,
        )

    def broadcast(self, payload_bytes_per_vault: float, packets_per_vault: float) -> TransferEstimate:
        """Cost of broadcasting data from one vault to every other vault."""
        other = self.config.num_vaults - 1
        return self.transfer(payload_bytes_per_vault * other, packets_per_vault * other)
