"""Thermal headroom check for the 3D-stacked PIM logic (Sec. 6.5).

Adding compute logic under a DRAM stack raises the cube's power density;
the paper cites a 10 W thermal-design-power headroom for logic added to an
HMC-class stack and verifies its 2.24 W average logic power fits comfortably.
This module reproduces that check and lets sensitivity studies explore how
many PEs / what frequency would exhaust the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hmc.config import HMCConfig


@dataclass
class ThermalReport:
    """Outcome of a thermal-budget check."""

    logic_power_watts: float
    budget_watts: float

    @property
    def within_budget(self) -> bool:
        """Whether the added logic power fits the thermal headroom."""
        return self.logic_power_watts <= self.budget_watts

    @property
    def headroom_watts(self) -> float:
        """Remaining budget (negative when exceeded)."""
        return self.budget_watts - self.logic_power_watts

    @property
    def utilization(self) -> float:
        """Fraction of the thermal budget consumed."""
        return self.logic_power_watts / self.budget_watts if self.budget_watts > 0 else float("inf")


@dataclass(frozen=True)
class ThermalModel:
    """Thermal budget model of the HMC logic layer.

    Attributes:
        config: device configuration.
        logic_tdp_watts: power headroom available to added logic (10 W per
            the paper's reference).
        pe_dynamic_watts_at_base: average dynamic power of one PE at the base
            312.5 MHz frequency; scaled linearly with frequency for sweeps.
        base_frequency_mhz: the reference frequency of ``pe_dynamic_watts_at_base``.
    """

    config: HMCConfig
    logic_tdp_watts: float = 10.0
    pe_dynamic_watts_at_base: float = 0.004
    base_frequency_mhz: float = 312.5

    def logic_power(self, frequency_mhz: float | None = None) -> float:
        """Average power of all PEs plus fixed controller/RMAS power at a frequency."""
        frequency = frequency_mhz if frequency_mhz is not None else self.config.pe_frequency_mhz
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        scale = frequency / self.base_frequency_mhz
        pe_power = self.config.total_pes * self.pe_dynamic_watts_at_base * scale
        controller_power = 0.005 * self.config.num_vaults + 0.02  # controllers + RMAS
        return pe_power + controller_power

    def check(self, frequency_mhz: float | None = None) -> ThermalReport:
        """Check the logic power at a PE frequency against the thermal budget."""
        return ThermalReport(
            logic_power_watts=self.logic_power(frequency_mhz),
            budget_watts=self.logic_tdp_watts,
        )

    def max_frequency_mhz(self) -> float:
        """Highest PE frequency that still fits the thermal budget."""
        controller_power = 0.005 * self.config.num_vaults + 0.02
        budget_for_pes = self.logic_tdp_watts - controller_power
        if budget_for_pes <= 0:
            return 0.0
        per_pe_budget = budget_for_pes / self.config.total_pes
        return self.base_frequency_mhz * per_pe_budget / self.pe_dynamic_watts_at_base
