"""Hybrid Memory Cube (HMC) simulator.

The paper integrates its routing-procedure accelerators into the logic layer
of an HMC (Gen3-class: 32 vaults x 16 banks, 320 GB/s external links,
512 GB/s aggregate internal bandwidth).  This package models the pieces of
that device that determine PIM-CapsNet's performance and energy:

* :mod:`repro.hmc.config` -- device geometry, bandwidths, PE count/frequency.
* :mod:`repro.hmc.pe` -- the customized processing element datapath
  (MAC / add / multiply / bit-shift flows and the approximated special
  functions) with per-operation cycle costs.
* :mod:`repro.hmc.dram` -- vault DRAM timing and bank-conflict behaviour.
* :mod:`repro.hmc.address` -- the default HMC address mapping and the
  paper's customized mapping (Sec. 5.3.1).
* :mod:`repro.hmc.crossbar` -- the logic-layer crossbar connecting vaults.
* :mod:`repro.hmc.vault` -- a vault: sub-memory controller + 16 PEs + banks.
* :mod:`repro.hmc.device` -- the full cube.
* :mod:`repro.hmc.power` / :mod:`repro.hmc.thermal` -- energy, area and
  thermal-headroom models (Sec. 6.5).
"""

from repro.hmc.config import HMCConfig
from repro.hmc.pe import PEDatapath, PEOperation, OperationMix
from repro.hmc.dram import BankTimings, VaultMemoryModel
from repro.hmc.address import (
    AddressMapping,
    CustomAddressMapping,
    DefaultAddressMapping,
    MappedAddress,
)
from repro.hmc.crossbar import Crossbar, TransferEstimate
from repro.hmc.vault import Vault, VaultExecution, VaultWorkload
from repro.hmc.device import HMCDevice, HMCExecution
from repro.hmc.power import HMCPowerModel, HMCEnergyBreakdown, LogicAreaModel
from repro.hmc.thermal import ThermalModel, ThermalReport

__all__ = [
    "HMCConfig",
    "PEDatapath",
    "PEOperation",
    "OperationMix",
    "BankTimings",
    "VaultMemoryModel",
    "AddressMapping",
    "CustomAddressMapping",
    "DefaultAddressMapping",
    "MappedAddress",
    "Crossbar",
    "TransferEstimate",
    "Vault",
    "VaultExecution",
    "VaultWorkload",
    "HMCDevice",
    "HMCExecution",
    "HMCPowerModel",
    "HMCEnergyBreakdown",
    "LogicAreaModel",
    "ThermalModel",
    "ThermalReport",
]
