"""HMC device configuration (Table 4 of the paper / HMC 2.1 specification)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HMCConfig:
    """Geometry and bandwidth parameters of the Hybrid Memory Cube.

    The defaults follow Table 4 of the paper and the HMC 2.1 specification:
    an 8 GB cube with 32 vaults of 16 banks each, 320 GB/s of external
    (SerDes link) bandwidth and 512 GB/s of aggregate internal (TSV)
    bandwidth, with 16 processing elements per vault running at 312.5 MHz.

    Attributes:
        num_vaults: number of vaults (sub-memory controllers).
        banks_per_vault: DRAM banks per vault.
        capacity_gb: total DRAM capacity in GB.
        external_bandwidth_gbs: full-duplex SerDes link bandwidth (GB/s).
        internal_bandwidth_gbs: aggregate TSV bandwidth across all vaults (GB/s).
        block_bytes: memory access granularity (a "block", 16 B).
        max_block_bytes: maximum sub-page ("MAX block") size in bytes.
        packet_overhead_bytes: packet head + tail bytes added to each request
            crossing the crossbar (``SIZE_pkt`` in the paper's Eqs. 8/10/12).
        pes_per_vault: processing elements integrated per vault.
        pe_frequency_mhz: PE clock frequency in MHz.
    """

    num_vaults: int = 32
    banks_per_vault: int = 16
    capacity_gb: float = 8.0
    external_bandwidth_gbs: float = 320.0
    internal_bandwidth_gbs: float = 512.0
    block_bytes: int = 16
    max_block_bytes: int = 256
    packet_overhead_bytes: int = 16
    pes_per_vault: int = 16
    pe_frequency_mhz: float = 312.5

    def __post_init__(self) -> None:
        if self.num_vaults < 1 or self.banks_per_vault < 1 or self.pes_per_vault < 1:
            raise ValueError("vault/bank/PE counts must be positive")
        if self.block_bytes < 1 or self.max_block_bytes < self.block_bytes:
            raise ValueError("invalid block / max-block sizes")
        if min(self.external_bandwidth_gbs, self.internal_bandwidth_gbs) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.pe_frequency_mhz <= 0:
            raise ValueError("PE frequency must be positive")

    # -- derived quantities ----------------------------------------------------

    @property
    def pe_frequency_hz(self) -> float:
        """PE clock frequency in Hz."""
        return self.pe_frequency_mhz * 1e6

    @property
    def external_bandwidth_bytes(self) -> float:
        """External link bandwidth in bytes/s."""
        return self.external_bandwidth_gbs * 1e9

    @property
    def internal_bandwidth_bytes(self) -> float:
        """Aggregate internal bandwidth in bytes/s."""
        return self.internal_bandwidth_gbs * 1e9

    @property
    def vault_bandwidth_bytes(self) -> float:
        """Internal bandwidth available to a single vault in bytes/s."""
        return self.internal_bandwidth_bytes / self.num_vaults

    @property
    def bank_bandwidth_bytes(self) -> float:
        """Service bandwidth of one DRAM bank in bytes/s."""
        return self.vault_bandwidth_bytes / self.banks_per_vault

    @property
    def capacity_bytes(self) -> int:
        """Total DRAM capacity in bytes."""
        return int(self.capacity_gb * (1 << 30))

    @property
    def bytes_per_vault(self) -> int:
        """DRAM capacity of one vault in bytes."""
        return self.capacity_bytes // self.num_vaults

    @property
    def total_pes(self) -> int:
        """Total number of processing elements in the cube."""
        return self.num_vaults * self.pes_per_vault

    # -- variants ----------------------------------------------------------------

    def with_pe_frequency(self, frequency_mhz: float) -> "HMCConfig":
        """Return a copy with a different PE frequency (Fig. 18 sweeps)."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        return replace(self, pe_frequency_mhz=frequency_mhz)

    def with_pes_per_vault(self, pes: int) -> "HMCConfig":
        """Return a copy with a different PE count per vault."""
        if pes < 1:
            raise ValueError("pes must be positive")
        return replace(self, pes_per_vault=pes)
