"""HMC memory address mapping schemes (Sec. 5.3.1).

The HMC access granularity is a 16-byte *block*; a *sub-page* ("MAX block")
groups several consecutive blocks inside one bank.  The default HMC Gen3
mapping spreads consecutive sub-pages across vaults first and banks second
(sequential interleaving), which maximizes link bandwidth for a host but is
exactly wrong for PIM-CapsNet:

* the inter-vault design wants all data of one workload snippet resident in
  the snippet's own vault (otherwise every PE access crosses the crossbar);
* the intra-vault design wants the *concurrent* requests of the 16 PEs to
  land in *different* banks (otherwise they serialize on a single bank).

The customized mapping therefore (a) moves the vault ID to the highest field
of the block address so consecutive data stays inside one vault, and (b)
spreads consecutive blocks across the banks of that vault while keeping each
PE's own consecutive blocks in one bank by sizing the sub-page dynamically
from indicator bits (the low 4 ignored bits of the address).

Both mappings are implemented bit-exactly so tests can verify the layout,
and both expose a :meth:`AddressMapping.bank_conflict_factor` summarizing
how badly concurrent PE requests collide, which the vault timing model uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class MappedAddress:
    """Result of translating a physical byte address.

    Attributes:
        vault: vault index.
        bank: bank index inside the vault.
        subpage: sub-page index inside the bank.
        block_offset: block index inside the sub-page.
    """

    vault: int
    bank: int
    subpage: int
    block_offset: int


class AddressMapping:
    """Base class of the address mapping schemes."""

    def __init__(self, config: HMCConfig) -> None:
        self.config = config

    # -- interface -------------------------------------------------------------

    def map(self, address: int, request_bytes: int = 16) -> MappedAddress:  # pragma: no cover
        raise NotImplementedError

    def bank_conflict_factor(self, concurrent_requesters: int) -> float:  # pragma: no cover
        raise NotImplementedError

    def keeps_snippet_local(self) -> bool:  # pragma: no cover
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def _block_index(self, address: int) -> int:
        if address < 0:
            raise ValueError("address must be non-negative")
        return address // self.config.block_bytes

    def subpage_blocks(self, request_bytes: int) -> int:
        """Number of 16-byte blocks in the sub-page serving ``request_bytes``.

        The customized mapping sizes the sub-page to the request (16 B to the
        MAX block size); the default mapping always uses the MAX block.
        """
        blocks = max(1, -(-request_bytes // self.config.block_bytes))
        max_blocks = self.config.max_block_bytes // self.config.block_bytes
        # Round up to the next power of two, capped at the MAX block.
        size = 1
        while size < blocks and size < max_blocks:
            size *= 2
        return size


class DefaultAddressMapping(AddressMapping):
    """HMC Gen3 default mapping: sub-pages interleave across vaults, then banks.

    Block address fields from low to high: block-in-subpage, vault ID,
    bank ID, sub-page ID (Fig. 13a).
    """

    def map(self, address: int, request_bytes: int = 16) -> MappedAddress:
        cfg = self.config
        block = self._block_index(address)
        blocks_per_subpage = cfg.max_block_bytes // cfg.block_bytes
        block_offset = block % blocks_per_subpage
        rest = block // blocks_per_subpage
        vault = rest % cfg.num_vaults
        rest //= cfg.num_vaults
        bank = rest % cfg.banks_per_vault
        subpage = rest // cfg.banks_per_vault
        return MappedAddress(vault=vault, bank=bank, subpage=subpage, block_offset=block_offset)

    def keeps_snippet_local(self) -> bool:
        """Consecutive data spreads over all vaults, so snippets are NOT local."""
        return False

    def bank_conflict_factor(self, concurrent_requesters: int) -> float:
        """Serialization factor of concurrent PE requests.

        With the default mapping the consecutive blocks a snippet touches sit
        in the *same* bank position of every vault, so once data is forced
        into a single vault (as the inter-vault design requires) the
        concurrent requests of the PEs pile onto a small subset of the banks
        and largely serialize: on average roughly half of the requesters
        collide per scheduling window, so the factor grows with the requester
        count (capped by the bank count).
        """
        if concurrent_requesters < 1:
            raise ValueError("concurrent_requesters must be positive")
        return float(max(1.0, min(concurrent_requesters, self.config.banks_per_vault) / 2.0))


class CustomAddressMapping(AddressMapping):
    """The paper's customized mapping (Fig. 13b).

    The vault ID occupies the highest block-address field so consecutive data
    stays inside one vault; inside the vault consecutive *sub-pages* spread
    across banks, and the sub-page size adapts to the request size (via the
    indicator bits) so the consecutive blocks requested by a single PE stay
    within one bank.
    """

    #: Residual conflict factor: even with the custom mapping a few concurrent
    #: requests occasionally land in the same bank (row-buffer and refresh
    #: interference), so service is slightly slower than perfectly parallel.
    RESIDUAL_CONFLICT = 1.1

    def map(self, address: int, request_bytes: int = 16) -> MappedAddress:
        cfg = self.config
        block = self._block_index(address)
        blocks_per_subpage = self.subpage_blocks(request_bytes)
        block_offset = block % blocks_per_subpage
        rest = block // blocks_per_subpage
        bank = rest % cfg.banks_per_vault
        rest //= cfg.banks_per_vault
        subpages_per_bank = max(
            1,
            cfg.bytes_per_vault // (cfg.banks_per_vault * blocks_per_subpage * cfg.block_bytes),
        )
        subpage = rest % subpages_per_bank
        vault = (rest // subpages_per_bank) % cfg.num_vaults
        return MappedAddress(vault=vault, bank=bank, subpage=subpage, block_offset=block_offset)

    def keeps_snippet_local(self) -> bool:
        """Consecutive data stays within one vault."""
        return True

    def bank_conflict_factor(self, concurrent_requesters: int) -> float:
        """Concurrent PE requests spread over the banks; only residual conflicts remain."""
        if concurrent_requesters < 1:
            raise ValueError("concurrent_requesters must be positive")
        if concurrent_requesters <= self.config.banks_per_vault:
            return self.RESIDUAL_CONFLICT
        # More requesters than banks: the excess necessarily serializes.
        return self.RESIDUAL_CONFLICT * concurrent_requesters / self.config.banks_per_vault


def vault_histogram(
    mapping: AddressMapping, addresses: Sequence[int], request_bytes: int = 16
) -> Dict[int, int]:
    """Histogram of which vault each address maps to (testing/analysis helper)."""
    counts: Dict[int, int] = {}
    for address in addresses:
        vault = mapping.map(address, request_bytes).vault
        counts[vault] = counts.get(vault, 0) + 1
    return counts


def bank_histogram(
    mapping: AddressMapping, addresses: Sequence[int], request_bytes: int = 16
) -> Dict[int, int]:
    """Histogram of which bank (within its vault) each address maps to."""
    counts: Dict[int, int] = {}
    for address in addresses:
        bank = mapping.map(address, request_bytes).bank
        counts[bank] = counts.get(bank, 0) + 1
    return counts
