"""HMC power, energy and logic-area models (Sec. 6.5).

Energy is decomposed into the four categories Fig. 16(b) plots:

* **execution** -- dynamic energy of the PEs,
* **DRAM** -- energy of the bytes read/written in the vault DRAM partitions,
* **crossbar** -- energy of inter-vault traffic,
* **vault** -- the sub-memory controllers plus the static power of the cube
  (refresh, SerDes, logic leakage) integrated over the execution time.

The area model reproduces the paper's overhead analysis: the per-vault PEs,
the per-vault operation controller and the single RMAS module sum to about
3.11 mm^2, roughly 0.3% of the logic die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCExecution
from repro.hmc.pe import OperationMix


@dataclass
class HMCEnergyBreakdown:
    """Energy (joules) of one HMC execution, split by component."""

    execution: float = 0.0
    dram: float = 0.0
    crossbar: float = 0.0
    vault: float = 0.0

    @property
    def total(self) -> float:
        return self.execution + self.dram + self.crossbar + self.vault

    def merged_with(self, other: "HMCEnergyBreakdown") -> "HMCEnergyBreakdown":
        return HMCEnergyBreakdown(
            execution=self.execution + other.execution,
            dram=self.dram + other.dram,
            crossbar=self.crossbar + other.crossbar,
            vault=self.vault + other.vault,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "execution": self.execution,
            "dram": self.dram,
            "crossbar": self.crossbar,
            "vault": self.vault,
        }


@dataclass(frozen=True)
class HMCPowerModel:
    """Energy coefficients of the cube.

    Attributes:
        config: device configuration.
        pe_energy_per_op: dynamic energy per PE operation (joules).
        dram_energy_per_byte: energy per byte accessed in a vault's DRAM
            (TSV + bank access; ~3-4 pJ/bit for HMC-class internal accesses).
        crossbar_energy_per_byte: energy per byte crossing the crossbar.
        static_power_watts: background power of the cube (refresh, SerDes,
            controllers) while PIM execution is in flight.
        logic_power_watts: average power of the added PIM logic (the paper
            reports 2.24 W for all vaults' PEs plus the RMAS).
    """

    config: HMCConfig
    pe_energy_per_op: float = 4.0e-12
    dram_energy_per_byte: float = 28.0e-12
    crossbar_energy_per_byte: float = 6.0e-12
    static_power_watts: float = 7.5
    logic_power_watts: float = 2.24

    def __post_init__(self) -> None:
        for name in (
            "pe_energy_per_op",
            "dram_energy_per_byte",
            "crossbar_energy_per_byte",
            "static_power_watts",
            "logic_power_watts",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def energy(
        self,
        execution: HMCExecution,
        total_operations: OperationMix,
        total_dram_bytes: float,
        crossbar_payload_bytes: float,
    ) -> HMCEnergyBreakdown:
        """Energy of one distributed execution.

        Args:
            execution: the timing result (its total time scales the static term).
            total_operations: operations executed across *all* vaults.
            total_dram_bytes: DRAM bytes accessed across all vaults.
            crossbar_payload_bytes: bytes moved between vaults.
        """
        duration = execution.total_time
        wire_bytes = crossbar_payload_bytes * (
            1.0 + self.config.packet_overhead_bytes / float(self.config.block_bytes)
        )
        return HMCEnergyBreakdown(
            execution=self.pe_energy_per_op * total_operations.total_operations,
            dram=self.dram_energy_per_byte * total_dram_bytes,
            crossbar=self.crossbar_energy_per_byte * wire_bytes,
            vault=(self.static_power_watts + self.logic_power_watts) * duration,
        )

    @property
    def total_logic_power(self) -> float:
        """Average power added by the PIM logic (checked against the thermal budget)."""
        return self.logic_power_watts


@dataclass(frozen=True)
class LogicAreaModel:
    """Area model of the added PIM logic under the paper's 24 nm process.

    Attributes:
        config: device configuration.
        pe_area_mm2: area of one processing element.
        controller_area_mm2: area of one vault's operation controller and buffers.
        rmas_area_mm2: area of the runtime memory access scheduler.
        logic_die_area_mm2: total HMC logic-die area used to express the
            overhead as a percentage.
    """

    config: HMCConfig
    pe_area_mm2: float = 0.0052
    controller_area_mm2: float = 0.012
    rmas_area_mm2: float = 0.065
    logic_die_area_mm2: float = 968.0

    @property
    def per_vault_area_mm2(self) -> float:
        """Added logic area per vault."""
        return self.config.pes_per_vault * self.pe_area_mm2 + self.controller_area_mm2

    @property
    def total_area_mm2(self) -> float:
        """Total added logic area across the cube (paper: ~3.11 mm^2)."""
        return self.config.num_vaults * self.per_vault_area_mm2 + self.rmas_area_mm2

    @property
    def area_fraction(self) -> float:
        """Added area as a fraction of the logic die (paper: ~0.32%)."""
        return self.total_area_mm2 / self.logic_die_area_mm2
