"""Vault model: sub-memory controller + DRAM banks + 16 processing elements.

A vault executes the *snippets* the inter-vault distributor assigns to it.
The execution time of a vault is determined by three components:

* PE compute time -- the operation mix divided over the vault's PEs,
* DRAM service time -- the bytes the snippets touch, served by the vault's
  banks through the sub-memory controller,
* vault request stalls (VRS) -- the extra serialization caused by bank
  conflicts of concurrent PE requests, governed by the address mapping.

Compute and conflict-free DRAM service overlap (the sub-memory controller
prefetches while PEs crunch), so the base time is the maximum of the two;
the VRS and any PE under-utilization penalty are exposed on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hmc.address import AddressMapping, CustomAddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.dram import VaultMemoryModel
from repro.hmc.pe import OperationMix, PEDatapath


@dataclass
class VaultWorkload:
    """Work assigned to one vault for one routing pass.

    Attributes:
        operations: PE operation mix the vault must execute.
        dram_bytes: DRAM bytes read + written inside the vault.
        concurrent_requesters: number of PEs issuing memory requests
            concurrently (normally all PEs of the vault).
        pe_utilization: fraction of the vault's PEs that can be kept busy by
            the intra-vault workload distribution (1.0 = all 16).
    """

    operations: OperationMix
    dram_bytes: float
    concurrent_requesters: int = 16
    pe_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.dram_bytes < 0:
            raise ValueError("dram_bytes must be non-negative")
        if self.concurrent_requesters < 1:
            raise ValueError("concurrent_requesters must be positive")
        if not 0.0 < self.pe_utilization <= 1.0:
            raise ValueError("pe_utilization must be in (0, 1]")


@dataclass
class VaultExecution:
    """Timing result of one vault executing its workload.

    Attributes:
        compute_time: PE execution time (seconds).
        dram_time: conflict-free DRAM service time (seconds).
        vrs_time: vault-request-stall time caused by bank conflicts (seconds).
    """

    compute_time: float
    dram_time: float
    vrs_time: float

    @property
    def execution_time(self) -> float:
        """Base execution time (compute overlapped with conflict-free DRAM)."""
        return max(self.compute_time, self.dram_time)

    @property
    def total_time(self) -> float:
        """Total vault time including vault request stalls."""
        return self.execution_time + self.vrs_time


class Vault:
    """One HMC vault with integrated PEs.

    Args:
        config: HMC configuration.
        datapath: PE datapath cost model (built from the config frequency by
            default).
        mapping: address mapping scheme in effect (the customized mapping by
            default).
        memory: vault DRAM timing model.
    """

    def __init__(
        self,
        config: HMCConfig,
        datapath: Optional[PEDatapath] = None,
        mapping: Optional[AddressMapping] = None,
        memory: Optional[VaultMemoryModel] = None,
    ) -> None:
        self.config = config
        self.datapath = datapath or PEDatapath(frequency_hz=config.pe_frequency_hz)
        self.mapping = mapping or CustomAddressMapping(config)
        self.memory = memory or VaultMemoryModel(config)

    def execute(self, workload: VaultWorkload) -> VaultExecution:
        """Execute one vault workload and return its timing decomposition."""
        effective_pes = max(1, int(round(self.config.pes_per_vault * workload.pe_utilization)))
        compute_time = self.datapath.time_for(workload.operations, num_pes=effective_pes)
        dram_time = self.memory.base_service_time(workload.dram_bytes)
        conflict = self.mapping.bank_conflict_factor(workload.concurrent_requesters)
        vrs_time = self.memory.stall_time(workload.dram_bytes, conflict)
        return VaultExecution(compute_time=compute_time, dram_time=dram_time, vrs_time=vrs_time)

    def compute_throughput_ops(self) -> float:
        """Aggregate MAC throughput of this vault's PEs (operations/second)."""
        from repro.hmc.pe import PEOperation

        return self.datapath.throughput_ops(PEOperation.MAC, num_pes=self.config.pes_per_vault)
