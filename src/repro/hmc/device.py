"""The Hybrid Memory Cube device: vaults + crossbar + logic layer.

:class:`HMCDevice` executes a *distributed* routing workload: every vault
receives (approximately) the same per-vault workload produced by the
inter-vault distributor, the crossbar carries the aggregation/broadcast
traffic, and the device time is the slowest vault plus the exposed
inter-vault communication.

The device can also execute dense (Conv / FC) work for the All-in-PIM design
point of Fig. 17, where the whole network runs in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hmc.address import AddressMapping, CustomAddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar, TransferEstimate
from repro.hmc.pe import OperationMix, PEDatapath, PEOperation
from repro.hmc.vault import Vault, VaultExecution, VaultWorkload


@dataclass
class HMCExecution:
    """Timing decomposition of one distributed execution on the HMC.

    Attributes:
        vault: timing of the critical (slowest-loaded) vault.
        crossbar: inter-vault communication estimate.
        vaults_used: number of vaults that received work.
    """

    vault: VaultExecution
    crossbar: TransferEstimate
    vaults_used: int

    @property
    def compute_time(self) -> float:
        return self.vault.compute_time

    @property
    def dram_time(self) -> float:
        return self.vault.dram_time

    @property
    def execution_time(self) -> float:
        """Compute/DRAM execution portion (the "Execution" bar of Fig. 16a)."""
        return self.vault.execution_time

    @property
    def vrs_time(self) -> float:
        """Vault request stall portion (the "VRS" bar of Fig. 16a)."""
        return self.vault.vrs_time

    @property
    def crossbar_time(self) -> float:
        """Inter-vault communication portion (the "X-bar" bar of Fig. 16a)."""
        return self.crossbar.total_time

    @property
    def total_time(self) -> float:
        return self.vault.total_time + self.crossbar_time


class HMCDevice:
    """The full cube.

    Args:
        config: device geometry and bandwidth parameters.
        mapping: address mapping in effect (customized mapping by default).
        crossbar: crossbar model.
        datapath: PE datapath cost model.
    """

    def __init__(
        self,
        config: Optional[HMCConfig] = None,
        mapping: Optional[AddressMapping] = None,
        crossbar: Optional[Crossbar] = None,
        datapath: Optional[PEDatapath] = None,
    ) -> None:
        self.config = config or HMCConfig()
        self.mapping = mapping or CustomAddressMapping(self.config)
        self.crossbar = crossbar or Crossbar(self.config)
        self.datapath = datapath or PEDatapath(frequency_hz=self.config.pe_frequency_hz)
        self.vault = Vault(self.config, datapath=self.datapath, mapping=self.mapping)

    # -- distributed routing execution ------------------------------------------

    def execute_distributed(
        self,
        per_vault: VaultWorkload,
        crossbar_payload_bytes: float,
        crossbar_packets: float,
        vaults_used: Optional[int] = None,
        crossbar_receiver_ports: int = 1,
    ) -> HMCExecution:
        """Execute one distributed workload.

        Args:
            per_vault: workload of the most heavily loaded vault.
            crossbar_payload_bytes: inter-vault payload bytes (the paper's ``M``).
            crossbar_packets: number of inter-vault packets.
            vaults_used: number of vaults that received work (defaults to all).
            crossbar_receiver_ports: vault ports the inter-vault packets are
                spread over (1 for aggregation into a single vault, the vault
                count for all-to-all patterns).
        """
        vault_execution = self.vault.execute(per_vault)
        transfer = self.crossbar.transfer(
            crossbar_payload_bytes, crossbar_packets, receiver_ports=crossbar_receiver_ports
        )
        return HMCExecution(
            vault=vault_execution,
            crossbar=transfer,
            vaults_used=vaults_used if vaults_used is not None else self.config.num_vaults,
        )

    # -- dense execution (All-in-PIM) ---------------------------------------------

    def execute_dense(self, flops: float, dram_bytes: float) -> HMCExecution:
        """Execute a dense (Conv / FC) stage across every vault's PEs.

        Dense kernels stream operands with perfect locality, so the PEs run
        fully pipelined MACs (``STREAMING_MAC_CYCLES`` per MAC) and the DRAM
        traffic spreads evenly over the vaults.
        """
        from repro.hmc.pe import DEFAULT_CYCLES_PER_OPERATION, STREAMING_MAC_CYCLES

        if flops < 0 or dram_bytes < 0:
            raise ValueError("flops and dram_bytes must be non-negative")
        macs = flops / 2.0
        per_vault_mix = OperationMix().add(PEOperation.MAC, macs / self.config.num_vaults)
        streaming_costs = dict(DEFAULT_CYCLES_PER_OPERATION)
        streaming_costs[PEOperation.MAC] = STREAMING_MAC_CYCLES
        streaming_vault = Vault(
            self.config,
            datapath=PEDatapath(
                frequency_hz=self.datapath.frequency_hz, cycles_per_operation=streaming_costs
            ),
            mapping=self.mapping,
        )
        per_vault = VaultWorkload(
            operations=per_vault_mix,
            dram_bytes=dram_bytes / self.config.num_vaults,
            concurrent_requesters=self.config.pes_per_vault,
        )
        vault_execution = streaming_vault.execute(per_vault)
        transfer = self.crossbar.transfer(0.0, 0.0)
        return HMCExecution(
            vault=vault_execution, crossbar=transfer, vaults_used=self.config.num_vaults
        )

    # -- host transfers --------------------------------------------------------------

    def host_transfer_time(self, payload_bytes: float) -> float:
        """Time to move data between the host GPU and the cube over the external links."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes / self.config.external_bandwidth_bytes
