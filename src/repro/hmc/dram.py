"""Vault DRAM timing model.

Each vault owns a partition of DRAM banks reached through TSVs by the
vault's sub-memory controller.  For the granularity PIM-CapsNet cares about
(streams of 16-byte blocks produced by 16 PEs), the relevant behaviour is:

* a bank delivers data at a fixed sustained rate once a row is open,
* a row miss adds the activate/precharge latency,
* requests that collide on the same bank serialize; requests spread over
  different banks proceed in parallel up to the vault's TSV bandwidth.

The model exposes a single :meth:`VaultMemoryModel.service_time` that the
vault uses to translate "bytes accessed under a given conflict factor" into
seconds, plus helpers for row-hit sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class BankTimings:
    """DRAM bank timing parameters.

    Attributes:
        row_hit_ns: access latency when the target row is already open.
        row_miss_ns: access latency including precharge + activate.
        row_buffer_bytes: bytes served from one open row.
        row_hit_rate: fraction of accesses that hit an open row for the
            streaming access patterns the PEs generate.
    """

    row_hit_ns: float = 15.0
    row_miss_ns: float = 45.0
    row_buffer_bytes: int = 8192
    row_hit_rate: float = 0.90

    def __post_init__(self) -> None:
        if self.row_hit_ns <= 0 or self.row_miss_ns < self.row_hit_ns:
            raise ValueError("row timings must satisfy 0 < hit <= miss")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        if self.row_buffer_bytes < 1:
            raise ValueError("row_buffer_bytes must be positive")

    @property
    def average_access_ns(self) -> float:
        """Expected access latency given the row hit rate."""
        return self.row_hit_rate * self.row_hit_ns + (1.0 - self.row_hit_rate) * self.row_miss_ns


@dataclass(frozen=True)
class VaultMemoryModel:
    """Timing model of one vault's DRAM partition.

    Args:
        config: HMC configuration (bandwidths, bank counts).
        timings: bank timing parameters.
    """

    config: HMCConfig
    timings: BankTimings = BankTimings()

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Peak TSV bandwidth of this vault (bytes/s)."""
        return self.config.vault_bandwidth_bytes

    @property
    def effective_bandwidth_bytes(self) -> float:
        """Sustained bandwidth accounting for row misses.

        The derating applies the average access latency to every block of
        ``block_bytes`` relative to the ideal transfer time.
        """
        block = self.config.block_bytes
        ideal_block_time = block / self.peak_bandwidth_bytes
        latency_penalty = (self.timings.average_access_ns * 1e-9) / self.config.banks_per_vault
        return block / (ideal_block_time + latency_penalty)

    def service_time(self, bytes_accessed: float, conflict_factor: float = 1.0) -> float:
        """Seconds to service ``bytes_accessed`` under a bank-conflict factor.

        Args:
            bytes_accessed: total DRAM bytes read + written in this vault.
            conflict_factor: serialization multiplier produced by the address
                mapping (1.0 = perfectly parallel banks).
        """
        if bytes_accessed < 0:
            raise ValueError("bytes_accessed must be non-negative")
        if conflict_factor < 1.0:
            raise ValueError("conflict_factor must be >= 1")
        return bytes_accessed * conflict_factor / self.effective_bandwidth_bytes

    def base_service_time(self, bytes_accessed: float) -> float:
        """Service time with no bank conflicts (conflict factor 1)."""
        return self.service_time(bytes_accessed, conflict_factor=1.0)

    def stall_time(self, bytes_accessed: float, conflict_factor: float) -> float:
        """Vault-request-stall (VRS) time: the extra service time caused by conflicts."""
        return self.service_time(bytes_accessed, conflict_factor) - self.base_service_time(
            bytes_accessed
        )
