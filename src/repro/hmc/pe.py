"""Customized processing element (PE) datapath model (Sec. 5.2.2).

Each vault's logic layer integrates 16 PEs built from adders, multipliers,
bit shifters and multiplexers.  The datapath supports several *flows*
configured through the MUXes:

* ``1 -> 2``                 : multiply-accumulate (MAC),
* ``3 -> 2 -> 1 -> 2 -> 1``  : inverse square root (bit-shift seed + Newton),
* ``1 -> 2 -> 2 -> 3``       : exponential (Eq. 14: MAC + add + bit shift),
* reciprocal / division      : bit-trick seed + one Newton refinement.

This module models the *cost* of those flows (cycles per operation) and
provides :class:`OperationMix`, the unit the workload distributor hands to a
vault: how many operations of each type the vault must execute.  The
numerical behaviour of the same flows lives in :mod:`repro.arithmetic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Mapping


class PEOperation(str, Enum):
    """Operation types the PE datapath supports."""

    MAC = "mac"              #: fused multiply-accumulate (2 FLOPs)
    ADD = "add"              #: addition / subtraction
    MUL = "mul"              #: multiplication
    SHIFT = "shift"          #: bit shift on the FP32 word
    EXP = "exp"              #: approximate exponential (Eq. 14 flow)
    DIV = "div"              #: approximate division (reciprocal + multiply)
    INV_SQRT = "inv_sqrt"    #: approximate inverse square root

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Cycles each operation occupies a PE, including the operand hand-off from
#: the vault data buffer.  The routing MAC is the common case and is
#: intentionally *not* fully pipelined (operand fetch through the data buffer
#: + multiply + accumulate + write-back), which is what makes the PE
#: frequency sweeps of Fig. 18 meaningful.
DEFAULT_CYCLES_PER_OPERATION: Dict[PEOperation, float] = {
    PEOperation.MAC: 5.0,
    PEOperation.ADD: 3.0,
    PEOperation.MUL: 3.0,
    PEOperation.SHIFT: 1.0,
    PEOperation.EXP: 8.0,
    PEOperation.DIV: 10.0,
    PEOperation.INV_SQRT: 12.0,
}

#: Cycles per MAC for *streaming* dense kernels (Conv / FC executed on the
#: HMC for the All-in-PIM design point): sequential operand access lets the
#: sub-memory controller keep the multiply-accumulate pipeline full.
STREAMING_MAC_CYCLES = 1.0


@dataclass
class OperationMix:
    """A bag of PE operations (how many of each type).

    The workload distributor expresses per-vault work as an operation mix so
    the vault model can translate it into cycles without knowing anything
    about routing equations.
    """

    counts: Dict[PEOperation, float] = field(default_factory=dict)

    def add(self, operation: PEOperation, count: float) -> "OperationMix":
        """Accumulate ``count`` operations of ``operation`` (returns self)."""
        if count < 0:
            raise ValueError("operation count must be non-negative")
        self.counts[operation] = self.counts.get(operation, 0.0) + float(count)
        return self

    def merged_with(self, other: "OperationMix") -> "OperationMix":
        """Return a new mix with both mixes' counts summed."""
        merged = OperationMix(dict(self.counts))
        for op, count in other.counts.items():
            merged.add(op, count)
        return merged

    def scaled(self, factor: float) -> "OperationMix":
        """Return a new mix with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OperationMix({op: count * factor for op, count in self.counts.items()})

    @property
    def total_operations(self) -> float:
        """Total number of PE operations regardless of type."""
        return float(sum(self.counts.values()))

    @property
    def total_flops(self) -> float:
        """Equivalent FLOP count (a MAC counts as 2, special functions by their
        arithmetic content)."""
        flops_per_op = {
            PEOperation.MAC: 2.0,
            PEOperation.ADD: 1.0,
            PEOperation.MUL: 1.0,
            PEOperation.SHIFT: 0.0,
            PEOperation.EXP: 2.0,
            PEOperation.DIV: 3.0,
            PEOperation.INV_SQRT: 4.0,
        }
        return float(sum(flops_per_op[op] * count for op, count in self.counts.items()))

    def as_dict(self) -> Dict[str, float]:
        return {op.value: count for op, count in self.counts.items()}

    @staticmethod
    def from_counts(counts: Mapping[PEOperation, float]) -> "OperationMix":
        mix = OperationMix()
        for op, count in counts.items():
            mix.add(op, count)
        return mix


@dataclass(frozen=True)
class PEDatapath:
    """Cycle-cost model of one processing element.

    Attributes:
        cycles_per_operation: cycles each operation type occupies the PE.
        frequency_hz: PE clock frequency.
    """

    frequency_hz: float
    cycles_per_operation: Mapping[PEOperation, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES_PER_OPERATION)
    )

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        for op in PEOperation:
            if op not in self.cycles_per_operation:
                raise ValueError(f"missing cycle cost for {op}")
            if self.cycles_per_operation[op] <= 0:
                raise ValueError(f"cycle cost for {op} must be positive")

    def cycles_for(self, mix: OperationMix) -> float:
        """Total PE cycles needed to execute an operation mix on one PE."""
        return float(
            sum(self.cycles_per_operation[op] * count for op, count in mix.counts.items())
        )

    def time_for(self, mix: OperationMix, num_pes: int = 1) -> float:
        """Seconds to execute ``mix`` spread evenly over ``num_pes`` PEs."""
        if num_pes < 1:
            raise ValueError("num_pes must be positive")
        return self.cycles_for(mix) / (num_pes * self.frequency_hz)

    def throughput_ops(self, operation: PEOperation, num_pes: int = 1) -> float:
        """Sustained operations/second for a single operation type."""
        return num_pes * self.frequency_hz / self.cycles_per_operation[operation]
