"""Exact multi-objective Pareto-frontier extraction over sweep data.

The frontier machinery is deliberately decoupled from *how* the points were
produced: :func:`pareto_indices` works on plain value rows,
:func:`sweep_frontier` accepts a live :class:`~repro.sweep.runner.SweepResult`
**or** its ``to_dict()`` form (so a frontier can be recomputed offline from a
``repro sweep --format json`` dump), and :func:`cache_frontier` reads the
persistent :class:`~repro.engine.diskcache.SimulationCache` directly -- a
frontier over any previously swept grid costs **zero** new simulations.

Dominance is exact (pairwise, ``O(n^2)``), ties keep every co-optimal point,
and output order always follows input order, so repeated extractions are
byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.optimize.objective import Objective, ObjectiveSpec, extract_metric

#: Metric names aggregated per design for every sweep point (benchmark means).
_CELL_METRICS = ("speedup", "energy_saving", "time_seconds", "energy_joules")


def dominates(
    a: Sequence[float], b: Sequence[float], senses: Sequence[str]
) -> bool:
    """Whether value row ``a`` Pareto-dominates row ``b``.

    ``a`` dominates ``b`` when it is at least as good in every objective and
    strictly better in at least one (``senses`` gives the direction per
    column).
    """
    if len(a) != len(b) or len(a) != len(senses):
        raise ValueError(
            f"value rows and senses must align, got {len(a)}/{len(b)} values "
            f"and {len(senses)} senses"
        )
    strict = False
    for va, vb, sense in zip(a, b, senses):
        sa = va if sense == "maximize" else -va
        sb = vb if sense == "maximize" else -vb
        if sa < sb:
            return False
        if sa > sb:
            strict = True
    return strict


def pareto_indices(
    rows: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[int]:
    """Indices of the non-dominated rows, in input order.

    Exact pairwise dominance; rows with identical values are all kept (they
    are co-optimal, and dropping one arbitrarily would make the frontier
    depend on input order).
    """
    frontier = []
    for i, row in enumerate(rows):
        if not any(
            dominates(other, row, senses) for j, other in enumerate(rows) if j != i
        ):
            frontier.append(i)
    return frontier


# ------------------------------------------------------- sweep-point metrics


def point_metrics(
    point: Union["SweepPoint", Mapping[str, object]],
) -> Dict[str, object]:
    """Nested metric mapping of one sweep point, addressable by dotted paths.

    Accepts a live :class:`~repro.sweep.runner.SweepPoint` or its
    ``to_dict()`` entry.  Per design, every :data:`cell metric
    <_CELL_METRICS>` is averaged across the point's benchmarks
    (``pim-capsnet.speedup``); the first design's aggregates are mirrored at
    the top level (plain ``speedup``) so single-design sweeps -- the common
    case -- read naturally.
    """
    cells = point["cells"] if isinstance(point, Mapping) else point.cells
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for cell in cells:
        if isinstance(cell, Mapping):
            design = str(cell["design"])
            values = {metric: float(cell[metric]) for metric in _CELL_METRICS}  # type: ignore[arg-type]
        else:
            design = cell.design
            values = {metric: float(getattr(cell, metric)) for metric in _CELL_METRICS}
        bucket = sums.setdefault(design, {metric: 0.0 for metric in _CELL_METRICS})
        for metric, value in values.items():
            bucket[metric] += value
        counts[design] = counts.get(design, 0) + 1
    metrics: Dict[str, object] = {}
    for design, bucket in sums.items():
        metrics[design] = {
            metric: total / counts[design] for metric, total in bucket.items()
        }
    if sums:
        first = next(iter(sums))
        metrics.update(metrics[first])  # type: ignore[arg-type]
    return metrics


def _frontier_over_points(
    entries: List[Dict[str, object]],
    objectives: Tuple[Objective, ...],
) -> List[int]:
    rows = [
        [entry["values"][obj.metric] for obj in objectives]  # type: ignore[index]
        for entry in entries
    ]
    senses = [obj.sense for obj in objectives]
    return pareto_indices(rows, senses)


def sweep_frontier(
    result: Union["SweepResult", Mapping[str, object]],
    objective: object,
) -> Dict[str, object]:
    """The Pareto frontier of a completed sweep.

    Args:
        result: a :class:`~repro.sweep.runner.SweepResult` or its
            ``to_dict()`` form (e.g. loaded back from a
            ``repro sweep --format json`` dump).
        objective: anything :meth:`ObjectiveSpec.coerce` accepts; metric
            paths resolve against :func:`point_metrics` (``speedup``,
            ``energy_saving``, ``<design>.time_seconds``, ...).

    Returns:
        ``{"objectives", "points", "frontier"}`` where ``points`` carries one
        ``{"index", "assignment", "scenario", "values"}`` entry per grid
        point and ``frontier`` lists the non-dominated point indices.
    """
    spec = ObjectiveSpec.coerce(objective)
    raw_points = (
        result["points"] if isinstance(result, Mapping) else result.points
    )
    entries: List[Dict[str, object]] = []
    for index, point in enumerate(raw_points):
        metrics = point_metrics(point)  # type: ignore[arg-type]
        if isinstance(point, Mapping):
            assignment = dict(point["assignment"])  # type: ignore[arg-type]
            scenario = str(point["scenario"])
        else:
            assignment = dict(point.assignment)
            scenario = point.scenario_name
        entries.append(
            {
                "index": index,
                "assignment": assignment,
                "scenario": scenario,
                "values": {
                    path: extract_metric(metrics, path)
                    for path in spec.metric_paths()
                },
            }
        )
    return {
        "objectives": [obj.describe() for obj in spec.objectives],
        "points": entries,
        "frontier": _frontier_over_points(entries, spec.objectives),
    }


# ------------------------------------------------------- cache-only frontier


def cache_frontier(
    spec: Union["SweepSpec", str],
    objective: object,
    base: Optional["Scenario"] = None,
    *,
    cache: Optional["SimulationCache"] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """The Pareto frontier of a grid, read purely from the persistent cache.

    Every ``(point, benchmark, design)`` cell is looked up with one bulk
    :meth:`~repro.engine.diskcache.SimulationCache.get_many`; points with any
    missing cell are skipped (counted in ``"uncovered"``) rather than
    simulated, so this never executes a simulation -- it answers "what does
    everything I have already swept say?".

    Args:
        spec: the grid (a :class:`~repro.sweep.spec.SweepSpec`, preset name
            or spec-file path).
        objective: anything :meth:`ObjectiveSpec.coerce` accepts.
        base: base scenario (paper default when ``None``).
        cache: an open cache instance; built from ``cache_dir`` when ``None``.
        cache_dir: persistent cache root (default cache dir when ``None``).
        benchmarks: restrict cells to these workloads (``None`` = the spec's
            own restriction, then the base scenario's selection chain).
    """
    from repro.api.scenario import Scenario
    from repro.core.accelerator import DesignPoint
    from repro.engine.diskcache import SimulationCache
    from repro.sweep.spec import SweepSpec

    spec = spec if isinstance(spec, SweepSpec) else SweepSpec.load(str(spec))
    base = base if base is not None else Scenario.default()
    objective_spec = ObjectiveSpec.coerce(objective)
    if cache is None:
        cache = SimulationCache(cache_dir)
    catalog = base.catalog
    if benchmarks is None:
        benchmarks = spec.benchmarks
    if benchmarks is not None:
        try:
            names = [catalog.canonical_name(name) for name in benchmarks]
        except KeyError as error:
            raise ValueError(str(error.args[0])) from None
    else:
        selection = base.benchmark_selection()
        names = selection if selection else catalog.names()
    configs = {name: catalog.benchmark(name) for name in names}
    kind = "routing" if spec.kind == "routing" else "end_to_end"
    designs: List[object] = [DesignPoint.BASELINE_GPU]
    designs.extend(spec.designs)

    assignments = spec.assignments()
    variants = [spec.scenario_for(base, assignment) for assignment in assignments]
    requests = [
        (variant.hardware_hash(), configs[name], kind, design)
        for variant in variants
        for name in names
        for design in designs
    ]
    found = cache.get_many(requests)

    entries: List[Dict[str, object]] = []
    uncovered = 0
    cursor = 0
    per_point = len(names) * len(designs)
    for index, (assignment, variant) in enumerate(zip(assignments, variants)):
        results = found[cursor : cursor + per_point]
        cursor += per_point
        if any(result is None for result in results):
            uncovered += 1
            continue
        cells: List[Dict[str, object]] = []
        slot = 0
        for name in names:
            baseline = results[slot]
            slot += 1
            for design in spec.designs:
                result = results[slot]
                slot += 1
                time_seconds = float(result.time_seconds)  # type: ignore[union-attr]
                energy_joules = float(result.energy_joules)  # type: ignore[union-attr]
                baseline_time = float(baseline.time_seconds)  # type: ignore[union-attr]
                baseline_energy = float(baseline.energy_joules)  # type: ignore[union-attr]
                cells.append(
                    {
                        "benchmark": name,
                        "design": str(design),
                        "time_seconds": time_seconds,
                        "energy_joules": energy_joules,
                        "speedup": (
                            baseline_time / time_seconds
                            if time_seconds > 0
                            else float("inf")
                        ),
                        "energy_saving": (
                            1.0 - energy_joules / baseline_energy
                            if baseline_energy > 0
                            else 0.0
                        ),
                    }
                )
        metrics = point_metrics({"cells": cells})
        entries.append(
            {
                "index": index,
                "assignment": dict(assignment),
                "scenario": variant.name,
                "values": {
                    path: extract_metric(metrics, path)
                    for path in objective_spec.metric_paths()
                },
            }
        )
    # Frontier entries are reported by *grid* index (stable even when some
    # points are uncovered and skipped).
    frontier = [
        int(entries[position]["index"])  # type: ignore[call-overload]
        for position in _frontier_over_points(entries, objective_spec.objectives)
    ]
    return {
        "objectives": [obj.describe() for obj in objective_spec.objectives],
        "points": entries,
        "frontier": frontier,
        "grid_size": spec.grid_size(),
        "covered": len(entries),
        "uncovered": uncovered,
        "simulations_executed": 0,
    }
