"""Declarative optimization objectives over experiment metric paths.

An :class:`Objective` names one scalar to optimize as a dotted *metric path*
into the headline metrics of the experiment modules -- the same numbers
``repro compare`` aligns -- e.g. ``fig17.average_speedup`` (the paper's
end-to-end speedup), ``fig17.average_energy_saving`` or
``overhead.total_area_mm2`` (the PIM logic area).  A :class:`Constraint`
restricts the feasible set, either with absolute bounds or relative to the
best value observed anywhere in the search (``within_pct_of_best`` -- the
"within 5% of peak fig17 speedup" query of ROADMAP item 3).

:class:`ObjectiveSpec` bundles objectives + constraints into one frozen,
validated, JSON-round-trippable problem statement, mirroring
:class:`~repro.api.scenario.Scenario` and :class:`~repro.sweep.spec.
SweepSpec`::

    spec = ObjectiveSpec.coerce(
        ["overhead.total_area_mm2:min"],
        constraints=["fig17.average_speedup:within_pct_of_best=5"],
    )
    spec.to_file("cheapest.json")
    ObjectiveSpec.from_file("cheapest.json")    # round-trips

:func:`extract_metric` resolves a dotted path against any nested metric
mapping (experiment headline metrics, sweep-point aggregates), and
:func:`metric_paths` enumerates what a mapping offers -- every path error
lists the valid alternatives.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Optimization senses: whether larger or smaller metric values win.
SENSES = ("maximize", "minimize")

_SENSE_ALIASES = {
    "max": "maximize",
    "maximize": "maximize",
    "min": "minimize",
    "minimize": "minimize",
}

#: Constraint operators accepted by :meth:`Constraint.parse`.
CONSTRAINT_OPS = ("within_pct_of_best", "min", "max")


def _canonical_sense(sense: object) -> str:
    resolved = _SENSE_ALIASES.get(str(sense).strip().lower())
    if resolved is None:
        raise ValueError(
            f"unknown sense {sense!r}; choose from {list(SENSES)} (or max/min)"
        )
    return resolved


def _canonical_metric(metric: object) -> str:
    metric = str(metric).strip()
    if not metric or any(not part for part in metric.split(".")):
        raise ValueError(
            f"invalid metric path {metric!r}; expected a dotted path like "
            f"'fig17.average_speedup'"
        )
    return metric


@dataclass(frozen=True)
class Objective:
    """One scalar to optimize: a dotted metric path and a sense."""

    metric: str
    sense: str = "maximize"

    def __post_init__(self) -> None:
        object.__setattr__(self, "metric", _canonical_metric(self.metric))
        object.__setattr__(self, "sense", _canonical_sense(self.sense))

    @classmethod
    def parse(cls, text: str) -> "Objective":
        """Parse the CLI form ``METRIC[:max|min]`` (maximize by default)."""
        text = str(text).strip()
        metric, sep, sense = text.rpartition(":")
        if not sep:
            return cls(metric=text)
        return cls(metric=metric, sense=sense)

    @classmethod
    def from_dict(cls, data: Union[str, Mapping]) -> "Objective":
        """Build from a plain string (``parse`` form) or a mapping."""
        if isinstance(data, str):
            return cls.parse(data)
        if not isinstance(data, Mapping):
            raise ValueError(
                f"an objective must be a string or a mapping, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - {"metric", "sense"})
        if unknown:
            raise ValueError(
                f"unknown objective key(s) {unknown}; valid keys: "
                f"['metric', 'sense']"
            )
        if "metric" not in data:
            raise ValueError("an objective needs a 'metric' path")
        return cls(metric=str(data["metric"]), sense=str(data.get("sense", "maximize")))

    def to_dict(self) -> Dict[str, str]:
        """Plain (JSON-ready) form."""
        return {"metric": self.metric, "sense": self.sense}

    @property
    def sign(self) -> float:
        """``+1`` when larger values win, ``-1`` when smaller values win."""
        return 1.0 if self.sense == "maximize" else -1.0

    def scalar(self, value: float) -> float:
        """The value on a higher-is-better scale (search ranks by this)."""
        return self.sign * float(value)

    def describe(self) -> str:
        """Human-readable one-liner (``maximize fig17.average_speedup``)."""
        return f"{self.sense} {self.metric}"


@dataclass(frozen=True)
class Constraint:
    """One feasibility restriction on a metric path.

    Exactly one family of bounds applies: either ``within_pct_of_best``
    (relative to the best value of this metric observed across the whole
    search, in the direction of ``sense``) or absolute ``min_value`` /
    ``max_value`` bounds.
    """

    metric: str
    within_pct_of_best: Optional[float] = None
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    sense: str = "maximize"

    def __post_init__(self) -> None:
        object.__setattr__(self, "metric", _canonical_metric(self.metric))
        object.__setattr__(self, "sense", _canonical_sense(self.sense))
        relative = self.within_pct_of_best is not None
        absolute = self.min_value is not None or self.max_value is not None
        if relative and absolute:
            raise ValueError(
                f"constraint on {self.metric!r} mixes within_pct_of_best with "
                f"absolute min/max bounds; pick one family"
            )
        if not relative and not absolute:
            raise ValueError(
                f"constraint on {self.metric!r} needs within_pct_of_best, "
                f"min_value or max_value"
            )
        if relative:
            pct = float(self.within_pct_of_best)
            if pct < 0:
                raise ValueError(
                    f"within_pct_of_best must be >= 0, got {pct}"
                )
            object.__setattr__(self, "within_pct_of_best", pct)
        if self.min_value is not None:
            object.__setattr__(self, "min_value", float(self.min_value))
        if self.max_value is not None:
            object.__setattr__(self, "max_value", float(self.max_value))

    @classmethod
    def parse(cls, text: str) -> "Constraint":
        """Parse the CLI form ``METRIC:OP=VALUE``.

        ``OP`` is ``within_pct_of_best`` (best taken as the maximum; append
        ``:min`` to the metric to take the minimum instead), ``min`` or
        ``max``: ``fig17.average_speedup:within_pct_of_best=5``,
        ``overhead.total_area_mm2:max=40``.
        """
        text = str(text).strip()
        head, sep, bound = text.rpartition(":")
        if not sep or "=" not in bound:
            raise ValueError(
                f"invalid constraint {text!r}; expected METRIC:OP=VALUE with "
                f"OP in {list(CONSTRAINT_OPS)}"
            )
        op, _, raw_value = bound.partition("=")
        op = op.strip().lower()
        if op not in CONSTRAINT_OPS:
            raise ValueError(
                f"unknown constraint operator {op!r}; choose from "
                f"{list(CONSTRAINT_OPS)}"
            )
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"invalid constraint value {raw_value!r} in {text!r}"
            ) from None
        metric, sense = head, "maximize"
        tail = head.rpartition(":")
        if tail[1] and tail[2].strip().lower() in _SENSE_ALIASES:
            metric, sense = tail[0], tail[2]
        if op == "within_pct_of_best":
            return cls(metric=metric, within_pct_of_best=value, sense=sense)
        if op == "min":
            return cls(metric=metric, min_value=value, sense=sense)
        return cls(metric=metric, max_value=value, sense=sense)

    @classmethod
    def from_dict(cls, data: Union[str, Mapping]) -> "Constraint":
        """Build from a plain string (``parse`` form) or a mapping."""
        if isinstance(data, str):
            return cls.parse(data)
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a constraint must be a string or a mapping, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown constraint key(s) {unknown}; valid keys: {sorted(known)}"
            )
        if "metric" not in data:
            raise ValueError("a constraint needs a 'metric' path")
        return cls(**{key: data[key] for key in data})  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) form (only the bounds that are set)."""
        payload: Dict[str, object] = {"metric": self.metric, "sense": self.sense}
        if self.within_pct_of_best is not None:
            payload["within_pct_of_best"] = self.within_pct_of_best
        if self.min_value is not None:
            payload["min_value"] = self.min_value
        if self.max_value is not None:
            payload["max_value"] = self.max_value
        return payload

    def threshold(self, best: Optional[float]) -> Optional[Tuple[str, float]]:
        """The resolved ``(op, bound)`` of this constraint.

        For ``within_pct_of_best`` the bound derives from ``best`` (the best
        observed value of the metric; ``None`` until something was observed);
        absolute constraints resolve independently.
        """
        if self.within_pct_of_best is not None:
            if best is None:
                return None
            band = abs(best) * self.within_pct_of_best / 100.0
            if self.sense == "maximize":
                return (">=", best - band)
            return ("<=", best + band)
        if self.min_value is not None:
            return (">=", self.min_value)
        return ("<=", self.max_value)  # type: ignore[arg-type]

    def feasible(self, value: float, best: Optional[float] = None) -> bool:
        """Whether ``value`` satisfies this constraint (given ``best``)."""
        resolved = self.threshold(best)
        if resolved is None:
            # No best observed yet: relative constraints cannot reject.
            return True
        op, bound = resolved
        ok = value >= bound if op == ">=" else value <= bound
        if self.min_value is not None and self.max_value is not None:
            ok = ok and value <= self.max_value
        return ok

    def describe(self) -> str:
        """Human-readable one-liner."""
        if self.within_pct_of_best is not None:
            best = "best" if self.sense == "maximize" else "lowest"
            return (
                f"{self.metric} within {self.within_pct_of_best:g}% of {best}"
            )
        parts = []
        if self.min_value is not None:
            parts.append(f">= {self.min_value:g}")
        if self.max_value is not None:
            parts.append(f"<= {self.max_value:g}")
        return f"{self.metric} {' and '.join(parts)}"


@dataclass(frozen=True)
class ObjectiveSpec:
    """One declarative optimization problem (frozen, validated, JSON-ready).

    Attributes:
        name: label used in reports.
        objectives: the metrics to optimize (at least one); the first is the
            *primary* objective the adaptive drivers rank candidates by,
            further objectives shape the Pareto frontier.
        constraints: feasibility restrictions applied when the result is
            assembled (relative constraints resolve against the best value
            observed across all probes).
    """

    name: str = "optimize"
    objectives: Tuple[Objective, ...] = ()
    constraints: Tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("optimization name must be a non-empty string")
        object.__setattr__(self, "name", str(self.name).strip())
        objectives = tuple(
            obj if isinstance(obj, Objective) else Objective.from_dict(obj)
            for obj in self.objectives
        )
        if not objectives:
            raise ValueError("an optimization needs at least one objective")
        metrics = [obj.metric for obj in objectives]
        if len(set(metrics)) != len(metrics):
            raise ValueError(f"duplicate objective metrics {metrics}")
        object.__setattr__(self, "objectives", objectives)
        constraints = tuple(
            c if isinstance(c, Constraint) else Constraint.from_dict(c)
            for c in self.constraints
        )
        object.__setattr__(self, "constraints", constraints)

    # ------------------------------------------------------------- constructors

    @classmethod
    def coerce(
        cls,
        objective: object,
        *,
        constraints: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ) -> "ObjectiveSpec":
        """Coerce any reasonable objective description into a spec.

        Accepts an :class:`ObjectiveSpec` (returned with extra ``constraints``
        merged in), an :class:`Objective`, a ``METRIC[:max|min]`` string, a
        spec-shaped mapping, or a sequence mixing any of the scalar forms.
        """
        extra = tuple(
            c if isinstance(c, Constraint) else Constraint.from_dict(c)
            for c in (constraints or ())
        )
        if isinstance(objective, ObjectiveSpec):
            spec = objective
        elif isinstance(objective, Objective):
            spec = cls(objectives=(objective,))
        elif isinstance(objective, str):
            spec = cls(objectives=(Objective.parse(objective),))
        elif isinstance(objective, Mapping):
            spec = cls.from_dict(objective)
        elif isinstance(objective, Sequence):
            spec = cls(
                objectives=tuple(
                    obj if isinstance(obj, Objective) else Objective.from_dict(obj)
                    for obj in objective
                )
            )
        else:
            raise ValueError(
                f"cannot build an objective spec from {type(objective).__name__}"
            )
        replacements: Dict[str, object] = {}
        if extra:
            replacements["constraints"] = spec.constraints + extra
        if name is not None:
            replacements["name"] = name
        if replacements:
            spec = dataclasses.replace(spec, **replacements)
        return spec

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ObjectiveSpec":
        """Build a spec from a plain (JSON-shaped) dictionary."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"objective data must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown objective-spec key(s) {unknown}; valid keys: "
                f"{sorted(known)}"
            )
        if not data.get("objectives"):
            raise ValueError(
                "objective spec is missing the required 'objectives' section"
            )
        raw_objectives = data["objectives"]
        if isinstance(raw_objectives, (str, Mapping)):
            raw_objectives = [raw_objectives]
        kwargs: Dict[str, object] = {
            "objectives": tuple(Objective.from_dict(obj) for obj in raw_objectives)  # type: ignore[union-attr]
        }
        if "name" in data:
            kwargs["name"] = str(data["name"])
        raw_constraints = data.get("constraints")
        if raw_constraints is not None:
            if isinstance(raw_constraints, (str, Mapping)):
                raw_constraints = [raw_constraints]
            kwargs["constraints"] = tuple(
                Constraint.from_dict(c) for c in raw_constraints  # type: ignore[union-attr]
            )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ObjectiveSpec":
        """Load a spec from a JSON file (``name`` defaults to the file stem)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read objective file {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ValueError(
                f"invalid JSON in objective file {path}: {error}"
            ) from None
        if isinstance(data, Mapping) and "name" not in data:
            data = {**data, "name": path.stem}
        return cls.from_dict(data)

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) dictionary round-tripping through :meth:`from_dict`."""
        return {
            "name": self.name,
            "objectives": [obj.to_dict() for obj in self.objectives],
            "constraints": [c.to_dict() for c in self.constraints],
        }

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the spec as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------ queries

    @property
    def primary(self) -> Objective:
        """The objective adaptive drivers rank candidates by."""
        return self.objectives[0]

    def metric_paths(self) -> List[str]:
        """Every metric path this problem reads, objectives first, unique."""
        seen: Dict[str, None] = {}
        for obj in self.objectives:
            seen.setdefault(obj.metric, None)
        for constraint in self.constraints:
            seen.setdefault(constraint.metric, None)
        return list(seen)

    def experiments(self) -> List[str]:
        """The experiment modules the metric paths read, in first-use order."""
        seen: Dict[str, None] = {}
        for path in self.metric_paths():
            seen.setdefault(path.split(".", 1)[0], None)
        return list(seen)

    def describe(self) -> str:
        """Human-readable one-liner."""
        parts = "; ".join(obj.describe() for obj in self.objectives)
        if self.constraints:
            parts += " s.t. " + "; ".join(c.describe() for c in self.constraints)
        return f"{self.name}: {parts}"


# ------------------------------------------------------------ path resolution


def extract_metric(metrics: Mapping[str, object], path: str) -> float:
    """Resolve a dotted metric path against a nested metric mapping.

    Raises :class:`ValueError` (listing every available path) when a segment
    is missing or the leaf is not a finite number.
    """
    value: object = metrics
    for segment in _canonical_metric(path).split("."):
        if not isinstance(value, Mapping) or segment not in value:
            raise ValueError(
                f"metric path {path!r} not found; available paths: "
                f"{metric_paths(metrics)}"
            )
        value = value[segment]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"metric path {path!r} is not a scalar metric; available paths: "
            f"{metric_paths(metrics)}"
        )
    return float(value)


def metric_paths(metrics: Mapping[str, object]) -> List[str]:
    """Every dotted path to a numeric leaf of a nested metric mapping."""
    paths: List[str] = []

    def walk(value: object, prefix: str) -> None:
        if isinstance(value, Mapping):
            for key, item in value.items():
                walk(item, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            paths.append(prefix)

    walk(metrics, "")
    return sorted(paths)
