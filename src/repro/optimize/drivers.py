"""Adaptive design-space search drivers over scenario sweep axes.

:class:`OptimizeDriver` searches the grid a :class:`~repro.sweep.spec.
SweepSpec` declares (dotted scenario axes, cartesian product) for the best
points under an :class:`~repro.optimize.objective.ObjectiveSpec`, evaluating
**probes** instead of the whole grid:

* ``"descent"`` -- coordinate descent over numeric axes: sweep one axis at a
  time from the grid median, keep strict improvements, repeat until a full
  pass changes nothing; then optional *bracketing refinement* inserts
  midpoints between the best value and its grid neighbours, probing off-grid
  values the spec never enumerated (``hmc.pe_frequency_mhz`` between two
  Fig. 18 frequencies).
* ``"halving"`` -- successive halving: sample each axis coarsely (endpoints +
  midpoints), keep the better half of the round's probes, shrink every axis
  window to the survivors' envelope, halve the stride, repeat to stride 1.
* ``"exhaustive"`` -- the whole grid (the brute-force baseline the tests
  compare the adaptive drivers against).
* ``"auto"`` -- ``"descent"`` when every axis is numeric, else ``"halving"``.

Every probe runs the objective's experiment modules through a
:class:`~repro.engine.context.SimulationContext` backed by the shared
persistent :class:`~repro.engine.diskcache.SimulationCache` -- the same
entries sweeps read and write -- so optimizer runs compound across sessions
and a repeated search executes **zero** simulations.  All candidate
enumeration and tie-breaking is deterministic (ties keep the earliest
probe), so repeated runs render byte-identical reports.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.scenario import Scenario
from repro.api.session import headline_metrics
from repro.engine.context import CacheStats, SimulationContext
from repro.engine.diskcache import CACHE_SCHEMA_VERSION, SimulationCache
from repro.engine.runner import run_experiments, select_experiments
from repro.optimize.objective import ObjectiveSpec, extract_metric
from repro.optimize.pareto import pareto_indices
from repro.optimize.result import OptimizeResult, ProbePoint
from repro.sweep.spec import SweepSpec, _format_value

#: Driver modes accepted by :class:`OptimizeDriver`.
DRIVERS = ("auto", "exhaustive", "halving", "descent")

#: Iteration backstops (the memoized probes converge far earlier).
_MAX_PASSES = 16
_MAX_ROUNDS = 32


class _BudgetExhausted(Exception):
    """Internal: the probe budget ran out; assemble a partial result."""


class _StopRequested(Exception):
    """Internal: the caller asked the search to stop (client went away)."""


class OptimizeDriver:
    """Search one sweep grid for the best points under an objective.

    Args:
        objective: anything :meth:`ObjectiveSpec.coerce` accepts (an
            :class:`ObjectiveSpec`, ``"fig17.average_speedup"``, a mapping,
            or a list of objectives).
        constraints: extra constraints merged into the objective spec
            (strings in :meth:`~repro.optimize.objective.Constraint.parse`
            form, mappings, or :class:`Constraint` instances).
        space: the search space -- a :class:`~repro.sweep.spec.SweepSpec`, a
            preset name / spec-file path, or an ``{axis: values}`` mapping.
        base: base scenario every probe overrides (paper default if ``None``).
        budget: maximum number of probes (``None`` = unlimited); exhaustion
            stops the search and flags the (still valid) partial result.
        driver: one of :data:`DRIVERS`.
        refine: bracketing-refinement levels after coordinate descent
            (``0`` disables; only ``"descent"`` refines).
        benchmarks: restrict probes to these catalog workloads (``None`` =
            the space's own restriction, then the scenario's selection).
        cache: an already-open :class:`SimulationCache` to share (the serve
            layer injects its own); overrides the ``cache_dir`` flags.
        cache_dir: persistent cache root (default cache dir when ``None``).
        use_cache: disable the persistent cache entirely with ``False``.
        cache_version: entry schema version (tests exercise invalidation).
        on_probe: observer called after every evaluated probe (the serve
            layer streams these as NDJSON events).
        should_stop: polled before each probe; returning ``True`` abandons
            the search without error (disconnected streaming clients).
    """

    def __init__(
        self,
        objective: object,
        space: Union[SweepSpec, str, Mapping[str, Sequence[object]]],
        base: Optional[Scenario] = None,
        *,
        constraints: Optional[Sequence[object]] = None,
        budget: Optional[int] = None,
        driver: str = "auto",
        refine: int = 1,
        benchmarks: Optional[Sequence[str]] = None,
        cache: Optional[SimulationCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        cache_version: int = CACHE_SCHEMA_VERSION,
        on_probe: Optional[Callable[[ProbePoint], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.objective = ObjectiveSpec.coerce(objective, constraints=constraints)
        self.space = _coerce_space(space)
        self.base = base if base is not None else Scenario.default()
        if budget is not None:
            budget = int(budget)
            if budget < 1:
                raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        driver = str(driver).strip().lower()
        if driver not in DRIVERS:
            raise ValueError(f"unknown driver {driver!r}; choose from {list(DRIVERS)}")
        self.refine = int(refine)
        if self.refine < 0:
            raise ValueError(f"refine must be >= 0, got {refine}")
        # The experiment selection is resolved (and typo-checked) up front.
        self.experiments = select_experiments(only=self.objective.experiments())
        if benchmarks is None:
            benchmarks = self.space.benchmarks
        if benchmarks is not None:
            catalog = self.base.catalog
            try:
                self.benchmarks: Optional[List[str]] = [
                    catalog.canonical_name(name) for name in benchmarks
                ]
            except KeyError as error:
                raise ValueError(str(error.args[0])) from None
        else:
            self.benchmarks = None
        if driver == "auto":
            driver = "descent" if self._all_axes_numeric() else "halving"
        if driver == "descent" and not self._all_axes_numeric():
            raise ValueError(
                "the 'descent' driver needs numeric axis values everywhere; "
                "use 'halving' (or 'auto') for categorical axes"
            )
        self.driver = driver
        self._shared_cache = cache is not None
        if cache is not None:
            self._cache: Optional[SimulationCache] = cache
        elif use_cache:
            self._cache = SimulationCache(cache_dir, version=int(cache_version))
        else:
            self._cache = None
        self.on_probe = on_probe
        self.should_stop = should_stop
        self._probes: Dict[Tuple[str, ...], ProbePoint] = {}
        self._trace: List[Dict[str, object]] = []
        self._simulations = 0

    # ------------------------------------------------------------------ running

    def run(self) -> OptimizeResult:
        """Execute the search and assemble the result."""
        start = time.perf_counter()
        self._probes.clear()
        self._trace.clear()
        self._simulations = 0
        hits0 = self._cache.stats.hits if self._cache is not None else 0
        misses0 = self._cache.stats.misses if self._cache is not None else 0
        budget_exhausted = False
        try:
            if self.driver == "exhaustive":
                self._run_exhaustive()
            elif self.driver == "descent":
                self._run_descent()
            else:
                self._run_halving()
        except _BudgetExhausted:
            budget_exhausted = True
        except _StopRequested:
            pass
        if self._cache is not None:
            self._cache.flush()
        result = self._assemble(budget_exhausted)
        if self._cache is not None:
            result.cache = CacheStats(
                hits=self._cache.stats.hits - hits0,
                misses=self._cache.stats.misses - misses0,
            )
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ---------------------------------------------------------------- evaluation

    def _evaluate(self, assignment: Mapping[str, object]) -> ProbePoint:
        """Evaluate (or recall) one probe; raises on budget/stop."""
        key = tuple(
            _format_value(assignment[axis_key]) for axis_key in self.space.axis_keys
        )
        existing = self._probes.get(key)
        if existing is not None:
            return existing
        if self.should_stop is not None and self.should_stop():
            raise _StopRequested()
        if self.budget is not None and len(self._probes) >= self.budget:
            raise _BudgetExhausted()
        started = time.perf_counter()
        # Normalize to axis-declaration order so the variant's derived name
        # (and therefore cache shard + report labels) matches what a sweep
        # over the same grid would produce.
        ordered = {key: assignment[key] for key in self.space.axis_keys}
        variant = self.space.scenario_for(self.base, ordered)
        context = SimulationContext(
            max_workers=1, scenario=variant, disk_cache=self._cache
        )
        runner = run_experiments(
            only=self.experiments, benchmarks=self.benchmarks, context=context
        )
        metrics = {
            name: headline_metrics(result) for name, result in runner.results.items()
        }
        # Resolve every needed path now: a typo fails on the first probe with
        # the full list of available paths, not after the whole search.
        values = {
            path: extract_metric(metrics, path)
            for path in self.objective.metric_paths()
        }
        probe = ProbePoint(
            index=len(self._probes),
            assignment=ordered,
            scenario_name=variant.name,
            metrics=metrics,
            values=values,
            simulations=context.simulations_executed,
            elapsed_seconds=time.perf_counter() - started,
        )
        self._probes[key] = probe
        self._simulations += probe.simulations
        if self.on_probe is not None:
            self.on_probe(probe)
        return probe

    def _score(self, probe: ProbePoint) -> Tuple[int, float]:
        """Search-time ranking: tentative feasibility, then the primary objective.

        Feasibility here is *tentative* -- relative constraints resolve
        against the best value seen so far; the final result re-resolves them
        against the best over all probes.
        """
        best = self._best_seen()
        feasible = all(
            c.feasible(probe.values[c.metric], best.get(c.metric))
            for c in self.objective.constraints
        )
        primary = self.objective.primary
        return (1 if feasible else 0, primary.scalar(probe.values[primary.metric]))

    def _best_seen(self) -> Dict[str, float]:
        """Per constraint metric, the best value over the probes so far."""
        best: Dict[str, float] = {}
        for constraint in self.objective.constraints:
            values = [p.values[constraint.metric] for p in self._probes.values()]
            if values:
                pick = max if constraint.sense == "maximize" else min
                best[constraint.metric] = pick(values)
        return best

    def _trace_step(self, phase: str) -> None:
        primary = self.objective.primary
        best = max(
            (primary.scalar(p.values[primary.metric]) for p in self._probes.values()),
            default=float("-inf"),
        )
        self._trace.append(
            {
                "step": len(self._trace) + 1,
                "phase": phase,
                "probes": len(self._probes),
                "best": primary.sign * best,
            }
        )

    def _all_axes_numeric(self) -> bool:
        return all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for axis in self.space.axes
            for value in axis.values
        )

    # ------------------------------------------------------------------ drivers

    def _run_exhaustive(self) -> None:
        for assignment in self.space.assignments():
            self._evaluate(assignment)
        self._trace_step("exhaustive")

    def _run_descent(self) -> None:
        """Coordinate descent from the grid median + bracketing refinement."""
        sorted_values = {
            axis.key: sorted(axis.values) for axis in self.space.axes  # type: ignore[type-var]
        }
        current: Dict[str, object] = {
            key: values[(len(values) - 1) // 2]
            for key, values in sorted_values.items()
        }
        self._evaluate(current)
        self._trace_step("start")
        for pass_number in range(_MAX_PASSES):
            changed = False
            for key in self.space.axis_keys:
                best_value = current[key]
                best_score = self._score(self._evaluate(current))
                for value in sorted_values[key]:
                    probe = self._evaluate({**current, key: value})
                    score = self._score(probe)
                    if score > best_score:
                        best_score, best_value = score, value
                if best_value != current[key]:
                    current[key] = best_value
                    changed = True
            self._trace_step(f"pass {pass_number + 1}")
            if not changed:
                break
        # Bracketing refinement: probe midpoints between the winner and its
        # neighbours, walking off the declared grid.  Axes whose scenario
        # field rejects fractional values (integer counts) are skipped.
        candidates = {key: list(values) for key, values in sorted_values.items()}
        for level in range(self.refine):
            improved = False
            for key in self.space.axis_keys:
                values = candidates[key]
                position = values.index(current[key])
                midpoints = []
                if position > 0:
                    midpoints.append((values[position - 1] + values[position]) / 2.0)  # type: ignore[operator]
                if position < len(values) - 1:
                    midpoints.append((values[position] + values[position + 1]) / 2.0)  # type: ignore[operator]
                best_value = current[key]
                best_score = self._score(self._evaluate(current))
                for midpoint in midpoints:
                    if any(_format_value(midpoint) == _format_value(v) for v in values):
                        continue
                    try:
                        probe = self._evaluate({**current, key: midpoint})
                    except ValueError:
                        # Integer scenario fields reject fractional midpoints.
                        continue
                    values.append(midpoint)
                    values.sort()  # type: ignore[arg-type]
                    score = self._score(probe)
                    if score > best_score:
                        best_score, best_value = score, midpoint
                if best_value != current[key]:
                    current[key] = best_value
                    improved = True
            self._trace_step(f"refine {level + 1}")
            if not improved:
                break

    def _run_halving(self) -> None:
        """Successive halving over per-axis index windows."""
        axes = [sorted(axis.values, key=_format_value) for axis in self.space.axes]
        if self._all_axes_numeric():
            axes = [sorted(values) for values in axes]  # type: ignore[type-var]
        keys = self.space.axis_keys
        windows = [(0, len(values) - 1) for values in axes]
        strides = [max(1, len(values) // 2) for values in axes]
        for round_number in range(_MAX_ROUNDS):
            samples: List[List[int]] = []
            for (low, high), stride in zip(windows, strides):
                indices = list(range(low, high + 1, stride))
                if indices[-1] != high:
                    indices.append(high)
                samples.append(indices)
            grid: List[Dict[str, int]] = [{}]
            for key, indices in zip(keys, samples):
                grid = [
                    {**assignment, key: index}
                    for assignment in grid
                    for index in indices
                ]
            before = len(self._probes)
            round_probes: List[ProbePoint] = []
            seen_indices = set()
            for index_assignment in grid:
                probe = self._evaluate(
                    {
                        key: axes[position][index_assignment[key]]
                        for position, key in enumerate(keys)
                    }
                )
                if probe.index not in seen_indices:
                    seen_indices.add(probe.index)
                    round_probes.append(probe)
            self._trace_step(f"round {round_number + 1}")
            if all(stride == 1 for stride in strides) and len(self._probes) == before:
                break
            # Keep the better half of this round (ties keep earlier probes),
            # then shrink each axis window to the survivors' envelope.
            scores = {probe.index: self._score(probe) for probe in round_probes}
            ranked = sorted(
                round_probes,
                key=lambda probe: (scores[probe.index], -probe.index),
                reverse=True,
            )
            survivors = ranked[: max(1, (len(ranked) + 1) // 2)]
            for position, key in enumerate(keys):
                stride = strides[position]
                positions = [
                    axes[position].index(probe.assignment[key])
                    for probe in survivors
                ]
                low = max(0, min(positions) - max(0, stride - 1))
                high = min(
                    len(axes[position]) - 1, max(positions) + max(0, stride - 1)
                )
                windows[position] = (low, high)
                strides[position] = max(1, stride // 2)

    # ----------------------------------------------------------------- assembly

    def _assemble(self, budget_exhausted: bool) -> OptimizeResult:
        probes = list(self._probes.values())
        constraints = self.objective.constraints
        best_by_metric: Dict[str, float] = {}
        for constraint in constraints:
            values = [p.values[constraint.metric] for p in probes]
            if values:
                pick = max if constraint.sense == "maximize" else min
                best_by_metric[constraint.metric] = pick(values)
        thresholds: List[Dict[str, object]] = []
        for constraint in constraints:
            resolved = constraint.threshold(best_by_metric.get(constraint.metric))
            thresholds.append(
                {
                    "constraint": constraint.describe(),
                    "metric": constraint.metric,
                    "op": resolved[0] if resolved is not None else None,
                    "bound": resolved[1] if resolved is not None else None,
                }
            )
        feasible = [
            probe.index
            for probe in probes
            if all(
                c.feasible(probe.values[c.metric], best_by_metric.get(c.metric))
                for c in constraints
            )
        ]
        feasible_probes = [probes[index] for index in feasible]
        rows = [
            [probe.values[obj.metric] for obj in self.objective.objectives]
            for probe in feasible_probes
        ]
        senses = [obj.sense for obj in self.objective.objectives]
        frontier = [
            feasible_probes[position].index
            for position in pareto_indices(rows, senses)
        ]
        best: Dict[str, int] = {}
        for obj in self.objective.objectives:
            winner: Optional[ProbePoint] = None
            for probe in feasible_probes:
                if winner is None or obj.scalar(probe.values[obj.metric]) > obj.scalar(
                    winner.values[obj.metric]
                ):
                    winner = probe
            if winner is not None:
                best[obj.metric] = winner.index
        return OptimizeResult(
            objective=self.objective,
            space=self.space,
            base=self.base,
            driver=self.driver,
            budget=self.budget,
            budget_exhausted=budget_exhausted,
            probes=probes,
            feasible=feasible,
            frontier=frontier,
            best=best,
            thresholds=thresholds,
            trace=list(self._trace),
            simulations_executed=self._simulations,
        )


def _coerce_space(
    space: Union[SweepSpec, str, Mapping[str, Sequence[object]]],
) -> SweepSpec:
    """Coerce the search-space argument to a :class:`SweepSpec`."""
    if isinstance(space, SweepSpec):
        return space
    if isinstance(space, str):
        return SweepSpec.load(space)
    if isinstance(space, Mapping):
        return SweepSpec.from_axes(space, name="optimize-space")
    raise ValueError(
        f"the search space must be a SweepSpec, a preset/file name or an "
        f"{{axis: values}} mapping, got {type(space).__name__}"
    )


def run_optimize(
    objective: object,
    space: Union[SweepSpec, str, Mapping[str, Sequence[object]]],
    base: Optional[Scenario] = None,
    **kwargs,
) -> OptimizeResult:
    """One-call convenience wrapper around :class:`OptimizeDriver`."""
    return OptimizeDriver(objective, space, base, **kwargs).run()
