"""Design-space optimization over the sweep/cache stack.

The subsystem behind ``repro optimize``: declarative objectives
(:mod:`repro.optimize.objective`), exact Pareto-frontier extraction over
sweep results and the persistent simulation cache
(:mod:`repro.optimize.pareto`), adaptive search drivers
(:mod:`repro.optimize.drivers`) and the stable result type
(:mod:`repro.optimize.result`).
"""

from repro.optimize.objective import (
    CONSTRAINT_OPS,
    SENSES,
    Constraint,
    Objective,
    ObjectiveSpec,
    extract_metric,
    metric_paths,
)
from repro.optimize.pareto import (
    cache_frontier,
    dominates,
    pareto_indices,
    point_metrics,
    sweep_frontier,
)
from repro.optimize.result import OptimizeResult, ProbePoint
from repro.optimize.drivers import DRIVERS, OptimizeDriver, run_optimize

__all__ = [
    "CONSTRAINT_OPS",
    "Constraint",
    "DRIVERS",
    "Objective",
    "ObjectiveSpec",
    "OptimizeDriver",
    "OptimizeResult",
    "ProbePoint",
    "SENSES",
    "cache_frontier",
    "dominates",
    "extract_metric",
    "metric_paths",
    "pareto_indices",
    "point_metrics",
    "run_optimize",
    "sweep_frontier",
]
