"""Optimization results: probes, frontier, best-per-objective, convergence.

:class:`OptimizeResult` follows the :class:`~repro.sweep.runner.SweepResult`
convention exactly: :meth:`~OptimizeResult.format_report` and
:meth:`~OptimizeResult.to_dict` contain only search data -- probe
assignments, metric values, frontier/feasible/best indices, the convergence
trace -- and **no** execution statistics, so a warm re-run (every probe a
cache hit) renders byte-identical output.  Timings and cache counters live
in :meth:`~OptimizeResult.describe_stats`, which the CLI prints to stderr.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.api.scenario import Scenario
from repro.engine.context import CacheStats
from repro.optimize.objective import ObjectiveSpec
from repro.sweep.spec import SweepSpec, _format_value


@dataclass
class ProbePoint:
    """One evaluated design point of an optimization run.

    ``simulations`` and ``elapsed_seconds`` are execution statistics (zero /
    near-zero on warm re-runs) and are excluded from serialized forms.
    """

    index: int
    assignment: Dict[str, object]
    scenario_name: str
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)
    simulations: int = 0
    elapsed_seconds: float = 0.0

    @property
    def cache_hit(self) -> bool:
        """Whether this probe was served entirely from the caches."""
        return self.simulations == 0

    def to_dict(self) -> dict:
        """Plain (JSON-ready) form -- stable across warm re-runs."""
        return {
            "index": self.index,
            "assignment": dict(self.assignment),
            "scenario": self.scenario_name,
            "values": dict(self.values),
            "metrics": {name: dict(bucket) for name, bucket in self.metrics.items()},
        }


@dataclass
class OptimizeResult:
    """One completed optimization: every probe plus the derived answers.

    Attributes:
        objective: the problem statement.
        space: the searched grid (axes define the candidate set).
        base: base scenario every probe overrides.
        driver: the resolved driver that ran (never ``"auto"``).
        budget: probe budget, ``None`` = unlimited.
        budget_exhausted: the search stopped because the budget ran out.
        probes: every evaluated point, in evaluation order.
        feasible: probe indices satisfying all constraints.
        frontier: feasible probe indices on the Pareto frontier.
        best: per objective metric, the best feasible probe index.
        thresholds: the resolved bound of every constraint.
        trace: per search step, probe count and best primary value so far.
    """

    objective: ObjectiveSpec
    space: SweepSpec
    base: Scenario
    driver: str
    budget: Optional[int] = None
    budget_exhausted: bool = False
    probes: List[ProbePoint] = field(default_factory=list)
    feasible: List[int] = field(default_factory=list)
    frontier: List[int] = field(default_factory=list)
    best: Dict[str, int] = field(default_factory=dict)
    thresholds: List[Dict[str, object]] = field(default_factory=list)
    trace: List[Dict[str, object]] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    simulations_executed: int = 0
    elapsed_seconds: float = 0.0

    def probe(self, index: int) -> ProbePoint:
        """Look up one probe by its index."""
        return self.probes[index]

    def best_probe(self, metric: Optional[str] = None) -> Optional[ProbePoint]:
        """The best feasible probe for one objective metric (the primary by
        default); ``None`` when no probe is feasible."""
        metric = metric if metric is not None else self.objective.primary.metric
        if metric not in self.best:
            if metric not in {obj.metric for obj in self.objective.objectives}:
                raise KeyError(metric)
            return None
        return self.probes[self.best[metric]]

    # ---------------------------------------------------------------- rendering

    def format_report(self) -> str:
        """Render the search as plain-text tables (search data only)."""
        spec = self.objective
        axis_keys = self.space.axis_keys
        metric_paths = [obj.metric for obj in spec.objectives]
        lines = [f"Optimization {spec.name!r}: " + "; ".join(
            obj.describe() for obj in spec.objectives
        )]
        for constraint in spec.constraints:
            lines.append(f"Constraint: {constraint.describe()}")
        lines.append(f"Base scenario: {self.base.describe()}")
        lines.append(f"Search space: {self.space.describe()}")
        budget = "none" if self.budget is None else str(self.budget)
        status = (
            f"Driver: {self.driver}, budget: {budget}, probes: "
            f"{len(self.probes)} of {self.space.grid_size()} grid points"
        )
        if self.budget_exhausted:
            status += " (budget exhausted)"
        lines.append(status)
        lines.append("")

        frontier_rows = [
            [_format_value(probe.assignment[key]) for key in axis_keys]
            + [probe.values[path] for path in metric_paths]
            + [probe.index]
            for probe in (self.probes[i] for i in self.frontier)
        ]
        lines.append(
            format_table(
                axis_keys + metric_paths + ["probe"],
                frontier_rows,
                title=(
                    f"Pareto frontier ({len(self.frontier)} of "
                    f"{len(self.feasible)} feasible probes)"
                ),
            )
        )
        lines.append("")

        if self.best:
            best_rows = []
            for obj in spec.objectives:
                index = self.best.get(obj.metric)
                if index is None:
                    continue
                probe = self.probes[index]
                best_rows.append(
                    [obj.describe(), probe.values[obj.metric]]
                    + [_format_value(probe.assignment[key]) for key in axis_keys]
                    + [probe.index]
                )
            lines.append(
                format_table(
                    ["Objective", "Value"] + axis_keys + ["probe"],
                    best_rows,
                    title="Best probe per objective",
                )
            )
        else:
            lines.append("No probe satisfies the constraints.")

        if self.thresholds:
            lines.append("")
            lines.append("Resolved constraint thresholds:")
            for entry in self.thresholds:
                bound = entry.get("bound")
                rendered = "unresolved" if bound is None else f"{entry['op']} {bound:g}"
                lines.append(f"  {entry['constraint']}: {entry['metric']} {rendered}")

        if self.trace:
            lines.append("")
            lines.append(
                format_table(
                    ["Step", "Phase", "Probes", f"Best {spec.primary.metric}"],
                    [
                        [
                            entry["step"],
                            entry["phase"],
                            entry["probes"],
                            entry["best"],
                        ]
                        for entry in self.trace
                    ],
                    title="Convergence trace",
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Structured (JSON-ready) output -- stable across warm re-runs."""
        return {
            "objective": self.objective.to_dict(),
            "space": self.space.to_dict(),
            "base_scenario": self.base.to_dict(),
            "driver": self.driver,
            "budget": self.budget,
            "budget_exhausted": self.budget_exhausted,
            "grid_size": self.space.grid_size(),
            "probes": [probe.to_dict() for probe in self.probes],
            "feasible": list(self.feasible),
            "frontier": list(self.frontier),
            "best": {
                metric: {
                    "probe": index,
                    "value": self.probes[index].values[metric],
                    "assignment": dict(self.probes[index].assignment),
                }
                for metric, index in self.best.items()
            },
            "thresholds": [dict(entry) for entry in self.thresholds],
            "trace": [dict(entry) for entry in self.trace],
        }

    def describe_stats(self) -> str:
        """One-line execution summary (cache hits prove warm runs are free)."""
        return (
            f"optimize {self.objective.name!r}: {len(self.probes)} probes, "
            f"{self.simulations_executed} simulations executed, "
            f"disk cache: {self.cache.hits} hits, {self.cache.misses} misses, "
            f"{self.elapsed_seconds:.2f}s ({self.driver})"
        )
