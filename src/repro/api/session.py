"""Session facade: run experiments under one typed hardware scenario.

A :class:`Session` owns the :class:`~repro.engine.context.SimulationContext`
of one :class:`~repro.api.scenario.Scenario` and exposes the library
workflow::

    from repro.api import Scenario, Session

    session = Session(Scenario.preset("paper-default"))
    result = session.run(["fig15", "fig17"])     # typed results
    print(result.report())                       # rendered tables
    result.to_dict()                             # structured (JSON-ready)

Repeated :meth:`Session.run` calls for the same selection are cache hits:
the underlying context memoizes every ``(benchmark, design)`` simulation and
the session memoizes whole runs, so nothing is ever simulated twice for one
scenario.

:func:`compare_scenarios` runs the same experiment selection under several
scenarios concurrently (one cached session each) and aligns their headline
metrics into a side-by-side delta table (text or JSON) -- the engine behind
``repro compare``.
"""

from __future__ import annotations

import dataclasses
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.api.scenario import Scenario
from repro.engine.context import SimulationContext
from repro.engine.experiment import experiment_names, get_experiment
from repro.engine.runner import RunnerResult, run_experiments
from repro.engine.serialize import to_jsonable


@dataclass
class SessionResult:
    """Typed results of one :meth:`Session.run` (scenario + runner outcome)."""

    scenario: Scenario
    runner: RunnerResult

    @property
    def results(self) -> Dict[str, object]:
        """Experiment name -> typed result object, in report order."""
        return self.runner.results

    @property
    def reports(self) -> Dict[str, str]:
        """Experiment name -> rendered plain-text report."""
        return self.runner.reports

    def report(self) -> str:
        """Every report concatenated with ``===`` section separators."""
        return self.runner.combined_report()

    def to_dict(self) -> dict:
        """Structured output: the scenario plus every experiment's data."""
        return {
            "scenario": self.scenario.to_dict(),
            "experiments": self.runner.to_dict(),
        }

    def metrics(self) -> Dict[str, Dict[str, float]]:
        """Experiment name -> headline scalar metrics (see :func:`headline_metrics`)."""
        return {
            name: headline_metrics(result)
            for name, result in self.results.items()
        }


def headline_metrics(result: object) -> Dict[str, float]:
    """The scalar headline numbers of one experiment result.

    Every experiment result is a dataclass whose top-level numeric fields
    are exactly the averages/maxima its report quotes against the paper
    (``average_speedup``, ``total_area_mm2``, ...); nested rows/cells are
    per-benchmark detail and are skipped.
    """
    if not dataclasses.is_dataclass(result) or isinstance(result, type):
        return {}
    metrics: Dict[str, float] = {}
    for f in dataclasses.fields(result):
        value = getattr(result, f.name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            metrics[f.name] = float(value)
    return metrics


class Session:
    """Facade running experiments under one scenario with full result reuse.

    Args:
        scenario: hardware scenario (the paper default when omitted).
        max_workers: thread-pool width of the owned context (``1`` = serial).
        context: adopt an existing context instead of creating one (its
            scenario must match; used by tests and advanced embedding).
    """

    def __init__(
        self,
        scenario: Optional[Scenario] = None,
        *,
        max_workers: Optional[int] = None,
        context: Optional[SimulationContext] = None,
    ) -> None:
        self.scenario = scenario if scenario is not None else Scenario.default()
        if context is not None and context.scenario != self.scenario:
            raise ValueError("the adopted context simulates a different scenario")
        self.context = context or SimulationContext(
            max_workers=max_workers, scenario=self.scenario
        )
        self._runs: Dict[Tuple, SessionResult] = {}

    def run(
        self,
        names: Optional[Sequence[str]] = None,
        *,
        skip: Optional[Sequence[str]] = None,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> SessionResult:
        """Run a selection of experiments (all of them by default).

        Identical selections return the memoized :class:`SessionResult`;
        overlapping selections still share every underlying simulation
        through the scenario's context.
        """
        key = (
            tuple(names) if names is not None else None,
            tuple(skip) if skip is not None else None,
            tuple(benchmarks) if benchmarks is not None else None,
        )
        cached = self._runs.get(key)
        if cached is not None:
            return cached
        runner = run_experiments(
            only=list(names) if names is not None else None,
            skip=list(skip) if skip is not None else None,
            benchmarks=list(benchmarks) if benchmarks is not None else None,
            context=self.context,
        )
        result = SessionResult(scenario=self.scenario, runner=runner)
        self._runs[key] = result
        return result

    def report(self, names: Optional[Sequence[str]] = None, **kwargs) -> str:
        """Rendered combined report of :meth:`run`."""
        return self.run(names, **kwargs).report()

    def sweep(self, spec, **kwargs):
        """Run a design-space sweep with this session's scenario as the base.

        ``spec`` is a :class:`~repro.sweep.spec.SweepSpec`, a preset name or
        a JSON spec file path; keyword arguments (``jobs``, ``executor``,
        ``cache_dir``, ``use_cache``) pass through to
        :class:`~repro.sweep.runner.SweepRunner`.  Returns the
        :class:`~repro.sweep.runner.SweepResult`.
        """
        # Imported lazily: repro.sweep imports the scenario layer.
        from repro.sweep.runner import SweepRunner

        return SweepRunner(spec, self.scenario, **kwargs).run()

    def optimize(self, objective, space, **kwargs):
        """Search a design space with this session's scenario as the base.

        ``objective`` is anything :meth:`~repro.optimize.objective.
        ObjectiveSpec.coerce` accepts (``"fig17.average_speedup"``, an
        :class:`~repro.optimize.objective.ObjectiveSpec`, ...); ``space`` is
        a :class:`~repro.sweep.spec.SweepSpec`, a preset/file name or an
        ``{axis: values}`` mapping; keyword arguments (``budget``,
        ``driver``, ``constraints`` via the spec, ``cache_dir``, ...) pass
        through to :class:`~repro.optimize.drivers.OptimizeDriver`.  Returns
        the :class:`~repro.optimize.result.OptimizeResult`.
        """
        # Imported lazily: repro.optimize imports the scenario layer.
        from repro.optimize.drivers import OptimizeDriver

        return OptimizeDriver(objective, space, self.scenario, **kwargs).run()

    # ------------------------------------------------- simulation pass-throughs

    def model(self, benchmark, **kwargs):
        """The scenario's memoized accelerator model for one benchmark."""
        return self.context.model(benchmark, **kwargs)

    def routing(self, benchmark, design, **kwargs):
        """Memoized routing-procedure result under this scenario."""
        return self.context.routing(benchmark, design, **kwargs)

    def end_to_end(self, benchmark, design, **kwargs):
        """Memoized end-to-end result under this scenario."""
        return self.context.end_to_end(benchmark, design, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(scenario={self.scenario.name!r})"


@dataclass
class MetricDelta:
    """One aligned headline metric across every compared scenario."""

    experiment: str
    metric: str
    values: List[float]

    def delta(self, index: int) -> float:
        """Absolute difference of scenario ``index`` vs. the first scenario."""
        return self.values[index] - self.values[0]

    def delta_percent(self, index: int) -> float:
        """Relative difference (%) of scenario ``index`` vs. the first scenario."""
        base = self.values[0]
        if base == 0:
            return math.inf if self.values[index] != 0 else 0.0
        return 100.0 * (self.values[index] / base - 1.0)


@dataclass
class ScenarioComparison:
    """Side-by-side results of running one selection under N scenarios."""

    labels: List[str]
    sessions: List[SessionResult]
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def scenarios(self) -> List[Scenario]:
        """The compared scenarios, in comparison order."""
        return [session.scenario for session in self.sessions]

    def format_report(self) -> str:
        """Render the delta table (plus the scenario legend)."""
        legend = "\n".join(
            f"  [{label}] {session.scenario.describe()}"
            for label, session in zip(self.labels, self.sessions)
        )
        headers = ["Experiment", "Metric"] + list(self.labels)
        for label in self.labels[1:]:
            headers.append(f"d% {label}")
        rows: List[List[object]] = []
        for delta in self.deltas:
            row: List[object] = [delta.experiment, delta.metric] + list(delta.values)
            for index in range(1, len(self.labels)):
                row.append(delta.delta_percent(index))
            rows.append(row)
        table = format_table(
            headers,
            rows,
            title=f"Scenario comparison ({len(self.labels)} scenarios)",
        )
        return f"Scenarios:\n{legend}\n\n{table}"

    def to_dict(self) -> dict:
        """Structured output: scenarios, aligned metrics and full experiment data."""
        return {
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "metrics": [
                {
                    "experiment": delta.experiment,
                    "metric": delta.metric,
                    "values": {
                        label: value
                        for label, value in zip(self.labels, delta.values)
                    },
                    "delta_percent": {
                        label: to_jsonable(delta.delta_percent(index))
                        for index, label in enumerate(self.labels)
                        if index > 0
                    },
                }
                for delta in self.deltas
            ],
            "experiments": {
                label: session.runner.to_dict()
                for label, session in zip(self.labels, self.sessions)
            },
        }


def compare_scenarios(
    scenarios: Sequence[Scenario],
    *,
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    sessions: Optional[Sequence[Session]] = None,
) -> ScenarioComparison:
    """Run one experiment selection under several scenarios and align results.

    Scenarios run concurrently, each over its own cached session (pass
    ``sessions`` to reuse already-warm ones).  Unless ``only`` names them
    explicitly, slow experiments (Table 5 trains networks and is
    hardware-insensitive) are skipped.

    Args:
        scenarios: the scenarios to compare (at least one; ``repro compare``
            requires two).
        only: run only these experiments.
        skip: additional experiments to skip.
        benchmarks: restrict every run to these Table-1 benchmarks
            (defaults to each scenario's own selection).
        jobs: per-session thread-pool width.
        sessions: existing sessions to reuse, matched to ``scenarios`` by
            position (missing/None entries get fresh sessions).
    """
    if not scenarios:
        raise ValueError("compare needs at least one scenario")
    if only is None:
        slow = [name for name in experiment_names() if get_experiment(name).slow]
        skip = sorted(set(skip or []) | set(slow))
    labels = _unique_labels([scenario.name for scenario in scenarios])
    pool_of_sessions: List[Session] = []
    for index, scenario in enumerate(scenarios):
        existing = sessions[index] if sessions is not None and index < len(sessions) else None
        if existing is not None:
            if existing.scenario != scenario:
                raise ValueError(f"session {index} was built for a different scenario")
            pool_of_sessions.append(existing)
        else:
            pool_of_sessions.append(Session(scenario, max_workers=jobs))

    def _run(session: Session) -> SessionResult:
        return session.run(only, skip=skip, benchmarks=benchmarks)

    if len(pool_of_sessions) == 1:
        results = [_run(pool_of_sessions[0])]
    else:
        with ThreadPoolExecutor(max_workers=len(pool_of_sessions)) as pool:
            results = list(pool.map(_run, pool_of_sessions))

    return ScenarioComparison(
        labels=labels,
        sessions=results,
        deltas=_align_metrics(results),
    )


def _unique_labels(names: Sequence[str]) -> List[str]:
    labels: List[str] = []
    seen: Dict[str, int] = {}
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        labels.append(name if count == 0 else f"{name}#{count + 1}")
    return labels


def _align_metrics(results: Sequence[SessionResult]) -> List[MetricDelta]:
    """Headline metrics present in every compared run, in report order."""
    per_run = [result.metrics() for result in results]
    deltas: List[MetricDelta] = []
    for experiment, metrics in per_run[0].items():
        for metric in metrics:
            if all(
                experiment in other and metric in other[experiment]
                for other in per_run[1:]
            ):
                deltas.append(
                    MetricDelta(
                        experiment=experiment,
                        metric=metric,
                        values=[other[experiment][metric] for other in per_run],
                    )
                )
    return deltas
