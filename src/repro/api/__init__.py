"""Stable public API of the PIM-CapsNet reproduction.

Everything a library consumer needs lives here:

* :class:`Scenario` -- a frozen, validated hardware + evaluation-slice
  configuration with JSON loading, named presets and dotted-path overrides.
* :class:`WorkloadSpec` / :class:`WorkloadCatalog` -- declarative capsule
  network workloads (dataset shape, capsule counts/dims, routing algorithm)
  merged on top of the Table-1 catalog via ``Scenario(workloads=...)``.
* :class:`Session` -- runs experiments under one scenario with full
  simulation reuse, returning typed results / rendered reports / JSON.
* :func:`compare_scenarios` -- the engine behind ``repro compare``: the same
  experiment selection under N scenarios, aligned into a delta table.
* :class:`SweepSpec` / :class:`SweepRunner` -- declarative design-space
  sweeps over scenario axes with process-parallel execution and a persistent
  on-disk result cache (the engine behind ``repro sweep --spec/--axis``).

Quickstart::

    from repro.api import Scenario, Session, WorkloadSpec, compare_scenarios

    base = Scenario.preset("paper-default")
    fast = base.with_set(["hmc.pe_frequency_mhz=625"])

    print(Session(base).report(["fig15"]))
    print(compare_scenarios([base, fast], only=["fig15"]).format_report())

    custom = base.with_workloads([WorkloadSpec(
        name="Caps-Big", dataset="MNIST", batch_size=256,
        num_low_capsules=4608, num_high_capsules=32,
    )])
    print(Session(custom).report(["fig15"]))   # Caps-Big rides along
"""

from repro.api.scenario import (
    PRESETS,
    Scenario,
    override_keys,
    preset_names,
)
from repro.api.session import (
    MetricDelta,
    ScenarioComparison,
    Session,
    SessionResult,
    compare_scenarios,
    headline_metrics,
)
from repro.sweep import (
    SweepAxis,
    SweepResult,
    SweepRunner,
    SweepSpec,
    run_sweep,
    sweep_preset_names,
)
from repro.optimize import (
    Constraint,
    Objective,
    ObjectiveSpec,
    OptimizeDriver,
    OptimizeResult,
    cache_frontier,
    run_optimize,
    sweep_frontier,
)
from repro.workloads.catalog import (
    RoutingAlgorithm,
    WorkloadCatalog,
    WorkloadSpec,
    default_catalog,
)

__all__ = [
    "PRESETS",
    "Constraint",
    "MetricDelta",
    "Objective",
    "ObjectiveSpec",
    "OptimizeDriver",
    "OptimizeResult",
    "RoutingAlgorithm",
    "Scenario",
    "ScenarioComparison",
    "Session",
    "SessionResult",
    "SweepAxis",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "WorkloadCatalog",
    "WorkloadSpec",
    "cache_frontier",
    "compare_scenarios",
    "default_catalog",
    "headline_metrics",
    "override_keys",
    "preset_names",
    "run_optimize",
    "run_sweep",
    "sweep_frontier",
    "sweep_preset_names",
]
