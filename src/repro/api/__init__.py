"""Stable public API of the PIM-CapsNet reproduction.

Everything a library consumer needs lives here:

* :class:`Scenario` -- a frozen, validated hardware + evaluation-slice
  configuration with JSON loading, named presets and dotted-path overrides.
* :class:`Session` -- runs experiments under one scenario with full
  simulation reuse, returning typed results / rendered reports / JSON.
* :func:`compare_scenarios` -- the engine behind ``repro compare``: the same
  experiment selection under N scenarios, aligned into a delta table.

Quickstart::

    from repro.api import Scenario, Session, compare_scenarios

    base = Scenario.preset("paper-default")
    fast = base.with_set(["hmc.pe_frequency_mhz=625"])

    print(Session(base).report(["fig15"]))
    print(compare_scenarios([base, fast], only=["fig15"]).format_report())
"""

from repro.api.scenario import (
    PRESETS,
    Scenario,
    override_keys,
    preset_names,
)
from repro.api.session import (
    MetricDelta,
    ScenarioComparison,
    Session,
    SessionResult,
    compare_scenarios,
    headline_metrics,
)

__all__ = [
    "PRESETS",
    "Scenario",
    "Session",
    "SessionResult",
    "ScenarioComparison",
    "MetricDelta",
    "compare_scenarios",
    "headline_metrics",
    "override_keys",
    "preset_names",
]
