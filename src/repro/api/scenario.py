"""Typed hardware scenarios: the unit of configuration of the public API.

A :class:`Scenario` bundles everything that defines *which hardware* (and
which slice of the evaluation) an experiment run simulates:

* the HMC configuration (:class:`~repro.hmc.config.HMCConfig`, Table 4),
* the host GPU and its cost-model calibration
  (:class:`~repro.gpu.devices.GPUDevice`,
  :class:`~repro.gpu.kernels.GPUCostParameters`),
* the pipeline depth and RMAS queue depth of the end-to-end model,
* an optional benchmark selection (Table 1 names) and an optional
  design-point selection for the evaluation figures.

Scenarios are frozen, validated and hashable, so they key result caches
directly.  They serialize to/from plain JSON (:meth:`Scenario.to_dict`,
:meth:`Scenario.from_dict`, :meth:`Scenario.from_file`), ship with named
presets (:data:`PRESETS`, e.g. ``paper-default``) and support dotted-path
overrides::

    scenario = Scenario.preset("paper-default").with_overrides(
        {"hmc.pe_frequency_mhz": 625.0, "gpu": "V100"}
    )
    scenario = scenario.with_set(["pipeline_batches=16"])   # CLI-style KEY=VALUE

The **invariant** of the whole scenario layer is that the default scenario
(``Scenario()`` == ``Scenario.preset("paper-default")``) reproduces the
golden reports in ``benchmarks/reports/`` byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.pipeline import PipelineModel
from repro.gpu.devices import GPU_DEVICES, GPUDevice, baseline_device, get_device
from repro.gpu.kernels import GPUCostParameters
from repro.hmc.config import HMCConfig
from repro.workloads.catalog import WorkloadCatalog, WorkloadSpec, default_catalog
from repro.workloads.parallelism import Dimension

#: Default pipeline depth (batch groups) of :class:`~repro.core.pipeline.PipelineModel`.
DEFAULT_PIPELINE_BATCHES = 8
#: Default average PE queue depth seen by the RMAS.
DEFAULT_RMAS_QUEUE_DEPTH = 8.0


@dataclass(frozen=True)
class Scenario:
    """One hardware + evaluation-slice configuration (frozen, hashable).

    Attributes:
        name: label used in reports, comparisons and cache directories.
        hmc: Hybrid Memory Cube configuration (paper Table 4 by default).
        gpu: host GPU device (the paper's P100 baseline by default).
        gpu_params: GPU cost-model calibration constants.
        pipeline_batches: batch groups in the evaluated stream (Sec. 4).
        rmas_queue_depth: average PE queue depth ``Q`` seen by the RMAS.
        workloads: user-defined capsule-network workloads
            (:class:`~repro.workloads.catalog.WorkloadSpec` values, inline
            spec dictionaries, or paths to workload JSON files) merged on top
            of the Table-1 catalog; they run in every figure, report, sweep
            and comparison alongside the paper's benchmarks.
        benchmarks: restrict runs to these catalog workloads (``None`` = the
            whole catalog); names are case-insensitive and stored in their
            canonical catalog form.
        designs: design-point selection for the evaluation figures
            (Figs. 15/17); ``None`` keeps each figure's paper defaults.  The
            GPU baseline is always evaluated (it normalizes the bars).
    """

    name: str = "paper-default"
    hmc: HMCConfig = field(default_factory=HMCConfig)
    gpu: GPUDevice = field(default_factory=baseline_device)
    gpu_params: GPUCostParameters = field(default_factory=GPUCostParameters)
    pipeline_batches: int = DEFAULT_PIPELINE_BATCHES
    rmas_queue_depth: float = DEFAULT_RMAS_QUEUE_DEPTH
    workloads: Tuple[WorkloadSpec, ...] = ()
    benchmarks: Optional[Tuple[str, ...]] = None
    designs: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("scenario name must be a non-empty string")
        if not isinstance(self.hmc, HMCConfig):
            raise ValueError("hmc must be an HMCConfig")
        if not isinstance(self.gpu, GPUDevice):
            raise ValueError("gpu must be a GPUDevice")
        if not isinstance(self.gpu_params, GPUCostParameters):
            raise ValueError("gpu_params must be a GPUCostParameters")
        if not isinstance(self.pipeline_batches, int):
            batches = float(self.pipeline_batches)
            if not batches.is_integer():
                raise ValueError("pipeline_batches must be an integer")
            object.__setattr__(self, "pipeline_batches", int(batches))
        if self.pipeline_batches < 1:
            raise ValueError("pipeline_batches must be >= 1")
        if float(self.rmas_queue_depth) <= 0:
            raise ValueError("rmas_queue_depth must be positive")
        object.__setattr__(self, "workloads", _workloads_from(self.workloads))
        for attr in ("benchmarks", "designs"):
            value = getattr(self, attr)
            if value is not None:
                if not value:
                    raise ValueError(f"{attr} must be None or a non-empty selection")
                object.__setattr__(self, attr, tuple(str(item) for item in value))
        if self.benchmarks is not None:
            # One catalog lookup normalizes the selection: names are matched
            # case-insensitively (like get_benchmark) and stored canonically.
            catalog = self.catalog
            unknown = [name for name in self.benchmarks if name not in catalog]
            if unknown:
                raise ValueError(
                    f"unknown benchmark(s) {unknown}; choose from {catalog.names()}"
                )
            object.__setattr__(
                self,
                "benchmarks",
                tuple(catalog.canonical_name(name) for name in self.benchmarks),
            )
        if self.designs is not None:
            # Custom strategies must be registered before the scenario is
            # built; typos then fail here instead of mid-run.
            from repro.engine.strategies import strategy_names

            known_designs = set(strategy_names())
            unknown = [design for design in self.designs if design not in known_designs]
            if unknown:
                raise ValueError(
                    f"unknown design point(s) {unknown}; "
                    f"registered design points: {sorted(known_designs)}"
                )

    # ------------------------------------------------------------- constructors

    @classmethod
    def default(cls) -> "Scenario":
        """The paper's configuration (reproduces the golden reports)."""
        return cls()

    @classmethod
    def preset(cls, name: str) -> "Scenario":
        """Look up a named preset scenario."""
        try:
            return PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario preset {name!r}; presets: {preset_names()}"
            ) from None

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Build a scenario from a (possibly partial) plain dictionary.

        Missing keys keep their paper defaults; unknown keys raise
        :class:`ValueError`.  ``gpu`` accepts either a catalog name
        (``"V100"``) or a partial attribute dictionary applied on top of the
        baseline device.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"scenario data must be a mapping, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario key(s) {unknown}; valid keys: {sorted(known)}"
            )
        default = cls()
        kwargs: Dict[str, object] = {}
        if "name" in data:
            kwargs["name"] = str(data["name"])
        if "hmc" in data:
            kwargs["hmc"] = _nested_from(default.hmc, data["hmc"], "hmc")
        if "gpu" in data:
            gpu = data["gpu"]
            if isinstance(gpu, str):
                try:
                    kwargs["gpu"] = get_device(gpu)
                except KeyError as error:
                    raise ValueError(str(error)) from None
            else:
                kwargs["gpu"] = _nested_from(default.gpu, gpu, "gpu")
        if "gpu_params" in data:
            kwargs["gpu_params"] = _nested_from(default.gpu_params, data["gpu_params"], "gpu_params")
        for scalar in ("pipeline_batches", "rmas_queue_depth"):
            if scalar in data:
                kwargs[scalar] = _coerce(data[scalar], getattr(default, scalar), scalar)
        if "workloads" in data and data["workloads"] is not None:
            # __post_init__ coerces scalars, dicts, and file references.
            kwargs["workloads"] = data["workloads"]
        for selection in ("benchmarks", "designs"):
            if selection in data and data[selection] is not None:
                value = data[selection]
                if isinstance(value, str):
                    value = _split_csv(value)
                kwargs[selection] = tuple(str(item) for item in value)
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Scenario":
        """Load a scenario from a JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read scenario file {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON in scenario file {path}: {error}") from None
        if isinstance(data, Mapping) and data.get("workloads") is not None:
            workloads = data["workloads"]
            if isinstance(workloads, (str, Mapping)):
                workloads = [workloads]
            # Workload file references resolve relative to the scenario file,
            # falling back to the working directory when no sibling exists.
            resolved: List[object] = []
            for entry in workloads:
                if isinstance(entry, str):
                    candidate = Path(entry)
                    if not candidate.is_absolute():
                        sibling = path.parent / candidate
                        if sibling.exists():
                            entry = str(sibling)
                resolved.append(entry)
            data = {**data, "workloads": resolved}
        scenario = cls.from_dict(data)
        if "name" not in data:
            scenario = dataclasses.replace(scenario, name=path.stem)
        return scenario

    @classmethod
    def load(cls, spec: str) -> "Scenario":
        """Resolve a CLI scenario spec: a preset name or a JSON file path."""
        if spec in PRESETS:
            return PRESETS[spec]
        path = Path(spec)
        if path.exists():
            return cls.from_file(path)
        raise ValueError(
            f"unknown scenario {spec!r}: not a preset ({preset_names()}) "
            f"and no such file"
        )

    # ------------------------------------------------------------ serialization

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) dictionary round-tripping through :meth:`from_dict`."""
        gpu = dataclasses.asdict(self.gpu)
        gpu["memory_technology"] = self.gpu.memory_technology.value
        return {
            "name": self.name,
            "hmc": dataclasses.asdict(self.hmc),
            "gpu": gpu,
            "gpu_params": dataclasses.asdict(self.gpu_params),
            "pipeline_batches": self.pipeline_batches,
            "rmas_queue_depth": self.rmas_queue_depth,
            "workloads": [spec.to_dict() for spec in self.workloads],
            "benchmarks": list(self.benchmarks) if self.benchmarks is not None else None,
            "designs": list(self.designs) if self.designs is not None else None,
        }

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the scenario as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # ----------------------------------------------------------------- hashing

    def hardware_dict(self) -> Dict[str, object]:
        """The simulation-relevant slice of :meth:`to_dict`.

        Only the fields that change what a single ``(benchmark, design)``
        simulation computes: HMC, GPU, GPU cost model, pipeline depth and
        RMAS queue depth.  The scenario ``name`` is a label, and the
        ``workloads``/``benchmarks``/``designs`` selections only pick *which*
        simulations run, so none of them belong in a result cache key.
        """
        data = self.to_dict()
        for selection in ("name", "workloads", "benchmarks", "designs"):
            data.pop(selection)
        return data

    def hardware_hash(self) -> str:
        """Content hash (SHA-256 hex) of :meth:`hardware_dict`.

        The key the persistent simulation cache
        (:class:`~repro.engine.diskcache.SimulationCache`) files results
        under: scenarios that differ only in name (or in selections) share
        cached simulations; any hardware change misses.  Memoized per
        instance (the scenario is frozen) -- cache lookups hash in O(1).
        """
        cached = self.__dict__.get("_hardware_hash")
        if cached is not None:
            return cached
        from repro.engine.diskcache import canonical_digest

        digest = canonical_digest(self.hardware_dict())
        object.__setattr__(self, "_hardware_hash", digest)
        return digest

    def content_hash(self) -> str:
        """Content hash (SHA-256 hex) of the whole scenario except its name."""
        from repro.engine.diskcache import canonical_digest

        data = self.to_dict()
        data.pop("name")
        return canonical_digest(data)

    # ---------------------------------------------------------------- overrides

    def with_overrides(self, overrides: Mapping[str, object]) -> "Scenario":
        """Apply dotted-path overrides (``{"hmc.pe_frequency_mhz": 625}``).

        Values may be strings (coerced to the target field's type) or already
        typed.  Unknown keys raise :class:`ValueError` listing the valid ones.
        """
        scenario = self
        for key, raw in overrides.items():
            scenario = scenario._apply_override(str(key), raw)
        return scenario

    def with_set(self, assignments: Iterable[str]) -> "Scenario":
        """Apply CLI-style ``KEY=VALUE`` overrides (the ``--set`` option).

        Unless ``name`` itself is assigned, the result is renamed to
        ``<name>+<assignments>`` so compared scenarios stay distinguishable.
        """
        pairs: List[Tuple[str, str]] = []
        for assignment in assignments:
            key, sep, raw = str(assignment).partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"invalid override {assignment!r}; expected KEY=VALUE "
                    f"(e.g. hmc.pe_frequency_mhz=625)"
                )
            pairs.append((key.strip(), raw.strip()))
        scenario = self
        for key, raw in pairs:
            scenario = scenario._apply_override(key, raw)
        if pairs and not any(key == "name" for key, _ in pairs):
            suffix = ",".join(f"{key}={raw}" for key, raw in pairs)
            scenario = dataclasses.replace(scenario, name=f"{self.name}+{suffix}")
        return scenario

    def _apply_override(self, key: str, raw: object) -> "Scenario":
        head, _, rest = key.partition(".")
        top = {f.name for f in dataclasses.fields(type(self))}
        if head not in top:
            raise ValueError(
                f"unknown scenario key {key!r}; valid keys: {override_keys()}"
            )
        if rest:
            sub = getattr(self, head)
            if not dataclasses.is_dataclass(sub):
                raise ValueError(f"scenario key {head!r} has no nested fields")
            if "." in rest:
                raise ValueError(f"scenario key {key!r} nests too deep")
            sub_fields = {f.name for f in dataclasses.fields(type(sub))}
            if rest not in sub_fields:
                raise ValueError(
                    f"unknown scenario key {key!r}; valid keys: {override_keys()}"
                )
            value = _coerce(raw, getattr(sub, rest), key)
            return dataclasses.replace(self, **{head: dataclasses.replace(sub, **{rest: value})})
        if head == "gpu":
            if isinstance(raw, str):
                try:
                    return dataclasses.replace(self, gpu=get_device(raw))
                except KeyError as error:
                    raise ValueError(str(error)) from None
            if isinstance(raw, GPUDevice):
                return dataclasses.replace(self, gpu=raw)
            raise ValueError(f"gpu must name a catalog device ({sorted(GPU_DEVICES)})")
        if head in ("hmc", "gpu_params"):
            if not isinstance(raw, type(getattr(self, head))):
                raise ValueError(
                    f"{head} cannot be assigned directly from {type(raw).__name__}; "
                    f"override its fields (e.g. {head}.<field>=<value>)"
                )
            return dataclasses.replace(self, **{head: raw})
        if head == "workloads":
            # CSV of workload-file paths (CLI) or a sequence of specs /
            # dictionaries / paths (Python); __post_init__ coerces each entry.
            value = _split_csv(raw) if isinstance(raw, str) else tuple(raw)  # type: ignore[arg-type]
            return dataclasses.replace(self, workloads=value)
        if head in ("benchmarks", "designs"):
            value = _split_csv(raw) if isinstance(raw, str) else tuple(raw)  # type: ignore[arg-type]
            return dataclasses.replace(self, **{head: value})
        value = _coerce(raw, getattr(self, head), key)
        return dataclasses.replace(self, **{head: value})

    # ----------------------------------------------------------------- workloads

    @property
    def catalog(self) -> WorkloadCatalog:
        """The workload catalog of this scenario (Table 1 + own workloads).

        Every benchmark lookup of a run under this scenario resolves through
        this catalog; with no scenario workloads it is exactly the shared
        Table-1 default catalog.
        """
        if not self.workloads:
            return default_catalog()
        return default_catalog().with_specs(self.workloads)

    def with_workloads(self, workloads: Iterable[object]) -> "Scenario":
        """A scenario with extra workloads merged in (the ``--workload`` path).

        Accepts :class:`~repro.workloads.catalog.WorkloadSpec` values, inline
        spec dictionaries or workload JSON file paths.
        """
        return dataclasses.replace(
            self, workloads=self.workloads + _workloads_from(workloads)
        )

    # ------------------------------------------------------------- model wiring

    def model_kwargs(
        self,
        pe_frequency_mhz: Optional[float] = None,
        force_dimension: Optional[Dimension] = None,
    ) -> Dict[str, object]:
        """Constructor kwargs for :class:`~repro.core.accelerator.PIMCapsNet`.

        Only parameters deviating from the paper default are passed, so the
        default scenario constructs ``PIMCapsNet(benchmark)`` exactly as the
        pre-scenario engine did (golden-report invariant) and keeps simple
        test stub factories working.
        """
        default = _PAPER_DEFAULT
        kwargs: Dict[str, object] = {}
        if pe_frequency_mhz is not None:
            kwargs["hmc_config"] = self.hmc.with_pe_frequency(pe_frequency_mhz)
        elif self.hmc != default.hmc:
            kwargs["hmc_config"] = self.hmc
        if self.gpu != default.gpu:
            kwargs["gpu_device"] = self.gpu
        if self.gpu_params != default.gpu_params:
            kwargs["gpu_params"] = self.gpu_params
        if self.pipeline_batches != default.pipeline_batches:
            kwargs["pipeline"] = PipelineModel(num_batches=self.pipeline_batches)
        if self.rmas_queue_depth != default.rmas_queue_depth:
            kwargs["rmas_queue_depth"] = self.rmas_queue_depth
        if force_dimension is not None:
            kwargs["force_dimension"] = force_dimension
        return kwargs

    def benchmark_selection(self) -> Optional[List[str]]:
        """The benchmark restriction as a list (``None`` = all of Table 1)."""
        return list(self.benchmarks) if self.benchmarks is not None else None

    def describe(self) -> str:
        """Human-readable one-liner."""
        extra = (
            f", +{len(self.workloads)} workload(s)" if self.workloads else ""
        )
        return (
            f"{self.name}: {self.gpu.name} host, "
            f"{self.hmc.num_vaults}x{self.hmc.pes_per_vault} PEs @ "
            f"{self.hmc.pe_frequency_mhz:g} MHz{extra}"
        )


def _split_csv(text: str) -> Tuple[str, ...]:
    return tuple(part.strip() for part in str(text).split(",") if part.strip())


def _workloads_from(value: object) -> Tuple[WorkloadSpec, ...]:
    """Coerce a scenario's ``workloads`` entries to :class:`WorkloadSpec` s.

    Each entry may already be a spec, an inline spec dictionary, or a path to
    a workload JSON file (the scenario-file ``workloads:`` section supports
    all three).
    """
    if value is None:
        return ()
    if isinstance(value, (str, Mapping, WorkloadSpec)):
        value = (value,)
    specs = []
    for entry in value:
        if isinstance(entry, WorkloadSpec):
            specs.append(entry)
        elif isinstance(entry, Mapping):
            specs.append(WorkloadSpec.from_dict(entry))
        elif isinstance(entry, (str, Path)):
            specs.append(WorkloadSpec.from_file(entry))
        else:
            raise ValueError(
                f"workloads entries must be WorkloadSpec, spec mappings or "
                f"file paths, got {type(entry).__name__}"
            )
    return tuple(specs)


def _coerce(raw: object, current: object, key: str) -> object:
    """Coerce an override value to the type of the field it replaces."""
    if not isinstance(raw, str):
        if isinstance(current, bool) or isinstance(raw, bool):
            return raw
        if isinstance(current, float) and isinstance(raw, int):
            return float(raw)
        if isinstance(current, int) and isinstance(raw, float):
            if raw.is_integer():
                return int(raw)
            raise ValueError(f"invalid value for {key!r}: expected an integer, got {raw}")
        return raw
    text = raw.strip()
    try:
        if isinstance(current, bool):
            lowered = text.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"expected a boolean, got {text!r}")
        if isinstance(current, Enum):
            return type(current)(text)
        if isinstance(current, int):
            return int(text)
        if isinstance(current, float):
            return float(text)
        if isinstance(current, str) or current is None:
            return text
        if isinstance(current, tuple):
            return _split_csv(text)
    except ValueError as error:
        raise ValueError(f"invalid value for {key!r}: {error}") from None
    raise ValueError(f"cannot coerce a value for scenario key {key!r}")


def _nested_from(default_value, data: object, label: str):
    """A nested config dataclass from a partial attribute dictionary."""
    if isinstance(data, type(default_value)):
        return data
    if not isinstance(data, Mapping):
        raise ValueError(
            f"scenario key {label!r} must be a mapping of field overrides, "
            f"got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(type(default_value))}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {label} key(s) {unknown}; valid keys: {sorted(known)}"
        )
    coerced = {
        key: _coerce(value, getattr(default_value, key), f"{label}.{key}")
        for key, value in data.items()
    }
    return dataclasses.replace(default_value, **coerced)


def override_keys() -> List[str]:
    """Every valid dotted override key (for error messages and docs)."""
    keys: List[str] = []
    for f in dataclasses.fields(Scenario):
        keys.append(f.name)
        default = getattr(_PAPER_DEFAULT, f.name)
        if dataclasses.is_dataclass(default):
            keys.extend(f"{f.name}.{sub.name}" for sub in dataclasses.fields(type(default)))
    return keys


#: The paper's configuration, used as the deviation reference by
#: :meth:`Scenario.model_kwargs` (constructed once, after the class exists).
_PAPER_DEFAULT = Scenario()

#: Named scenario presets selectable via ``--scenario NAME``.
PRESETS: Dict[str, Scenario] = {
    "paper-default": _PAPER_DEFAULT,
    "hmc-625mhz": Scenario(name="hmc-625mhz", hmc=HMCConfig().with_pe_frequency(625.0)),
    "hmc-8pe": Scenario(name="hmc-8pe", hmc=HMCConfig().with_pes_per_vault(8)),
    "v100-host": Scenario(name="v100-host", gpu=GPU_DEVICES["V100"]),
    "deep-pipeline": Scenario(name="deep-pipeline", pipeline_batches=32),
}


def preset_names() -> List[str]:
    """Names of the built-in scenario presets."""
    return sorted(PRESETS)
