"""Analysis helpers: metrics and plain-text table formatting for experiments."""

from repro.analysis.metrics import (
    energy_saving,
    geometric_mean,
    normalize,
    percentage,
    speedup,
)
from repro.analysis.tables import format_table, transpose_rows

__all__ = [
    "energy_saving",
    "geometric_mean",
    "normalize",
    "percentage",
    "speedup",
    "format_table",
    "transpose_rows",
]
