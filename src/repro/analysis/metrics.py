"""Small metric helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def speedup(baseline_time: float, improved_time: float) -> float:
    """Speedup of ``improved_time`` relative to ``baseline_time`` (>1 is faster)."""
    if improved_time <= 0:
        return float("inf")
    if baseline_time < 0:
        raise ValueError("baseline_time must be non-negative")
    return baseline_time / improved_time


def energy_saving(baseline_energy: float, improved_energy: float) -> float:
    """Fractional energy saving (1 - improved / baseline)."""
    if baseline_energy <= 0:
        raise ValueError("baseline_energy must be positive")
    return 1.0 - improved_energy / baseline_energy


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Normalize ``values`` to ``reference``."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [value / reference for value in values]


def percentage(fraction: float) -> str:
    """Render a fraction as a percentage string with two decimals."""
    return f"{100.0 * fraction:.2f}%"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of an empty sequence")
    return sum(values) / len(values)
