"""Plain-text table formatting for experiment reports.

The experiment drivers print the same rows/series the paper's tables and
figures report; this module renders them as aligned monospace tables so the
benchmark harness output is readable in a terminal and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def transpose_rows(rows: Sequence[Sequence[object]]) -> List[List[object]]:
    """Transpose a rectangular list of rows (utility for series-major figures)."""
    if not rows:
        return []
    length = len(rows[0])
    if any(len(row) != length for row in rows):
        raise ValueError("rows must be rectangular")
    return [[row[i] for row in rows] for i in range(length)]
