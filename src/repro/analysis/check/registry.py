"""The rule registry: stable IDs, severities and per-rule documentation.

Every invariant the checker enforces is registered here as a :class:`Rule`
with a stable ID the rest of the tooling hangs off: ``--select``/``--ignore``
filters, inline ``# repro: allow(RPR-...)`` suppressions, the JSON findings
artifact and the README rule table all speak these IDs.

ID scheme (three rule families plus cross-cutting hygiene):

* ``RPR-Dxxx`` -- determinism: the byte-identical-reports guarantee.
* ``RPR-Txxx`` -- concurrency: thread-safety of the shared-state modules.
* ``RPR-Cxxx`` -- consistency: dotted path literals vs. the live schemas.
* ``RPR-Hxxx`` -- hygiene: error-handling discipline.
* ``RPR-Sxxx`` -- the checker's own bookkeeping (unused suppressions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.check.findings import SEVERITIES


@dataclass(frozen=True)
class Rule:
    """One registered invariant.

    Attributes:
        rule_id: stable identifier (``RPR-D001``, ...).
        family: rule family (``determinism``, ``concurrency``, ``consistency``,
            ``hygiene``, ``checker``).
        severity: default severity of the rule's findings.
        summary: one-line description (the README rule-table entry).
        rationale: which repo invariant the rule encodes, and why.
        scope: human-readable description of where the rule applies.
    """

    rule_id: str
    family: str
    severity: str
    summary: str
    rationale: str
    scope: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.rule_id}: unknown severity {self.severity!r}; "
                f"choose from {list(SEVERITIES)}"
            )


#: All registered rules, in report order.
RULES: Tuple[Rule, ...] = (
    Rule(
        rule_id="RPR-D001",
        family="determinism",
        severity="error",
        summary="wall-clock or seedless RNG in a deterministic module",
        rationale=(
            "Reports must be byte-identical across runs: the golden-report "
            "regression gate (PR 1) and the warm-cache byte-identity "
            "guarantees (PRs 4-8) both die the moment simulation results "
            "depend on time.time()/datetime.now() or an unseeded RNG.  "
            "time.perf_counter() is allowed (stats go to stderr only)."
        ),
        scope=(
            "src/repro/** except repro/serve/ (uptime metrics are wall-clock "
            "by design); tests, benchmarks and examples are exempt"
        ),
    ),
    Rule(
        rule_id="RPR-D002",
        family="determinism",
        severity="error",
        summary="accumulation-reordering kernel in an exact-arithmetic module",
        rationale=(
            "PR 5's bit-exactness gate measured BLAS matmul/tensordot and "
            "einsum(optimize=True) to reorder FP32 accumulation, changing "
            "trained weights bit-for-bit; the gate rejected them.  The `@` "
            "operator, np.matmul, np.dot, np.tensordot and non-False einsum "
            "optimize= are therefore banned in the exact compute modules."
        ),
        scope="src/repro/capsnet/** and src/repro/arithmetic/**",
    ),
    Rule(
        rule_id="RPR-D003",
        family="determinism",
        severity="error",
        summary="iteration over an unordered set feeds rendered output",
        rationale=(
            "Set iteration order depends on PYTHONHASHSEED for strings; a "
            "report row, label list or joined string built by iterating a "
            "set directly can differ between runs.  Wrap the set in "
            "sorted(...) or iterate an ordered container instead.  "
            "Order-insensitive consumers (len/any/all/min/max/`in`) are fine."
        ),
        scope="src/repro/**",
    ),
    Rule(
        rule_id="RPR-T001",
        family="concurrency",
        severity="error",
        summary="module-level state mutated outside a lock in a threaded module",
        rationale=(
            "Modules that import threading/concurrent.futures run their "
            "functions on many threads (serve handlers, sweep executors, "
            "cache flushers).  Module-level registries, caches and flags in "
            "those modules must only be mutated inside a `with <lock>:` "
            "block, the pattern the experiment/strategy registries and both "
            "disk caches already follow."
        ),
        scope="src/repro/** modules importing threading or concurrent.futures",
    ),
    Rule(
        rule_id="RPR-T002",
        family="concurrency",
        severity="error",
        summary="cache file written without the atomic-publish pattern",
        rationale=(
            "The disk caches and the sweep work queue promise that readers "
            "only ever see complete files: every publish goes through a "
            "temp file + os.replace (or an O_CREAT|O_EXCL claim).  A plain "
            "write-mode open in those modules can expose a torn shard to a "
            "concurrent reader."
        ),
        scope="src/repro/engine/diskcache.py and src/repro/sweep/queue.py",
    ),
    Rule(
        rule_id="RPR-T003",
        family="concurrency",
        severity="error",
        summary="hardened-module write I/O bypasses the shared retry helper",
        rationale=(
            "The fault-injection PR hardened the disk caches and the sweep "
            "work queue against transient I/O errors: every publish runs "
            "under repro.faults.retry.with_retries (deterministic backoff, "
            "fatal errnos fail fast).  A new write path that bypasses the "
            "helper silently reintroduces lost-publish behavior under the "
            "exact faults the chaos suite injects.  O_CREAT|O_EXCL claim "
            "writes are exempt: a lost claim race is contention, not a "
            "fault."
        ),
        scope="src/repro/engine/diskcache.py and src/repro/sweep/queue.py",
    ),
    Rule(
        rule_id="RPR-C001",
        family="consistency",
        severity="error",
        summary="scenario override path not in the live Scenario schema",
        rationale=(
            "Dotted scenario paths (--set KEY=VALUE, sweep axes, "
            "with_overrides keys) are string literals that silently rot "
            "when a Scenario/HMCConfig field is renamed.  The checker "
            "resolves every literal against the live schema "
            "(override_keys / canonical_axis_key), so stale paths die in "
            "CI instead of at a user's terminal."
        ),
        scope="Python calls and CLI literals, sweep-spec JSON, markdown docs",
    ),
    Rule(
        rule_id="RPR-C002",
        family="consistency",
        severity="error",
        summary="experiment.metric path not offered by the experiment registry",
        rationale=(
            "Optimization objectives and constraints name dotted "
            "experiment.metric paths into the experiments' headline "
            "numbers.  The checker validates every literal against the "
            "live experiment registry and each result dataclass's numeric "
            "fields, so a renamed metric breaks the build, not a query."
        ),
        scope="Python calls and CLI literals, objective-spec JSON, markdown docs",
    ),
    Rule(
        rule_id="RPR-H001",
        family="hygiene",
        severity="error",
        summary="broad or bare exception handler",
        rationale=(
            "`except Exception` / bare `except` hide invariant violations "
            "the rest of the suite is built to surface (an unexpected "
            "KeyError becomes a silent wrong number).  Catch the specific "
            "errors a call site can raise.  Handlers that re-raise bare "
            "(cleanup-then-raise) are exempt; genuinely-broad swallowing "
            "handlers (a server's last-resort 500 path) carry an explicit "
            "allow annotation explaining why."
        ),
        scope="all checked Python files",
    ),
    Rule(
        rule_id="RPR-S001",
        family="checker",
        severity="warning",
        summary="suppression comment that suppresses nothing",
        rationale=(
            "An `# repro: allow(...)` annotation whose violation has since "
            "been fixed is dead weight that can mask a future regression "
            "at the same site; remove it."
        ),
        scope="all checked files, for rules that ran on the file",
    ),
)

#: Rule lookup by ID.
RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}


def rule_ids() -> List[str]:
    """Every registered rule ID, in report order."""
    return [rule.rule_id for rule in RULES]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by ID."""
    try:
        return RULES_BY_ID[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; registered rules: {rule_ids()}"
        ) from None


def resolve_selection(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> Set[str]:
    """The active rule-ID set under ``--select`` / ``--ignore`` filters.

    ``select`` starts from only the named rules (default: all), ``ignore``
    then removes rules.  Unknown IDs raise :class:`ValueError` listing the
    registered ones; selecting everything away raises too (an empty check
    would vacuously pass CI).
    """
    known = set(rule_ids())
    active = set(known)
    if select is not None:
        selected = {str(item).strip() for item in select if str(item).strip()}
        unknown = sorted(selected - known)
        if unknown:
            raise ValueError(
                f"unknown rule(s) in --select: {unknown}; "
                f"registered rules: {rule_ids()}"
            )
        active = selected
    if ignore is not None:
        ignored = {str(item).strip() for item in ignore if str(item).strip()}
        unknown = sorted(ignored - known)
        if unknown:
            raise ValueError(
                f"unknown rule(s) in --ignore: {unknown}; "
                f"registered rules: {rule_ids()}"
            )
        active -= ignored
    if not active:
        raise ValueError("the --select/--ignore combination leaves no rules active")
    return active


def format_rule_table() -> str:
    """The ``repro check --list-rules`` table (also the README source)."""
    from repro.analysis.tables import format_table

    return format_table(
        headers=["Rule", "Family", "Severity", "Checks"],
        rows=[
            [rule.rule_id, rule.family, rule.severity, rule.summary]
            for rule in RULES
        ],
        title=f"repro check rules ({len(RULES)})",
    )
