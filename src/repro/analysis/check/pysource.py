"""Shared Python-source infrastructure for the AST rules.

:class:`PySource` parses one file once and precomputes what every rule
family needs: the AST, an import-alias map (``np`` -> ``numpy``,
``default_rng`` -> ``numpy.random.default_rng``) so rules match *resolved*
dotted names instead of surface spellings, and the path-scoping predicates
(is this file part of the deterministic src tree? of the serve allowlist?).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Directory components that mark a file as outside the library source
#: (tests may use wall-clock timeouts, benchmarks measure wall-clock).
_NON_SRC_PARTS = frozenset({"tests", "benchmarks", "examples", "docs"})


@dataclass
class PySource:
    """One parsed Python file plus the precomputed lookups the rules share."""

    path: str
    source: str
    tree: ast.Module
    #: local binding -> fully qualified imported name (``np`` -> ``numpy``).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: resolved absolute path components, for scope predicates.
    parts: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, path: str, source: str) -> Optional["PySource"]:
        """Parse ``source``; ``None`` when the file has a syntax error.

        (The checker reports syntax errors separately -- a file that does
        not parse cannot be checked, but also cannot ship.)
        """
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return None
        module = cls(
            path=path,
            source=source,
            tree=tree,
            parts=Path(path).resolve().parts,
        )
        module._collect_aliases()
        return module

    # ------------------------------------------------------------------ scoping

    def in_repro_src(self) -> bool:
        """True for files in the ``repro`` package source tree."""
        return "repro" in self.parts and not (set(self.parts) & _NON_SRC_PARTS)

    def in_parts(self, *names: str) -> bool:
        """True when any path component equals one of ``names``."""
        return bool(set(self.parts) & set(names))

    def basename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    # ------------------------------------------------------------ name handling

    def _collect_aliases(self) -> None:
        """Map local bindings to fully-qualified imported names.

        Only import statements introduce entries, so a local variable that
        happens to be called ``random`` never resolves to the stdlib module
        (no false positives on shadowed names).
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b.c` binds `a`; `import a.b.c as x` binds x=a.b.c.
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The surface dotted name of a Name/Attribute chain (or ``None``)."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        return ".".join(reversed(chain))

    def resolved_name(self, node: ast.AST) -> Optional[str]:
        """The import-resolved dotted name of a call target (or ``None``).

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a chain whose head was never imported
        resolves to its surface form (locals, builtins).
        """
        surface = self.dotted_name(node)
        if surface is None:
            return None
        head, _, rest = surface.partition(".")
        full_head = self.aliases.get(head)
        if full_head is None:
            return surface
        return f"{full_head}.{rest}" if rest else full_head

    def imports_any(self, *modules: str) -> bool:
        """True when the file imports any of ``modules`` (or a submodule)."""
        for full in self.aliases.values():
            for module in modules:
                if full == module or full.startswith(module + "."):
                    return True
        return False
