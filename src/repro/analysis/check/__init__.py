"""Static analysis for the repro codebase: ``repro check``.

A stdlib-only (``ast``) checker that turns the repo's hard-won invariants
into enforceable lint rules with stable IDs:

* **determinism** (``RPR-D00x``) -- no wall-clock/seedless RNG in the
  simulation tree, no accumulation-reordering kernels in the
  exact-arithmetic modules, no set-order-dependent output;
* **concurrency** (``RPR-T00x``) -- module state mutated only under locks
  in threaded modules, cache files published atomically;
* **consistency** (``RPR-C00x``) -- dotted scenario-override and
  ``experiment.metric`` path literals validated against the live schemas;
* **hygiene** (``RPR-H001``) -- no broad/bare exception handlers;
* plus ``RPR-S001`` for suppression comments that suppress nothing.

Violations that are deliberate carry an inline ``repro: allow(RPR-H001)``
comment annotation (with a ``--`` why) on the offending line; whole files
opt out of one rule with ``repro: allow-file(ID)``.  See :mod:`repro.analysis.check.registry` for the full rule table and
:func:`run_check` for the programmatic entry point.
"""

from repro.analysis.check.engine import (
    CheckResult,
    check_file,
    discover_files,
    run_check,
)
from repro.analysis.check.findings import SEVERITIES, Finding
from repro.analysis.check.registry import (
    RULES,
    Rule,
    format_rule_table,
    get_rule,
    resolve_selection,
    rule_ids,
)
from repro.analysis.check.schema import reset_schema_caches
from repro.analysis.check.suppress import Suppressions, parse_suppressions

__all__ = [
    "CheckResult",
    "Finding",
    "Rule",
    "RULES",
    "SEVERITIES",
    "Suppressions",
    "check_file",
    "discover_files",
    "format_rule_table",
    "get_rule",
    "parse_suppressions",
    "reset_schema_caches",
    "resolve_selection",
    "rule_ids",
    "run_check",
]
