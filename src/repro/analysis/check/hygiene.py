"""Hygiene rules: error-handling discipline.

* ``RPR-H001`` -- broad (``except Exception``/``except BaseException``) or
  bare ``except:`` handlers.  The engine's contract is that unexpected
  errors *propagate* (a swallowed KeyError becomes a silently wrong
  number).  Handlers that re-raise unconditionally (the cleanup-then-
  ``raise`` pattern the atomic writers use) are exempt -- they swallow
  nothing; the few legitimate swallowing handlers (a server's 500 path)
  carry an explicit allow comment saying why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.check.findings import Finding
from repro.analysis.check.pysource import PySource

_BROAD = frozenset({"Exception", "BaseException"})


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler's own body contains a bare ``raise``."""
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a raise inside a nested function isn't this handler's
        stack.extend(ast.iter_child_nodes(node))
    return False


def check_h001(module: PySource) -> Iterator[Finding]:
    """RPR-H001: broad or bare exception handlers that can swallow errors."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _reraises(node):
            continue  # cleanup-then-raise swallows nothing
        if node.type is None:
            message = "bare `except:` swallows everything, even KeyboardInterrupt"
        else:
            types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            broad = [
                name
                for name in (module.resolved_name(t) for t in types)
                if name in _BROAD
            ]
            if not broad:
                continue
            message = (
                f"`except {broad[0]}` without a re-raise hides invariant "
                f"violations; catch the specific errors this call site can "
                f"raise (annotate deliberate last-resort handlers with a why)"
            )
        yield Finding(
            rule_id="RPR-H001",
            severity="error",
            path=module.path,
            line=node.lineno,
            column=node.col_offset + 1,
            message=message,
        )
