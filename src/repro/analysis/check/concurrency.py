"""Concurrency rules: thread-safety of shared state, statically.

* ``RPR-T001`` -- in modules that import ``threading`` or
  ``concurrent.futures`` (i.e. whose functions run on many threads:
  serve handlers, sweep executors, cache flushers), module-level mutable
  state must only be mutated inside a ``with <lock>:`` block.  This is the
  pattern the experiment/strategy registries already follow
  (``with _REGISTRY_LOCK: _REGISTRY[name] = ...``).
* ``RPR-T002`` -- in the persistent-cache modules
  (``engine/diskcache.py``, ``sweep/queue.py``), files must be published
  atomically: a write-mode ``open``/``os.fdopen``/``write_text`` is only
  legal inside a function that also calls ``os.replace`` (temp file +
  rename) or claims via ``os.open(..., O_CREAT | O_EXCL)``.  Concurrent
  readers must never observe a torn file.
* ``RPR-T003`` -- in the same hardened modules, write I/O
  (``os.replace``, write-mode opens, ``write_text``/``write_bytes``) must
  run under the shared :func:`repro.faults.retry.with_retries` helper so a
  transient ``EIO`` does not lose a publish.  Exclusive-claim writes
  (``O_CREAT | O_EXCL`` lease files) are exempt: losing a claim race is
  contention control, not a fault to retry.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.check.findings import Finding
from repro.analysis.check.pysource import PySource

#: Method calls that mutate dict/list/set/deque receivers in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Constructor calls whose module-level result counts as mutable state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)

#: Cache modules under the atomic-publish contract (RPR-T002).
_ATOMIC_MODULES = frozenset({"diskcache.py", "queue.py"})


def check_t001(module: PySource) -> Iterator[Finding]:
    """RPR-T001: unlocked module-state mutation in a threaded module."""
    if not module.in_repro_src():
        return
    if not module.imports_any("threading", "concurrent.futures"):
        return
    mutable, module_names = _module_level_state(module)
    for func in _functions(module.tree):
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        declared_global &= module_names
        yield from _check_function(module, func, mutable, declared_global)


def _module_level_state(module: PySource) -> "tuple[Set[str], Set[str]]":
    """Module-level mutable bindings, and all module-level simple names."""
    mutable: Set[str] = set()
    names: Set[str] = set()
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            names.add(target.id)
            if _is_mutable_value(module, value):
                mutable.add(target.id)
    return mutable, names


def _is_mutable_value(module: PySource, value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return module.resolved_name(value.func) in _MUTABLE_CONSTRUCTORS
    return False


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _check_function(
    module: PySource,
    func: ast.AST,
    mutable: Set[str],
    declared_global: Set[str],
) -> Iterator[Finding]:
    """Walk one function, tracking the enclosing ``with <lock>`` blocks."""

    def visit(node: ast.AST, locked: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions are visited as their own roots
            child_locked = locked
            if isinstance(child, (ast.With, ast.AsyncWith)) and _holds_lock(module, child):
                child_locked = True
            if not child_locked:
                finding = _mutation_finding(module, child, mutable, declared_global)
                if finding is not None:
                    yield finding
            yield from visit(child, child_locked)

    yield from visit(func, locked=False)


def _holds_lock(module: PySource, node: ast.AST) -> bool:
    """True for ``with`` statements acquiring something lock-shaped."""
    for item in node.items:  # type: ignore[attr-defined]
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = module.dotted_name(expr)
        if name and "lock" in name.rsplit(".", 1)[-1].lower():
            return True
    return False


def _mutation_finding(
    module: PySource,
    node: ast.AST,
    mutable: Set[str],
    declared_global: Set[str],
) -> Optional[Finding]:
    """A finding if ``node`` mutates module-level state, else ``None``."""
    target_name: Optional[str] = None
    what = ""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared_global:
                target_name, what = target.id, "rebinds module-level"
                break
            base = _subscript_base(target)
            if base is not None and base in mutable:
                target_name, what = base, "writes into module-level"
                break
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            base = _subscript_base(target)
            if base is not None and base in mutable:
                target_name, what = base, "deletes from module-level"
                break
    elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        call = node.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATING_METHODS
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in mutable
        ):
            target_name, what = call.func.value.id, f".{call.func.attr}() mutates module-level"
    if target_name is None:
        return None
    return Finding(
        rule_id="RPR-T001",
        severity="error",
        path=module.path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", -1) + 1,
        message=(
            f"{what} state {target_name!r} outside a `with <lock>:` block in "
            f"a threaded module; guard it like the registry/cache locks"
        ),
    )


def _subscript_base(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


def check_t002(module: PySource) -> Iterator[Finding]:
    """RPR-T002: non-atomic file publish in the cache modules."""
    if not module.in_repro_src() or module.basename() not in _ATOMIC_MODULES:
        return
    for func in _functions(module.tree):
        if _is_atomic_aware(module, func):
            continue
        for node in _walk_own_body(func):
            message = _write_message(module, node)
            if message is not None:
                yield Finding(
                    rule_id="RPR-T002",
                    severity="error",
                    path=module.path,
                    line=getattr(node, "lineno", 0),
                    column=getattr(node, "col_offset", -1) + 1,
                    message=message,
                )


def _walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, not those of nested functions
    (nested functions are checked as their own roots)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_atomic_aware(module: PySource, func: ast.AST) -> bool:
    """True when the function publishes atomically (os.replace / O_EXCL)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and module.resolved_name(node.func) == "os.replace":
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = module.dotted_name(node)
            if name and name.rsplit(".", 1)[-1] == "O_EXCL":
                return True
    return False


def _write_message(module: PySource, node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Attribute) and node.func.attr in (
        "write_text",
        "write_bytes",
    ):
        return (
            f".{node.func.attr}() publishes non-atomically; write a temp "
            f"file and os.replace() it (see _atomic_write_json / flush)"
        )
    name = module.resolved_name(node.func)
    if name in ("open", "os.fdopen", "io.open"):
        mode = _open_mode(node)
        if mode is not None and mode.startswith(("w", "x")):
            return (
                f"{name}(..., {mode!r}) outside an atomic-publish function; "
                f"write a temp file and os.replace() it so concurrent "
                f"readers never see a torn file"
            )
    return None


def check_t003(module: PySource) -> Iterator[Finding]:
    """RPR-T003: retry-less write I/O in a hardened (crash-consistent) module."""
    if not module.in_repro_src() or module.basename() not in _ATOMIC_MODULES:
        return

    def visit(node: ast.AST, guarded: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Entering a function whose subtree calls with_retries(...)
                # (or claims via O_EXCL) guards everything inside it --
                # including the nested `_publish` closures the helper runs.
                child_guarded = (
                    guarded
                    or _calls_with_retries(module, child)
                    or _claims_exclusively(module, child)
                )
            elif not guarded:
                message = _retry_less_write_message(module, child)
                if message is not None:
                    yield Finding(
                        rule_id="RPR-T003",
                        severity="error",
                        path=module.path,
                        line=getattr(child, "lineno", 0),
                        column=getattr(child, "col_offset", -1) + 1,
                        message=message,
                    )
            yield from visit(child, child_guarded)

    yield from visit(module.tree, guarded=False)


def _calls_with_retries(module: PySource, func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = module.resolved_name(node.func) or ""
            if name.rsplit(".", 1)[-1] == "with_retries":
                return True
    return False


def _claims_exclusively(module: PySource, func: ast.AST) -> bool:
    """True when the function claims via ``O_CREAT | O_EXCL`` (lease files).

    Losing an exclusive-claim race is expected contention control; wrapping
    it in retries would turn mutual exclusion into a spin."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = module.dotted_name(node)
            if name and name.rsplit(".", 1)[-1] == "O_EXCL":
                return True
    return False


def _retry_less_write_message(module: PySource, node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    name = module.resolved_name(node.func)
    if name == "os.replace":
        return (
            "os.replace() outside with_retries(); route the publish "
            "through the shared retry helper (repro.faults.retry) so a "
            "transient EIO does not lose it"
        )
    message = _write_message(module, node)
    if message is not None:
        return (
            "write I/O outside with_retries(); route it through the "
            "shared retry helper (repro.faults.retry) so a transient "
            "EIO does not lose the publish"
        )
    return None


def _open_mode(node: ast.Call) -> Optional[str]:
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            return str(keyword.value.value)
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        value = node.args[1].value
        return value if isinstance(value, str) else None
    return None
