"""Findings: what the static checker reports, and how it serializes.

A :class:`Finding` pins one invariant violation to a file/line/column, under
a stable rule ID (``RPR-D001``, ...).  Findings are plain frozen dataclasses
so the whole check result round-trips through JSON (the CI artifact) without
loss: :meth:`Finding.to_dict` / :meth:`Finding.from_dict` are exact inverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

#: Finding severities, most severe first.  ``error`` findings fail the check
#: (non-zero exit); ``warning`` findings fail it too unless filtered away
#: with ``--severity error`` -- a clean repo carries neither.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule_id: stable rule identifier (``RPR-D001``, ...).
        severity: ``"error"`` or ``"warning"``.
        path: file the finding lives in, as given to the checker.
        line: 1-based line number (0 for whole-file findings).
        column: 1-based column number (0 when the rule has no column).
        message: one-line description of the violation.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; choose from {list(SEVERITIES)}"
            )

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic report order: path, then position, then rule."""
        return (self.path, self.line, self.column, self.rule_id)

    def format(self) -> str:
        """The one-line text-report form (``path:line:col: ID severity msg``)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain (JSON-ready) form."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        unknown = sorted(
            set(data) - {"rule", "severity", "path", "line", "column", "message"}
        )
        if unknown:
            raise ValueError(f"unknown finding key(s) {unknown}")
        return cls(
            rule_id=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            message=str(data["message"]),
        )
