"""Live-schema providers for the consistency rules.

The consistency family validates dotted path *literals* against the code
they index into, so the checker never carries its own copy of either
schema:

* scenario override paths resolve through the real
  :func:`repro.api.scenario.override_keys` /
  :func:`repro.sweep.spec.canonical_axis_key` (sweep axes accept
  unambiguous abbreviations, ``--set`` keys must be exact), and
* ``experiment.metric`` paths resolve through the real experiment registry
  plus each experiment's result dataclass -- the same top-level numeric
  fields :func:`repro.api.session.headline_metrics` exposes at runtime.

Everything is imported lazily and memoized: a check run touches the
registry once, and ``repro check --help`` never imports an experiment.
"""

from __future__ import annotations

import dataclasses
import sys
import typing
from typing import Dict, List, Optional, Set

#: Memoized schemas (one process-wide build per check run is plenty).
_OVERRIDE_KEYS: Optional[List[str]] = None
_METRIC_SCHEMA: Optional[Dict[str, Set[str]]] = None


def scenario_override_keys() -> List[str]:
    """Every valid dotted scenario override key (exact form)."""
    global _OVERRIDE_KEYS
    if _OVERRIDE_KEYS is None:
        from repro.api.scenario import override_keys

        _OVERRIDE_KEYS = list(override_keys())
    return _OVERRIDE_KEYS


def resolve_override_path(key: str) -> Optional[str]:
    """Error message for an invalid exact override path (``None`` if valid).

    This is the ``--set`` / :meth:`Scenario.with_overrides` contract: exact
    keys only, no abbreviations.
    """
    key = str(key).strip()
    if key in scenario_override_keys():
        return None
    return (
        f"unknown scenario override path {key!r}; "
        f"not in the live Scenario schema (see override_keys())"
    )


def resolve_axis_path(key: str) -> Optional[str]:
    """Error message for an invalid sweep-axis path (``None`` if valid).

    Sweep axes resolve through :func:`repro.sweep.spec.canonical_axis_key`,
    so unambiguous abbreviations (``hmc.pe_frequency``) are accepted exactly
    as the sweep engine accepts them.
    """
    from repro.sweep.spec import canonical_axis_key

    try:
        canonical_axis_key(key)
    except ValueError as error:
        return str(error)
    return None


def experiment_metric_schema() -> Dict[str, Set[str]]:
    """``{experiment name: {headline metric names}}`` from the live registry.

    Metric names are the top-level ``int``/``float`` fields of each
    experiment's result dataclass, found through the return annotation of
    the experiment module's ``run()`` function -- statically the same set
    :func:`repro.api.session.headline_metrics` yields at runtime (a field
    that is NaN for a particular scenario still *exists* in the schema).
    """
    global _METRIC_SCHEMA
    if _METRIC_SCHEMA is not None:
        return _METRIC_SCHEMA
    from repro.engine.experiment import experiment_names, get_experiment

    schema: Dict[str, Set[str]] = {}
    for name in experiment_names():
        experiment = get_experiment(name)
        module = sys.modules.get(type(experiment).__module__)
        run = getattr(module, "run", None)
        result_type = None
        if run is not None:
            try:
                hints = typing.get_type_hints(run)
            except Exception:  # repro: allow(RPR-H001) -- third-party experiment modules may carry unresolvable annotations; they simply contribute no metric schema
                hints = {}
            result_type = hints.get("return")
        schema[name] = _numeric_fields(result_type)
    _METRIC_SCHEMA = schema
    return schema


def _numeric_fields(result_type: object) -> Set[str]:
    """Top-level ``int``/``float`` dataclass fields (bool excluded)."""
    if result_type is None or not dataclasses.is_dataclass(result_type):
        return set()
    fields = set()
    for f in dataclasses.fields(result_type):
        if f.type in (int, float) or f.type in ("int", "float"):
            fields.add(f.name)
    return fields


def resolve_metric_path(path: str) -> Optional[str]:
    """Error message for an invalid ``experiment.metric`` path (``None`` if valid)."""
    path = str(path).strip()
    parts = path.split(".")
    if len(parts) != 2 or not all(parts):
        return (
            f"invalid metric path {path!r}; expected experiment.metric "
            f"(e.g. fig17.average_speedup)"
        )
    schema = experiment_metric_schema()
    experiment, metric = parts
    if experiment not in schema:
        return (
            f"unknown experiment {experiment!r} in metric path {path!r}; "
            f"registered experiments: {sorted(schema)}"
        )
    if metric not in schema[experiment]:
        return (
            f"unknown metric {metric!r} in path {path!r}; "
            f"{experiment} offers: {sorted(schema[experiment])}"
        )
    return None


def reset_schema_caches() -> None:
    """Drop the memoized schemas (tests that register custom experiments)."""
    global _OVERRIDE_KEYS, _METRIC_SCHEMA
    _OVERRIDE_KEYS = None
    _METRIC_SCHEMA = None
