"""Determinism rules: the byte-identical-reports invariant, statically.

* ``RPR-D001`` -- wall-clock reads and seedless RNG construction in the
  deterministic source tree (everything under ``repro`` except ``serve``,
  whose uptime/latency metrics are wall-clock by design).
* ``RPR-D002`` -- accumulation-reordering linear algebra inside the
  exact-arithmetic modules (``repro.capsnet``, ``repro.arithmetic``),
  encoding PR 5's measured bit-exactness gate as a lint rule.
* ``RPR-D003`` -- direct iteration over unordered sets in positions that
  feed rendered output (loops, comprehensions, ``join``/``list``/``tuple``/
  ``sum``); set order depends on ``PYTHONHASHSEED`` for strings.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.check.findings import Finding
from repro.analysis.check.pysource import PySource

#: Wall-clock and platform-entropy calls that break report determinism.
#: (time.perf_counter / time.monotonic stay legal: they only feed the
#: stderr statistics lines, never stdout reports.)
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)

#: numpy RNG constructors that are fine *when seeded* (>= 1 argument).
_SEEDED_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
    }
)

#: Reordering linear-algebra calls banned from the exact modules.
_REORDERING_CALLS = frozenset({"numpy.matmul", "numpy.tensordot", "numpy.dot"})


def check_d001(module: PySource) -> Iterator[Finding]:
    """RPR-D001: wall-clock / seedless RNG in deterministic source."""
    if not module.in_repro_src() or module.in_parts("serve"):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = module.resolved_name(node.func)
        if name is None:
            continue
        message = _d001_message(name, node)
        if message is not None:
            yield _finding("RPR-D001", module, node, message)


def _d001_message(name: str, node: ast.Call) -> Optional[str]:
    if name in _WALL_CLOCK:
        return (
            f"{name}() is wall-clock/entropy: simulation results must be "
            f"deterministic (time.perf_counter is allowed for stderr stats)"
        )
    if name == "random.Random" and not (node.args or node.keywords):
        return "random.Random() without a seed is nondeterministic; pass a seed"
    if name.startswith("random.") and name != "random.Random":
        return (
            f"{name}() uses the process-global stdlib RNG; use a seeded "
            f"np.random.default_rng(seed) (or random.Random(seed)) instead"
        )
    if name in _SEEDED_OK:
        if not (node.args or node.keywords):
            return f"{name}() without a seed draws OS entropy; pass an explicit seed"
        return None
    if name.startswith("numpy.random.") and name != "numpy.random.Generator":
        return (
            f"{name}() uses numpy's legacy global RNG; construct a seeded "
            f"np.random.default_rng(seed) instead"
        )
    return None


def check_d002(module: PySource) -> Iterator[Finding]:
    """RPR-D002: reordering kernels inside the exact-arithmetic modules."""
    if not module.in_repro_src() or not module.in_parts("capsnet", "arithmetic"):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            yield _finding(
                "RPR-D002",
                module,
                node,
                "the `@` operator dispatches to BLAS matmul, which reorders "
                "FP32 accumulation (measured + rejected by the PR 5 "
                "bit-exactness gate); use the einsum kernels",
            )
            continue
        if not isinstance(node, ast.Call):
            continue
        name = module.resolved_name(node.func)
        if name in _REORDERING_CALLS:
            yield _finding(
                "RPR-D002",
                module,
                node,
                f"{name} reorders FP32 accumulation (measured + rejected by "
                f"the PR 5 bit-exactness gate); use the einsum kernels",
            )
        elif name == "numpy.einsum":
            for keyword in node.keywords:
                if keyword.arg != "optimize":
                    continue
                value = keyword.value
                if not (isinstance(value, ast.Constant) and value.value is False):
                    yield _finding(
                        "RPR-D002",
                        module,
                        node,
                        "einsum(optimize=...) routes through tensordot/BLAS "
                        "and reorders FP32 accumulation; drop the optimize "
                        "flag in exact-arithmetic code",
                    )


def check_d003(module: PySource) -> Iterator[Finding]:
    """RPR-D003: direct iteration over unordered sets."""
    if not module.in_repro_src():
        return
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(module, node.iter):
                yield _finding(
                    "RPR-D003",
                    module,
                    node.iter,
                    "loop iterates a set directly; set order depends on "
                    "PYTHONHASHSEED -- wrap in sorted(...)",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(module, generator.iter):
                    yield _finding(
                        "RPR-D003",
                        module,
                        generator.iter,
                        "comprehension iterates a set directly; set order "
                        "depends on PYTHONHASHSEED -- wrap in sorted(...)",
                    )
        elif isinstance(node, ast.Call):
            yield from _d003_call(module, node)


def _d003_call(module: PySource, node: ast.Call) -> Iterator[Finding]:
    """Order-sensitive consumers fed a set expression directly."""
    consumer = None
    if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
        consumer = "str.join"
    else:
        name = module.resolved_name(node.func)
        if name in ("list", "tuple", "sum"):
            consumer = name
    if consumer is None:
        return
    for arg in node.args[:1]:
        if _is_set_expr(module, arg):
            yield _finding(
                "RPR-D003",
                module,
                arg,
                f"{consumer}(...) consumes a set in iteration order; set "
                f"order depends on PYTHONHASHSEED -- wrap in sorted(...)",
            )


def _is_set_expr(module: PySource, node: ast.AST) -> bool:
    """True for expressions that are unordered sets (literal, comp, set())."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = module.resolved_name(node.func)
        return name in ("set", "frozenset")
    return False


def _finding(rule_id: str, module: PySource, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity="error",
        path=module.path,
        line=getattr(node, "lineno", 0),
        column=getattr(node, "col_offset", -1) + 1,
        message=message,
    )
